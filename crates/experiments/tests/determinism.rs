//! Golden-digest determinism suite.
//!
//! The hot-loop optimizations in `smt-pipeline` and the persistent campaign
//! cache both promise *bit-identical* results: re-running a (workload,
//! policy) pair, or serving it from disk, must reproduce every counter
//! exactly. `SimResult::digest()` condenses a run to one order- and
//! content-exact value, so every promise here is one `assert_eq!`.

use std::path::PathBuf;

use dwarn_core::PolicyKind;
use smt_experiments::{Arch, Campaign, ExpParams, RunKey};
use smt_workloads::{workload, WorkloadClass};

fn quick() -> ExpParams {
    ExpParams {
        warmup: 1_000,
        measure: 3_000,
    }
}

/// A fresh, empty temp directory for one test's cache.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dwarn-determinism-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small cross-section of the grid: each thread-count regime and
/// workload class, against the policies whose interplay the paper is about.
fn grid() -> Vec<RunKey> {
    let mut keys = Vec::new();
    for (threads, class) in [
        (2, WorkloadClass::Ilp),
        (4, WorkloadClass::Mix),
        (8, WorkloadClass::Mem),
    ] {
        let wl = workload(threads, class);
        for policy in [PolicyKind::Icount, PolicyKind::Flush, PolicyKind::DWarn] {
            keys.push(RunKey::workload(Arch::Baseline, &wl, policy));
        }
    }
    keys.push(RunKey::solo(Arch::Baseline, "mcf"));
    keys
}

#[test]
fn independent_campaigns_agree_digest_for_digest() {
    // Each pair simulated twice, in fresh campaigns: every counter of
    // every run must come out bit-identical.
    let a = Campaign::new(quick());
    let b = Campaign::new(quick());
    for key in grid() {
        let da = a.result(&key).digest();
        let db = b.result(&key).digest();
        assert_eq!(da, db, "nondeterministic result for {key:?}");
    }
}

#[test]
fn prefetch_and_on_demand_agree() {
    // The parallel batch path and the on-demand path must be the same
    // simulation.
    let keys = grid();
    let batch = Campaign::new(quick());
    batch.prefetch(&keys);
    let serial = Campaign::new(quick());
    for key in &keys {
        assert_eq!(batch.result(key).digest(), serial.result(key).digest());
    }
}

#[test]
fn disk_cache_round_trip_is_bit_identical() {
    let dir = temp_dir("roundtrip");
    let keys = grid();

    // Cold process: simulate and persist.
    let cold = Campaign::with_disk_cache(quick(), &dir).unwrap();
    let fresh: Vec<u64> = keys.iter().map(|k| cold.result(k).digest()).collect();

    // Warm process: every result must load back digest-exact.
    let warm = Campaign::with_disk_cache(quick(), &dir).unwrap();
    for (key, &expect) in keys.iter().zip(&fresh) {
        assert_eq!(
            warm.result(key).digest(),
            expect,
            "cache round-trip altered {key:?}"
        );
    }
    let stats = warm.disk().unwrap().stats().unwrap();
    assert_eq!(stats.entries, keys.len());
    assert_eq!(warm.disk().unwrap().verify().unwrap().corrupt.len(), 0);
}

#[test]
fn custom_runs_round_trip_through_the_cache() {
    let dir = temp_dir("custom");
    let wl = workload(4, WorkloadClass::Mem);
    let cfg = smt_pipeline::SimConfig::baseline();

    let cold = Campaign::with_disk_cache(quick(), &dir).unwrap();
    let a = cold.run_custom(&cfg, &wl.thread_specs(), "DG(n=2)", || {
        Box::new(dwarn_core::DataGating::with_threshold(2))
    });

    let warm = Campaign::with_disk_cache(quick(), &dir).unwrap();
    // The policy closure must not even be needed on a warm hit; a panic
    // here would mean the cache missed.
    let b = warm.run_custom(&cfg, &wl.thread_specs(), "DG(n=2)", || {
        panic!("warm hit must not rebuild the policy")
    });
    assert_eq!(a.digest(), b.digest());
}

#[test]
fn corrupt_cache_entries_are_resimulated_not_trusted() {
    let dir = temp_dir("corrupt");
    let keys = grid();

    let cold = Campaign::with_disk_cache(quick(), &dir).unwrap();
    let fresh: Vec<u64> = keys.iter().map(|k| cold.result(k).digest()).collect();

    // Vandalize every stored entry: truncate half of them, fill the rest
    // with garbage.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), keys.len());
    for (i, path) in entries.iter().enumerate() {
        if i % 2 == 0 {
            let text = std::fs::read_to_string(path).unwrap();
            std::fs::write(path, &text[..text.len() / 3]).unwrap();
        } else {
            std::fs::write(path, "{\"not\": \"a cache entry\"}\n").unwrap();
        }
    }
    let verify = cold.disk().unwrap().verify().unwrap();
    assert_eq!(verify.ok, 0, "vandalism must be detectable");
    assert_eq!(verify.corrupt.len(), keys.len());

    // A new campaign over the vandalized cache must fall back to
    // simulation everywhere and still produce identical results.
    let warm = Campaign::with_disk_cache(quick(), &dir).unwrap();
    for (key, &expect) in keys.iter().zip(&fresh) {
        assert_eq!(
            warm.result(key).digest(),
            expect,
            "corrupt entry changed the result for {key:?}"
        );
    }
    // The fallback runs also repaired the cache in passing.
    assert_eq!(warm.disk().unwrap().verify().unwrap().ok, keys.len());
}

#[test]
fn quick_and_standard_params_do_not_alias_in_the_cache() {
    let dir = temp_dir("params");
    let wl = workload(2, WorkloadClass::Mix);
    let key = RunKey::workload(Arch::Baseline, &wl, PolicyKind::Icount);

    let a = Campaign::with_disk_cache(quick(), &dir).unwrap();
    let ra = a.result(&key);
    let longer = Campaign::with_disk_cache(
        ExpParams {
            warmup: 1_000,
            measure: 6_000,
        },
        &dir,
    )
    .unwrap();
    let rb = longer.result(&key);
    assert_ne!(
        ra.cycles, rb.cycles,
        "different windows must not share a cache entry"
    );
    assert_eq!(a.disk().unwrap().stats().unwrap().entries, 2);
}

#[test]
fn sanitized_campaign_is_bit_identical_and_clean() {
    // --sanitize attaches the cycle-level µarch sanitizer to every run.
    // It is observation-only: every digest must match the unsanitized
    // campaign's exactly, and a clean machine must produce zero
    // violations (a violation would fail the run as ExpError::Invariant
    // and show up as a recorded failure).
    let plain = Campaign::new(quick());
    let mut checked = Campaign::new(quick());
    checked.set_sanitize(true);
    for key in grid() {
        assert_eq!(
            plain.result(&key).digest(),
            checked.result(&key).digest(),
            "sanitizer changed the result for {key:?}"
        );
    }
    assert!(
        checked.failures().is_empty(),
        "sanitized campaign recorded failures: {:?}",
        checked.failures()
    );
}

// --- Quiescence-skip engine -----------------------------------------------

/// One (policy, workload) pair simulated twice — skipping engine on, then
/// the `--no-skip` naive loop — returning both digests and the skipping
/// run's bulk-advanced cycle count.
fn skip_pair(policy: PolicyKind, threads: usize, class: WorkloadClass) -> (u64, u64, u64) {
    let specs = workload(threads, class).thread_specs();
    let cfg = smt_pipeline::SimConfig::baseline();
    let mut fast = smt_pipeline::Simulator::new(cfg.clone(), policy.build(), &specs);
    let fast_result = fast.run(1_000, 3_000);
    let mut naive = smt_pipeline::Simulator::new(cfg, policy.build(), &specs);
    naive.set_skip_enabled(false);
    let naive_result = naive.run(1_000, 3_000);
    assert_eq!(naive.skipped_cycles(), 0, "escape hatch must not skip");
    (
        fast_result.digest(),
        naive_result.digest(),
        fast.skipped_cycles(),
    )
}

#[test]
fn quiescence_skip_is_bit_identical_across_the_paper_grid() {
    // Every paper policy against each workload-class regime: the skipping
    // engine must reproduce the naive loop's every counter exactly.
    let mut total_skipped = 0;
    for (threads, class) in [
        (2, WorkloadClass::Ilp),
        (4, WorkloadClass::Mix),
        (8, WorkloadClass::Mem),
    ] {
        for policy in PolicyKind::paper_set() {
            let (fast, naive, skipped) = skip_pair(policy, threads, class);
            assert_eq!(
                fast, naive,
                "skip changed the result for {policy:?} on {threads}-{class:?}"
            );
            total_skipped += skipped;
        }
    }
    assert!(
        total_skipped > 0,
        "the quiescence engine never engaged; the grid proves nothing"
    );
}

#[test]
fn campaign_skip_toggle_is_bit_identical() {
    // `Campaign::set_skip(false)` is the CLI's `--no-skip` path; skip and
    // no-skip campaigns share cache keys precisely because of this.
    let fast = Campaign::new(quick());
    let mut naive = Campaign::new(quick());
    naive.set_skip(false);
    for key in grid() {
        assert_eq!(
            fast.result(&key).digest(),
            naive.result(&key).digest(),
            "--no-skip changed the result for {key:?}"
        );
    }
}

#[test]
fn sanitized_skipped_run_is_clean_and_identical() {
    // The cycle-level sanitizer must tolerate bulk clock advances: its
    // past-due scans see the jump to the frontier, and a clean machine
    // stays clean whether cycles are stepped or skipped.
    use smt_pipeline::{RecordingSanitizer, Simulator};
    let specs = workload(4, WorkloadClass::Mem).thread_specs();
    let cfg = smt_pipeline::SimConfig::baseline();

    let mut fast = Simulator::try_sanitized(
        cfg.clone(),
        PolicyKind::DWarn.build(),
        &specs,
        RecordingSanitizer::new(),
    )
    .unwrap();
    let fast_result = fast.run(1_000, 3_000);
    assert!(
        fast.skipped_cycles() > 0,
        "skip must engage under the sanitizer for this test to mean anything"
    );
    assert!(
        fast.sanitizer().is_clean(),
        "sanitizer flagged a skipped run: {:?}",
        fast.sanitizer().first()
    );

    let mut naive = Simulator::try_sanitized(
        cfg,
        PolicyKind::DWarn.build(),
        &specs,
        RecordingSanitizer::new(),
    )
    .unwrap();
    naive.set_skip_enabled(false);
    let naive_result = naive.run(1_000, 3_000);
    assert!(naive.sanitizer().is_clean());
    assert_eq!(fast_result.digest(), naive_result.digest());
}

// --- Switching meta-policies ----------------------------------------------

/// The candidate kinds a [`dwarn_core::MetaPolicy`] switches over, paired
/// with the selector kinds, for the switching-correctness grid below.
fn meta_kinds() -> [PolicyKind; 3] {
    PolicyKind::meta_set()
}

#[test]
fn locked_meta_is_bit_identical_to_its_static_candidate() {
    // A MetaPolicy pinned to one candidate adds commit-event accounting
    // and a skip horizon, but neither may perturb the simulation: the
    // composite must reproduce the bare candidate's every counter.
    use smt_pipeline::Simulator;
    let specs = workload(4, WorkloadClass::Mix).thread_specs();
    let cfg = smt_pipeline::SimConfig::baseline();
    for kind in [
        PolicyKind::DWarn,
        PolicyKind::Stall,
        PolicyKind::Flush,
        PolicyKind::Icount,
    ] {
        let mut bare = Simulator::new(cfg.clone(), kind.build(), &specs);
        let bare_result = bare.run(1_000, 3_000);
        let mut locked = Simulator::new(
            cfg.clone(),
            Box::new(dwarn_core::MetaPolicy::locked(kind.build())),
            &specs,
        );
        let locked_result = locked.run(1_000, 3_000);
        assert_eq!(
            bare_result.digest(),
            locked_result.digest(),
            "locked meta diverged from static {kind:?}"
        );
    }
}

#[test]
fn meta_skip_is_bit_identical_across_selectors_and_classes() {
    // The switching composite under the quiescence engine: the skip
    // horizon forces every window boundary onto a naive cycle, so skipped
    // and --no-skip runs must agree bit-for-bit even while switching.
    let mut total_skipped = 0;
    for (threads, class) in [
        (2, WorkloadClass::Ilp),
        (4, WorkloadClass::Mix),
        (8, WorkloadClass::Mem),
    ] {
        for policy in meta_kinds() {
            let (fast, naive, skipped) = skip_pair(policy, threads, class);
            assert_eq!(
                fast, naive,
                "skip changed the result for {policy:?} on {threads}-{class:?}"
            );
            total_skipped += skipped;
        }
    }
    assert!(
        total_skipped > 0,
        "the quiescence engine never engaged under the meta-policies"
    );
}

#[test]
fn sanitized_meta_runs_are_clean_and_actually_switch() {
    // Every selector on every workload class runs clean under the
    // cycle-level sanitizer, and the grid as a whole must exercise real
    // switching (a grid that never switches proves nothing about it).
    use smt_pipeline::{RecordingSanitizer, Simulator};
    let cfg = smt_pipeline::SimConfig::baseline();
    let mut total_switches = 0usize;
    for (threads, class) in [
        (2, WorkloadClass::Ilp),
        (4, WorkloadClass::Mix),
        (8, WorkloadClass::Mem),
    ] {
        let specs = workload(threads, class).thread_specs();
        for policy in meta_kinds() {
            let mut sim = Simulator::try_sanitized(
                cfg.clone(),
                policy.build(),
                &specs,
                RecordingSanitizer::new(),
            )
            .unwrap();
            sim.run(1_000, 7_000);
            total_switches += sim.policy().switch_log().len();
            assert!(
                sim.sanitizer().is_clean(),
                "sanitizer flagged {policy:?} on {threads}-{class:?}: {:?}",
                sim.sanitizer().first()
            );
        }
    }
    assert!(
        total_switches > 0,
        "no selector ever switched; the sanitized grid proves nothing"
    );
}

#[test]
fn forced_mid_interval_switch_trips_inv013() {
    // Mutation test for the audit itself: force a switch onto a cycle
    // that is not a window boundary and the sanitizer must report INV013
    // (policy-gating violation). Skip is disabled so the forced cycle is
    // actually stepped.
    use smt_pipeline::{InvariantCode, RecordingSanitizer, Simulator};
    let specs = workload(4, WorkloadClass::Mix).thread_specs();
    let policy =
        dwarn_core::MetaPolicy::new(dwarn_core::SelectorKind::Epsilon).force_switch_at(1_500);
    let mut sim = Simulator::try_sanitized(
        smt_pipeline::SimConfig::baseline(),
        Box::new(policy),
        &specs,
        RecordingSanitizer::new(),
    )
    .unwrap();
    sim.set_skip_enabled(false);
    sim.run(1_000, 3_000);
    let rec = sim.into_sanitizer();
    assert!(
        rec.saw(InvariantCode::PolicyGating),
        "illegal mid-interval switch must trigger INV013; got:\n{}",
        rec.render_report()
    );
}

#[test]
fn meta_campaign_cache_round_trip_is_bit_identical() {
    // Meta runs go through the same disk cache as the statics, keyed by
    // the full selector configuration (PolicyKind::cache_desc).
    let dir = temp_dir("meta-roundtrip");
    let wl = workload(4, WorkloadClass::Mem);
    let keys: Vec<RunKey> = meta_kinds()
        .iter()
        .map(|&p| RunKey::workload(Arch::Baseline, &wl, p))
        .collect();
    let cold = Campaign::with_disk_cache(quick(), &dir).unwrap();
    let fresh: Vec<u64> = keys.iter().map(|k| cold.result(k).digest()).collect();
    let warm = Campaign::with_disk_cache(quick(), &dir).unwrap();
    for (key, &expect) in keys.iter().zip(&fresh) {
        assert_eq!(
            warm.result(key).digest(),
            expect,
            "cache round-trip altered {key:?}"
        );
    }
    assert_eq!(warm.disk().unwrap().stats().unwrap().entries, keys.len());
}

#[test]
fn sanitize_bypasses_disk_cache_loads_but_still_stores() {
    let dir = temp_dir("sanitize");
    let key = RunKey::solo(Arch::Baseline, "mcf");

    // A sanitized campaign still *stores* its (bit-identical) results...
    let mut cold = Campaign::with_disk_cache(quick(), &dir).unwrap();
    cold.set_sanitize(true);
    let d0 = cold.result(&key).digest();
    let warm = Campaign::with_disk_cache(quick(), &dir).unwrap();
    assert_eq!(warm.result(&key).digest(), d0, "sanitized store not served");

    // ...but never *loads*: vandalize every stored entry — an unsanitized
    // campaign would surface a cache fault; the sanitized one must not
    // even notice, because each run really executes under audit.
    for e in std::fs::read_dir(&dir).unwrap() {
        let p = e.unwrap().path();
        if p.extension().and_then(|x| x.to_str()) == Some("dwc") {
            std::fs::write(&p, "vandalized\n").unwrap();
        }
    }
    let mut audited = Campaign::with_disk_cache(quick(), &dir).unwrap();
    audited.set_sanitize(true);
    assert_eq!(audited.result(&key).digest(), d0);
    assert!(
        audited.failures().is_empty(),
        "sanitized campaign consulted the (corrupt) cache: {:?}",
        audited.failures()
    );
}
