//! The [`Probe`] trait: the simulator's observability hook points.
//!
//! The simulator (`smt-pipeline`) is generic over `P: Probe` and calls these
//! hooks from its fetch/dispatch/issue/commit/squash paths; the memory
//! hierarchy (`smt-uarch`) calls them from the data-cache access path. All
//! methods have empty default bodies, so a probe implements only what it
//! cares about — and the no-op [`NullProbe`] compiles away entirely.
//!
//! Hooks additionally guarded by per-cycle bookkeeping (gate-transition
//! tracking, occupancy-sample construction) are skipped by the simulator
//! when [`Probe::ENABLED`] is `false`, so a default run pays nothing at all.

/// Why a thread did not deliver instructions in a fetch cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateReason {
    /// The fetch policy excluded the thread from its fetch order
    /// (DWarn priority-group demotion, DG/PDG/STALL/FLUSH gating, ...).
    Policy,
    /// The thread is waiting on an instruction-cache fill.
    IcacheMiss,
    /// The thread's fetch queue is full (back-end pressure).
    FetchQueueFull,
}

impl GateReason {
    pub const ALL: [GateReason; 3] = [
        GateReason::Policy,
        GateReason::IcacheMiss,
        GateReason::FetchQueueFull,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            GateReason::Policy => "policy",
            GateReason::IcacheMiss => "icache-miss",
            GateReason::FetchQueueFull => "fetch-queue-full",
        }
    }

    pub fn index(self) -> usize {
        match self {
            GateReason::Policy => 0,
            GateReason::IcacheMiss => 1,
            GateReason::FetchQueueFull => 2,
        }
    }
}

/// Why an in-flight instruction was squashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SquashKind {
    /// Branch-misprediction recovery.
    Mispredict,
    /// The FLUSH policy's response action to a declared L2 miss.
    Flush,
}

impl SquashKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SquashKind::Mispredict => "mispredict",
            SquashKind::Flush => "flush",
        }
    }
}

/// One occupancy sample of the shared back-end, taken every `sample_every`
/// cycles by `Simulator::run_sampled`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancySample {
    pub cycle: u64,
    /// Issue-queue occupancy [int, fp, ldst].
    pub iq: [u32; 3],
    /// Physical integer registers in use (beyond the architectural
    /// reservation).
    pub regs_int: u32,
    /// Physical floating-point registers in use.
    pub regs_fp: u32,
    /// Per-thread ROB occupancy.
    pub rob: Vec<u32>,
    /// Per-thread issue-queue entries held (all kinds combined).
    pub iq_per_thread: Vec<u32>,
}

/// End-of-cycle resource snapshot handed to [`Probe::on_cycle_state`] and
/// [`Probe::on_quiescent_span`]. Built by the simulator once per cycle (or
/// once per bulk-advanced span) only when [`Probe::ENABLED`] is true; the
/// slices borrow the simulator's scratch buffers, so no per-cycle
/// allocation occurs after warm-up.
#[derive(Debug)]
pub struct CycleState<'a> {
    /// The cycle this state describes (the first cycle of the span for
    /// [`Probe::on_quiescent_span`]).
    pub cycle: u64,
    /// Shared issue-queue occupancy [int, fp, ldst].
    pub iq: [u32; 3],
    /// Physical integer registers in use beyond the architectural
    /// reservation.
    pub regs_int: u32,
    /// Physical floating-point registers in use.
    pub regs_fp: u32,
    /// Per-thread ROB occupancy.
    pub rob: &'a [u32],
    /// Per-thread issue-queue entries held (all kinds combined).
    pub iq_per_thread: &'a [u32],
    /// Per-thread outstanding L1 data-cache misses (the paper's per-context
    /// miss counter).
    pub outstanding_miss: &'a [u32],
    /// Per-thread gate state at the end of the fetch stage: `None` while
    /// fetching, `Some(reason)` while gated.
    pub gate: &'a [Option<GateReason>],
}

/// Observability hook points. All hooks default to nothing; `cycle` is the
/// simulator cycle the event occurred in, `seq` the global dynamic-instruction
/// sequence number (also used as `load_id` for loads).
pub trait Probe {
    /// `false` only for [`NullProbe`]: lets the simulator skip bookkeeping
    /// that exists purely to feed the probe (gate-transition tracking,
    /// occupancy-sample construction) at compile time.
    const ENABLED: bool = true;

    /// An instruction entered the fetch queue.
    fn on_fetch(&mut self, _cycle: u64, _thread: usize, _pc: u64, _seq: u64, _wrong_path: bool) {}

    /// An instruction was renamed and dispatched into the issue queues.
    fn on_dispatch(&mut self, _cycle: u64, _thread: usize, _seq: u64) {}

    /// An instruction left an issue queue for a functional unit.
    fn on_issue(&mut self, _cycle: u64, _thread: usize, _seq: u64) {}

    /// A correct-path instruction retired from the ROB head.
    fn on_commit(&mut self, _cycle: u64, _thread: usize, _seq: u64, _pc: u64) {}

    /// An in-flight instruction was squashed.
    fn on_squash(&mut self, _cycle: u64, _thread: usize, _seq: u64, _kind: SquashKind) {}

    /// A thread transitioned from fetching to not-fetching for `reason`.
    /// A reason *change* while gated is delivered as ungate(old), gate(new).
    fn on_gate(&mut self, _cycle: u64, _thread: usize, _reason: GateReason) {}

    /// A thread's gate (for `reason`) was lifted.
    fn on_ungate(&mut self, _cycle: u64, _thread: usize, _reason: GateReason) {}

    /// A data-cache access missed in L1: the miss lifetime begins. Emitted
    /// by the memory hierarchy at access time. `l2_miss` tells whether the
    /// access also missed in L2 (known at access time in this model).
    fn on_l1_miss_begin(
        &mut self,
        _cycle: u64,
        _thread: usize,
        _load_id: u64,
        _addr: u64,
        _l2_miss: bool,
    ) {
    }

    /// The missing line's fill returned: the miss lifetime ends. Not
    /// delivered for loads squashed while their miss was outstanding.
    fn on_l1_miss_end(&mut self, _cycle: u64, _thread: usize, _load_id: u64) {}

    /// A load was *declared* a probable L2 miss (time-in-hierarchy
    /// exceeded the declare threshold) — the STALL/FLUSH/DWarn trigger.
    fn on_l2_declare(&mut self, _cycle: u64, _thread: usize, _load_id: u64) {}

    /// A previously declared load is about to resolve (the early-resolve
    /// advance notice).
    fn on_l2_resolve(&mut self, _cycle: u64, _thread: usize, _load_id: u64) {}

    /// An instruction-cache miss stalled a thread's fetch until `ready_at`.
    fn on_ifetch_miss(&mut self, _cycle: u64, _thread: usize, _addr: u64, _ready_at: u64) {}

    /// A shared-resource occupancy sample (from `run_sampled`).
    fn on_sample(&mut self, _sample: &OccupancySample) {}

    /// End-of-cycle resource state for one normally-stepped cycle. The
    /// interval sampler accumulates its time-series here.
    fn on_cycle_state(&mut self, _state: &CycleState<'_>) {}

    /// End-of-cycle resource state covering a quiescence-skipped span of
    /// `span` cycles starting at `state.cycle`. Every per-cycle quantity in
    /// `state` is provably constant across the span (that is what made the
    /// span skippable), so a probe that adds `span × value` observes exactly
    /// what `span` calls to [`Probe::on_cycle_state`] would have produced.
    fn on_quiescent_span(&mut self, _state: &CycleState<'_>, _span: u64) {}

    /// The fetch policy's telemetry warn level for a thread changed (e.g.
    /// DWarn's Normal → Dmiss group demotion, or the hybrid L2 gate).
    fn on_warn_change(&mut self, _cycle: u64, _thread: usize, _from: u8, _to: u8) {}

    /// A composite (switching) fetch policy handed control to a different
    /// candidate: `from`/`to` are candidate names as reported by the
    /// policy's `active_policy`. Static policies never fire this; switching
    /// policies fire it only at window boundaries, which are always stepped
    /// naively (the quiescence engine caps spans at the policy's declared
    /// horizon), so the delivered cycle is exact in both skip modes.
    fn on_policy_switch(&mut self, _cycle: u64, _from: &'static str, _to: &'static str) {}

    /// Serialize the probe's evolving state for a machine snapshot. Probes
    /// with no evolving state append nothing. Plain bytes (not a structured
    /// writer) keep `smt-obs` dependency-free; stateful probes define their
    /// own layout.
    fn save_state(&self, _out: &mut Vec<u8>) {}

    /// Restore the state captured by [`Probe::save_state`]. Called with
    /// exactly the bytes that `save_state` produced for this probe type;
    /// an error string rejects a section that does not decode.
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

/// The disabled probe: every hook is a no-op and [`Probe::ENABLED`] is
/// `false`, so an un-instrumented simulator monomorphizes to exactly the
/// code it had before probes existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;
}

/// Forwarding to a `&mut P` lets call sites hand out temporary probe
/// borrows (the memory hierarchy receives `&mut P` from the simulator).
impl<P: Probe> Probe for &mut P {
    const ENABLED: bool = P::ENABLED;

    fn on_fetch(&mut self, cycle: u64, thread: usize, pc: u64, seq: u64, wrong_path: bool) {
        (**self).on_fetch(cycle, thread, pc, seq, wrong_path)
    }
    fn on_dispatch(&mut self, cycle: u64, thread: usize, seq: u64) {
        (**self).on_dispatch(cycle, thread, seq)
    }
    fn on_issue(&mut self, cycle: u64, thread: usize, seq: u64) {
        (**self).on_issue(cycle, thread, seq)
    }
    fn on_commit(&mut self, cycle: u64, thread: usize, seq: u64, pc: u64) {
        (**self).on_commit(cycle, thread, seq, pc)
    }
    fn on_squash(&mut self, cycle: u64, thread: usize, seq: u64, kind: SquashKind) {
        (**self).on_squash(cycle, thread, seq, kind)
    }
    fn on_gate(&mut self, cycle: u64, thread: usize, reason: GateReason) {
        (**self).on_gate(cycle, thread, reason)
    }
    fn on_ungate(&mut self, cycle: u64, thread: usize, reason: GateReason) {
        (**self).on_ungate(cycle, thread, reason)
    }
    fn on_l1_miss_begin(&mut self, cycle: u64, thread: usize, load_id: u64, addr: u64, l2: bool) {
        (**self).on_l1_miss_begin(cycle, thread, load_id, addr, l2)
    }
    fn on_l1_miss_end(&mut self, cycle: u64, thread: usize, load_id: u64) {
        (**self).on_l1_miss_end(cycle, thread, load_id)
    }
    fn on_l2_declare(&mut self, cycle: u64, thread: usize, load_id: u64) {
        (**self).on_l2_declare(cycle, thread, load_id)
    }
    fn on_l2_resolve(&mut self, cycle: u64, thread: usize, load_id: u64) {
        (**self).on_l2_resolve(cycle, thread, load_id)
    }
    fn on_ifetch_miss(&mut self, cycle: u64, thread: usize, addr: u64, ready_at: u64) {
        (**self).on_ifetch_miss(cycle, thread, addr, ready_at)
    }
    fn on_sample(&mut self, sample: &OccupancySample) {
        (**self).on_sample(sample)
    }
    fn on_cycle_state(&mut self, state: &CycleState<'_>) {
        (**self).on_cycle_state(state)
    }
    fn on_quiescent_span(&mut self, state: &CycleState<'_>, span: u64) {
        (**self).on_quiescent_span(state, span)
    }
    fn on_warn_change(&mut self, cycle: u64, thread: usize, from: u8, to: u8) {
        (**self).on_warn_change(cycle, thread, from, to)
    }
    fn on_policy_switch(&mut self, cycle: u64, from: &'static str, to: &'static str) {
        (**self).on_policy_switch(cycle, from, to)
    }
    fn save_state(&self, out: &mut Vec<u8>) {
        (**self).save_state(out)
    }
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        (**self).load_state(bytes)
    }
}
