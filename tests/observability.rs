//! Integration tests for the observability layer: the probe's view of a
//! simulation must agree with the simulator's own statistics, event streams
//! must be well-formed (gates balance, miss lifetimes nest), and the
//! pipeline invariants must hold at sample points while a probe is active.

use dwarn_smt::core::PolicyKind;
use dwarn_smt::obs::{EventKind, RecordingProbe};
use dwarn_smt::pipeline::{SimConfig, Simulator};
use dwarn_smt::workloads::{workload, WorkloadClass};

const MEASURE: u64 = 20_000;
const RING: usize = 1 << 20;

/// Run a workload under a recording probe with no warm-up, so the probe's
/// whole-run counters and the measured-window statistics cover the same
/// cycles.
fn traced_run(
    policy: PolicyKind,
    threads: usize,
    class: WorkloadClass,
) -> (dwarn_smt::pipeline::SimResult, RecordingProbe) {
    let wl = workload(threads, class);
    let specs = wl.thread_specs();
    let probe = RecordingProbe::new(specs.len(), RING);
    let mut sim = Simulator::with_probe(SimConfig::baseline(), policy.build(), &specs, probe);
    let result = sim.run(0, MEASURE);
    (result, sim.into_probe())
}

#[test]
fn probe_counters_agree_with_simulator_stats() {
    for policy in [PolicyKind::Icount, PolicyKind::DWarn, PolicyKind::Flush] {
        let (result, probe) = traced_run(policy, 4, WorkloadClass::Mix);
        assert_eq!(probe.ring().dropped(), 0, "ring must not drop in this test");
        for (t, s) in result.threads.iter().enumerate() {
            let c = probe.thread(t);
            assert_eq!(c.committed, s.committed, "{policy:?} t{t} committed");
            assert_eq!(c.fetched, s.fetched, "{policy:?} t{t} fetched");
            assert_eq!(
                c.wrong_path_fetched, s.wrong_path_fetched,
                "{policy:?} t{t} wrong-path fetched"
            );
            assert_eq!(
                c.squashed_mispredict, s.squashed_mispredict,
                "{policy:?} t{t} mispredict squashes"
            );
            assert_eq!(
                c.squashed_flush, s.squashed_flush,
                "{policy:?} t{t} flush squashes"
            );
        }
        // The run must have actually exercised the machinery.
        assert!(result.threads.iter().any(|s| s.committed > 0));
    }
}

#[test]
fn commit_events_match_committed_counts_in_detail_mode() {
    let wl = workload(2, WorkloadClass::Mix);
    let specs = wl.thread_specs();
    let probe = RecordingProbe::new(specs.len(), RING).with_detail(true);
    let mut sim = Simulator::with_probe(
        SimConfig::baseline(),
        PolicyKind::DWarn.build(),
        &specs,
        probe,
    );
    let result = sim.run(0, 5_000);
    let probe = sim.into_probe();
    assert_eq!(probe.ring().dropped(), 0);
    let mut commits = vec![0u64; result.threads.len()];
    for ev in probe.ring().iter() {
        if matches!(ev.kind, EventKind::Commit { .. }) {
            commits[ev.thread] += 1;
        }
    }
    for (t, s) in result.threads.iter().enumerate() {
        assert_eq!(commits[t], s.committed, "commit events vs. stats, t{t}");
    }
}

#[test]
fn gate_and_ungate_events_balance() {
    // MEM workloads under DWarn/FLUSH gate aggressively; every gate must be
    // either closed by an ungate or still open when the run ends.
    for policy in [PolicyKind::DWarn, PolicyKind::Stall, PolicyKind::Icount] {
        let (_, probe) = traced_run(policy, 4, WorkloadClass::Mem);
        for t in 0..probe.num_threads() {
            let c = probe.thread(t);
            assert!(
                c.gates == c.ungates || c.gates == c.ungates + 1,
                "{policy:?} t{t}: {} gates vs {} ungates",
                c.gates,
                c.ungates
            );
        }
        // Event stream alternates per thread: never two gates (or two
        // ungates) in a row.
        let mut open = vec![false; probe.num_threads()];
        for ev in probe.ring().iter() {
            match ev.kind {
                EventKind::Gate { .. } => {
                    assert!(!open[ev.thread], "{policy:?}: gate while gated");
                    open[ev.thread] = true;
                }
                EventKind::Ungate { .. } => {
                    assert!(open[ev.thread], "{policy:?}: ungate while not gated");
                    open[ev.thread] = false;
                }
                _ => {}
            }
        }
    }
}

#[test]
fn l1_miss_lifetimes_nest() {
    let (result, probe) = traced_run(PolicyKind::DWarn, 4, WorkloadClass::Mem);
    let mut open = std::collections::HashSet::new();
    let mut begins = 0u64;
    let mut ends = 0u64;
    for ev in probe.ring().iter() {
        match ev.kind {
            EventKind::L1MissBegin { load_id, .. } => {
                assert!(open.insert(load_id), "duplicate begin for load {load_id}");
                begins += 1;
            }
            EventKind::L1MissEnd { load_id } => {
                assert!(
                    open.remove(&load_id),
                    "end without begin for load {load_id}"
                );
                ends += 1;
            }
            // A squash may close an open miss (the fill never arrives).
            EventKind::Squash { seq, .. } => {
                open.remove(&seq);
            }
            _ => {}
        }
    }
    assert!(begins > 0, "a MEM workload must miss in L1");
    assert!(ends <= begins);
    // Whatever is still open at the end is exactly what the probe tracks.
    assert_eq!(open.len(), probe.open_l1_misses());
    // The hierarchy's statistics exclude wrong-path accesses; the probe
    // sees every access (the hardware cannot tell them apart), so its
    // begin count bounds the architectural miss count from above.
    let total_misses: u64 = result.mem.iter().map(|m| m.l1_misses).sum();
    assert!(
        begins >= total_misses,
        "probe begins ({begins}) vs. architectural L1 misses ({total_misses})"
    );
}

#[test]
fn pipeline_invariants_hold_at_sample_points_under_probe() {
    let wl = workload(4, WorkloadClass::Mix);
    let specs = wl.thread_specs();
    let probe = RecordingProbe::new(specs.len(), RING);
    let mut sim = Simulator::with_probe(
        SimConfig::baseline(),
        PolicyKind::DWarn.build(),
        &specs,
        probe,
    );
    for _ in 0..100 {
        for _ in 0..100 {
            sim.step();
        }
        sim.check_invariants();
    }
}

#[test]
fn occupancy_samples_arrive_on_schedule() {
    let wl = workload(4, WorkloadClass::Mix);
    let specs = wl.thread_specs();
    let probe = RecordingProbe::new(specs.len(), RING);
    let mut sim = Simulator::with_probe(
        SimConfig::baseline(),
        PolicyKind::DWarn.build(),
        &specs,
        probe,
    );
    let (result, occ) = sim.run_sampled(1_000, 10_000, 25);
    let probe = sim.into_probe();
    assert_eq!(probe.samples().len(), 400, "10_000 cycles / 25 per sample");
    assert_eq!(occ.samples, 400);
    assert_eq!(result.cycles, 10_000);
    for s in probe.samples() {
        assert_eq!(s.rob.len(), 4);
        assert_eq!(s.iq_per_thread.len(), 4);
    }
    // Samples are strictly ordered in time.
    for w in probe.samples().windows(2) {
        assert!(w[0].cycle < w[1].cycle);
    }
}

#[test]
fn chrome_export_of_a_real_run_is_wellformed() {
    let (_, probe) = traced_run(PolicyKind::Flush, 2, WorkloadClass::Mem);
    let names: Vec<String> = vec!["a".into(), "b".into()];
    let doc = dwarn_smt::obs::chrome_trace(probe.ring(), probe.samples(), &names);
    assert!(doc.starts_with("{\"traceEvents\":["));
    assert!(doc.contains("\"ph\":\"M\""));
    // Balanced braces/brackets is a cheap well-formedness proxy without a
    // JSON parser dependency; strings in the trace contain no braces.
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    assert_eq!(opens, closes);
    assert_eq!(doc.matches('[').count(), doc.matches(']').count());
}
