//! The paper's §2.1 classification of long-latency-load fetch policies:
//! every policy is a (detection moment, response action) pair — Table 1.

/// Detection moment (DM): when the policy learns (or guesses) that a load
/// will miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionMoment {
    /// At fetch, via a predictor (fast but unreliable): PDG, DC-PRED.
    Fetch,
    /// When the L1 data-cache outcome is known (reliable *and* early —
    /// every L2 miss is first an L1 miss): DG, DWarn.
    L1,
    /// X cycles after the load issues — the load has spent longer in the
    /// hierarchy than an L2 access needs: STALL, FLUSH.
    XCyclesAfterIssue,
    /// When the L2 miss is certain (fully reliable, far too late).
    L2,
}

/// Response action (RA): what the policy does about the delinquent thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseAction {
    /// Fetch-stall the thread: DG, PDG, STALL.
    Gate,
    /// Squash the thread's instructions after the load and stall: FLUSH.
    Squash,
    /// Cap the resources the thread may allocate: DC-PRED.
    LimitResources,
    /// Reduce the thread's fetch priority (the paper's novel RA): DWarn.
    ReducePriority,
}

/// A cell of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    pub dm: DetectionMoment,
    pub ra: ResponseAction,
}

impl Classification {
    pub const fn new(dm: DetectionMoment, ra: ResponseAction) -> Classification {
        Classification { dm, ra }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_cells_are_distinct() {
        // Each policy in Table 1 occupies a distinct (DM, RA) cell.
        let cells = [
            Classification::new(DetectionMoment::Fetch, ResponseAction::Gate), // PDG
            Classification::new(DetectionMoment::L1, ResponseAction::Gate),    // DG
            Classification::new(DetectionMoment::XCyclesAfterIssue, ResponseAction::Gate), // STALL
            Classification::new(DetectionMoment::XCyclesAfterIssue, ResponseAction::Squash), // FLUSH
            Classification::new(DetectionMoment::Fetch, ResponseAction::LimitResources), // DC-PRED
            Classification::new(DetectionMoment::L1, ResponseAction::ReducePriority),    // DWarn
        ];
        for (i, a) in cells.iter().enumerate() {
            for b in &cells[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
