//! Deterministic pseudo-random number generation.
//!
//! The simulator needs bit-for-bit reproducible runs (same seed → same trace →
//! same cycle counts) that do not drift across versions of an external crate,
//! so we implement the well-known splitmix64 / xoshiro256** generators here.
//! Both are tested against the reference vectors published by their authors.

/// splitmix64 step: used to expand a single `u64` seed into a full
/// xoshiro256** state, and usable as a tiny standalone generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — a small, fast, high-quality PRNG (Blackman & Vigna).
///
/// All stochastic decisions in the trace generator draw from this type, so a
/// `(profile, seed)` pair fully determines a benchmark's instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed via splitmix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child generator; used to give each static
    /// program / dynamic stream / address pool its own stream.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`. Uses Lemire's multiply-shift rejection method,
    /// so the distribution is exactly uniform.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick an index according to a slice of non-negative weights.
    /// Panics if the weights sum to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Geometric-ish draw in `[1, max]`: returns small values most often.
    /// Used for register dependency distances.
    pub fn geometric(&mut self, p: f64, max: u64) -> u64 {
        debug_assert!((0.0..1.0).contains(&p));
        let mut v = 1;
        while v < max && self.chance(p) {
            v += 1;
        }
        v
    }

    /// The raw xoshiro256** state, for machine snapshots. Together with
    /// [`Rng::from_state`] this round-trips the generator exactly: a
    /// restored stream continues with precisely the draws the original
    /// would have produced.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a previously captured [`Rng::state`].
    pub fn from_state(s: [u64; 4]) -> Rng {
        Rng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vectors() {
        // Reference output for seed 1234567 from the canonical C implementation.
        let mut s = 1234567u64;
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(splitmix64(&mut s), e);
        }
    }

    #[test]
    fn xoshiro_reference_vectors() {
        // State {1,2,3,4}: first outputs of xoshiro256** from the reference
        // implementation.
        let mut r = Rng { s: [1, 2, 3, 4] };
        let expected = [
            11520u64,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
            16172922978634559625,
        ];
        for &e in &expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_endpoints() {
        let mut r = Rng::new(9);
        let mut saw_lo = false;
        for _ in 0..1000 {
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
            saw_lo |= v == 5;
        }
        assert!(saw_lo, "lower endpoint should be reachable");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(13);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng::new(17);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::new(19);
        for _ in 0..1000 {
            let i = r.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_is_roughly_proportional() {
        let mut r = Rng::new(23);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[r.weighted(&[1.0, 2.0, 3.0])] += 1;
        }
        let total = 60_000f64;
        assert!((counts[0] as f64 / total - 1.0 / 6.0).abs() < 0.02);
        assert!((counts[1] as f64 / total - 2.0 / 6.0).abs() < 0.02);
        assert!((counts[2] as f64 / total - 3.0 / 6.0).abs() < 0.02);
    }

    #[test]
    fn geometric_bounds() {
        let mut r = Rng::new(29);
        for _ in 0..1000 {
            let v = r.geometric(0.5, 8);
            assert!((1..=8).contains(&v));
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut a = Rng::new(31);
        let mut b = a.fork();
        // The parent and child should not be emitting the same stream.
        let pa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let pb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(pa, pb);
    }
}
