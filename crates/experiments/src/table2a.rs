//! Table 2(a): cache behaviour of the isolated benchmarks.
//!
//! Runs each of the 12 benchmarks alone on the baseline configuration under
//! ICOUNT and reports L1/L2 miss rates with respect to dynamic loads, next
//! to the paper's measured values — this validates the trace-generation
//! calibration against the real cache model.

use smt_metrics::table::TextTable;
use smt_trace::all_benchmarks;

use crate::paper;
use crate::runner::{Arch, Campaign, RunKey};

/// One benchmark's measured-vs-paper cache behaviour.
#[derive(Debug, Clone)]
pub struct Table2aRow {
    pub name: &'static str,
    pub class: &'static str,
    pub l1_pct: f64,
    pub l2_pct: f64,
    pub ratio_pct: f64,
    pub paper_l1_pct: f64,
    pub paper_l2_pct: f64,
    pub paper_ratio_pct: f64,
}

/// Run the experiment.
pub fn compute(campaign: &Campaign) -> Vec<Table2aRow> {
    let keys: Vec<RunKey> = all_benchmarks()
        .iter()
        .map(|p| RunKey::solo(Arch::Baseline, p.name))
        .collect();
    campaign.prefetch(&keys);

    all_benchmarks()
        .iter()
        .map(|p| {
            let r = campaign.result(&RunKey::solo(Arch::Baseline, p.name));
            let m = &r.mem[0];
            // A benchmark missing from the transcribed table renders as
            // NaN reference columns instead of aborting the report.
            let (paper_l1, paper_l2, paper_ratio) = paper::TABLE_2A
                .iter()
                .find(|row| row.0 == p.name)
                .map(|row| (row.1, row.2, row.3))
                .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
            Table2aRow {
                name: p.name,
                class: p.class.as_str(),
                l1_pct: 100.0 * m.l1_miss_rate(),
                l2_pct: 100.0 * m.l2_miss_rate(),
                ratio_pct: 100.0 * m.l1_to_l2_ratio(),
                paper_l1_pct: paper_l1,
                paper_l2_pct: paper_l2,
                paper_ratio_pct: paper_ratio,
            }
        })
        .collect()
}

/// Render the paper-style report.
pub fn report(rows: &[Table2aRow]) -> String {
    let mut t = TextTable::new(vec![
        "bench",
        "class",
        "L1 %",
        "(paper)",
        "L2 %",
        "(paper)",
        "L1→L2 %",
        "(paper)",
    ]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            r.class.to_string(),
            format!("{:.1}", r.l1_pct),
            format!("{:.1}", r.paper_l1_pct),
            format!("{:.2}", r.l2_pct),
            format!("{:.2}", r.paper_l2_pct),
            format!("{:.0}", r.ratio_pct),
            format!("{:.0}", r.paper_ratio_pct),
        ]);
    }
    format!(
        "Table 2(a) — cache behaviour of isolated benchmarks\n\
         (miss rates w.r.t. dynamic loads; single-threaded, baseline config)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExpParams;

    #[test]
    fn reproduces_table_2a_shape() {
        let c = Campaign::new(ExpParams {
            warmup: 5_000,
            measure: 20_000,
        });
        let rows = compute(&c);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            // L1 rate within 1.5 percentage points or 40% relative.
            let l1_ok = (r.l1_pct - r.paper_l1_pct).abs() < 1.5
                || (r.l1_pct / r.paper_l1_pct - 1.0).abs() < 0.4;
            assert!(
                l1_ok,
                "{}: L1 {} vs paper {}",
                r.name, r.l1_pct, r.paper_l1_pct
            );
        }
        // mcf must dominate the L2 column, eon must be at the bottom.
        let mcf = rows.iter().find(|r| r.name == "mcf").unwrap();
        assert!(mcf.l2_pct > 20.0);
        let eon = rows.iter().find(|r| r.name == "eon").unwrap();
        assert!(eon.l2_pct < 0.2);
        // Classification boundary: every MEM benchmark above 1% L2 at least
        // approximately.
        for r in rows.iter().filter(|r| r.class == "MEM") {
            assert!(r.l2_pct > 0.6, "{}: {}", r.name, r.l2_pct);
        }
    }

    #[test]
    fn report_renders_all_rows() {
        let c = Campaign::new(ExpParams {
            warmup: 1_000,
            measure: 4_000,
        });
        let rows = compute(&c);
        let s = report(&rows);
        for r in &rows {
            assert!(s.contains(r.name));
        }
    }
}
