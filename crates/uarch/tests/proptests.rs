//! Property-based tests for the microarchitectural substrate: cache
//! residency/LRU laws, TLB behaviour, hierarchy timing monotonicity,
//! predictor table safety, and resource-pool conservation — over arbitrary
//! access sequences.

use proptest::prelude::*;
use smt_uarch::{
    Cache, CacheConfig, FuKind, FuPools, IqKind, IssueQueues, MemHierarchy, MemTiming, RegPool,
    Tlb, TlbConfig,
};

fn tiny_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 2048,
        ways: 2,
        line_bytes: 64,
        banks: 2,
        latency: 1,
    })
}

fn hierarchy() -> MemHierarchy {
    MemHierarchy::new(
        CacheConfig::paper_l1(),
        CacheConfig::paper_l1(),
        CacheConfig::paper_l2(),
        TlbConfig::default_dtlb(),
        MemTiming::paper_baseline(),
        2,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An MRU line survives a single conflicting fill in a 2-way set.
    #[test]
    fn mru_line_survives_one_conflict(set in 0u64..16, tag_a in 0u64..64, tag_b in 0u64..64, tag_c in 0u64..64) {
        prop_assume!(tag_a != tag_b && tag_b != tag_c && tag_a != tag_c);
        let mut c = Cache::new(CacheConfig {
            size_bytes: 2048, ways: 2, line_bytes: 64, banks: 2, latency: 1,
        });
        let sets = 16u64;
        let addr = |tag: u64| (tag * sets + set) * 64;
        c.fill(addr(tag_a));
        c.fill(addr(tag_b));
        let _ = c.access(addr(tag_a)); // a is MRU
        c.fill(addr(tag_c)); // must evict b
        prop_assert!(c.probe(addr(tag_a)));
        prop_assert!(!c.probe(addr(tag_b)));
    }

    /// Residency never exceeds capacity and hits never lie: a probe hit
    /// means a subsequent access hits too.
    #[test]
    fn cache_laws(addrs in prop::collection::vec(0u64..1u64<<16, 1..200)) {
        let mut c = tiny_cache();
        for &a in &addrs {
            let probed = c.probe(a);
            let hit = c.access(a);
            prop_assert_eq!(probed, hit, "probe and access must agree");
            if !hit {
                c.fill(a);
            }
            prop_assert!(c.resident_lines() <= 32);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.misses <= s.accesses);
    }

    /// TLB: LRU, capacity-bounded, and same-page accesses always hit after
    /// the first touch when capacity is not exceeded in between.
    #[test]
    fn tlb_same_page_hits(pages in prop::collection::vec(0u64..8, 2..100)) {
        let mut t = Tlb::new(TlbConfig { entries: 16, page_bytes: 4096 });
        let mut touched = std::collections::HashSet::new();
        for &p in &pages {
            let hit = t.access(p * 4096 + (p % 7) * 16);
            // 8 distinct pages < 16 entries: after first touch, always hit.
            prop_assert_eq!(hit, touched.contains(&p));
            touched.insert(p);
        }
    }

    /// Hierarchy timing is sane for arbitrary loads: completion is in the
    /// future, an L2 miss implies an L1 miss, and latency classes order as
    /// hit < L2 hit < memory.
    #[test]
    fn hierarchy_timing_monotone(addrs in prop::collection::vec(0u64..1u64<<30, 1..100), t0 in 0u64..1000) {
        let mut h = hierarchy();
        let mut now = t0;
        for &a in &addrs {
            let acc = h.load(0, a, now, false);
            prop_assert!(acc.complete_at > now);
            if acc.l2_miss {
                prop_assert!(acc.l1_miss, "inclusive hierarchy");
            }
            let latency = acc.complete_at - now;
            let floor = if acc.tlb_miss { 160 } else { 0 };
            if !acc.l1_miss {
                prop_assert!(latency >= 1 + floor);
            } else if !acc.l2_miss {
                prop_assert!(latency >= 1 + floor, "coalesced misses can be short");
            } else {
                prop_assert!(latency >= 111 + floor, "memory misses pay full latency: {latency}");
            }
            now += 7;
        }
    }

    /// The memory-bus model serializes: k simultaneous L2 misses to distinct
    /// lines complete at least bus-occupancy apart.
    #[test]
    fn bus_serializes_misses(k in 2usize..8) {
        let mut h = hierarchy();
        // Distinct cold lines, all requested at the same cycle; pages
        // pre-touched so TLB penalties don't mask bus spacing.
        for i in 0..k {
            let _ = h.load(0, 0x2000_0000 + (i as u64) * 8192, 0, false);
        }
        let mut completes: Vec<u64> = (0..k)
            .map(|i| {
                h.load(0, 0x2000_0000 + (i as u64) * 8192 + 64, 1000, false)
                    .complete_at
            })
            .collect();
        completes.sort_unstable();
        for w in completes.windows(2) {
            prop_assert!(w[1] - w[0] >= MemTiming::paper_baseline().mem_bus_cycles);
        }
    }

    /// Register pools conserve: allocations minus releases equals occupancy,
    /// and free() + in_use() is constant.
    #[test]
    fn reg_pool_conservation(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut p = RegPool::new(64, 16);
        let budget = 64 - 16;
        let mut held = 0u32;
        for alloc in ops {
            if alloc {
                if p.alloc() {
                    held += 1;
                }
            } else if held > 0 {
                p.release();
                held -= 1;
            }
            prop_assert_eq!(p.in_use(), held);
            prop_assert_eq!(p.free() + p.in_use(), budget);
            prop_assert!(held <= budget);
        }
    }

    /// Issue queues conserve per kind.
    #[test]
    fn issue_queue_conservation(ops in prop::collection::vec((0usize..3, any::<bool>()), 1..200)) {
        let mut q = IssueQueues::new(8, 4, 6);
        let kinds = [IqKind::Int, IqKind::Fp, IqKind::LdSt];
        let caps = [8u32, 4, 6];
        let mut held = [0u32; 3];
        for (k, alloc) in ops {
            if alloc {
                if q.alloc(kinds[k]) {
                    held[k] += 1;
                }
            } else if held[k] > 0 {
                q.release(kinds[k]);
                held[k] -= 1;
            }
            for i in 0..3 {
                prop_assert_eq!(q.used(kinds[i]), held[i]);
                prop_assert!(held[i] <= caps[i]);
            }
            prop_assert_eq!(q.total_used(), held.iter().sum::<u32>());
        }
    }

    /// FU pools never exceed per-cycle bandwidth and fully reset each cycle.
    #[test]
    fn fu_bandwidth_resets(cycles in 1usize..20, tries in 1u32..12) {
        let mut fu = FuPools::new(3, 2, 2);
        for _ in 0..cycles {
            fu.new_cycle();
            let mut granted = 0;
            for _ in 0..tries {
                if fu.issue(FuKind::Int) {
                    granted += 1;
                }
            }
            prop_assert_eq!(granted, tries.min(3));
        }
    }
}
