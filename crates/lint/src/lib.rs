//! # smt-lint — the workspace's determinism and robustness lint
//!
//! An offline static-analysis pass over this repository's *own* sources,
//! enforcing syntactically the policies the simulator's bit-identical
//! determinism and the campaign's fault tolerance rely on:
//!
//! | Code | Rule | Scope |
//! |---|---|---|
//! | `SMT001` | no default-hasher `HashMap`/`HashSet` (use `FastMap`) | pipeline, uarch, core |
//! | `SMT002` | no `Instant::now` / `SystemTime` | everywhere but `bench` |
//! | `SMT003` | no `unwrap()` / `expect()` / `panic!` | experiments, trace (not chaos) |
//! | `SMT004` | no float `==` / `!=` | metrics |
//! | `SMT005` | no stale allowlist entries | the allowlist itself |
//! | `SMT006` | cycle counter written only in `advance_clock` | pipeline |
//! | `SMT007` | observability hooks behind `const ENABLED` (lexical) | pipeline |
//! | `SMT008` | snapshot fields captured *and* restored | pipeline, uarch |
//! | `SMT009` | `PolicyKind` dispatch exhaustive; policy contracts explicit | cross-file |
//! | `SMT010` | every `INVxxx` invariant tested and documented | cross-file |
//! | `SMT011` | hooks structurally dominated by `ENABLED` (token-tree) | pipeline |
//! | `SMT012` | exit codes match the documented 0–5 contract | experiments, docs |
//! | `SMT013` | fragment-stitch merges cover every stats/series field | pipeline, obs |
//!
//! `#[cfg(test)]` modules, `tests/`, `benches/` and `examples/` trees are
//! exempt throughout: the rules guard production paths.
//!
//! SMT001–SMT007 are *local* rules: token scans over one masked file
//! ([`lexer::mask_source`] → [`rules::scan_file`]). SMT008–SMT013 are
//! *cross-file* rules: every file is parsed into balanced-delimiter token
//! trees ([`tokens`]) and distilled into a structural [`model::FileModel`]
//! (struct fields, enum variants, fns with mention sets, match arms,
//! consts, strings, hook-call gating); [`xrules::scan_workspace`] then
//! checks coverage invariants across the whole workspace model plus the
//! documentation files. Per-file models and local diagnostics are cached
//! by content hash ([`cache`]), so warm runs re-analyze only edited files
//! while cross-file rules always see the full, current model.
//!
//! Intentional exceptions live in `lint.allow` at the repository root,
//! one per line with a mandatory justification (`CODE path  why`, or
//! item-granular `CODE path#Type::field  why` for the cross-file rules);
//! an entry that stops matching anything becomes an `SMT005` error so the
//! list can only shrink. Run it as `cargo run -p smt-lint` or
//! `smt-experiments lint`; CI runs it as the "Static analysis" gate. The
//! implementation is dependency-free, including its JSON reader/writer
//! ([`json`]) for the cache and `--json` diagnostics.

pub mod allow;
pub mod cache;
pub mod json;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod tokens;
pub mod xrules;

pub use allow::{apply, parse_allowlist, AllowEntry, Report};
pub use rules::{scan_file, Diagnostic, RuleCode};

use std::path::{Path, PathBuf};

/// The allowlist's canonical location, relative to the workspace root.
pub const ALLOWLIST_NAME: &str = "lint.allow";

/// Every `.rs` production source in the workspace: `crates/*/src/**/*.rs`,
/// excluding `tests/`, `benches/` and `examples/` trees. Sorted, so runs
/// are deterministic.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !matches!(name, "tests" | "benches" | "examples") {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative, `/`-separated rendering of `path` under `root`.
fn rel(root: &Path, path: &Path) -> String {
    let r = path.strip_prefix(root).unwrap_or(path);
    r.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Auxiliary sources the cross-file rules consult (integration tests that
/// are not linted locally but whose *contents* are coverage evidence).
const AUX_SOURCES: [&str; 1] = ["crates/pipeline/tests/sanitizer.rs"];

/// Documentation files the cross-file rules consult.
const DOC_SOURCES: [&str; 3] = ["DESIGN.md", "README.md", "EXPERIMENTS.md"];

/// Scan the whole workspace and apply the allowlist at `root/lint.allow`
/// (an absent allowlist means "no exceptions"). Purely in-memory: no
/// cache file is read or written. `Err` carries usage-level failures:
/// unreadable files, malformed allowlist.
pub fn run(root: &Path) -> Result<Report, String> {
    run_with_cache(root, None)
}

/// [`run`], optionally with an incremental cache file: per-file models and
/// local diagnostics are reused when the file's content hash is unchanged,
/// and the cache is rewritten after the scan. Cross-file rules always
/// recompute over the (cached or fresh) models, so cached and cold runs
/// produce identical diagnostics.
pub fn run_with_cache(root: &Path, cache_path: Option<&Path>) -> Result<Report, String> {
    let allow_path = root.join(ALLOWLIST_NAME);
    let entries = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        parse_allowlist(&text).map_err(|errs| errs.join("\n"))?
    } else {
        Vec::new()
    };
    let files = workspace_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!("no sources under {}/crates", root.display()));
    }
    let mut cache = cache_path.map(cache::Cache::load).unwrap_or_default();
    let mut diags = Vec::new();
    let mut models = Vec::with_capacity(files.len());
    for f in &files {
        let path = rel(root, f);
        let src =
            std::fs::read_to_string(f).map_err(|e| format!("reading {}: {e}", f.display()))?;
        let hash = cache::fnv1a(src.as_bytes());
        let (m, local) = match cache.lookup(&path, hash) {
            Some(hit) => hit,
            None => {
                let m = model::extract(&src);
                let local = scan_file(&path, &src);
                cache.insert(&path, hash, m.clone(), local.clone());
                (m, local)
            }
        };
        diags.extend(local);
        models.push((path, m));
    }
    let mut aux = Vec::new();
    for a in AUX_SOURCES {
        let p = root.join(a);
        if let Ok(src) = std::fs::read_to_string(&p) {
            aux.push((a.to_string(), model::extract(&src)));
        }
    }
    let mut docs = Vec::new();
    for d in DOC_SOURCES {
        if let Ok(text) = std::fs::read_to_string(root.join(d)) {
            docs.push((d.to_string(), text));
        }
    }
    let ws = xrules::Workspace {
        files: models,
        aux,
        docs,
    };
    diags.extend(xrules::scan_workspace(&ws));
    let mut report = apply(diags, &entries, ALLOWLIST_NAME);
    report.files = files.len();
    if let Some(cp) = cache_path {
        report.cache_hits = cache.hits;
        report.cache_misses = cache.misses;
        cache
            .store(cp)
            .map_err(|e| format!("writing cache {}: {e}", cp.display()))?;
    }
    Ok(report)
}

/// Machine-readable report: one object with every diagnostic (active and
/// suppressed), for CI annotation and artifact upload.
pub fn render_json(report: &Report) -> String {
    let mut diags: Vec<json::Value> = Vec::new();
    for (d, allowed) in report
        .active
        .iter()
        .map(|d| (d, false))
        .chain(report.suppressed.iter().map(|d| (d, true)))
    {
        let mut v = cache::diag_to_value(d);
        if let json::Value::Obj(m) = &mut v {
            m.insert("allowlisted".to_string(), json::Value::Bool(allowed));
        }
        diags.push(v);
    }
    json::Value::obj(vec![
        ("version", json::Value::Int(1)),
        ("clean", json::Value::Bool(report.is_clean())),
        ("files", json::Value::Int(report.files as i64)),
        ("cache_hits", json::Value::Int(report.cache_hits as i64)),
        ("cache_misses", json::Value::Int(report.cache_misses as i64)),
        ("diagnostics", json::Value::Arr(diags)),
    ])
    .render()
}

/// Walk upward from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Human-readable report; `verbose` also lists suppressed diagnostics
/// with the allowlist reasons they matched.
pub fn render(report: &Report, verbose: bool) -> String {
    let mut s = String::new();
    for d in &report.active {
        s.push_str(&format!("{d}\n"));
    }
    if verbose && !report.suppressed.is_empty() {
        s.push_str(&format!(
            "\n{} diagnostic(s) suppressed by {}:\n",
            report.suppressed.len(),
            ALLOWLIST_NAME
        ));
        for d in &report.suppressed {
            s.push_str(&format!("  [allowed] {}:{} {}\n", d.path, d.line, d.code));
        }
    }
    s.push_str(&format!(
        "{} file(s) scanned: {} violation(s), {} suppressed\n",
        report.files,
        report.active.len(),
        report.suppressed.len()
    ));
    if report.cache_hits + report.cache_misses > 0 {
        s.push_str(&format!(
            "cache: {} unchanged, {} re-analyzed\n",
            report.cache_hits, report.cache_misses
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }

    #[test]
    fn source_walk_skips_test_trees() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = workspace_sources(&root).expect("walk");
        assert!(files.iter().any(|f| f.ends_with("src/sim.rs")));
        assert!(!files.iter().any(|f| {
            f.components()
                .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "examples")
        }));
    }
}
