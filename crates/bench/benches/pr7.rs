//! Regression-gated selector-overhead baseline for the meta-policy layer:
//! emits `BENCH_PR7.json`.
//!
//! The gated number compares static DWarn against a *locked* composite
//! (`MetaPolicy::locked(DWarn)`): all the switching machinery runs —
//! boundary checks, commit-event accounting, the extra dispatch level —
//! but the selector never fires, so the two runs are bit-identical by
//! construction (the determinism suite pins this) and the rate ratio
//! isolates the composite's own cost on identical machine work. CI fails
//! the job when that ratio exceeds 1.05x.
//!
//! The three live selectors are also timed, but informationally: a
//! selector that switches to FLUSH buys different *machine* work
//! (squashes, refetches), so its wall-clock ratio measures the candidate
//! mix, not the composite — on some runs a meta-policy simulates faster
//! than static DWarn for exactly that reason.
//!
//! ```text
//! cargo bench -p smt-bench --bench pr7
//! ```

use std::path::{Path, PathBuf};
use std::time::Instant;

use dwarn_core::{MetaPolicy, PolicyKind};
use smt_bench::black_box;
use smt_obs::Json;
use smt_pipeline::{FetchPolicy, SimConfig, Simulator};
use smt_workloads::{workload, WorkloadClass};

/// Cycles simulated per measured run. Longer than pr6's micro-runs: the
/// gated ratio sits within a few percent of its bound, so each trial
/// needs enough wall time (~100 ms) to keep scheduler noise out of it.
const MICRO_CYCLES: u64 = 60_000;
/// Timed repetitions; the best rate is reported (noise rejection — the
/// CI gate compares a *ratio* of rates, and the 1.05x bound is tight
/// enough that best-of-3 still flaps on a loaded machine).
const TRIALS: usize = 5;

/// One timed run: wall seconds to simulate [`MICRO_CYCLES`] on 4-MIX
/// under the given policy. 4-MIX keeps every candidate busy without the
/// MEM classes' long quiescent spans dominating the wall clock.
fn timed_run(policy: Box<dyn FetchPolicy>) -> f64 {
    let wl = workload(4, WorkloadClass::Mix);
    let mut sim = Simulator::new(SimConfig::baseline(), policy, &wl.thread_specs());
    let t0 = Instant::now();
    black_box(sim.run(0, MICRO_CYCLES));
    t0.elapsed().as_secs_f64()
}

/// Best-of-N simulator cycles per wall-clock second under the policy.
fn rate(mut build: impl FnMut() -> Box<dyn FetchPolicy>) -> f64 {
    let mut best = 0.0f64;
    for trial in 0..=TRIALS {
        let elapsed = timed_run(build());
        if trial > 0 {
            // Trial 0 is an untimed warm-up.
            best = best.max(MICRO_CYCLES as f64 / elapsed);
        }
    }
    best
}

/// The gated ratio, measured as *paired* back-to-back trials: each trial
/// times the static baseline and the locked composite adjacently and the
/// minimum per-pair ratio is kept. Independent best-of-N rates still flap
/// past 1.05x when CPU frequency drifts between the two measurement
/// blocks; pairing puts both sides of every ratio under the same drift.
fn paired_overhead(
    mut base: impl FnMut() -> Box<dyn FetchPolicy>,
    mut composite: impl FnMut() -> Box<dyn FetchPolicy>,
) -> f64 {
    let mut best = f64::INFINITY;
    for trial in 0..=TRIALS {
        let base_s = timed_run(base());
        let composite_s = timed_run(composite());
        if trial > 0 {
            // Trial 0 is an untimed warm-up.
            best = best.min(composite_s / base_s);
        }
    }
    best
}

fn main() {
    if let Some(filter) = std::env::args().skip(1).find(|a| !a.starts_with('-')) {
        if !"pr7".contains(filter.as_str()) {
            return;
        }
    }

    let static_rate = rate(|| PolicyKind::DWarn.build());
    let locked_rate = rate(|| Box::new(MetaPolicy::locked(PolicyKind::DWarn.build())));
    let overhead = paired_overhead(
        || PolicyKind::DWarn.build(),
        || Box::new(MetaPolicy::locked(PolicyKind::DWarn.build())),
    );
    eprintln!("cycles/sec DWARN (static)      {static_rate:>12.0}");
    eprintln!("cycles/sec META-LOCK(DWARN)    {locked_rate:>12.0}");
    eprintln!("composite overhead ratio       {overhead:>12.3}x (CI bound 1.05x)");

    let mut selector_rates = Vec::new();
    for kind in PolicyKind::meta_set() {
        let r = rate(|| kind.build());
        eprintln!(
            "cycles/sec {:<19} {r:>12.0}  ({:.3}x vs static, informational)",
            kind.name(),
            static_rate / r
        );
        selector_rates.push((
            kind.name().to_ascii_lowercase().replace('-', "_"),
            Json::F64(r),
        ));
    }

    let json = Json::obj(vec![
        ("bench", Json::str("pr7")),
        ("schema_version", Json::U64(1)),
        ("micro_cycles_per_run", Json::U64(MICRO_CYCLES)),
        ("trials", Json::U64(TRIALS as u64)),
        (
            "cycles_per_sec",
            Json::Obj(
                [
                    ("dwarn_static".to_string(), Json::F64(static_rate)),
                    ("meta_locked_dwarn".to_string(), Json::F64(locked_rate)),
                ]
                .into_iter()
                .chain(selector_rates)
                .collect(),
            ),
        ),
        ("composite_overhead_ratio", Json::F64(overhead)),
    ]);
    let repo_root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = repo_root.join("BENCH_PR7.json");
    std::fs::write(&out, json.render_pretty() + "\n").expect("write BENCH_PR7.json");
    eprintln!("wrote {}", out.display());
}
