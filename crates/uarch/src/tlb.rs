//! Data TLB model.
//!
//! One fully-associative, LRU DTLB per hardware context. A miss costs the
//! paper's 160-cycle penalty (Table 3) and — for the STALL and FLUSH
//! policies — also triggers the policy's long-latency response, as specified
//! in the paper's §5 implementation notes.

use smt_trace::snapio::{self, SnapError, SnapReader};

/// DTLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    pub entries: usize,
    pub page_bytes: u64,
}

impl TlbConfig {
    /// A typical early-2000s DTLB: 128 entries, 8 KB pages.
    pub fn default_dtlb() -> TlbConfig {
        TlbConfig {
            entries: 128,
            page_bytes: 8 * 1024,
        }
    }
}

/// Fully-associative, true-LRU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    page_shift: u32,
    /// (virtual page number, stamp); linear scan — entry counts are small.
    entries: Vec<(u64, u64)>,
    stamp: u64,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    pub fn new(cfg: TlbConfig) -> Tlb {
        assert!(cfg.page_bytes.is_power_of_two());
        assert!(cfg.entries >= 1);
        Tlb {
            page_shift: cfg.page_bytes.trailing_zeros(),
            entries: Vec::with_capacity(cfg.entries),
            stamp: 0,
            accesses: 0,
            misses: 0,
            cfg,
        }
    }

    /// Translate an address: returns `true` on a TLB hit. A miss installs
    /// the translation (the page walk is accounted by the caller via the
    /// configured penalty).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.stamp += 1;
        let vpn = addr >> self.page_shift;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            e.1 = self.stamp;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.cfg.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.stamp));
        false
    }

    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.cfg.page_bytes
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Serialize the evolving translation state. Entry order matters:
    /// `swap_remove` eviction makes behaviour depend on the vector layout,
    /// so entries are written in their exact in-memory order.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        snapio::put_usize(out, self.entries.len());
        for &(vpn, stamp) in &self.entries {
            snapio::put_u64(out, vpn);
            snapio::put_u64(out, stamp);
        }
        snapio::put_u64(out, self.stamp);
        snapio::put_u64(out, self.accesses);
        snapio::put_u64(out, self.misses);
    }

    /// Restore the state captured by [`Tlb::save_state`] into a TLB of the
    /// same configuration.
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.len_capped(self.cfg.entries)?;
        self.entries.clear();
        for _ in 0..n {
            let vpn = r.u64()?;
            let stamp = r.u64()?;
            self.entries.push((vpn, stamp));
        }
        self.stamp = r.u64()?;
        self.accesses = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
        })
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = tiny();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1000));
        assert!(t.access(0x1FFF), "same page");
        assert!(!t.access(0x2000), "next page");
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(0x1000); // A
        t.access(0x2000); // B
        t.access(0x1000); // A is MRU
        t.access(0x3000); // evicts B
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000), "B must have been evicted");
    }

    #[test]
    fn streaming_thrashes() {
        let mut t = tiny();
        for i in 0..100u64 {
            assert!(!t.access(i * 4096));
        }
        assert!((t.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counters() {
        let mut t = tiny();
        t.access(0);
        t.access(0);
        assert_eq!(t.accesses(), 2);
        assert_eq!(t.misses(), 1);
    }
}
