//! Experiment CLI: regenerate any table or figure of the paper.
//!
//! ```text
//! cargo run --release -p smt-experiments -- all
//! cargo run --release -p smt-experiments -- fig1 fig3 --quick
//! ```

use std::time::Instant;

use smt_experiments::{ablation, figures, table2a, table4, Campaign, ExpParams};

const USAGE: &str = "\
usage: smt-experiments [--quick] <experiment>...

experiments:
  table2a    cache behaviour of isolated benchmarks (Table 2a)
  fig1       throughput per policy + DWarn improvements (Figure 1)
  fig2       FLUSH squashed-instruction overhead (Figure 2)
  fig3       Hmean improvements (Figure 3)
  table4     relative IPCs in the 4-MIX workload (Table 4)
  fig4       small architecture, 1.4 fetch (Figure 4)
  fig5       deep 16-stage architecture (Figure 5)
  ablation   DG/declare-threshold/hybrid-rule sweeps (text of §3/§5)
  taxonomy   Table 1 evaluated: all 8 policies incl. DC-PRED (§2.1)
  extensions DWarn+FLUSH combination study (beyond the paper)
  all        everything above

  compare <POLICY>... [@WORKLOAD] [@ARCH]
             ad-hoc comparison, e.g.:  compare DWARN FLUSH @8-MEM @deep

flags:
  --quick    short simulation windows (smoke test)
";

fn compare(campaign: &Campaign, args: &[&str]) -> String {
    use smt_experiments::Arch;
    let mut policies = Vec::new();
    let mut workload = "4-MIX".to_string();
    let mut arch = Arch::Baseline;
    for a in args {
        if let Some(w) = a.strip_prefix('@') {
            match w {
                "small" => arch = Arch::Small,
                "deep" => arch = Arch::Deep,
                "baseline" => arch = Arch::Baseline,
                other => {
                    let known = ["2", "4", "6", "8"]
                        .iter()
                        .flat_map(|n| ["ILP", "MIX", "MEM"].iter().map(move |c| format!("{n}-{c}")))
                        .any(|name| name == other);
                    if !known {
                        eprintln!(
                            "unknown workload: {other} (Table 2b has 2/4/6/8-ILP/MIX/MEM)"
                        );
                        std::process::exit(2);
                    }
                    workload = other.to_string();
                }
            }
        } else if let Some(k) = dwarn_core::PolicyKind::parse(a) {
            policies.push(k);
        } else {
            eprintln!("unknown policy: {a}");
            std::process::exit(2);
        }
    }
    if policies.is_empty() {
        policies = dwarn_core::PolicyKind::paper_set().to_vec();
    }
    let mut t = smt_experiments::runner::comparison_table(campaign, arch, &workload, &policies);
    t.push('\n');
    t
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut exps: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if exps.first() == Some(&"compare") {
        let params = if quick { ExpParams::quick() } else { ExpParams::standard() };
        let campaign = Campaign::new(params);
        print!("{}", compare(&campaign, &exps[1..]));
        return;
    }
    if exps.is_empty() {
        eprint!("{USAGE}");
        std::process::exit(2);
    }
    if exps.contains(&"all") {
        exps = vec![
            "table2a", "fig1", "fig2", "fig3", "table4", "fig4", "fig5", "ablation",
            "taxonomy", "extensions",
        ];
    }

    let params = if quick {
        ExpParams::quick()
    } else {
        ExpParams::standard()
    };
    let campaign = Campaign::new(params);
    let t0 = Instant::now();

    for exp in exps {
        let started = Instant::now();
        let report = match exp {
            "table2a" => table2a::report(&table2a::compute(&campaign)),
            "fig1" => figures::fig1_report(&figures::baseline_grid(&campaign)),
            "fig2" => figures::fig2_report(&figures::fig2_compute(&campaign)),
            "fig3" => figures::fig3_report(&figures::baseline_grid(&campaign)),
            "table4" => table4::report(&table4::compute(&campaign)),
            "fig4" => figures::fig4_report(&figures::small_grid(&campaign)),
            "fig5" => figures::fig5_report(&figures::deep_grid(&campaign)),
            "ablation" => ablation::report(&params),
            "taxonomy" => smt_experiments::taxonomy::report(&campaign),
            "extensions" => smt_experiments::extensions::report(&params),
            other => {
                eprintln!("unknown experiment: {other}\n");
                eprint!("{USAGE}");
                std::process::exit(2);
            }
        };
        println!("{report}");
        println!(
            "[{} done in {:.1}s]\n",
            exp,
            started.elapsed().as_secs_f64()
        );
    }
    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
