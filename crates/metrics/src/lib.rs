//! # smt-metrics — SMT performance metrics
//!
//! The metrics the paper evaluates with (§5):
//!
//! * **throughput** — the sum of per-thread IPCs; measures resource use;
//! * **relative IPC** — a thread's SMT IPC divided by its single-threaded
//!   IPC on the same machine;
//! * **harmonic mean (Hmean)** of relative IPCs (Luo, Gummaraju & Franklin
//!   \[8\]) — the throughput/fairness-balancing metric the paper prefers;
//! * **weighted speedup** (arithmetic mean of relative IPCs), reported for
//!   completeness (\[11\] evaluates with it);
//! * **improvement** percentages as plotted in Figures 1(b), 3, 4, 5.

pub mod chart;
pub mod table;

/// Sum of per-thread IPCs.
pub fn throughput(ipcs: &[f64]) -> f64 {
    ipcs.iter().sum()
}

/// Per-thread relative IPCs: `smt_ipc / single_ipc`.
///
/// Panics if the slices differ in length or any single-threaded IPC is not
/// strictly positive.
pub fn relative_ipcs(smt_ipcs: &[f64], single_ipcs: &[f64]) -> Vec<f64> {
    assert_eq!(
        smt_ipcs.len(),
        single_ipcs.len(),
        "one single-threaded baseline per thread"
    );
    smt_ipcs
        .iter()
        .zip(single_ipcs)
        .map(|(&s, &b)| {
            assert!(b > 0.0, "single-threaded IPC must be positive");
            s / b
        })
        .collect()
}

/// Harmonic mean of the relative IPCs: `n / Σ(1/rel_i)`.
///
/// Returns 0 if any relative IPC is 0 (a fully starved thread drives the
/// harmonic mean to zero, which is the metric's point).
pub fn hmean(relative: &[f64]) -> f64 {
    assert!(!relative.is_empty());
    if relative.contains(&0.0) {
        return 0.0;
    }
    relative.len() as f64 / relative.iter().map(|r| 1.0 / r).sum::<f64>()
}

/// Weighted speedup: the arithmetic mean of relative IPCs.
pub fn weighted_speedup(relative: &[f64]) -> f64 {
    assert!(!relative.is_empty());
    relative.iter().sum::<f64>() / relative.len() as f64
}

/// Percentage improvement of `a` over `b`: `(a/b - 1) * 100`.
pub fn improvement_pct(a: f64, b: f64) -> f64 {
    assert!(b > 0.0, "cannot compute improvement over zero");
    (a / b - 1.0) * 100.0
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_sums() {
        assert!((throughput(&[1.5, 0.5, 1.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn relative_ipcs_divide_elementwise() {
        let r = relative_ipcs(&[1.0, 0.5], &[2.0, 2.0]);
        assert_eq!(r, vec![0.5, 0.25]);
    }

    #[test]
    #[should_panic(expected = "one single-threaded baseline per thread")]
    fn relative_ipcs_length_mismatch_panics() {
        let _ = relative_ipcs(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn hmean_of_equal_values_is_that_value() {
        assert!((hmean(&[0.5, 0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hmean_penalizes_imbalance_more_than_wspeedup() {
        // Same arithmetic mean, different balance.
        let balanced = [0.5, 0.5];
        let skewed = [0.9, 0.1];
        assert!((weighted_speedup(&balanced) - weighted_speedup(&skewed)).abs() < 1e-12);
        assert!(hmean(&skewed) < hmean(&balanced));
    }

    #[test]
    fn hmean_is_zero_when_a_thread_is_starved() {
        assert_eq!(hmean(&[0.9, 0.0]), 0.0);
    }

    #[test]
    fn hmean_never_exceeds_arithmetic_mean() {
        let cases: [&[f64]; 4] = [
            &[0.1, 0.9],
            &[0.33, 0.44, 0.55],
            &[1.0, 1.0],
            &[0.25, 0.5, 0.75, 1.0],
        ];
        for c in cases {
            assert!(hmean(c) <= weighted_speedup(c) + 1e-12, "{c:?}");
        }
    }

    #[test]
    fn improvement_pct_signs() {
        assert!((improvement_pct(1.2, 1.0) - 20.0).abs() < 1e-9);
        assert!((improvement_pct(0.9, 1.0) + 10.0).abs() < 1e-9);
        assert_eq!(improvement_pct(1.0, 1.0), 0.0);
    }

    #[test]
    fn table_4_reproduction_algebra() {
        // The paper's Table 4: DWARN row has relative IPCs
        // 0.44, 0.69, 0.43, 0.70 → Hmean 0.53.
        let dwarn = [0.44, 0.69, 0.43, 0.70];
        assert!((hmean(&dwarn) - 0.53).abs() < 0.01);
        // ICOUNT row: 0.36, 0.41, 0.50, 0.79 → 0.47.
        let icount = [0.36, 0.41, 0.50, 0.79];
        assert!((hmean(&icount) - 0.47).abs() < 0.01);
        // PDG row: 0.40, 0.72, 0.28, 0.31 → 0.38.
        let pdg = [0.40, 0.72, 0.28, 0.31];
        assert!((hmean(&pdg) - 0.38).abs() < 0.01);
    }
}
