//! Persistent, content-addressed campaign cache (`--cache-dir`).
//!
//! [`crate::runner::Campaign`] memoizes simulation results in memory, but
//! that memo dies with the process — every CLI invocation re-simulates the
//! full grid from scratch. This module extends the memo to disk: each
//! result is stored in one file named by the FNV-1a hash of a *canonical
//! key description* covering everything that determines the result:
//!
//! * the simulator code version ([`CODE_VERSION`] — bump it whenever a
//!   change alters simulation semantics; every stored entry then misses
//!   and is re-simulated, which is the cache's explicit invalidation story);
//! * the full `SimConfig` (via its `Debug` rendering, so ablation sweeps
//!   that perturb one field get distinct keys);
//! * the workload: every thread's benchmark name, trace seed, and skip;
//! * the fetch policy, including its parameters;
//! * the warm-up and measurement window lengths.
//!
//! The file format is a checksummed, versioned text format (the workspace
//! is dependency-free by design, so there is no serde). A reader treats
//! *any* irregularity — bad magic, failed checksum, truncation, parse
//! error, or a key collision — as a miss and re-simulates; a corrupt cache
//! can cost time but never wrong results. Floats are stored as bit
//! patterns, so a round-trip is bit-exact and digest-preserving.
//!
//! Writes go through a temporary file followed by an atomic rename, so a
//! crashed or concurrent writer never leaves a half-written entry under
//! the final name.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use smt_pipeline::{SimResult, ThreadStats};
use smt_uarch::ThreadMemStats;

/// Simulator-semantics version baked into every cache key.
///
/// Bump this whenever a code change alters simulation *results* (timing
/// model, policy behaviour, trace synthesis, …). Entries written under the
/// old version stop matching and are re-simulated; stale files are inert
/// and can be removed with `smt-experiments cache clear`.
pub const CODE_VERSION: u32 = 1;

/// First line of every cache file.
const MAGIC: &str = "dwarn-campaign-cache v1";

/// Cache entry file extension.
const EXT: &str = "dwc";

/// FNV-1a 64-bit over a byte string (the same hand-rolled construction as
/// `SimResult::digest`: stable across Rust releases, unlike
/// `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Aggregate numbers for `cache stats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Entry files present.
    pub entries: usize,
    /// Total bytes across entry files.
    pub bytes: u64,
}

/// Outcome of `cache verify`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheVerify {
    /// Entries that parsed and checksummed clean.
    pub ok: usize,
    /// Files that failed the magic/checksum/parse gauntlet.
    pub corrupt: Vec<PathBuf>,
}

/// An on-disk store of [`SimResult`]s keyed by canonical run descriptions.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: &Path) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        Ok(DiskCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this cache stores entries in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key_desc: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.{EXT}", fnv1a(key_desc.as_bytes())))
    }

    /// Look up a result. Any irregularity in the stored file — missing,
    /// corrupt, truncated, or a hash collision with a different key — is a
    /// miss.
    pub fn load(&self, key_desc: &str) -> Option<SimResult> {
        let text = std::fs::read_to_string(self.entry_path(key_desc)).ok()?;
        parse_entry(&text, Some(key_desc))
    }

    /// Store a result under its key description (atomic rename).
    pub fn store(&self, key_desc: &str, result: &SimResult) -> std::io::Result<()> {
        let path = self.entry_path(key_desc);
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(render_entry(key_desc, result).as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)
    }

    fn entry_files(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(EXT))
            .collect();
        files.sort();
        Ok(files)
    }

    /// Entry count and total size.
    pub fn stats(&self) -> std::io::Result<CacheStats> {
        let mut s = CacheStats::default();
        for p in self.entry_files()? {
            s.entries += 1;
            s.bytes += std::fs::metadata(&p)?.len();
        }
        Ok(s)
    }

    /// Remove every entry, returning how many were deleted. Only `.dwc`
    /// files are touched; anything else in the directory is left alone.
    pub fn clear(&self) -> std::io::Result<usize> {
        let files = self.entry_files()?;
        for p in &files {
            std::fs::remove_file(p)?;
        }
        Ok(files.len())
    }

    /// Integrity-check every entry (magic, checksum, full parse).
    pub fn verify(&self) -> std::io::Result<CacheVerify> {
        let mut v = CacheVerify::default();
        for p in self.entry_files()? {
            let ok = std::fs::read_to_string(&p)
                .ok()
                .and_then(|text| parse_entry(&text, None))
                .is_some();
            if ok {
                v.ok += 1;
            } else {
                v.corrupt.push(p);
            }
        }
        Ok(v)
    }
}

fn render_entry(key_desc: &str, r: &SimResult) -> String {
    debug_assert!(!key_desc.contains('\n'), "key descriptions are one line");
    let mut body = String::new();
    body.push_str(&format!("key {key_desc}\n"));
    body.push_str(&format!("cycles {}\n", r.cycles));
    body.push_str(&format!(
        "bp-rate {:016x}\n",
        r.branch_mispredict_rate.to_bits()
    ));
    body.push_str(&format!("threads {}\n", r.threads.len()));
    for t in &r.threads {
        body.push_str(&format!(
            "t {} {} {} {} {} {} {} {} {} {}\n",
            t.fetched,
            t.wrong_path_fetched,
            t.committed,
            t.squashed_mispredict,
            t.squashed_flush,
            t.gated_cycles,
            t.blocked_cycles,
            t.dispatch_stalls,
            t.branches,
            t.branch_mispredicts,
        ));
    }
    body.push_str(&format!("mem {}\n", r.mem.len()));
    for m in &r.mem {
        body.push_str(&format!(
            "m {} {} {} {}\n",
            m.loads, m.l1_misses, m.l2_misses, m.tlb_misses
        ));
    }
    body.push_str("end\n");
    format!("{MAGIC}\nchecksum {:016x}\n{body}", fnv1a(body.as_bytes()))
}

/// Strict parse of one entry; `expect_key` additionally guards against a
/// hash collision mapping a different run onto this file. `None` on any
/// deviation from the format.
fn parse_entry(text: &str, expect_key: Option<&str>) -> Option<SimResult> {
    let rest = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
    let (checksum_line, body) = rest.split_once('\n')?;
    let stored = u64::from_str_radix(checksum_line.strip_prefix("checksum ")?, 16).ok()?;
    if stored != fnv1a(body.as_bytes()) {
        return None;
    }

    let mut lines = body.lines();
    let key = lines.next()?.strip_prefix("key ")?;
    if let Some(expect) = expect_key {
        if key != expect {
            return None;
        }
    }
    let cycles: u64 = lines.next()?.strip_prefix("cycles ")?.parse().ok()?;
    let bp_bits = u64::from_str_radix(lines.next()?.strip_prefix("bp-rate ")?, 16).ok()?;

    let nthreads: usize = lines.next()?.strip_prefix("threads ")?.parse().ok()?;
    let mut threads = Vec::with_capacity(nthreads);
    for _ in 0..nthreads {
        let f = parse_u64_fields(lines.next()?.strip_prefix("t ")?, 10)?;
        threads.push(ThreadStats {
            fetched: f[0],
            wrong_path_fetched: f[1],
            committed: f[2],
            squashed_mispredict: f[3],
            squashed_flush: f[4],
            gated_cycles: f[5],
            blocked_cycles: f[6],
            dispatch_stalls: f[7],
            branches: f[8],
            branch_mispredicts: f[9],
        });
    }

    let nmem: usize = lines.next()?.strip_prefix("mem ")?.parse().ok()?;
    let mut mem = Vec::with_capacity(nmem);
    for _ in 0..nmem {
        let f = parse_u64_fields(lines.next()?.strip_prefix("m ")?, 4)?;
        mem.push(ThreadMemStats {
            loads: f[0],
            l1_misses: f[1],
            l2_misses: f[2],
            tlb_misses: f[3],
        });
    }

    if lines.next()? != "end" || lines.next().is_some() {
        return None;
    }
    Some(SimResult {
        cycles,
        threads,
        mem,
        branch_mispredict_rate: f64::from_bits(bp_bits),
    })
}

fn parse_u64_fields(line: &str, n: usize) -> Option<Vec<u64>> {
    let fields: Vec<u64> = line
        .split(' ')
        .map(|w| w.parse().ok())
        .collect::<Option<Vec<u64>>>()?;
    if fields.len() == n {
        Some(fields)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> SimResult {
        SimResult {
            cycles: 60_000,
            threads: vec![
                ThreadStats {
                    fetched: 100,
                    wrong_path_fetched: 7,
                    committed: 80,
                    squashed_mispredict: 5,
                    squashed_flush: 3,
                    gated_cycles: 11,
                    blocked_cycles: 13,
                    dispatch_stalls: 17,
                    branches: 19,
                    branch_mispredicts: 2,
                },
                ThreadStats {
                    committed: 42,
                    ..Default::default()
                },
            ],
            mem: vec![ThreadMemStats {
                loads: 30,
                l1_misses: 4,
                l2_misses: 1,
                tlb_misses: 0,
            }],
            branch_mispredict_rate: 0.062_5,
        }
    }

    fn temp_cache(tag: &str) -> DiskCache {
        let dir =
            std::env::temp_dir().join(format!("dwarn-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiskCache::open(&dir).unwrap()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let c = temp_cache("roundtrip");
        let r = sample_result();
        assert!(c.load("k1").is_none());
        c.store("k1", &r).unwrap();
        let back = c.load("k1").unwrap();
        assert_eq!(back.digest(), r.digest());
        assert_eq!(back.threads, r.threads);
        assert_eq!(back.mem, r.mem);
        assert_eq!(
            back.branch_mispredict_rate.to_bits(),
            r.branch_mispredict_rate.to_bits()
        );
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let c = temp_cache("keys");
        let mut a = sample_result();
        c.store("key-a", &a).unwrap();
        a.cycles += 1;
        c.store("key-b", &a).unwrap();
        assert_ne!(
            c.load("key-a").unwrap().cycles,
            c.load("key-b").unwrap().cycles
        );
        assert!(c.load("key-c").is_none());
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let c = temp_cache("trunc");
        c.store("k", &sample_result()).unwrap();
        let path = c.entry_path("k");
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(c.load("k").is_none(), "truncation must not be trusted");
    }

    #[test]
    fn garbage_entry_is_a_miss() {
        let c = temp_cache("garbage");
        c.store("k", &sample_result()).unwrap();
        std::fs::write(c.entry_path("k"), "not a cache entry at all\n").unwrap();
        assert!(c.load("k").is_none());
    }

    #[test]
    fn flipped_counter_fails_the_checksum() {
        let c = temp_cache("bitflip");
        c.store("k", &sample_result()).unwrap();
        let path = c.entry_path("k");
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("cycles 60000", "cycles 60001");
        std::fs::write(&path, tampered).unwrap();
        assert!(c.load("k").is_none(), "tampered body must fail checksum");
    }

    #[test]
    fn wrong_key_in_file_is_a_collision_miss() {
        let c = temp_cache("collision");
        c.store("k", &sample_result()).unwrap();
        // Simulate a hash collision: the file exists under k's hash but
        // records a different key (rewrite with a fresh checksum so only
        // the key comparison can reject it).
        let other = render_entry("other-key", &sample_result());
        std::fs::write(c.entry_path("k"), other).unwrap();
        assert!(c.load("k").is_none());
    }

    #[test]
    fn stats_clear_verify() {
        let c = temp_cache("admin");
        c.store("a", &sample_result()).unwrap();
        c.store("b", &sample_result()).unwrap();
        let s = c.stats().unwrap();
        assert_eq!(s.entries, 2);
        assert!(s.bytes > 0);

        std::fs::write(c.entry_path("b"), "garbage").unwrap();
        let v = c.verify().unwrap();
        assert_eq!(v.ok, 1);
        assert_eq!(v.corrupt.len(), 1);

        assert_eq!(c.clear().unwrap(), 2);
        assert_eq!(c.stats().unwrap().entries, 0);
    }
}
