//! Calendar-queue event scheduler for the cycle loop.
//!
//! The simulator schedules a handful of timed events per instruction
//! (result broadcast, completion, cache outcomes, L2-miss declarations).
//! Almost all of them land within a few hundred cycles of `now` — bounded
//! by the memory round-trip — so a classic calendar queue (a ring of
//! per-cycle buckets) turns every push and pop into O(1) array traffic,
//! where the previous `BinaryHeap` paid a comparison-heavy sift per
//! operation on the hottest path in the simulator.
//!
//! Events beyond the wheel horizon (possible in principle under extreme
//! bank-queue backlog) spill into a small binary heap that is consulted
//! once per drain; correctness never depends on the horizon, only
//! performance does.
//!
//! # Ordering contract
//!
//! [`EventWheel::drain_due`] yields, for one value of `now`, exactly the
//! events scheduled for that cycle, sorted by `(seq, kind)` — the same
//! total order `(at, seq, kind)` the heap-based implementation produced,
//! restricted to one `at`. The golden-digest suite pins this equivalence:
//! simulations are bit-identical to the heap-based scheduler's.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use smt_trace::snapio::{self, SnapError, SnapReader};

use crate::inflight::Handle;

/// Kind of a scheduled pipeline event. The discriminant order is part of
/// the scheduler's tie-break (same cycle, same instruction ⇒ kind order),
/// so variants must not be reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EvKind {
    /// Result broadcast: consumers become issue-eligible this cycle, so a
    /// dependent single-cycle op can execute back-to-back with its producer
    /// (full bypass network).
    Wakeup,
    Complete,
    L1Outcome,
    Fill,
    ResolveNotice,
    Declare,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Ev {
    pub at: u64,
    pub seq: u64,
    pub kind: EvKind,
    pub h: Handle,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq, self.kind).cmp(&(other.at, other.seq, other.kind))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Fixed-horizon calendar queue with a heap spill-over.
#[derive(Debug)]
pub(crate) struct EventWheel {
    /// One bucket per cycle within the horizon, indexed by `at & mask`.
    buckets: Vec<Vec<Ev>>,
    mask: u64,
    /// Events scheduled `>= horizon` cycles ahead (rare).
    overflow: BinaryHeap<Reverse<Ev>>,
    /// Total queued events (buckets + overflow).
    len: usize,
}

impl EventWheel {
    /// `horizon` must be a power of two, larger than the common scheduling
    /// distance (memory latency + TLB penalty + queuing slack).
    pub fn new(horizon: usize) -> EventWheel {
        assert!(horizon.is_power_of_two());
        EventWheel {
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            mask: horizon as u64 - 1,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Queue `ev`; `now` is the current cycle and `ev.at` must be in the
    /// future (the cycle loop never schedules same-cycle work).
    pub fn push(&mut self, now: u64, ev: Ev) {
        debug_assert!(ev.at > now, "events must be scheduled in the future");
        self.len += 1;
        if ev.at - now < self.buckets.len() as u64 {
            // Within the horizon the target bucket cannot still hold older
            // events: bucket `at & mask` was drained at cycle `at - horizon`
            // before any event this far out could have been filed into it.
            self.buckets[(ev.at & self.mask) as usize].push(ev);
        } else {
            self.overflow.push(Reverse(ev));
        }
    }

    /// Whether any event is due exactly at `now` — the O(1) fast-path probe
    /// the cycle loop uses to bypass the drain machinery on the (frequent)
    /// cycles with an empty calendar slot.
    #[inline]
    pub fn has_due(&self, now: u64) -> bool {
        if self.len == 0 {
            return false;
        }
        self.buckets[(now & self.mask) as usize]
            .iter()
            .any(|e| e.at == now)
            || self
                .overflow
                .peek()
                .is_some_and(|&Reverse(ev)| ev.at == now)
    }

    /// Move every event scheduled for cycle `now` into `out`, sorted by
    /// `(seq, kind)`. `out` is cleared first; its capacity is reused across
    /// cycles by the caller.
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<Ev>) {
        out.clear();
        let bucket = &mut self.buckets[(now & self.mask) as usize];
        debug_assert!(bucket.iter().all(|e| e.at == now));
        out.append(bucket);
        while let Some(&Reverse(ev)) = self.overflow.peek() {
            debug_assert!(ev.at >= now, "overflow event missed its cycle");
            if ev.at != now {
                break;
            }
            out.push(ev);
            self.overflow.pop();
        }
        self.len -= out.len();
        // Insertion sort: a cycle rarely has more than a handful of due
        // events, where the general sort's dispatch overhead dominates.
        for i in 1..out.len() {
            let mut j = i;
            while j > 0 && (out[j - 1].seq, out[j - 1].kind) > (out[j].seq, out[j].kind) {
                out.swap(j - 1, j);
                j -= 1;
            }
        }
    }

    /// Queued events across buckets and overflow.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Earliest cycle `>= now` with a queued event, or `None` when the
    /// wheel is empty. This is the quiescence engine's skip target: when
    /// the pipeline is provably idle, the clock can jump straight here.
    /// Events due exactly at `now` (queued for the upcoming step) are
    /// included so the engine never skips over pending work.
    ///
    /// Cost is proportional to the distance scanned, i.e. to the cycles a
    /// naive loop would have ticked through anyway — so the scan is
    /// amortized against the work it saves.
    pub fn next_due(&self, now: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let horizon = self.buckets.len() as u64;
        let mut wheel_next = None;
        for delta in 0..horizon {
            let at = now + delta;
            let bucket = &self.buckets[(at & self.mask) as usize];
            // A bucket may hold events one full horizon ahead of the slot
            // being probed (filed before `now` advanced past them), so the
            // stored timestamp — not mere non-emptiness — decides.
            if bucket.iter().any(|e| e.at == at) {
                wheel_next = Some(at);
                break;
            }
        }
        let overflow_next = self.overflow.peek().map(|&Reverse(ev)| ev.at);
        match (wheel_next, overflow_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Sanitizer audit (`INV007`/`INV008`): scan the whole structure for
    /// events that are already due (they will never drain — `drain_due`
    /// visits only the current cycle's bucket) and cross-check the cached
    /// length against the actual queued count.
    pub fn audit(&self, now: u64) -> WheelAudit {
        let mut past_due: Option<(u64, u64)> = None;
        let mut note = |ev: &Ev| {
            if ev.at <= now && past_due.is_none_or(|p| (ev.at, ev.seq) < p) {
                past_due = Some((ev.at, ev.seq));
            }
        };
        let mut queued = self.overflow.len();
        for bucket in &self.buckets {
            queued += bucket.len();
            for ev in bucket {
                note(ev);
            }
        }
        // The overflow is a min-heap: its root is the earliest entry.
        if let Some(&Reverse(ev)) = self.overflow.peek() {
            note(&ev);
        }
        WheelAudit {
            past_due,
            queued,
            cached_len: self.len,
        }
    }

    /// Serialize every queued event, sorted by the scheduler's total order
    /// `(at, seq, kind)` — placement (bucket vs. overflow) is a performance
    /// detail, so sorting makes equal queue *contents* byte-identical
    /// regardless of how the events arrived.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        let mut evs: Vec<Ev> = Vec::with_capacity(self.len);
        for bucket in &self.buckets {
            evs.extend_from_slice(bucket);
        }
        evs.extend(self.overflow.iter().map(|&Reverse(ev)| ev));
        evs.sort_unstable();
        snapio::put_usize(out, evs.len());
        for ev in &evs {
            snapio::put_u64(out, ev.at);
            snapio::put_u64(out, ev.seq);
            snapio::put_u8(out, ev_kind_tag(ev.kind));
            snapio::put_u32(out, ev.h.idx);
            snapio::put_u32(out, ev.h.gen);
        }
    }

    /// Rebuild the queue from a snapshot section, given the restored cycle
    /// counter. Every event must be due at or after `now` (`INV007`: events
    /// due exactly at `now` are legal between cycles — they drain at the
    /// head of the next step). The horizon is construction-derived and not
    /// serialized; placement replicates [`EventWheel::push`].
    pub fn load_state(&mut self, now: u64, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        const MAX_EVENTS: usize = 1 << 24;
        let n = r.len_capped(MAX_EVENTS)?;
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.len = 0;
        for _ in 0..n {
            let ev = Ev {
                at: r.u64()?,
                seq: r.u64()?,
                kind: ev_kind_from_tag(r.u8()?)?,
                h: Handle {
                    idx: r.u32()?,
                    gen: r.u32()?,
                },
            };
            if ev.at < now {
                return Err(SnapError::malformed(format!(
                    "event for seq {} due at cycle {} is already past (now {now})",
                    ev.seq, ev.at
                )));
            }
            if ev.at - now < self.buckets.len() as u64 {
                self.buckets[(ev.at & self.mask) as usize].push(ev);
            } else {
                self.overflow.push(Reverse(ev));
            }
            self.len += 1;
        }
        Ok(())
    }

    /// Mutation-test hook: file `ev` unconditionally, bypassing the
    /// future-only precondition of [`EventWheel::push`]. A past-due event
    /// lands in a bucket `drain_due` will not visit for a full horizon,
    /// mimicking a missed drain so the sanitizer's `INV007` check can be
    /// exercised.
    #[doc(hidden)]
    pub fn inject_unchecked(&mut self, ev: Ev) {
        self.len += 1;
        self.buckets[(ev.at & self.mask) as usize].push(ev);
    }

    /// Mutation-test hook: inflate the cached length without filing an
    /// event, mimicking a drain that dropped an event while decrementing
    /// nothing, so the sanitizer's `INV008` check can be exercised.
    #[doc(hidden)]
    pub fn skew_len_for_test(&mut self) {
        self.len += 1;
    }
}

fn ev_kind_tag(k: EvKind) -> u8 {
    match k {
        EvKind::Wakeup => 0,
        EvKind::Complete => 1,
        EvKind::L1Outcome => 2,
        EvKind::Fill => 3,
        EvKind::ResolveNotice => 4,
        EvKind::Declare => 5,
    }
}

fn ev_kind_from_tag(t: u8) -> Result<EvKind, SnapError> {
    Ok(match t {
        0 => EvKind::Wakeup,
        1 => EvKind::Complete,
        2 => EvKind::L1Outcome,
        3 => EvKind::Fill,
        4 => EvKind::ResolveNotice,
        5 => EvKind::Declare,
        _ => return Err(SnapError::malformed(format!("EvKind tag {t}"))),
    })
}

/// Result of [`EventWheel::audit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WheelAudit {
    /// Earliest event due at or before `now` still queued, as `(at, seq)`.
    pub past_due: Option<(u64, u64)>,
    /// Events actually present across buckets and overflow.
    pub queued: usize,
    /// The cached length counter.
    pub cached_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, seq: u64, kind: EvKind) -> Ev {
        Ev {
            at,
            seq,
            kind,
            h: Handle { idx: 0, gen: 0 },
        }
    }

    /// Reference scheduler: the heap the wheel replaced.
    fn heap_order(events: &[Ev]) -> Vec<Ev> {
        let mut heap: BinaryHeap<Reverse<Ev>> = events.iter().map(|&e| Reverse(e)).collect();
        let mut out = Vec::new();
        while let Some(Reverse(e)) = heap.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn drains_in_heap_order() {
        let events = vec![
            ev(3, 7, EvKind::Complete),
            ev(1, 9, EvKind::Wakeup),
            ev(3, 2, EvKind::Fill),
            ev(1, 9, EvKind::Complete),
            ev(2, 1, EvKind::Declare),
            ev(3, 2, EvKind::L1Outcome),
        ];
        let mut wheel = EventWheel::new(8);
        for &e in &events {
            wheel.push(0, e);
        }
        let mut drained = Vec::new();
        let mut buf = Vec::new();
        for now in 1..=3 {
            wheel.drain_due(now, &mut buf);
            drained.extend(buf.iter().copied());
        }
        assert_eq!(drained, heap_order(&events));
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn far_events_spill_to_overflow_and_still_fire() {
        let mut wheel = EventWheel::new(4);
        wheel.push(0, ev(100, 1, EvKind::Complete));
        wheel.push(0, ev(2, 2, EvKind::Wakeup));
        let mut buf = Vec::new();
        wheel.drain_due(2, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].seq, 2);
        for now in 3..100 {
            wheel.drain_due(now, &mut buf);
            assert!(buf.is_empty(), "nothing due at {now}");
        }
        wheel.drain_due(100, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].seq, 1);
    }

    #[test]
    fn bucket_reuse_across_wraparound() {
        let mut wheel = EventWheel::new(4);
        let mut buf = Vec::new();
        // Same bucket index (at & 3 == 1) used at cycles 1, 5, 9, ...
        let mut now = 0;
        for lap in 0..8u64 {
            let at = 4 * lap + 1;
            wheel.push(now, ev(at, lap, EvKind::Wakeup));
            while now < at {
                now += 1;
                wheel.drain_due(now, &mut buf);
                if now == at {
                    assert_eq!(buf.len(), 1);
                    assert_eq!(buf[0].seq, lap);
                } else {
                    assert!(buf.is_empty());
                }
            }
        }
    }

    #[test]
    fn next_due_reports_earliest_pending_event() {
        let mut wheel = EventWheel::new(4);
        assert_eq!(wheel.next_due(0), None);
        wheel.push(0, ev(100, 1, EvKind::Complete)); // beyond horizon
        wheel.push(0, ev(3, 2, EvKind::Wakeup));
        assert_eq!(wheel.next_due(1), Some(3));
        assert_eq!(wheel.next_due(3), Some(3), "events due now are pending");
        let mut buf = Vec::new();
        wheel.drain_due(3, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(wheel.next_due(4), Some(100), "overflow bounds the frontier");
    }

    #[test]
    fn wheel_state_round_trips_and_rejects_past_due() {
        let mut wheel = EventWheel::new(8);
        wheel.push(0, ev(3, 1, EvKind::Complete));
        wheel.push(0, ev(100, 2, EvKind::Fill)); // overflow
        wheel.push(0, ev(5, 3, EvKind::Wakeup));
        let mut buf = Vec::new();
        wheel.save_state(&mut buf);

        let mut back = EventWheel::new(8);
        let mut r = SnapReader::new(&buf);
        back.load_state(3, &mut r).unwrap();
        r.finish("wheel").unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.next_due(3), Some(3), "due-now events survive restore");
        // Drain order matches the original wheel's.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let (mut da, mut db) = (Vec::new(), Vec::new());
        for now in 3..=100 {
            wheel.drain_due(now, &mut a);
            back.drain_due(now, &mut b);
            da.extend(a.iter().copied());
            db.extend(b.iter().copied());
        }
        assert_eq!(da, db);
        // Restored contents re-serialize byte-identically.
        let mut wheel2 = EventWheel::new(8);
        let mut r = SnapReader::new(&buf);
        wheel2.load_state(3, &mut r).unwrap();
        let mut buf2 = Vec::new();
        wheel2.save_state(&mut buf2);
        assert_eq!(buf2, buf);
        // An event strictly before `now` is a typed error (INV007).
        let mut r = SnapReader::new(&buf);
        let e = EventWheel::new(8).load_state(50, &mut r).unwrap_err();
        assert!(e.to_string().contains("already past"), "{e}");
    }

    #[test]
    fn same_cycle_ties_break_by_seq_then_kind() {
        let mut wheel = EventWheel::new(8);
        wheel.push(0, ev(1, 5, EvKind::Declare));
        wheel.push(0, ev(1, 5, EvKind::Wakeup));
        wheel.push(0, ev(1, 3, EvKind::Complete));
        let mut buf = Vec::new();
        wheel.drain_due(1, &mut buf);
        assert_eq!(
            buf.iter().map(|e| (e.seq, e.kind)).collect::<Vec<_>>(),
            vec![
                (3, EvKind::Complete),
                (5, EvKind::Wakeup),
                (5, EvKind::Declare)
            ]
        );
    }
}
