//! The batteries-included recording probe.
//!
//! [`RecordingProbe`] keeps per-thread event counters (O(1) vector updates
//! on the hot path — no string formatting), miss-latency and gate-duration
//! histograms, a bounded [`EventRing`], and the occupancy time-series from
//! `run_sampled`. A [`Registry`] view with conventional names is built on
//! demand by [`RecordingProbe::registry`].

use std::collections::HashMap;

use crate::probe::{GateReason, OccupancySample, Probe, SquashKind};
use crate::registry::{Histogram, Registry};
use crate::ring::{EventKind, EventRing, TraceEvent};

/// Per-thread counter block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadCounters {
    pub fetched: u64,
    pub wrong_path_fetched: u64,
    pub dispatched: u64,
    pub issued: u64,
    pub committed: u64,
    pub squashed_mispredict: u64,
    pub squashed_flush: u64,
    pub gates: u64,
    pub ungates: u64,
    pub l1_miss_begins: u64,
    pub l1_miss_ends: u64,
    pub l2_declares: u64,
    pub l2_resolves: u64,
    pub ifetch_misses: u64,
    /// Gate events by [`GateReason::index`].
    pub gates_by_reason: [u64; 3],
}

/// A [`Probe`] that records everything at bounded cost.
#[derive(Debug, Clone)]
pub struct RecordingProbe {
    threads: Vec<ThreadCounters>,
    /// Capture per-instruction events (fetch/dispatch/issue/commit) in the
    /// ring. Off by default: lifecycle events (gates, misses, declares,
    /// squashes) are usually what a timeline needs, and per-instruction
    /// instants multiply ring traffic by the IPC.
    detail: bool,
    ring: EventRing,
    samples: Vec<OccupancySample>,
    /// Outstanding L1 misses: load_id → (thread, begin cycle).
    open_l1: HashMap<u64, (usize, u64)>,
    /// Per-thread open gate: (reason, begin cycle).
    open_gate: Vec<Option<(GateReason, u64)>>,
    /// L1-miss lifetime (begin→fill) in cycles, per thread.
    l1_latency: Vec<Histogram>,
    /// Gate-episode duration in cycles, per thread.
    gate_duration: Vec<Histogram>,
    /// Fetch-policy switches observed (machine-wide, not per-thread).
    policy_switches: u64,
}

impl RecordingProbe {
    /// A probe for `num_threads` hardware contexts retaining up to
    /// `ring_capacity` events.
    pub fn new(num_threads: usize, ring_capacity: usize) -> RecordingProbe {
        RecordingProbe {
            threads: vec![ThreadCounters::default(); num_threads],
            detail: false,
            ring: EventRing::new(ring_capacity),
            samples: Vec::new(),
            open_l1: HashMap::new(),
            open_gate: vec![None; num_threads],
            l1_latency: vec![Histogram::new(); num_threads],
            gate_duration: vec![Histogram::new(); num_threads],
            policy_switches: 0,
        }
    }

    /// Also capture per-instruction fetch/dispatch/issue/commit events in
    /// the ring (counters always count them regardless).
    pub fn with_detail(mut self, detail: bool) -> RecordingProbe {
        self.detail = detail;
        self
    }

    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    pub fn thread(&self, t: usize) -> &ThreadCounters {
        &self.threads[t]
    }

    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    pub fn samples(&self) -> &[OccupancySample] {
        &self.samples
    }

    pub fn l1_latency(&self, t: usize) -> &Histogram {
        &self.l1_latency[t]
    }

    pub fn gate_duration(&self, t: usize) -> &Histogram {
        &self.gate_duration[t]
    }

    /// L1 misses currently outstanding (begun, neither filled nor
    /// squashed).
    pub fn open_l1_misses(&self) -> usize {
        self.open_l1.len()
    }

    /// Fetch-policy switches observed (non-zero only when a switching
    /// meta-policy is attached).
    pub fn policy_switches(&self) -> u64 {
        self.policy_switches
    }

    /// Build the conventional [`Registry`] view of the counters:
    /// `"<metric>/t<thread>"` per-thread counters, bare totals, and the
    /// latency/duration histograms.
    pub fn registry(&self) -> Registry {
        let mut r = Registry::new();
        fn add(r: &mut Registry, name: &str, t: usize, v: u64) {
            r.add(&format!("{name}/t{t}"), v);
            r.add(name, v);
        }
        for (t, c) in self.threads.iter().enumerate() {
            add(&mut r, "fetch", t, c.fetched);
            add(&mut r, "fetch_wrong_path", t, c.wrong_path_fetched);
            add(&mut r, "dispatch", t, c.dispatched);
            add(&mut r, "issue", t, c.issued);
            add(&mut r, "commit", t, c.committed);
            add(&mut r, "squash_mispredict", t, c.squashed_mispredict);
            add(&mut r, "squash_flush", t, c.squashed_flush);
            add(&mut r, "gate", t, c.gates);
            add(&mut r, "ungate", t, c.ungates);
            add(&mut r, "l1_miss_begin", t, c.l1_miss_begins);
            add(&mut r, "l1_miss_end", t, c.l1_miss_ends);
            add(&mut r, "l2_declare", t, c.l2_declares);
            add(&mut r, "l2_resolve", t, c.l2_resolves);
            add(&mut r, "ifetch_miss", t, c.ifetch_misses);
            for reason in GateReason::ALL {
                add(
                    &mut r,
                    &format!("gate_{}", reason.as_str()),
                    t,
                    c.gates_by_reason[reason.index()],
                );
            }
        }
        for (t, h) in self.l1_latency.iter().enumerate() {
            merge_histogram(&mut r, &format!("l1_miss_cycles/t{t}"), h);
        }
        for (t, h) in self.gate_duration.iter().enumerate() {
            merge_histogram(&mut r, &format!("gate_cycles/t{t}"), h);
        }
        if self.policy_switches > 0 {
            // Machine-wide, so no per-thread variant.
            r.add("policy_switch", self.policy_switches);
        }
        r
    }
}

/// Flatten a histogram into `hist/<name>/{ge<floor>,count,sum}` counters —
/// resolution matches the histogram's own (one power of two per bucket).
fn merge_histogram(r: &mut Registry, name: &str, h: &Histogram) {
    if h.count() == 0 {
        return;
    }
    for (floor, count) in h.nonzero_buckets() {
        r.add(&format!("hist/{name}/ge{floor}"), count);
    }
    r.add(&format!("hist/{name}/count"), h.count());
    r.add(&format!("hist/{name}/sum"), h.sum());
}

impl Probe for RecordingProbe {
    fn on_fetch(&mut self, cycle: u64, thread: usize, pc: u64, seq: u64, wrong_path: bool) {
        let c = &mut self.threads[thread];
        c.fetched += 1;
        if wrong_path {
            c.wrong_path_fetched += 1;
        }
        if self.detail {
            self.ring.push(TraceEvent {
                cycle,
                thread,
                kind: EventKind::Fetch {
                    pc,
                    seq,
                    wrong_path,
                },
            });
        }
    }

    fn on_dispatch(&mut self, cycle: u64, thread: usize, seq: u64) {
        self.threads[thread].dispatched += 1;
        if self.detail {
            self.ring.push(TraceEvent {
                cycle,
                thread,
                kind: EventKind::Dispatch { seq },
            });
        }
    }

    fn on_issue(&mut self, cycle: u64, thread: usize, seq: u64) {
        self.threads[thread].issued += 1;
        if self.detail {
            self.ring.push(TraceEvent {
                cycle,
                thread,
                kind: EventKind::Issue { seq },
            });
        }
    }

    fn on_commit(&mut self, cycle: u64, thread: usize, seq: u64, pc: u64) {
        self.threads[thread].committed += 1;
        if self.detail {
            self.ring.push(TraceEvent {
                cycle,
                thread,
                kind: EventKind::Commit { seq, pc },
            });
        }
    }

    fn on_squash(&mut self, cycle: u64, thread: usize, seq: u64, kind: SquashKind) {
        let c = &mut self.threads[thread];
        match kind {
            SquashKind::Mispredict => c.squashed_mispredict += 1,
            SquashKind::Flush => c.squashed_flush += 1,
        }
        // A squashed load with an outstanding miss never gets its end
        // event; close its lifetime here so open_l1 does not leak.
        self.open_l1.remove(&seq);
        self.ring.push(TraceEvent {
            cycle,
            thread,
            kind: EventKind::Squash { seq, kind },
        });
    }

    fn on_gate(&mut self, cycle: u64, thread: usize, reason: GateReason) {
        let c = &mut self.threads[thread];
        c.gates += 1;
        c.gates_by_reason[reason.index()] += 1;
        self.open_gate[thread] = Some((reason, cycle));
        self.ring.push(TraceEvent {
            cycle,
            thread,
            kind: EventKind::Gate { reason },
        });
    }

    fn on_ungate(&mut self, cycle: u64, thread: usize, reason: GateReason) {
        self.threads[thread].ungates += 1;
        if let Some((_, begin)) = self.open_gate[thread].take() {
            self.gate_duration[thread].observe(cycle.saturating_sub(begin));
        }
        self.ring.push(TraceEvent {
            cycle,
            thread,
            kind: EventKind::Ungate { reason },
        });
    }

    fn on_l1_miss_begin(&mut self, cycle: u64, thread: usize, load_id: u64, addr: u64, l2: bool) {
        self.threads[thread].l1_miss_begins += 1;
        self.open_l1.insert(load_id, (thread, cycle));
        self.ring.push(TraceEvent {
            cycle,
            thread,
            kind: EventKind::L1MissBegin { load_id, addr, l2 },
        });
    }

    fn on_l1_miss_end(&mut self, cycle: u64, thread: usize, load_id: u64) {
        self.threads[thread].l1_miss_ends += 1;
        if let Some((t, begin)) = self.open_l1.remove(&load_id) {
            self.l1_latency[t].observe(cycle.saturating_sub(begin));
        }
        self.ring.push(TraceEvent {
            cycle,
            thread,
            kind: EventKind::L1MissEnd { load_id },
        });
    }

    fn on_l2_declare(&mut self, cycle: u64, thread: usize, load_id: u64) {
        self.threads[thread].l2_declares += 1;
        self.ring.push(TraceEvent {
            cycle,
            thread,
            kind: EventKind::L2Declare { load_id },
        });
    }

    fn on_l2_resolve(&mut self, cycle: u64, thread: usize, load_id: u64) {
        self.threads[thread].l2_resolves += 1;
        self.ring.push(TraceEvent {
            cycle,
            thread,
            kind: EventKind::L2Resolve { load_id },
        });
    }

    fn on_ifetch_miss(&mut self, cycle: u64, thread: usize, addr: u64, ready_at: u64) {
        self.threads[thread].ifetch_misses += 1;
        self.ring.push(TraceEvent {
            cycle,
            thread,
            kind: EventKind::IfetchMiss { addr, ready_at },
        });
    }

    fn on_sample(&mut self, sample: &OccupancySample) {
        self.samples.push(sample.clone());
    }

    fn on_policy_switch(&mut self, cycle: u64, from: &'static str, to: &'static str) {
        // Machine-wide lifecycle event: rare (at most one per decision
        // window), so it always goes in the ring, `detail` or not.
        self.policy_switches += 1;
        self.ring.push(TraceEvent {
            cycle,
            thread: 0,
            kind: EventKind::PolicySwitch { from, to },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_hooks() {
        let mut p = RecordingProbe::new(2, 64);
        p.on_fetch(1, 0, 0x100, 1, false);
        p.on_fetch(1, 0, 0x104, 2, true);
        p.on_commit(9, 0, 1, 0x100);
        p.on_squash(10, 0, 2, SquashKind::Mispredict);
        assert_eq!(p.thread(0).fetched, 2);
        assert_eq!(p.thread(0).wrong_path_fetched, 1);
        assert_eq!(p.thread(0).committed, 1);
        assert_eq!(p.thread(0).squashed_mispredict, 1);
        assert_eq!(p.thread(1).fetched, 0);
    }

    #[test]
    fn l1_lifetimes_feed_the_latency_histogram() {
        let mut p = RecordingProbe::new(1, 64);
        p.on_l1_miss_begin(100, 0, 7, 0xAB, true);
        assert_eq!(p.open_l1_misses(), 1);
        p.on_l1_miss_end(211, 0, 7);
        assert_eq!(p.open_l1_misses(), 0);
        assert_eq!(p.l1_latency(0).count(), 1);
        assert_eq!(p.l1_latency(0).sum(), 111);
    }

    #[test]
    fn squash_closes_open_miss() {
        let mut p = RecordingProbe::new(1, 64);
        p.on_l1_miss_begin(100, 0, 7, 0xAB, false);
        p.on_squash(105, 0, 7, SquashKind::Flush);
        assert_eq!(p.open_l1_misses(), 0);
        // No latency observation for a squashed (never filled) miss.
        assert_eq!(p.l1_latency(0).count(), 0);
    }

    #[test]
    fn gate_episodes_measure_duration() {
        let mut p = RecordingProbe::new(1, 64);
        p.on_gate(10, 0, GateReason::Policy);
        p.on_ungate(25, 0, GateReason::Policy);
        assert_eq!(p.thread(0).gates, 1);
        assert_eq!(p.thread(0).ungates, 1);
        assert_eq!(p.gate_duration(0).sum(), 15);
        assert_eq!(p.thread(0).gates_by_reason[GateReason::Policy.index()], 1);
    }

    #[test]
    fn detail_gates_per_instruction_ring_traffic() {
        let mut quiet = RecordingProbe::new(1, 64);
        quiet.on_fetch(1, 0, 0, 1, false);
        assert_eq!(quiet.ring().len(), 0);
        let mut loud = RecordingProbe::new(1, 64).with_detail(true);
        loud.on_fetch(1, 0, 0, 1, false);
        assert_eq!(loud.ring().len(), 1);
    }

    #[test]
    fn registry_view_names_are_conventional() {
        let mut p = RecordingProbe::new(2, 64);
        p.on_commit(1, 0, 1, 0);
        p.on_commit(2, 1, 2, 0);
        p.on_commit(3, 1, 3, 0);
        let r = p.registry();
        assert_eq!(r.counter("commit/t0"), 1);
        assert_eq!(r.counter("commit/t1"), 2);
        assert_eq!(r.counter("commit"), 3);
    }

    #[test]
    fn policy_switches_count_and_enter_the_ring() {
        let mut p = RecordingProbe::new(1, 64);
        assert_eq!(p.policy_switches(), 0);
        p.on_policy_switch(1024, "DWARN", "STALL");
        p.on_policy_switch(2048, "STALL", "DWARN");
        assert_eq!(p.policy_switches(), 2);
        // Lifecycle event: recorded even without --detail.
        assert_eq!(p.ring().len(), 2);
        let kinds: Vec<&'static str> = p.ring().iter().map(|e| e.kind.category()).collect();
        assert_eq!(kinds, vec!["policy-switch", "policy-switch"]);
        assert_eq!(p.registry().counter("policy_switch"), 2);
    }
}
