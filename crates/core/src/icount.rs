//! ICOUNT (Tullsen et al. \[12\]): the base fetch policy every other policy
//! builds on. Threads with fewer instructions in the pre-issue stages fetch
//! first; it favours fast-moving threads but is blind to cache misses.

use smt_pipeline::{FetchPolicy, PolicyView};

use crate::taxonomy::{Classification, DetectionMoment, ResponseAction};

/// The ICOUNT x.y fetch policy (the x and y are properties of the fetch
/// engine, not of the priority function).
#[derive(Debug, Default, Clone, Copy)]
pub struct Icount;

impl Icount {
    pub fn new() -> Icount {
        Icount
    }

    /// ICOUNT predates the paper's taxonomy; it has no long-latency DM/RA.
    pub fn classification() -> Option<Classification> {
        let _ = (DetectionMoment::L2, ResponseAction::Gate);
        None
    }
}

impl FetchPolicy for Icount {
    fn name(&self) -> &'static str {
        "ICOUNT"
    }

    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        view.icount_order_into(out);
    }

    // Pure function of the view: the quiescence engine may skip idle spans.
    fn quiescence_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_pipeline::ThreadView;

    fn view(icounts: &[u32]) -> Vec<ThreadView> {
        icounts
            .iter()
            .map(|&i| ThreadView {
                icount: i,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn orders_by_ascending_icount() {
        let threads = view(&[7, 3, 9, 0]);
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        assert_eq!(Icount::new().fetch_order(&v), vec![3, 1, 0, 2]);
    }

    #[test]
    fn never_gates_anyone() {
        let mut threads = view(&[5, 5]);
        threads[0].dmiss_count = 10;
        threads[1].declared_l2 = 3;
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        assert_eq!(Icount::new().fetch_order(&v).len(), 2);
    }
}
