//! Minimal JSON support: a value tree, a writer, and a recursive-descent
//! parser. Dependency-free on purpose — the lint crate must not pull in
//! serde just to persist its cache and emit `--json` diagnostics.
//!
//! Only the subset the lint engine needs is supported: objects, arrays,
//! strings, integers, and booleans. Floats are never produced by the
//! engine, so the parser rejects them rather than guess at precision.

use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Value>),
    /// BTreeMap keeps key order deterministic, so cache files and `--json`
    /// output are byte-stable across runs.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(a) => {
                if a.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Value::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry a byte offset for context.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut a = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(a));
        }
        loop {
            self.ws();
            a.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(a));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let start = self.i;
                    let mut end = start + 1;
                    while end < self.b.len() && (self.b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.b[start..end]) {
                        Ok(chunk) => s.push_str(chunk),
                        Err(_) => s.push('\u{fffd}'),
                    }
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!("floats unsupported at offset {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<i64>().ok())
            .map(Value::Int)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Value::obj(vec![
            ("code", Value::str("SMT008")),
            ("line", Value::Int(42)),
            ("allowlisted", Value::Bool(false)),
            (
                "notes",
                Value::Arr(vec![Value::str("a \"quoted\" note"), Value::Int(-7)]),
            ),
        ]);
        let text = v.render();
        let back = parse(&text).expect("parse back");
        assert_eq!(v, back);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::str("line1\nline2\ttab \\ slash \"q\"");
        let back = parse(&v.render()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_trailing_garbage_and_floats() {
        assert!(parse("{} x").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("[1, 2,]").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = Value::str("é → ok");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
