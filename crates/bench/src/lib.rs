//! A dependency-free benchmark harness.
//!
//! The workspace builds in offline containers where external dev-dependency
//! crates (e.g. criterion) cannot be fetched, so the bench targets time
//! themselves with [`std::time::Instant`]. The reporting format is
//! deliberately criterion-like (`group/name  time: [..]`), and each bench
//! target keeps its entry-point names, so `cargo bench -p smt-bench` and
//! `cargo bench -- <filter>` behave the way they always did.

use std::time::{Duration, Instant};

/// Re-export of the compiler fence against over-optimization; benches wrap
/// their computed values in this.
pub use std::hint::black_box;

/// One benchmark group: a named collection of timed closures with a shared
/// sample count and a substring filter from the command line.
pub struct Group {
    name: String,
    samples: u32,
    filter: Option<String>,
}

impl Group {
    pub fn new(name: &str) -> Group {
        // `cargo bench -- <filter>` forwards everything after `--` to the
        // bench binary; flag-looking arguments (`--bench`) come from cargo
        // itself and are not filters.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Group {
            name: name.to_string(),
            samples: 10,
            filter,
        }
    }

    /// Number of timed samples per bench (after one untimed warm-up run).
    pub fn sample_size(&mut self, n: u32) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Time `f`, printing per-sample statistics. Skipped when a command-line
    /// filter is present and matches neither the group nor the bench name.
    pub fn bench_function<T>(&mut self, bench: &str, mut f: impl FnMut() -> T) -> &mut Self {
        let full = format!("{}/{}", self.name, bench);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        black_box(f()); // warm-up, untimed
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        let total: Duration = times.iter().sum();
        let mean = total / self.samples;
        let (min, max) = (times[0], times[times.len() - 1]);
        println!(
            "{full:<40} time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            self.samples
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(512)), "512 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.000 s");
    }

    #[test]
    fn groups_run_and_filter() {
        let mut g = Group {
            name: "g".into(),
            samples: 2,
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        g.bench_function("skipped", || ran = true);
        assert!(!ran, "filtered bench must not run");
        g.filter = None;
        g.sample_size(3).bench_function("runs", || ran = true);
        assert!(ran);
    }
}
