//! The experiment campaign runner.
//!
//! Experiments share simulation results: Figure 1(b), Figure 3, Table 4 and
//! the Figure 2 series are all views over the same (architecture, workload,
//! policy) grid. [`Campaign`] memoizes each simulation and runs uncached
//! batches in parallel across OS threads. With
//! [`Campaign::with_disk_cache`], the memo additionally persists across
//! processes through the content-addressed store in [`crate::cache`].
//!
//! # Fault isolation
//!
//! Every simulation runs behind a panic boundary and under the simulator's
//! forward-progress watchdog; the configuration is validated before the
//! disk cache is even consulted. A failed run becomes a [`RunFailure`]
//! recorded on the campaign (and as a failure artifact) instead of taking
//! the sweep down — callers that can degrade gracefully use the `try_*`
//! entry points, while the legacy panicking accessors remain for report
//! code whose caller (the CLI) provides per-experiment isolation.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

use dwarn_core::{PolicyKind, PolicyVisitor};
use smt_pipeline::{
    FetchPolicy, RecordingSanitizer, SimConfig, SimResult, Simulator, ThreadSpec, Watchdog,
};
use smt_workloads::Workload;

use crate::cache::DiskCache;
use crate::error::{protect, ExpError, RunFailure};

/// Simulation window lengths.
#[derive(Debug, Clone, Copy)]
pub struct ExpParams {
    pub warmup: u64,
    pub measure: u64,
}

impl ExpParams {
    /// Default windows: long enough for steady state on every workload.
    pub fn standard() -> ExpParams {
        ExpParams {
            warmup: 20_000,
            measure: 60_000,
        }
    }

    /// Short windows for smoke tests and Criterion benches.
    pub fn quick() -> ExpParams {
        ExpParams {
            warmup: 5_000,
            measure: 15_000,
        }
    }
}

/// The three processor configurations of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    Baseline,
    Small,
    Deep,
}

impl Arch {
    pub fn config(self) -> SimConfig {
        match self {
            Arch::Baseline => SimConfig::baseline(),
            Arch::Small => SimConfig::small(),
            Arch::Deep => SimConfig::deep(),
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Arch::Baseline => "baseline",
            Arch::Small => "small",
            Arch::Deep => "deep",
        }
    }
}

/// A memoized simulation request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    pub arch: Arch,
    /// Workload name ("4-MIX") or a solo run ("solo:mcf").
    pub workload: String,
    pub policy: PolicyKind,
}

impl RunKey {
    pub fn workload(arch: Arch, wl: &Workload, policy: PolicyKind) -> RunKey {
        RunKey {
            arch,
            workload: wl.name.clone(),
            policy,
        }
    }

    pub fn solo(arch: Arch, bench: &str) -> RunKey {
        RunKey {
            arch,
            workload: format!("solo:{bench}"),
            policy: PolicyKind::Icount,
        }
    }
}

fn specs_for(key: &RunKey) -> Result<Vec<ThreadSpec>, ExpError> {
    if let Some(bench) = key.workload.strip_prefix("solo:") {
        let profile = smt_trace::by_name(bench).ok_or_else(|| ExpError::UnknownBenchmark {
            given: bench.to_string(),
        })?;
        Ok(vec![ThreadSpec {
            profile,
            seed: smt_workloads::TRACE_SEED,
            skip: 0,
        }])
    } else {
        let (threads, class) = parse_workload_name(&key.workload)?;
        let wl = smt_workloads::try_workload(threads, class).ok_or(ExpError::UnknownWorkload {
            threads,
            class: class.as_str(),
        })?;
        Ok(wl.thread_specs())
    }
}

fn parse_workload_name(name: &str) -> Result<(usize, smt_workloads::WorkloadClass), ExpError> {
    let bad = || ExpError::BadWorkloadName {
        given: name.to_string(),
    };
    let (n, c) = name.split_once('-').ok_or_else(bad)?;
    let threads: usize = n.parse().map_err(|_| bad())?;
    let class = match c {
        "ILP" => smt_workloads::WorkloadClass::Ilp,
        "MIX" => smt_workloads::WorkloadClass::Mix,
        "MEM" => smt_workloads::WorkloadClass::Mem,
        other => {
            return Err(ExpError::UnknownWorkloadClass {
                given: other.to_string(),
            })
        }
    };
    Ok((threads, class))
}

/// Canonical one-line description of a simulation request: everything that
/// determines its result, prefixed by the cache's code-version salt. This
/// string *is* the disk-cache key (content-addressed via FNV-1a).
fn describe_run(
    cfg: &SimConfig,
    specs: &[ThreadSpec],
    policy_desc: &str,
    params: ExpParams,
) -> String {
    let mut s = format!(
        "v{} warmup={} measure={} policy={} cfg={:?} threads=",
        crate::cache::CODE_VERSION,
        params.warmup,
        params.measure,
        policy_desc,
        cfg,
    );
    for spec in specs {
        s.push_str(&format!(
            "{}:{}:{}|",
            spec.profile.name, spec.seed, spec.skip
        ));
    }
    s
}

/// Memoizing, parallel simulation campaign.
pub struct Campaign {
    pub params: ExpParams,
    cache: Mutex<HashMap<RunKey, SimResult>>,
    /// Memo for custom runs (ablation sweeps with perturbed configs or
    /// parameterized policies), keyed by canonical run description.
    custom: Mutex<HashMap<String, SimResult>>,
    /// Cross-process persistent store, when `--cache-dir` is active.
    disk: Option<DiskCache>,
    /// Maximum worker threads for batch runs.
    parallelism: usize,
    /// Failed runs (watchdog trips, isolated panics, cache irregularities)
    /// recorded so the campaign can finish with partial results.
    failures: Mutex<Vec<RunFailure>>,
    /// Watchdog applied to every simulation this campaign runs.
    watchdog: Watchdog,
    /// Attach the cycle-level µarch sanitizer to every simulation
    /// (`--sanitize`). Disk-cache *loads* are skipped so each run actually
    /// executes under audit; results are still stored (the sanitizer is
    /// observation-only, so sanitized results are bit-identical).
    sanitize: bool,
    /// Let simulations use the quiescence-skipping engine (`--no-skip`
    /// clears it). Skipped and unskipped runs are bit-identical, so this
    /// does not enter the cache key.
    skip: bool,
}

impl Campaign {
    pub fn new(params: ExpParams) -> Campaign {
        // `SMT_JOBS` overrides the detected core count (CI runners and
        // benchmark boxes want a pinned, reproducible width).
        let parallelism = std::env::var("SMT_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Campaign {
            params,
            cache: Mutex::new(HashMap::new()),
            custom: Mutex::new(HashMap::new()),
            disk: None,
            parallelism,
            failures: Mutex::new(Vec::new()),
            watchdog: Watchdog::default(),
            sanitize: false,
            skip: true,
        }
    }

    /// A campaign whose memo persists under `dir` across processes.
    pub fn with_disk_cache(params: ExpParams, dir: &Path) -> std::io::Result<Campaign> {
        let mut c = Campaign::new(params);
        c.disk = Some(DiskCache::open(dir)?);
        Ok(c)
    }

    /// The persistent store, if one is attached.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Override the per-run watchdog (tests, chaos harness).
    pub fn set_watchdog(&mut self, wd: Watchdog) {
        self.watchdog = wd;
    }

    /// Run every simulation under the cycle-level µarch sanitizer. A run
    /// that records violations fails as [`ExpError::Invariant`] — its
    /// numbers came from a machine whose bookkeeping disagreed with
    /// itself. Disk-cache loads are bypassed (stores still happen) so
    /// each result really executed under audit.
    pub fn set_sanitize(&mut self, on: bool) {
        self.sanitize = on;
    }

    /// Whether the sanitizer is attached ([`Campaign::set_sanitize`]).
    pub fn sanitize(&self) -> bool {
        self.sanitize
    }

    /// Disable (or re-enable) the quiescence-skipping engine for every
    /// simulation this campaign runs (`--no-skip`). Observation-only:
    /// results are bit-identical either way.
    pub fn set_skip(&mut self, on: bool) {
        self.skip = on;
    }

    /// Whether simulations may use the quiescence engine
    /// ([`Campaign::set_skip`]).
    pub fn skip(&self) -> bool {
        self.skip
    }

    /// One simulation behind the panic boundary and watchdog, with the
    /// sanitizer attached when [`Campaign::set_sanitize`] is on. Generic
    /// over the concrete policy type: grid runs arrive here through
    /// [`PolicyKind::dispatch`], so the paper's policies run with
    /// monomorphized (static) per-cycle dispatch, while custom policies
    /// pass `Box<dyn FetchPolicy>`. The sanitizer likewise monomorphizes
    /// in — the unsanitized arm runs the zero-cost `NullSanitizer` code.
    fn simulate_policy<F: FetchPolicy + 'static>(
        &self,
        what: &str,
        cfg: &SimConfig,
        specs: &[ThreadSpec],
        policy: F,
    ) -> Result<SimResult, ExpError> {
        if self.sanitize {
            protect(what, move || {
                let mut sim = Simulator::try_sanitized(
                    cfg.clone(),
                    policy,
                    specs,
                    RecordingSanitizer::new(),
                )?;
                sim.set_skip_enabled(self.skip);
                let result = sim
                    .try_run(self.params.warmup, self.params.measure, &self.watchdog)
                    .map_err(ExpError::from)?;
                let rec = sim.sanitizer();
                if !rec.is_clean() {
                    return Err(ExpError::Invariant {
                        what: what.to_string(),
                        violations: rec.total() as usize,
                        first: rec.first().map(ToString::to_string).unwrap_or_default(),
                    });
                }
                Ok(result)
            })
        } else {
            protect(what, move || {
                let mut sim = Simulator::try_new(cfg.clone(), policy, specs)?;
                sim.set_skip_enabled(self.skip);
                sim.try_run(self.params.warmup, self.params.measure, &self.watchdog)
                    .map_err(ExpError::from)
            })
        }
    }

    /// [`Campaign::simulate_policy`] for lazily-built dyn policies (the
    /// custom-run path).
    fn simulate(
        &self,
        what: &str,
        cfg: &SimConfig,
        specs: &[ThreadSpec],
        build: impl FnOnce() -> Box<dyn FetchPolicy>,
    ) -> Result<SimResult, ExpError> {
        self.simulate_policy(what, cfg, specs, build())
    }

    /// The canonical cache-key description of `key` (diagnostics and fault
    /// injection).
    pub fn describe(&self, key: &RunKey) -> Result<String, ExpError> {
        let specs = specs_for(key)?;
        Ok(describe_run(
            &key.arch.config(),
            &specs,
            key.policy.name(),
            self.params,
        ))
    }

    /// Record a failed run so the sweep can finish with partial results.
    fn note_failure(&self, what: &str, error: &ExpError) {
        crate::artifacts::record_failure(what, error);
        crate::lock_unpoisoned(&self.failures).push(RunFailure {
            what: what.to_string(),
            error: error.clone(),
        });
    }

    /// Failures recorded so far.
    pub fn failures(&self) -> Vec<RunFailure> {
        crate::lock_unpoisoned(&self.failures).clone()
    }

    /// Render the failure summary table, or `None` for a clean campaign.
    pub fn failure_summary(&self) -> Option<String> {
        let failures = crate::lock_unpoisoned(&self.failures);
        if failures.is_empty() {
            return None;
        }
        let mut t = smt_metrics::table::TextTable::new(vec!["kind", "run", "error"]);
        for f in failures.iter() {
            t.row(vec![
                f.error.kind().to_string(),
                f.what.clone(),
                f.error.to_string().replace('\n', " | "),
            ]);
        }
        Some(format!(
            "{} run(s) failed; results are partial\n\n{}",
            failures.len(),
            t.render()
        ))
    }

    /// Run `key`, consulting and feeding the disk cache when attached.
    /// Every result entering the process (fresh or loaded) is recorded as
    /// a stats artifact exactly once.
    ///
    /// The full robustness path: the configuration is validated before the
    /// cache is consulted, an irregular cache entry is surfaced as a typed
    /// failure artifact (and treated as a miss), the simulation itself runs
    /// behind a panic boundary under the campaign watchdog, and stores
    /// retry transient I/O failures with backoff (a final store failure
    /// only costs future warm starts, so it is recorded, not fatal).
    fn run_protected(&self, key: &RunKey) -> Result<SimResult, ExpError> {
        let specs = specs_for(key)?;
        let cfg = key.arch.config();
        cfg.validate(specs.len())?;
        let desc = describe_run(&cfg, &specs, key.policy.name(), self.params);
        // Under --sanitize a cache hit would dodge the audit entirely, so
        // loads are skipped; the store below still refreshes the entry
        // (sanitized results are bit-identical to unsanitized ones).
        if let Some(d) = self.disk.as_ref().filter(|_| !self.sanitize) {
            match d.load_checked(&desc) {
                Ok(Some(result)) => {
                    crate::artifacts::record(key, &result);
                    return Ok(result);
                }
                Ok(None) => {}
                Err(fault) => {
                    let e = ExpError::Cache {
                        path: d.entry_path(&desc).display().to_string(),
                        fault,
                    };
                    self.note_failure(&desc, &e);
                }
            }
        }
        let what = format!(
            "{}/{}/{}",
            key.arch.as_str(),
            key.workload,
            key.policy.name()
        );
        // Dispatch the policy at its concrete type: the simulator below is
        // monomorphized per policy, removing the per-cycle virtual call.
        struct GridRun<'a> {
            campaign: &'a Campaign,
            what: &'a str,
            cfg: &'a SimConfig,
            specs: &'a [ThreadSpec],
        }
        impl PolicyVisitor for GridRun<'_> {
            type Out = Result<SimResult, ExpError>;
            fn visit<F: FetchPolicy + 'static>(self, policy: F) -> Self::Out {
                self.campaign
                    .simulate_policy(self.what, self.cfg, self.specs, policy)
            }
        }
        let result = key.policy.dispatch(GridRun {
            campaign: self,
            what: &what,
            cfg: &cfg,
            specs: &specs,
        })?;
        crate::artifacts::record(key, &result);
        if let Some(d) = &self.disk {
            if let Err(e) = d.store_retrying(&desc, &result, 3) {
                let e = ExpError::Io {
                    context: format!("storing cache entry for {what}"),
                    detail: e.to_string(),
                };
                eprintln!("cache: {e}");
                self.note_failure(&desc, &e);
            }
        }
        Ok(result)
    }

    /// Run an ad-hoc (config, workload, policy) combination through both
    /// cache layers. `policy_desc` must uniquely identify the policy
    /// *including its parameters* (e.g. `"DG(n=2)"`, not `"DG"`): it is
    /// part of the cache key, and two different policies sharing a
    /// description would alias. The policy itself is built lazily, only on
    /// a full miss.
    pub fn run_custom(
        &self,
        cfg: &SimConfig,
        specs: &[ThreadSpec],
        policy_desc: &str,
        build: impl FnOnce() -> Box<dyn FetchPolicy>,
    ) -> SimResult {
        self.try_run_custom(cfg, specs, policy_desc, build)
            .unwrap_or_else(|e| panic!("custom run {policy_desc} failed: {e}"))
    }

    /// As [`Campaign::run_custom`], with the same fault isolation as the
    /// grid path: config validation up front, panic capture, watchdog, and
    /// retrying stores. Failures are recorded on the campaign.
    pub fn try_run_custom(
        &self,
        cfg: &SimConfig,
        specs: &[ThreadSpec],
        policy_desc: &str,
        build: impl FnOnce() -> Box<dyn FetchPolicy>,
    ) -> Result<SimResult, ExpError> {
        if let Err(e) = cfg.validate(specs.len()) {
            let e = ExpError::Config(e);
            self.note_failure(policy_desc, &e);
            return Err(e);
        }
        let desc = describe_run(cfg, specs, policy_desc, self.params);
        if let Some(r) = crate::lock_unpoisoned(&self.custom).get(&desc) {
            return Ok(r.clone());
        }
        // As in `run_protected`: --sanitize bypasses cache loads so the
        // run actually executes under audit.
        let loaded = match self.disk.as_ref().filter(|_| !self.sanitize) {
            Some(d) => match d.load_checked(&desc) {
                Ok(r) => r,
                Err(fault) => {
                    let e = ExpError::Cache {
                        path: d.entry_path(&desc).display().to_string(),
                        fault,
                    };
                    self.note_failure(&desc, &e);
                    None
                }
            },
            None => None,
        };
        let result = match loaded {
            Some(r) => r,
            None => {
                let run = self.simulate(policy_desc, cfg, specs, build);
                let r = match run {
                    Ok(r) => r,
                    Err(e) => {
                        self.note_failure(policy_desc, &e);
                        return Err(e);
                    }
                };
                if let Some(d) = &self.disk {
                    if let Err(e) = d.store_retrying(&desc, &r, 3) {
                        let e = ExpError::Io {
                            context: format!("storing cache entry for {policy_desc}"),
                            detail: e.to_string(),
                        };
                        eprintln!("cache: {e}");
                        self.note_failure(&desc, &e);
                    }
                }
                r
            }
        };
        Ok(crate::lock_unpoisoned(&self.custom)
            .entry(desc)
            .or_insert(result)
            .clone())
    }

    /// Ensure all `keys` are cached, running missing ones in parallel.
    pub fn prefetch(&self, keys: &[RunKey]) {
        let missing: Vec<RunKey> = {
            let cache = crate::lock_unpoisoned(&self.cache);
            let mut seen = std::collections::HashSet::new();
            keys.iter()
                .filter(|k| !cache.contains_key(*k) && seen.insert((*k).clone()))
                .cloned()
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        // Clamp the worker pool to the runs that will actually simulate: on
        // a warm batch most keys resolve from the disk cache (cheap loads),
        // and spawning a thread per key would mostly spawn idle threads.
        let pending = match self.disk.as_ref().filter(|_| !self.sanitize) {
            Some(d) => missing
                .iter()
                .filter(|k| {
                    self.describe(k)
                        .map(|desc| !d.entry_path(&desc).exists())
                        .unwrap_or(true)
                })
                .count()
                .max(1),
            None => missing.len(),
        };
        let workers = self.parallelism.min(pending);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let missing = &missing;
                    let next = &next;
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= missing.len() {
                            break;
                        }
                        // Failures are recorded on the campaign; a failed
                        // key simply stays unmemoized, and the rest of the
                        // batch keeps going (partial results).
                        let _ = self.try_result_owned(missing[i].clone());
                    })
                })
                .collect();
            for h in handles {
                // Workers shouldn't panic (every simulation is behind the
                // campaign's panic boundary), but if one does, record it
                // and let the remaining keys finish on later demand.
                if let Err(payload) = h.join() {
                    self.note_failure(
                        "prefetch worker",
                        &ExpError::Panicked {
                            what: "prefetch worker".to_string(),
                            payload: crate::error::panic_message(&*payload),
                        },
                    );
                }
            }
        });
    }

    /// Get (running on demand if not cached) a simulation result.
    ///
    /// Panics if the run fails; sweeps that should degrade gracefully use
    /// [`Campaign::try_result`]. (The failure is recorded on the campaign
    /// *before* the panic, so a CLI-level `catch_unwind` still reports it.)
    pub fn result(&self, key: &RunKey) -> SimResult {
        self.try_result(key)
            .unwrap_or_else(|e| panic!("run {key:?} failed: {e}"))
    }

    /// Fallible [`Campaign::result`]: a failed run is recorded as a
    /// [`RunFailure`] and returned as the error, leaving the rest of the
    /// campaign untouched.
    pub fn try_result(&self, key: &RunKey) -> Result<SimResult, ExpError> {
        if let Some(r) = crate::lock_unpoisoned(&self.cache).get(key) {
            return Ok(r.clone());
        }
        self.try_result_owned(key.clone())
    }

    /// [`Campaign::result`] for callers that already own the key, sparing
    /// the clone on the miss path. Panics on failure like
    /// [`Campaign::result`].
    pub fn result_owned(&self, key: RunKey) -> SimResult {
        self.try_result_owned(key)
            .unwrap_or_else(|e| panic!("run failed: {e}"))
    }

    /// Fallible [`Campaign::result_owned`]. The memo is re-checked and
    /// filled through the entry API under a single lock acquisition; if
    /// another thread raced us to the same key, its (identical —
    /// simulation is deterministic) result wins and ours is dropped.
    pub fn try_result_owned(&self, key: RunKey) -> Result<SimResult, ExpError> {
        if let Some(r) = crate::lock_unpoisoned(&self.cache).get(&key) {
            return Ok(r.clone());
        }
        match self.run_protected(&key) {
            Ok(r) => Ok(crate::lock_unpoisoned(&self.cache)
                .entry(key)
                .or_insert(r)
                .clone()),
            Err(e) => {
                self.note_failure(&format!("{}/{}", key.arch.as_str(), key.workload), &e);
                Err(e)
            }
        }
    }

    /// Result for a (workload, policy) pair on an architecture.
    pub fn workload_result(&self, arch: Arch, wl: &Workload, policy: PolicyKind) -> SimResult {
        self.result_owned(RunKey::workload(arch, wl, policy))
    }

    /// Single-threaded IPC of a benchmark under ICOUNT (the relative-IPC
    /// denominator).
    pub fn solo_ipc(&self, arch: Arch, bench: &str) -> f64 {
        self.result_owned(RunKey::solo(arch, bench)).ipcs()[0]
    }

    /// Per-thread relative IPCs for a (workload, policy) run.
    pub fn relative_ipcs(&self, arch: Arch, wl: &Workload, policy: PolicyKind) -> Vec<f64> {
        let smt = self.workload_result(arch, wl, policy).ipcs();
        let solo: Vec<f64> = wl
            .benchmarks
            .iter()
            .map(|b| self.solo_ipc(arch, b))
            .collect();
        smt_metrics::relative_ipcs(&smt, &solo)
    }

    /// Hmean of relative IPCs for a (workload, policy) run.
    pub fn hmean(&self, arch: Arch, wl: &Workload, policy: PolicyKind) -> f64 {
        smt_metrics::hmean(&self.relative_ipcs(arch, wl, policy))
    }

    /// Number of cached results (for tests).
    pub fn cached(&self) -> usize {
        crate::lock_unpoisoned(&self.cache).len()
    }

    /// Build the full key grid for a set of workloads × policies.
    pub fn grid(arch: Arch, workloads: &[Workload], policies: &[PolicyKind]) -> Vec<RunKey> {
        let mut keys = Vec::with_capacity(workloads.len() * policies.len());
        for wl in workloads {
            for &p in policies {
                keys.push(RunKey::workload(arch, wl, p));
            }
        }
        keys
    }

    /// Keys for all solo baselines a workload set needs.
    pub fn solo_grid(arch: Arch, workloads: &[Workload]) -> Vec<RunKey> {
        let mut seen = std::collections::HashSet::new();
        let mut keys = Vec::new();
        for wl in workloads {
            for &b in &wl.benchmarks {
                if seen.insert(b) {
                    keys.push(RunKey::solo(arch, b));
                }
            }
        }
        keys
    }
}

/// Render an ad-hoc comparison of `policies` on one workload: throughput,
/// Hmean, per-thread IPCs, gating and flush statistics. A `workload_name`
/// outside Table 2(b)'s `"<2|4|6|8>-<ILP|MIX|MEM>"` grammar is a typed
/// error (the CLI maps it to a usage exit code).
pub fn comparison_table(
    campaign: &Campaign,
    arch: Arch,
    workload_name: &str,
    policies: &[PolicyKind],
) -> Result<String, ExpError> {
    let (threads, class) = parse_workload_name(workload_name)?;
    let wl = smt_workloads::try_workload(threads, class).ok_or(ExpError::UnknownWorkload {
        threads,
        class: class.as_str(),
    })?;
    let mut keys: Vec<RunKey> = policies
        .iter()
        .map(|&p| RunKey::workload(arch, &wl, p))
        .collect();
    keys.extend(Campaign::solo_grid(arch, std::slice::from_ref(&wl)));
    campaign.prefetch(&keys);

    let mut t = smt_metrics::table::TextTable::new(vec![
        "policy",
        "tput",
        "Hmean",
        "gated",
        "flushed%",
        "per-thread IPCs",
    ]);
    for &p in policies {
        let r = campaign.workload_result(arch, &wl, p);
        let gated: u64 = r.threads.iter().map(|s| s.gated_cycles).sum();
        let ipcs: Vec<String> = r.ipcs().iter().map(|i| format!("{i:.2}")).collect();
        t.row(vec![
            p.name().to_string(),
            format!("{:.2}", r.throughput()),
            format!("{:.2}", campaign.hmean(arch, &wl, p)),
            format!("{gated}"),
            format!("{:.1}", 100.0 * r.flushed_fraction()),
            ipcs.join(" / "),
        ]);
    }
    Ok(format!(
        "{} on the {} architecture ({})\n\n{}",
        wl.name,
        arch.as_str(),
        wl.benchmarks.join(", "),
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::{workload, WorkloadClass};

    fn quick_campaign() -> Campaign {
        Campaign::new(ExpParams {
            warmup: 1_000,
            measure: 3_000,
        })
    }

    #[test]
    fn results_are_memoized() {
        let c = quick_campaign();
        let wl = workload(2, WorkloadClass::Ilp);
        let a = c.workload_result(Arch::Baseline, &wl, PolicyKind::Icount);
        assert_eq!(c.cached(), 1);
        let b = c.workload_result(Arch::Baseline, &wl, PolicyKind::Icount);
        assert_eq!(c.cached(), 1);
        assert_eq!(a.threads, b.threads);
    }

    #[test]
    fn prefetch_fills_the_grid() {
        let c = quick_campaign();
        let wls = vec![
            workload(2, WorkloadClass::Ilp),
            workload(2, WorkloadClass::Mix),
        ];
        let keys = Campaign::grid(
            Arch::Baseline,
            &wls,
            &[PolicyKind::Icount, PolicyKind::DWarn],
        );
        c.prefetch(&keys);
        assert_eq!(c.cached(), 4);
        // Subsequent access hits the cache.
        let r = c.workload_result(Arch::Baseline, &wls[0], PolicyKind::DWarn);
        assert!(r.throughput() > 0.0);
        assert_eq!(c.cached(), 4);
    }

    #[test]
    fn prefetch_matches_on_demand_results() {
        // Parallel-batch and on-demand paths must agree (determinism).
        let wl = workload(2, WorkloadClass::Mem);
        let a = quick_campaign();
        a.prefetch(&[RunKey::workload(Arch::Baseline, &wl, PolicyKind::Stall)]);
        let ra = a.workload_result(Arch::Baseline, &wl, PolicyKind::Stall);
        let b = quick_campaign();
        let rb = b.workload_result(Arch::Baseline, &wl, PolicyKind::Stall);
        assert_eq!(ra.threads, rb.threads);
    }

    #[test]
    fn solo_grid_dedupes_replicas() {
        let wls = vec![workload(8, WorkloadClass::Mem)]; // mcf/twolf/vpr/parser x2
        let keys = Campaign::solo_grid(Arch::Baseline, &wls);
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn relative_ipcs_are_in_unit_range_mostly() {
        let c = quick_campaign();
        let wl = workload(2, WorkloadClass::Mix);
        let rel = c.relative_ipcs(Arch::Baseline, &wl, PolicyKind::Icount);
        assert_eq!(rel.len(), 2);
        for r in rel {
            assert!(
                r > 0.0 && r < 1.5,
                "relative IPC {r} out of plausible range"
            );
        }
    }

    #[test]
    fn workload_name_round_trip() {
        let (t, c) = parse_workload_name("6-MEM").unwrap();
        assert_eq!(t, 6);
        assert_eq!(c, WorkloadClass::Mem);
    }

    #[test]
    fn workload_name_errors_are_typed() {
        use crate::error::ExpError;
        assert!(matches!(
            parse_workload_name("nonsense"),
            Err(ExpError::BadWorkloadName { .. })
        ));
        assert!(matches!(
            parse_workload_name("x-MIX"),
            Err(ExpError::BadWorkloadName { .. })
        ));
        // The satellite case: a well-formed name with an invented class
        // must name the valid classes instead of panicking.
        match parse_workload_name("4-QUX") {
            Err(e @ ExpError::UnknownWorkloadClass { .. }) => {
                assert!(e.to_string().contains("ILP, MIX, MEM"));
            }
            other => panic!("expected UnknownWorkloadClass, got {other:?}"),
        }
    }

    #[test]
    fn failed_runs_are_recorded_not_fatal() {
        let c = quick_campaign();
        // Table 2(b) has no 3-thread workloads.
        let bad = RunKey {
            arch: Arch::Baseline,
            workload: "3-MIX".into(),
            policy: PolicyKind::Icount,
        };
        let err = c.try_result(&bad).unwrap_err();
        assert!(matches!(err, ExpError::UnknownWorkload { threads: 3, .. }));
        let failures = c.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].error.kind(), "unknown-workload");
        assert!(c.failure_summary().unwrap().contains("partial"));

        // The campaign keeps working after the failure.
        let wl = workload(2, WorkloadClass::Ilp);
        let r = c.workload_result(Arch::Baseline, &wl, PolicyKind::Icount);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn prefetch_survives_failing_keys() {
        let c = quick_campaign();
        let wl = workload(2, WorkloadClass::Mix);
        let keys = vec![
            RunKey {
                arch: Arch::Baseline,
                workload: "9-MIX".into(),
                policy: PolicyKind::Icount,
            },
            RunKey::workload(Arch::Baseline, &wl, PolicyKind::Icount),
            RunKey {
                arch: Arch::Baseline,
                workload: "solo:nosuchbench".into(),
                policy: PolicyKind::Icount,
            },
        ];
        c.prefetch(&keys);
        // The good key is cached; the bad ones are failures, not crashes.
        assert_eq!(c.cached(), 1);
        assert_eq!(c.failures().len(), 2);
        let r = c.workload_result(Arch::Baseline, &wl, PolicyKind::Icount);
        assert!(r.throughput() > 0.0);
    }
}
