//! The experiment campaign runner.
//!
//! Experiments share simulation results: Figure 1(b), Figure 3, Table 4 and
//! the Figure 2 series are all views over the same (architecture, workload,
//! policy) grid. [`Campaign`] memoizes each simulation and runs uncached
//! batches in parallel across OS threads. With
//! [`Campaign::with_disk_cache`], the memo additionally persists across
//! processes through the content-addressed store in [`crate::cache`].
//!
//! # Fault isolation
//!
//! Every simulation runs behind a panic boundary and under the simulator's
//! forward-progress watchdog; the configuration is validated before the
//! disk cache is even consulted. A failed run becomes a [`RunFailure`]
//! recorded on the campaign (and as a failure artifact) instead of taking
//! the sweep down — callers that can degrade gracefully use the `try_*`
//! entry points, while the legacy panicking accessors remain for report
//! code whose caller (the CLI) provides per-experiment isolation.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dwarn_core::{PolicyKind, PolicyVisitor};
use smt_obs::{IntervalConfig, IntervalProbe, IntervalSeries, Json};
use smt_pipeline::{
    CheckpointOpts, ConfigError, FetchPolicy, FragmentOpts, MachineSnapshot, RecordingSanitizer,
    RunOutcome, SimConfig, SimError, SimResult, Simulator, ThreadSpec, Watchdog,
};
use smt_workloads::Workload;

use crate::cache::DiskCache;
use crate::checkpoint::{CheckpointFault, CheckpointStore, Journal};
use crate::error::{protect, ExpError, RunFailure};

/// Simulation window lengths.
#[derive(Debug, Clone, Copy)]
pub struct ExpParams {
    pub warmup: u64,
    pub measure: u64,
}

impl ExpParams {
    /// Default windows: long enough for steady state on every workload.
    pub fn standard() -> ExpParams {
        ExpParams {
            warmup: 20_000,
            measure: 60_000,
        }
    }

    /// Short windows for smoke tests and Criterion benches.
    pub fn quick() -> ExpParams {
        ExpParams {
            warmup: 5_000,
            measure: 15_000,
        }
    }
}

/// The three processor configurations of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    Baseline,
    Small,
    Deep,
}

impl Arch {
    pub fn config(self) -> SimConfig {
        match self {
            Arch::Baseline => SimConfig::baseline(),
            Arch::Small => SimConfig::small(),
            Arch::Deep => SimConfig::deep(),
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Arch::Baseline => "baseline",
            Arch::Small => "small",
            Arch::Deep => "deep",
        }
    }
}

/// A memoized simulation request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    pub arch: Arch,
    /// Workload name ("4-MIX") or a solo run ("solo:mcf").
    pub workload: String,
    pub policy: PolicyKind,
}

impl RunKey {
    pub fn workload(arch: Arch, wl: &Workload, policy: PolicyKind) -> RunKey {
        RunKey {
            arch,
            workload: wl.name.clone(),
            policy,
        }
    }

    pub fn solo(arch: Arch, bench: &str) -> RunKey {
        RunKey {
            arch,
            workload: format!("solo:{bench}"),
            policy: PolicyKind::Icount,
        }
    }
}

pub(crate) fn specs_for(key: &RunKey) -> Result<Vec<ThreadSpec>, ExpError> {
    if let Some(bench) = key.workload.strip_prefix("solo:") {
        let profile = smt_trace::by_name(bench).ok_or_else(|| ExpError::UnknownBenchmark {
            given: bench.to_string(),
        })?;
        Ok(vec![ThreadSpec {
            profile,
            seed: smt_workloads::TRACE_SEED,
            skip: 0,
        }])
    } else {
        let (threads, class) = parse_workload_name(&key.workload)?;
        let wl = smt_workloads::try_workload(threads, class).ok_or(ExpError::UnknownWorkload {
            threads,
            class: class.as_str(),
        })?;
        Ok(wl.thread_specs())
    }
}

fn parse_workload_name(name: &str) -> Result<(usize, smt_workloads::WorkloadClass), ExpError> {
    let bad = || ExpError::BadWorkloadName {
        given: name.to_string(),
    };
    let (n, c) = name.split_once('-').ok_or_else(bad)?;
    let threads: usize = n.parse().map_err(|_| bad())?;
    let class = match c {
        "ILP" => smt_workloads::WorkloadClass::Ilp,
        "MIX" => smt_workloads::WorkloadClass::Mix,
        "MEM" => smt_workloads::WorkloadClass::Mem,
        other => {
            return Err(ExpError::UnknownWorkloadClass {
                given: other.to_string(),
            })
        }
    };
    Ok((threads, class))
}

/// Canonical one-line description of a simulation request: everything that
/// determines its result, prefixed by the cache's code-version salt. This
/// string *is* the disk-cache key (content-addressed via FNV-1a).
fn describe_run(
    cfg: &SimConfig,
    specs: &[ThreadSpec],
    policy_desc: &str,
    params: ExpParams,
) -> String {
    let mut s = format!(
        "v{} warmup={} measure={} policy={} cfg={:?} threads=",
        crate::cache::CODE_VERSION,
        params.warmup,
        params.measure,
        policy_desc,
        cfg,
    );
    for spec in specs {
        s.push_str(&format!(
            "{}:{}:{}|",
            spec.profile.name, spec.seed, spec.skip
        ));
    }
    s
}

/// Memoizing, parallel simulation campaign.
pub struct Campaign {
    pub params: ExpParams,
    cache: Mutex<HashMap<RunKey, SimResult>>,
    /// Memo for custom runs (ablation sweeps with perturbed configs or
    /// parameterized policies), keyed by canonical run description.
    custom: Mutex<HashMap<String, SimResult>>,
    /// Cross-process persistent store, when `--cache-dir` is active.
    disk: Option<DiskCache>,
    /// Maximum worker threads for batch runs.
    parallelism: usize,
    /// Failed runs (watchdog trips, isolated panics, cache irregularities)
    /// recorded so the campaign can finish with partial results.
    failures: Mutex<Vec<RunFailure>>,
    /// Watchdog applied to every simulation this campaign runs.
    watchdog: Watchdog,
    /// Attach the cycle-level µarch sanitizer to every simulation
    /// (`--sanitize`). Disk-cache *loads* are skipped so each run actually
    /// executes under audit; results are still stored (the sanitizer is
    /// observation-only, so sanitized results are bit-identical).
    sanitize: bool,
    /// Let simulations use the quiescence-skipping engine (`--no-skip`
    /// clears it). Skipped and unskipped runs are bit-identical, so this
    /// does not enter the cache key.
    skip: bool,
    /// Attach the interval sampler to every simulation and write its
    /// time-series files here (`--intervals <dir>`). Like the sanitizer,
    /// interval runs bypass disk-cache *loads*: a cache hit would produce
    /// no series.
    intervals: Option<IntervalOpts>,
    /// Live campaign telemetry counters (always maintained; cheap).
    telemetry: Telemetry,
    /// Print per-completion progress lines on stderr (`--live`).
    live: bool,
    /// Machine-readable heartbeat stream (`events.jsonl`): one line per
    /// completed run, flushed eagerly so it can be tailed.
    heartbeat: Mutex<Option<std::io::BufWriter<std::fs::File>>>,
    /// Per-run quiescence-skip accounting, keyed by the run's `what`
    /// string: `(skipped_cycles, total_cycles)`. Filled by
    /// [`Campaign::simulate_policy`], drained by `run_protected` into the
    /// stats artifact (`skip_ratio`).
    skip_stats: Mutex<HashMap<String, (u64, u64)>>,
    /// Per-run fetch-policy switch counts, same lifecycle as `skip_stats`;
    /// non-zero only for the switching meta-policies. Feeds the
    /// `policy_switches` field of the stats artifact.
    switch_stats: Mutex<HashMap<String, u64>>,
    /// Fragment length in cycles for time-axis parallel replay
    /// (`--fragments <cycles>`); `None` runs every simulation
    /// sequentially.
    fragments: Option<u64>,
    /// How many campaign workers are currently simulating (1 outside a
    /// prefetch batch). Fragment replay only engages with the cores the
    /// batch pool leaves idle: intra-run parallelism is for grids
    /// *narrower* than the machine, not for competing with the pool.
    pool_width: AtomicUsize,
    /// Per-run fragment accounting, same lifecycle as `skip_stats`:
    /// `(fragments, fragment_cycles)`. Feeds the schema-v3 stats fields.
    frag_stats: Mutex<HashMap<String, (u64, u64)>>,
    /// Progress of the current prefetch batch, for runs/sec and ETA:
    /// `(batch_total, started, completed_before_batch)`.
    batch: Mutex<Option<(usize, Instant, u64)>>,
    /// Checkpoint/resume state (`--resume <dir>`): periodic machine
    /// snapshots for every in-flight simulation, a results store for
    /// completed runs, and the resume journal.
    ckpt: Option<CkptState>,
}

/// Everything a checkpointing campaign keeps under its resume directory.
struct CkptState {
    /// In-flight run snapshots (`<dir>/checkpoints`).
    store: CheckpointStore,
    /// Completed results (`<dir>/results`), so a resumed invocation never
    /// redoes finished work even when no `--cache-dir` is attached.
    results: DiskCache,
    /// Append-only event log (`<dir>/journal.jsonl`).
    journal: Mutex<Journal>,
    /// Cycles between periodic snapshots.
    interval: u64,
}

impl CkptState {
    /// Journal writes are best-effort: losing an audit line must never
    /// fail the run it describes.
    fn journal_completed(&self, what: &str, digest: u64, source: &str) {
        let _ = crate::lock_unpoisoned(&self.journal).note_completed(what, digest, source);
    }
}

/// Destination and window length for interval telemetry
/// ([`Campaign::set_intervals`]).
struct IntervalOpts {
    dir: PathBuf,
    window: u64,
}

/// Cache-layer hit/miss/coalesce counters, maintained across the whole
/// campaign (not just live batches). Relaxed ordering throughout: these are
/// monotonic event counts, never synchronization.
#[derive(Default)]
struct Telemetry {
    /// Results served from the cross-process disk cache.
    disk_hits: AtomicU64,
    /// Results that actually simulated in this process.
    sim_runs: AtomicU64,
    /// Identical results dropped because another worker raced the same key
    /// into the memo first.
    coalesced: AtomicU64,
}

/// Fail a sanitized run whose recorder caught invariant violations.
fn check_clean(what: &str, rec: &RecordingSanitizer) -> Result<(), ExpError> {
    if rec.is_clean() {
        Ok(())
    } else {
        Err(ExpError::Invariant {
            what: what.to_string(),
            violations: rec.total() as usize,
            first: rec.first().map(ToString::to_string).unwrap_or_default(),
        })
    }
}

/// Resolve a worker count from a raw `SMT_JOBS` value. `None` (variable
/// unset) falls back to the detected core count; anything set must be a
/// positive integer — `0`, empty, and non-numeric values are rejected
/// with a typed error instead of silently defaulting, because a CI box
/// that *meant* to pin the width must not quietly run at full fan-out.
pub fn parse_jobs(raw: Option<&str>) -> Result<usize, ConfigError> {
    match raw {
        None => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(ConfigError::InvalidJobs { got: v.to_string() }),
        },
    }
}

impl Campaign {
    /// As [`Campaign::try_new`], panicking on a malformed `SMT_JOBS`.
    /// Kept for the dozens of test/bench call sites, which follow the
    /// crate's documented fail-fast convention (the CLI goes through
    /// `try_new` and exits with a usage error instead).
    pub fn new(params: ExpParams) -> Campaign {
        Campaign::try_new(params).unwrap_or_else(|e| panic!("campaign setup failed: {e}"))
    }

    /// Build a campaign, resolving worker parallelism from the
    /// `SMT_JOBS` environment variable (CI runners and benchmark boxes
    /// want a pinned, reproducible width) or the detected core count.
    pub fn try_new(params: ExpParams) -> Result<Campaign, ConfigError> {
        let jobs = std::env::var("SMT_JOBS").ok();
        let parallelism = parse_jobs(jobs.as_deref())?;
        Ok(Campaign {
            params,
            cache: Mutex::new(HashMap::new()),
            custom: Mutex::new(HashMap::new()),
            disk: None,
            parallelism,
            failures: Mutex::new(Vec::new()),
            watchdog: Watchdog::default(),
            sanitize: false,
            skip: true,
            intervals: None,
            telemetry: Telemetry::default(),
            live: false,
            heartbeat: Mutex::new(None),
            skip_stats: Mutex::new(HashMap::new()),
            switch_stats: Mutex::new(HashMap::new()),
            fragments: None,
            pool_width: AtomicUsize::new(1),
            frag_stats: Mutex::new(HashMap::new()),
            batch: Mutex::new(None),
            ckpt: None,
        })
    }

    /// A campaign whose memo persists under `dir` across processes.
    pub fn with_disk_cache(params: ExpParams, dir: &Path) -> std::io::Result<Campaign> {
        let mut c = Campaign::new(params);
        c.attach_disk_cache(dir)?;
        Ok(c)
    }

    /// Attach the cross-process persistent store (`--cache-dir <dir>`).
    pub fn attach_disk_cache(&mut self, dir: &Path) -> std::io::Result<()> {
        self.disk = Some(DiskCache::open(dir)?);
        Ok(())
    }

    /// The persistent store, if one is attached.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Override the per-run watchdog (tests, chaos harness).
    pub fn set_watchdog(&mut self, wd: Watchdog) {
        self.watchdog = wd;
    }

    /// Make this campaign crash-resumable under `dir` (`--resume <dir>`):
    /// every plain (unsanitized, unprobed) simulation writes a machine
    /// snapshot every `interval` cycles and on watchdog trips or interrupt
    /// requests; completed results persist under `dir/results`; and
    /// `dir/journal.jsonl` logs every completion and interruption. A later
    /// campaign pointed at the same `dir` restores each in-flight run from
    /// its checkpoint and continues it bit-identically, serves completed
    /// runs from the results store, and redoes nothing.
    ///
    /// An `interval` of 0 disables periodic snapshots but keeps the
    /// interrupt/watchdog checkpoints and the results store.
    pub fn set_checkpointing(&mut self, dir: &Path, interval: u64) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let store = CheckpointStore::open(&dir.join("checkpoints"))?;
        let results = DiskCache::open(&dir.join("results"))?;
        let mut journal = Journal::open(&dir.join("journal.jsonl"))?;
        journal.note_resume()?;
        self.ckpt = Some(CkptState {
            store,
            results,
            journal: Mutex::new(journal),
            interval,
        });
        Ok(())
    }

    /// The checkpoint store, when [`Campaign::set_checkpointing`] is
    /// active (diagnostics, chaos fault injection).
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.ckpt.as_ref().map(|c| &c.store)
    }

    /// Run every simulation under the cycle-level µarch sanitizer. A run
    /// that records violations fails as [`ExpError::Invariant`] — its
    /// numbers came from a machine whose bookkeeping disagreed with
    /// itself. Disk-cache loads are bypassed (stores still happen) so
    /// each result really executed under audit.
    pub fn set_sanitize(&mut self, on: bool) {
        self.sanitize = on;
    }

    /// Whether the sanitizer is attached ([`Campaign::set_sanitize`]).
    pub fn sanitize(&self) -> bool {
        self.sanitize
    }

    /// Whether disk-cache loads must be bypassed so every run actually
    /// executes in-process: under `--sanitize` (the audit must run) and
    /// under `--intervals` (a cache hit would produce no time-series).
    fn bypass_cache_loads(&self) -> bool {
        self.sanitize || self.intervals.is_some()
    }

    /// Disable (or re-enable) the quiescence-skipping engine for every
    /// simulation this campaign runs (`--no-skip`). Observation-only:
    /// results are bit-identical either way.
    pub fn set_skip(&mut self, on: bool) {
        self.skip = on;
    }

    /// Whether simulations may use the quiescence engine
    /// ([`Campaign::set_skip`]).
    pub fn skip(&self) -> bool {
        self.skip
    }

    /// Enable time-axis parallel fragment replay (`--fragments <cycles>`):
    /// a simulation whose turn comes when spare cores exist first runs a
    /// cheap null-observer scout pass that snapshots the machine every
    /// `cycles` cycles, then re-simulates the fragments concurrently with
    /// the real observer configuration and stitches the results —
    /// bit-identical to a sequential run (the engine proves it per run).
    /// `0` disables. Checkpointing campaigns (`--resume`) ignore it: a
    /// resumable run must stay a single sequential timeline.
    pub fn set_fragments(&mut self, cycles: u64) {
        self.fragments = (cycles > 0).then_some(cycles);
    }

    /// Whether fragment replay is configured ([`Campaign::set_fragments`]).
    pub fn fragments_enabled(&self) -> bool {
        self.fragments.is_some()
    }

    /// The `(jobs, fragment_cycles)` plan for a run starting now, or
    /// `None` to simulate sequentially. Fragment workers only use cores
    /// the batch pool leaves idle: a full-width prefetch already keeps
    /// the machine busy with run-level parallelism, and oversubscribing
    /// it would slow both passes down.
    fn fragment_plan(&self) -> Option<(usize, u64)> {
        let cycles = self.fragments?;
        let width = self.pool_width.load(Ordering::Relaxed).max(1);
        let jobs = self.parallelism / width;
        (jobs >= 2 && self.ckpt.is_none()).then_some((jobs, cycles))
    }

    /// Stash a fresh run's fragment accounting for the stats artifact
    /// (`(fragments, fragment_cycles)`; schema v3).
    fn note_fragments(&self, what: &str, fragments: u64, cycles: u64) {
        crate::lock_unpoisoned(&self.frag_stats).insert(what.to_string(), (fragments, cycles));
    }

    fn take_fragments(&self, what: &str) -> Option<(u64, u64)> {
        crate::lock_unpoisoned(&self.frag_stats).remove(what)
    }

    /// Attach the interval sampler (`--intervals <dir>`): every simulation
    /// this campaign runs records a per-interval, per-thread time-series
    /// and writes `<run>.intervals.jsonl` plus a Chrome counter-track
    /// export under `dir`. Also opens the `events.jsonl` heartbeat stream
    /// there. Disk-cache *loads* are bypassed (a cache hit would produce no
    /// series); stores still happen, and results stay bit-identical — the
    /// sampler is observation-only.
    pub fn set_intervals(&mut self, dir: &Path, window: u64) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut hb = std::io::BufWriter::new(std::fs::File::create(dir.join("events.jsonl"))?);
        let header = Json::obj(vec![
            ("schema", Json::str("smt-heartbeat-v1")),
            ("schema_version", Json::U64(1)),
            ("interval_window", Json::U64(window)),
        ])
        .render();
        writeln!(hb, "{header}")?;
        hb.flush()?;
        *crate::lock_unpoisoned(&self.heartbeat) = Some(hb);
        self.intervals = Some(IntervalOpts {
            dir: dir.to_path_buf(),
            window,
        });
        Ok(())
    }

    /// Whether the interval sampler is attached ([`Campaign::set_intervals`]).
    pub fn intervals_enabled(&self) -> bool {
        self.intervals.is_some()
    }

    /// Print a progress line on stderr for every completed run (`--live`):
    /// source (disk/sim), cache counters, and — inside a prefetch batch —
    /// runs/sec and ETA.
    pub fn set_live(&mut self, on: bool) {
        self.live = on;
    }

    /// Cache-layer counters so far: `(disk_hits, sim_runs, coalesced)`.
    pub fn telemetry_counters(&self) -> (u64, u64, u64) {
        (
            self.telemetry.disk_hits.load(Ordering::Relaxed),
            self.telemetry.sim_runs.load(Ordering::Relaxed),
            self.telemetry.coalesced.load(Ordering::Relaxed),
        )
    }

    /// Record one completed run in the telemetry counters, the heartbeat
    /// stream, and (when `--live`) on stderr.
    fn note_done(&self, what: &str, source: &str) {
        match source {
            "disk" => self.telemetry.disk_hits.fetch_add(1, Ordering::Relaxed),
            _ => self.telemetry.sim_runs.fetch_add(1, Ordering::Relaxed),
        };
        let (hits, sims, coalesced) = self.telemetry_counters();
        let done = hits + sims;
        if let Some(hb) = crate::lock_unpoisoned(&self.heartbeat).as_mut() {
            let line = Json::obj(vec![
                ("event", Json::str("run")),
                ("what", Json::str(what.to_string())),
                ("source", Json::str(source.to_string())),
                ("completed", Json::U64(done)),
                ("disk_hits", Json::U64(hits)),
                ("sim_runs", Json::U64(sims)),
                ("memo_coalesced", Json::U64(coalesced)),
            ])
            .render();
            // Heartbeat I/O failures cost telemetry, never results.
            let _ = writeln!(hb, "{line}");
            let _ = hb.flush();
        }
        if self.live {
            let progress = match crate::lock_unpoisoned(&self.batch).as_ref() {
                Some((total, started, base)) => {
                    let in_batch = done.saturating_sub(*base);
                    let secs = started.elapsed().as_secs_f64().max(1e-9);
                    let rate = in_batch as f64 / secs;
                    let left = (*total as u64).saturating_sub(in_batch);
                    let eta = if rate > 0.0 {
                        format!("{:.0}s", left as f64 / rate)
                    } else {
                        "?".to_string()
                    };
                    format!(" {in_batch}/{total} {rate:.1} runs/s ETA {eta}")
                }
                None => String::new(),
            };
            eprintln!(
                "[campaign]{progress} {source} {what} (hits={hits} sims={sims} coalesced={coalesced})"
            );
        }
    }

    /// Stash a fresh run's quiescence-skip accounting for the stats
    /// artifact ([`Campaign::take_skip`]).
    fn note_skip(&self, what: &str, skipped: u64) {
        let total = self.params.warmup + self.params.measure;
        crate::lock_unpoisoned(&self.skip_stats).insert(what.to_string(), (skipped, total));
    }

    fn take_skip(&self, what: &str) -> Option<(u64, u64)> {
        crate::lock_unpoisoned(&self.skip_stats).remove(what)
    }

    /// Stash a fresh run's fetch-policy switch count for the stats
    /// artifact. Read from the policy's own switch log after the run: the
    /// simulator does not count switches, the policy does.
    fn note_switches(&self, what: &str, switches: u64) {
        crate::lock_unpoisoned(&self.switch_stats).insert(what.to_string(), switches);
    }

    fn take_switches(&self, what: &str) -> Option<u64> {
        crate::lock_unpoisoned(&self.switch_stats).remove(what)
    }

    /// Write one run's interval series (`<run>.intervals.jsonl` + Chrome
    /// counter-track export) under the `--intervals` directory. Telemetry
    /// I/O failures are recorded as campaign failures but do not fail the
    /// run: the simulation result itself is valid.
    fn write_intervals(&self, what: &str, specs: &[ThreadSpec], series: &IntervalSeries) {
        let Some(opts) = self.intervals.as_ref() else {
            return;
        };
        let names: Vec<String> = specs.iter().map(|s| s.profile.name.to_string()).collect();
        let stem = crate::artifacts::sanitize(what);
        let files = [
            (format!("{stem}.intervals.jsonl"), series.to_jsonl(&names)),
            (
                format!("{stem}.counters.trace.json"),
                series.counter_trace(&names),
            ),
        ];
        for (name, body) in files {
            let path = opts.dir.join(name);
            if let Err(e) = std::fs::write(&path, body) {
                let e = ExpError::Io {
                    context: format!("writing interval telemetry for {what}"),
                    detail: e.to_string(),
                };
                eprintln!("intervals: {e}");
                self.note_failure(what, &e);
            }
        }
    }

    /// One simulation behind the panic boundary and watchdog, with the
    /// sanitizer attached when [`Campaign::set_sanitize`] is on. Generic
    /// over the concrete policy type: grid runs arrive here through
    /// [`PolicyKind::dispatch`], so the paper's policies run with
    /// monomorphized (static) per-cycle dispatch, while custom policies
    /// pass `Box<dyn FetchPolicy>`. The sanitizer likewise monomorphizes
    /// in — the unsanitized arm runs the zero-cost `NullSanitizer` code.
    fn simulate_policy<F: FetchPolicy + 'static>(
        &self,
        what: &str,
        desc: Option<&str>,
        cfg: &SimConfig,
        specs: &[ThreadSpec],
        policy: F,
        rebuild: Option<&(dyn Fn() -> Box<dyn FetchPolicy> + Sync)>,
    ) -> Result<SimResult, ExpError> {
        // Fragment replay: when spare cores exist and the caller can
        // rebuild the policy for the replay workers, split this run
        // along the time axis instead of simulating it sequentially.
        // The stitched result is proven digest-identical in-engine, so
        // caches, artifacts, and downstream figures see no difference.
        if let (Some((jobs, fragment_cycles)), Some(rebuild)) = (self.fragment_plan(), rebuild) {
            return self.simulate_fragmented(
                what,
                cfg,
                specs,
                policy,
                rebuild,
                jobs,
                fragment_cycles,
            );
        }
        let window = self.intervals.as_ref().map(|o| o.window);
        // Four monomorphized arms: the sanitizer and the interval probe each
        // either compile in or compile out (`const ENABLED`), so the plain
        // arm still runs the zero-cost NullProbe/NullSanitizer code.
        match (self.sanitize, window) {
            (true, Some(window)) => protect(what, move || {
                let probe = IntervalProbe::new(IntervalConfig { window });
                let mut sim = Simulator::try_with_specs(
                    cfg.clone(),
                    policy,
                    specs,
                    probe,
                    RecordingSanitizer::new(),
                )?;
                sim.set_skip_enabled(self.skip);
                let result = sim
                    .try_run(self.params.warmup, self.params.measure, &self.watchdog)
                    .map_err(ExpError::from)?;
                self.note_skip(what, sim.skipped_cycles());
                self.note_switches(what, sim.policy().switch_log().len() as u64);
                check_clean(what, sim.sanitizer())?;
                let series = sim.into_probe().into_series();
                self.write_intervals(what, specs, &series);
                Ok(result)
            }),
            (true, None) => protect(what, move || {
                let mut sim = Simulator::try_sanitized(
                    cfg.clone(),
                    policy,
                    specs,
                    RecordingSanitizer::new(),
                )?;
                sim.set_skip_enabled(self.skip);
                let result = sim
                    .try_run(self.params.warmup, self.params.measure, &self.watchdog)
                    .map_err(ExpError::from)?;
                self.note_skip(what, sim.skipped_cycles());
                self.note_switches(what, sim.policy().switch_log().len() as u64);
                check_clean(what, sim.sanitizer())?;
                Ok(result)
            }),
            (false, Some(window)) => protect(what, move || {
                let probe = IntervalProbe::new(IntervalConfig { window });
                let mut sim = Simulator::try_with_probe(cfg.clone(), policy, specs, probe)?;
                sim.set_skip_enabled(self.skip);
                let result = sim
                    .try_run(self.params.warmup, self.params.measure, &self.watchdog)
                    .map_err(ExpError::from)?;
                self.note_skip(what, sim.skipped_cycles());
                self.note_switches(what, sim.policy().switch_log().len() as u64);
                let series = sim.into_probe().into_series();
                self.write_intervals(what, specs, &series);
                Ok(result)
            }),
            (false, None) => {
                // The plain arm is the only checkpointing one: --sanitize
                // and --intervals already force every run to execute fully
                // in-process (they bypass cache loads), so a resumable
                // snapshot would buy nothing there.
                if let (Some(ck), Some(desc)) = (self.ckpt.as_ref(), desc) {
                    return self.simulate_checkpointed(what, desc, cfg, specs, policy, ck);
                }
                protect(what, move || {
                    let mut sim = Simulator::try_new(cfg.clone(), policy, specs)?;
                    sim.set_skip_enabled(self.skip);
                    let result = sim
                        .try_run(self.params.warmup, self.params.measure, &self.watchdog)
                        .map_err(ExpError::from)?;
                    self.note_skip(what, sim.skipped_cycles());
                    self.note_switches(what, sim.policy().switch_log().len() as u64);
                    Ok(result)
                })
            }
        }
    }

    /// Time-axis parallel execution of one run (`--fragments`): a
    /// null-observer scout pass snapshots the machine every
    /// `fragment_cycles` cycles, a pool of `jobs` workers re-simulates
    /// the fragments concurrently with this campaign's real observer
    /// configuration, and the stitched output — result, interval
    /// series, switch log, skip accounting — is proven bit-identical
    /// to a sequential run before anything is recorded. Mirrors the
    /// four monomorphized observer arms of [`Campaign::simulate_policy`];
    /// the scout always runs the zero-cost NullProbe/NullSanitizer
    /// configuration (that is where the speedup comes from), and only
    /// the replay workers pay the observer tax, in parallel.
    #[allow(clippy::too_many_arguments)]
    fn simulate_fragmented<F: FetchPolicy + 'static>(
        &self,
        what: &str,
        cfg: &SimConfig,
        specs: &[ThreadSpec],
        policy: F,
        rebuild: &(dyn Fn() -> Box<dyn FetchPolicy> + Sync),
        jobs: usize,
        fragment_cycles: u64,
    ) -> Result<SimResult, ExpError> {
        let stitch_err = |detail: String| {
            ExpError::from(SimError::Fragment {
                fragment: None,
                detail,
            })
        };
        let window = self.intervals.as_ref().map(|o| o.window);
        let opts = FragmentOpts {
            jobs,
            fragment_cycles,
        };
        match (self.sanitize, window) {
            (true, Some(window)) => protect(what, move || {
                let mut scout = Simulator::try_new(cfg.clone(), policy, specs)?;
                scout.set_skip_enabled(self.skip);
                let factory = || {
                    let probe = IntervalProbe::new(IntervalConfig { window });
                    let mut sim = Simulator::try_with_specs(
                        cfg.clone(),
                        rebuild(),
                        specs,
                        probe,
                        RecordingSanitizer::new(),
                    )?;
                    sim.set_skip_enabled(self.skip);
                    Ok(sim)
                };
                let report = scout
                    .try_run_fragmented(
                        self.params.warmup,
                        self.params.measure,
                        &self.watchdog,
                        &opts,
                        &factory,
                    )
                    .map_err(ExpError::from)?;
                self.note_skip(what, report.scout_skipped);
                self.note_switches(what, report.switches.len() as u64);
                self.note_fragments(what, report.fragments.len() as u64, fragment_cycles);
                for frag in &report.fragments {
                    check_clean(what, &frag.sanitizer)?;
                }
                let parts: Vec<IntervalSeries> = report
                    .fragments
                    .into_iter()
                    .map(|f| f.probe.into_series())
                    .collect();
                let series = IntervalSeries::stitch(parts.iter()).map_err(stitch_err)?;
                self.write_intervals(what, specs, &series);
                Ok(report.result)
            }),
            (true, None) => protect(what, move || {
                let mut scout = Simulator::try_new(cfg.clone(), policy, specs)?;
                scout.set_skip_enabled(self.skip);
                let factory = || {
                    let mut sim = Simulator::try_sanitized(
                        cfg.clone(),
                        rebuild(),
                        specs,
                        RecordingSanitizer::new(),
                    )?;
                    sim.set_skip_enabled(self.skip);
                    Ok(sim)
                };
                let report = scout
                    .try_run_fragmented(
                        self.params.warmup,
                        self.params.measure,
                        &self.watchdog,
                        &opts,
                        &factory,
                    )
                    .map_err(ExpError::from)?;
                self.note_skip(what, report.scout_skipped);
                self.note_switches(what, report.switches.len() as u64);
                self.note_fragments(what, report.fragments.len() as u64, fragment_cycles);
                for frag in &report.fragments {
                    check_clean(what, &frag.sanitizer)?;
                }
                Ok(report.result)
            }),
            (false, Some(window)) => protect(what, move || {
                let mut scout = Simulator::try_new(cfg.clone(), policy, specs)?;
                scout.set_skip_enabled(self.skip);
                let factory = || {
                    let probe = IntervalProbe::new(IntervalConfig { window });
                    let mut sim = Simulator::try_with_probe(cfg.clone(), rebuild(), specs, probe)?;
                    sim.set_skip_enabled(self.skip);
                    Ok(sim)
                };
                let report = scout
                    .try_run_fragmented(
                        self.params.warmup,
                        self.params.measure,
                        &self.watchdog,
                        &opts,
                        &factory,
                    )
                    .map_err(ExpError::from)?;
                self.note_skip(what, report.scout_skipped);
                self.note_switches(what, report.switches.len() as u64);
                self.note_fragments(what, report.fragments.len() as u64, fragment_cycles);
                let parts: Vec<IntervalSeries> = report
                    .fragments
                    .into_iter()
                    .map(|f| f.probe.into_series())
                    .collect();
                let series = IntervalSeries::stitch(parts.iter()).map_err(stitch_err)?;
                self.write_intervals(what, specs, &series);
                Ok(report.result)
            }),
            (false, None) => protect(what, move || {
                let mut scout = Simulator::try_new(cfg.clone(), policy, specs)?;
                scout.set_skip_enabled(self.skip);
                let factory = || {
                    let mut sim = Simulator::try_new(cfg.clone(), rebuild(), specs)?;
                    sim.set_skip_enabled(self.skip);
                    Ok(sim)
                };
                let report = scout
                    .try_run_fragmented(
                        self.params.warmup,
                        self.params.measure,
                        &self.watchdog,
                        &opts,
                        &factory,
                    )
                    .map_err(ExpError::from)?;
                self.note_skip(what, report.scout_skipped);
                self.note_switches(what, report.switches.len() as u64);
                self.note_fragments(what, report.fragments.len() as u64, fragment_cycles);
                Ok(report.result)
            }),
        }
    }

    /// The checkpointing variant of the plain simulation arm: restore from
    /// a prior snapshot when one exists, write periodic snapshots while
    /// running, and turn interrupt requests into [`ExpError::Interrupted`]
    /// with a resumable checkpoint on disk. A watchdog trip also leaves a
    /// resumable checkpoint behind (the engine feeds the sink before
    /// erroring out). Irregular checkpoints surface as typed
    /// [`ExpError::Checkpoint`] failures — the caller deletes the entry
    /// and re-simulates from scratch.
    fn simulate_checkpointed<F: FetchPolicy + 'static>(
        &self,
        what: &str,
        desc: &str,
        cfg: &SimConfig,
        specs: &[ThreadSpec],
        policy: F,
        ck: &CkptState,
    ) -> Result<SimResult, ExpError> {
        protect(what, move || {
            let ckpt_err = |fault: CheckpointFault| ExpError::Checkpoint {
                path: ck.store.path_for(desc).display().to_string(),
                fault,
            };
            let mut sim = Simulator::try_new(cfg.clone(), policy, specs)?;
            sim.set_skip_enabled(self.skip);
            let pending = match ck.store.load_checked(desc).map_err(&ckpt_err)? {
                Some(snap) => Some(
                    sim.restore_run(&snap)
                        .map_err(|e| ckpt_err(CheckpointFault::Snapshot(e)))?,
                ),
                None => None,
            };
            // A failed snapshot write costs resumability, never the run.
            let mut sink = |snap: &MachineSnapshot| {
                if let Err(e) = ck.store.store(desc, snap) {
                    eprintln!("checkpoint: storing snapshot for {what}: {e}");
                }
            };
            let stop = crate::interrupt::requested;
            let mut opts = CheckpointOpts {
                interval: ck.interval,
                sink: &mut sink,
                stop: Some(&stop),
            };
            let outcome = match pending {
                Some(p) => sim.resume_run(p, &self.watchdog, &mut opts),
                None => sim.try_run_checkpointed(
                    self.params.warmup,
                    self.params.measure,
                    &self.watchdog,
                    &mut opts,
                ),
            }
            .map_err(ExpError::from)?;
            match outcome {
                RunOutcome::Completed(result) => {
                    self.note_skip(what, sim.skipped_cycles());
                    self.note_switches(what, sim.policy().switch_log().len() as u64);
                    // The run is done: its checkpoint is dead weight.
                    let _ = ck.store.remove(desc);
                    Ok(result)
                }
                RunOutcome::Interrupted(snap) => {
                    if let Err(e) = ck.store.store(desc, &snap) {
                        eprintln!("checkpoint: storing snapshot for {what}: {e}");
                    }
                    let _ =
                        crate::lock_unpoisoned(&ck.journal).note_interrupted(what, snap.cycle());
                    Err(ExpError::Interrupted {
                        what: what.to_string(),
                    })
                }
            }
        })
    }

    /// [`Campaign::simulate_policy`] for lazily-built dyn policies (the
    /// custom-run path).
    fn simulate(
        &self,
        what: &str,
        desc: Option<&str>,
        cfg: &SimConfig,
        specs: &[ThreadSpec],
        build: &(dyn Fn() -> Box<dyn FetchPolicy> + Sync),
    ) -> Result<SimResult, ExpError> {
        self.simulate_policy(what, desc, cfg, specs, build(), Some(build))
    }

    /// The canonical cache-key description of `key` (diagnostics and fault
    /// injection).
    pub fn describe(&self, key: &RunKey) -> Result<String, ExpError> {
        let specs = specs_for(key)?;
        Ok(describe_run(
            &key.arch.config(),
            &specs,
            &key.policy.cache_desc(),
            self.params,
        ))
    }

    /// Record a failed run so the sweep can finish with partial results.
    fn note_failure(&self, what: &str, error: &ExpError) {
        crate::artifacts::record_failure(what, error);
        crate::lock_unpoisoned(&self.failures).push(RunFailure {
            what: what.to_string(),
            error: error.clone(),
        });
    }

    /// Failures recorded so far.
    pub fn failures(&self) -> Vec<RunFailure> {
        crate::lock_unpoisoned(&self.failures).clone()
    }

    /// Render the failure summary table, or `None` for a clean campaign.
    pub fn failure_summary(&self) -> Option<String> {
        let failures = crate::lock_unpoisoned(&self.failures);
        if failures.is_empty() {
            return None;
        }
        let mut t = smt_metrics::table::TextTable::new(vec!["kind", "run", "error"]);
        for f in failures.iter() {
            t.row(vec![
                f.error.kind().to_string(),
                f.what.clone(),
                f.error.to_string().replace('\n', " | "),
            ]);
        }
        Some(format!(
            "{} run(s) failed; results are partial\n\n{}",
            failures.len(),
            t.render()
        ))
    }

    /// Run `key`, consulting and feeding the disk cache when attached.
    /// Every result entering the process (fresh or loaded) is recorded as
    /// a stats artifact exactly once.
    ///
    /// The full robustness path: the configuration is validated before the
    /// cache is consulted, an irregular cache entry is surfaced as a typed
    /// failure artifact (and treated as a miss), the simulation itself runs
    /// behind a panic boundary under the campaign watchdog, and stores
    /// retry transient I/O failures with backoff (a final store failure
    /// only costs future warm starts, so it is recorded, not fatal).
    fn run_protected(&self, key: &RunKey) -> Result<SimResult, ExpError> {
        let specs = specs_for(key)?;
        let cfg = key.arch.config();
        cfg.validate(specs.len())?;
        // `cache_desc` pins the full selector configuration for the
        // switching meta-policies; for the static policies it equals
        // `name()`, so pre-existing cache entries stay valid.
        let desc = describe_run(&cfg, &specs, &key.policy.cache_desc(), self.params);
        let what = format!(
            "{}/{}/{}",
            key.arch.as_str(),
            key.workload,
            key.policy.name()
        );
        // Under --sanitize a cache hit would dodge the audit entirely, and
        // under --intervals it would produce no time-series, so loads are
        // skipped in both modes; the store below still refreshes the entry
        // (probed and sanitized results are bit-identical to plain ones).
        if let Some(d) = self.disk.as_ref().filter(|_| !self.bypass_cache_loads()) {
            match d.load_checked(&desc) {
                Ok(Some(result)) => {
                    crate::artifacts::record(key, &result);
                    self.note_done(&what, "disk");
                    return Ok(result);
                }
                Ok(None) => {}
                Err(fault) => {
                    let e = ExpError::Cache {
                        path: d.entry_path(&desc).display().to_string(),
                        fault,
                    };
                    self.note_failure(&desc, &e);
                }
            }
        }
        // A resumed campaign serves completed runs from the resume
        // directory's own results store — no re-done work even when no
        // `--cache-dir` is attached.
        if let Some(ck) = self.ckpt.as_ref().filter(|_| !self.bypass_cache_loads()) {
            match ck.results.load_checked(&desc) {
                Ok(Some(result)) => {
                    ck.journal_completed(&what, result.digest(), "resume-cache");
                    crate::artifacts::record(key, &result);
                    self.note_done(&what, "disk");
                    return Ok(result);
                }
                Ok(None) => {}
                Err(fault) => {
                    let e = ExpError::Cache {
                        path: ck.results.entry_path(&desc).display().to_string(),
                        fault,
                    };
                    self.note_failure(&desc, &e);
                }
            }
            // Nothing finished: if an interrupt is already latched, don't
            // start a fresh simulation just to stop it at its first cycle.
            if crate::interrupt::requested() {
                return Err(ExpError::Interrupted { what });
            }
        }
        // Dispatch the policy at its concrete type: the simulator below is
        // monomorphized per policy, removing the per-cycle virtual call.
        struct GridRun<'a> {
            campaign: &'a Campaign,
            what: &'a str,
            desc: &'a str,
            cfg: &'a SimConfig,
            specs: &'a [ThreadSpec],
            /// The kind dispatching us, so the fragment-replay workers
            /// can rebuild fresh copies of the same policy.
            kind: PolicyKind,
        }
        impl PolicyVisitor for GridRun<'_> {
            type Out = Result<SimResult, ExpError>;
            fn visit<F: FetchPolicy + 'static>(self, policy: F) -> Self::Out {
                let kind = self.kind;
                let rebuild = move || kind.build();
                self.campaign.simulate_policy(
                    self.what,
                    Some(self.desc),
                    self.cfg,
                    self.specs,
                    policy,
                    Some(&rebuild),
                )
            }
        }
        let dispatch = || {
            key.policy.dispatch(GridRun {
                campaign: self,
                what: &what,
                desc: &desc,
                cfg: &cfg,
                specs: &specs,
                kind: key.policy,
            })
        };
        let result = match dispatch() {
            Ok(r) => r,
            // An irregular checkpoint never poisons the result: record the
            // typed fault, delete the damaged entry (which is what disables
            // resume), and re-simulate once from scratch.
            Err(e @ ExpError::Checkpoint { .. }) => {
                self.note_failure(&what, &e);
                if let Some(ck) = &self.ckpt {
                    let _ = ck.store.remove(&desc);
                }
                dispatch()?
            }
            Err(e) => return Err(e),
        };
        crate::artifacts::record_with_runtime(
            key,
            &result,
            self.take_skip(&what),
            self.take_switches(&what),
            self.take_fragments(&what),
        );
        self.note_done(&what, "sim");
        if let Some(d) = &self.disk {
            if let Err(e) = d.store_retrying(&desc, &result, 3) {
                let e = ExpError::Io {
                    context: format!("storing cache entry for {what}"),
                    detail: e.to_string(),
                };
                eprintln!("cache: {e}");
                self.note_failure(&desc, &e);
            }
        }
        if let Some(ck) = &self.ckpt {
            if let Err(e) = ck.results.store_retrying(&desc, &result, 3) {
                let e = ExpError::Io {
                    context: format!("storing resume result for {what}"),
                    detail: e.to_string(),
                };
                eprintln!("checkpoint: {e}");
                self.note_failure(&desc, &e);
            }
            ck.journal_completed(&what, result.digest(), "sim");
        }
        Ok(result)
    }

    /// Run an ad-hoc (config, workload, policy) combination through both
    /// cache layers. `policy_desc` must uniquely identify the policy
    /// *including its parameters* (e.g. `"DG(n=2)"`, not `"DG"`): it is
    /// part of the cache key, and two different policies sharing a
    /// description would alias. The policy itself is built lazily, only on
    /// a full miss.
    pub fn run_custom(
        &self,
        cfg: &SimConfig,
        specs: &[ThreadSpec],
        policy_desc: &str,
        build: impl Fn() -> Box<dyn FetchPolicy> + Sync,
    ) -> SimResult {
        self.try_run_custom(cfg, specs, policy_desc, build)
            .unwrap_or_else(|e| panic!("custom run {policy_desc} failed: {e}"))
    }

    /// As [`Campaign::run_custom`], with the same fault isolation as the
    /// grid path: config validation up front, panic capture, watchdog, and
    /// retrying stores. Failures are recorded on the campaign.
    pub fn try_run_custom(
        &self,
        cfg: &SimConfig,
        specs: &[ThreadSpec],
        policy_desc: &str,
        build: impl Fn() -> Box<dyn FetchPolicy> + Sync,
    ) -> Result<SimResult, ExpError> {
        if let Err(e) = cfg.validate(specs.len()) {
            let e = ExpError::Config(e);
            self.note_failure(policy_desc, &e);
            return Err(e);
        }
        let desc = describe_run(cfg, specs, policy_desc, self.params);
        if let Some(r) = crate::lock_unpoisoned(&self.custom).get(&desc) {
            return Ok(r.clone());
        }
        // As in `run_protected`: --sanitize and --intervals bypass cache
        // loads so the run actually executes under audit / with the probe.
        let mut loaded = match self.disk.as_ref().filter(|_| !self.bypass_cache_loads()) {
            Some(d) => match d.load_checked(&desc) {
                Ok(r) => r,
                Err(fault) => {
                    let e = ExpError::Cache {
                        path: d.entry_path(&desc).display().to_string(),
                        fault,
                    };
                    self.note_failure(&desc, &e);
                    None
                }
            },
            None => None,
        };
        // The resume directory's results store also serves custom runs.
        if let (None, Some(ck)) = (
            &loaded,
            self.ckpt.as_ref().filter(|_| !self.bypass_cache_loads()),
        ) {
            match ck.results.load_checked(&desc) {
                Ok(Some(r)) => {
                    ck.journal_completed(policy_desc, r.digest(), "resume-cache");
                    loaded = Some(r);
                }
                Ok(None) => {
                    if crate::interrupt::requested() {
                        return Err(ExpError::Interrupted {
                            what: policy_desc.to_string(),
                        });
                    }
                }
                Err(fault) => {
                    let e = ExpError::Cache {
                        path: ck.results.entry_path(&desc).display().to_string(),
                        fault,
                    };
                    self.note_failure(&desc, &e);
                }
            }
        }
        let result = match loaded {
            Some(r) => r,
            None => {
                let run = match self.simulate(policy_desc, Some(&desc), cfg, specs, &build) {
                    // As on the grid path: an irregular checkpoint is
                    // recorded, deleted, and re-simulated once from scratch.
                    Err(e @ ExpError::Checkpoint { .. }) => {
                        self.note_failure(policy_desc, &e);
                        if let Some(ck) = &self.ckpt {
                            let _ = ck.store.remove(&desc);
                        }
                        self.simulate(policy_desc, Some(&desc), cfg, specs, &build)
                    }
                    other => other,
                };
                let r = match run {
                    Ok(r) => r,
                    Err(e) => {
                        self.note_failure(policy_desc, &e);
                        return Err(e);
                    }
                };
                if let Some(d) = &self.disk {
                    if let Err(e) = d.store_retrying(&desc, &r, 3) {
                        let e = ExpError::Io {
                            context: format!("storing cache entry for {policy_desc}"),
                            detail: e.to_string(),
                        };
                        eprintln!("cache: {e}");
                        self.note_failure(&desc, &e);
                    }
                }
                if let Some(ck) = &self.ckpt {
                    if let Err(e) = ck.results.store_retrying(&desc, &r, 3) {
                        let e = ExpError::Io {
                            context: format!("storing resume result for {policy_desc}"),
                            detail: e.to_string(),
                        };
                        eprintln!("checkpoint: {e}");
                        self.note_failure(&desc, &e);
                    }
                    ck.journal_completed(policy_desc, r.digest(), "sim");
                }
                r
            }
        };
        Ok(crate::lock_unpoisoned(&self.custom)
            .entry(desc)
            .or_insert(result)
            .clone())
    }

    /// Ensure all `keys` are cached, running missing ones in parallel.
    pub fn prefetch(&self, keys: &[RunKey]) {
        let missing: Vec<RunKey> = {
            let cache = crate::lock_unpoisoned(&self.cache);
            let mut seen = std::collections::HashSet::new();
            keys.iter()
                .filter(|k| !cache.contains_key(*k) && seen.insert((*k).clone()))
                .cloned()
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        // Clamp the worker pool to the runs that will actually simulate: on
        // a warm batch most keys resolve from the disk cache (cheap loads),
        // and spawning a thread per key would mostly spawn idle threads.
        let pending = match self.disk.as_ref().filter(|_| !self.bypass_cache_loads()) {
            Some(d) => missing
                .iter()
                .filter(|k| {
                    self.describe(k)
                        .map(|desc| !d.entry_path(&desc).exists())
                        .unwrap_or(true)
                })
                .count()
                .max(1),
            None => missing.len(),
        };
        let workers = self.parallelism.min(pending);
        // Tell the fragment planner how many cores the batch pool holds:
        // a narrow batch (fewer pending runs than cores) leaves the
        // remainder free for intra-run fragment replay, while a full
        // batch disables it (run-level parallelism already saturates).
        self.pool_width.store(workers, Ordering::Relaxed);
        if self.live {
            let (hits, sims, _) = self.telemetry_counters();
            *crate::lock_unpoisoned(&self.batch) =
                Some((missing.len(), Instant::now(), hits + sims));
            eprintln!(
                "[campaign] prefetch: {} keys ({} pending simulation), {} worker(s)",
                missing.len(),
                pending,
                workers
            );
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let missing = &missing;
                    let next = &next;
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= missing.len() {
                            break;
                        }
                        // Ctrl-C on a checkpointing campaign: in-flight
                        // runs drain to resumable checkpoints; keys not
                        // yet started stay untouched for the resume.
                        if self.ckpt.is_some() && crate::interrupt::requested() {
                            break;
                        }
                        let k = &missing[i];
                        if self.live {
                            eprintln!(
                                "[worker {w}] {}/{}/{} ({}/{})",
                                k.arch.as_str(),
                                k.workload,
                                k.policy.name(),
                                i + 1,
                                missing.len()
                            );
                        }
                        // Failures are recorded on the campaign; a failed
                        // key simply stays unmemoized, and the rest of the
                        // batch keeps going (partial results).
                        let _ = self.try_result_owned(k.clone());
                    })
                })
                .collect();
            for h in handles {
                // Workers shouldn't panic (every simulation is behind the
                // campaign's panic boundary), but if one does, record it
                // and let the remaining keys finish on later demand.
                if let Err(payload) = h.join() {
                    self.note_failure(
                        "prefetch worker",
                        &ExpError::Panicked {
                            what: "prefetch worker".to_string(),
                            payload: crate::error::panic_message(&*payload),
                        },
                    );
                }
            }
        });
        self.pool_width.store(1, Ordering::Relaxed);
        if self.live {
            if let Some((total, started, base)) = crate::lock_unpoisoned(&self.batch).take() {
                let (hits, sims, coalesced) = self.telemetry_counters();
                let done = (hits + sims).saturating_sub(base);
                let secs = started.elapsed().as_secs_f64().max(1e-9);
                eprintln!(
                    "[campaign] batch done: {done}/{total} in {secs:.1}s ({:.1} runs/s; hits={hits} sims={sims} coalesced={coalesced})",
                    done as f64 / secs
                );
            }
        }
    }

    /// Get (running on demand if not cached) a simulation result.
    ///
    /// Panics if the run fails; sweeps that should degrade gracefully use
    /// [`Campaign::try_result`]. (The failure is recorded on the campaign
    /// *before* the panic, so a CLI-level `catch_unwind` still reports it.)
    pub fn result(&self, key: &RunKey) -> SimResult {
        self.try_result(key)
            .unwrap_or_else(|e| panic!("run {key:?} failed: {e}"))
    }

    /// Fallible [`Campaign::result`]: a failed run is recorded as a
    /// [`RunFailure`] and returned as the error, leaving the rest of the
    /// campaign untouched.
    pub fn try_result(&self, key: &RunKey) -> Result<SimResult, ExpError> {
        if let Some(r) = crate::lock_unpoisoned(&self.cache).get(key) {
            return Ok(r.clone());
        }
        self.try_result_owned(key.clone())
    }

    /// [`Campaign::result`] for callers that already own the key, sparing
    /// the clone on the miss path. Panics on failure like
    /// [`Campaign::result`].
    pub fn result_owned(&self, key: RunKey) -> SimResult {
        self.try_result_owned(key)
            .unwrap_or_else(|e| panic!("run failed: {e}"))
    }

    /// Fallible [`Campaign::result_owned`]. The memo is re-checked and
    /// filled through the entry API under a single lock acquisition; if
    /// another thread raced us to the same key, its (identical —
    /// simulation is deterministic) result wins and ours is dropped.
    pub fn try_result_owned(&self, key: RunKey) -> Result<SimResult, ExpError> {
        if let Some(r) = crate::lock_unpoisoned(&self.cache).get(&key) {
            return Ok(r.clone());
        }
        match self.run_protected(&key) {
            Ok(r) => {
                let mut cache = crate::lock_unpoisoned(&self.cache);
                let out = match cache.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        // Another worker raced the same key to completion;
                        // its (identical — simulation is deterministic)
                        // result wins and ours is dropped.
                        self.telemetry.coalesced.fetch_add(1, Ordering::Relaxed);
                        e.get().clone()
                    }
                    std::collections::hash_map::Entry::Vacant(v) => v.insert(r).clone(),
                };
                Ok(out)
            }
            Err(e) => {
                self.note_failure(&format!("{}/{}", key.arch.as_str(), key.workload), &e);
                Err(e)
            }
        }
    }

    /// Result for a (workload, policy) pair on an architecture.
    pub fn workload_result(&self, arch: Arch, wl: &Workload, policy: PolicyKind) -> SimResult {
        self.result_owned(RunKey::workload(arch, wl, policy))
    }

    /// Single-threaded IPC of a benchmark under ICOUNT (the relative-IPC
    /// denominator).
    pub fn solo_ipc(&self, arch: Arch, bench: &str) -> f64 {
        self.result_owned(RunKey::solo(arch, bench)).ipcs()[0]
    }

    /// Per-thread relative IPCs for a (workload, policy) run.
    pub fn relative_ipcs(&self, arch: Arch, wl: &Workload, policy: PolicyKind) -> Vec<f64> {
        let smt = self.workload_result(arch, wl, policy).ipcs();
        let solo: Vec<f64> = wl
            .benchmarks
            .iter()
            .map(|b| self.solo_ipc(arch, b))
            .collect();
        smt_metrics::relative_ipcs(&smt, &solo)
    }

    /// Hmean of relative IPCs for a (workload, policy) run.
    pub fn hmean(&self, arch: Arch, wl: &Workload, policy: PolicyKind) -> f64 {
        smt_metrics::hmean(&self.relative_ipcs(arch, wl, policy))
    }

    /// Number of cached results (for tests).
    pub fn cached(&self) -> usize {
        crate::lock_unpoisoned(&self.cache).len()
    }

    /// Build the full key grid for a set of workloads × policies.
    pub fn grid(arch: Arch, workloads: &[Workload], policies: &[PolicyKind]) -> Vec<RunKey> {
        let mut keys = Vec::with_capacity(workloads.len() * policies.len());
        for wl in workloads {
            for &p in policies {
                keys.push(RunKey::workload(arch, wl, p));
            }
        }
        keys
    }

    /// Keys for all solo baselines a workload set needs.
    pub fn solo_grid(arch: Arch, workloads: &[Workload]) -> Vec<RunKey> {
        let mut seen = std::collections::HashSet::new();
        let mut keys = Vec::new();
        for wl in workloads {
            for &b in &wl.benchmarks {
                if seen.insert(b) {
                    keys.push(RunKey::solo(arch, b));
                }
            }
        }
        keys
    }
}

/// Render an ad-hoc comparison of `policies` on one workload: throughput,
/// Hmean, per-thread IPCs, gating and flush statistics. A `workload_name`
/// outside Table 2(b)'s `"<2|4|6|8>-<ILP|MIX|MEM>"` grammar is a typed
/// error (the CLI maps it to a usage exit code).
pub fn comparison_table(
    campaign: &Campaign,
    arch: Arch,
    workload_name: &str,
    policies: &[PolicyKind],
) -> Result<String, ExpError> {
    let (threads, class) = parse_workload_name(workload_name)?;
    let wl = smt_workloads::try_workload(threads, class).ok_or(ExpError::UnknownWorkload {
        threads,
        class: class.as_str(),
    })?;
    let mut keys: Vec<RunKey> = policies
        .iter()
        .map(|&p| RunKey::workload(arch, &wl, p))
        .collect();
    keys.extend(Campaign::solo_grid(arch, std::slice::from_ref(&wl)));
    campaign.prefetch(&keys);

    let mut t = smt_metrics::table::TextTable::new(vec![
        "policy",
        "tput",
        "Hmean",
        "gated",
        "flushed%",
        "per-thread IPCs",
    ]);
    for &p in policies {
        let r = campaign.workload_result(arch, &wl, p);
        let gated: u64 = r.threads.iter().map(|s| s.gated_cycles).sum();
        let ipcs: Vec<String> = r.ipcs().iter().map(|i| format!("{i:.2}")).collect();
        t.row(vec![
            p.name().to_string(),
            format!("{:.2}", r.throughput()),
            format!("{:.2}", campaign.hmean(arch, &wl, p)),
            format!("{gated}"),
            format!("{:.1}", 100.0 * r.flushed_fraction()),
            ipcs.join(" / "),
        ]);
    }
    Ok(format!(
        "{} on the {} architecture ({})\n\n{}",
        wl.name,
        arch.as_str(),
        wl.benchmarks.join(", "),
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::{workload, WorkloadClass};

    fn quick_campaign() -> Campaign {
        Campaign::new(ExpParams {
            warmup: 1_000,
            measure: 3_000,
        })
    }

    #[test]
    fn results_are_memoized() {
        let c = quick_campaign();
        let wl = workload(2, WorkloadClass::Ilp);
        let a = c.workload_result(Arch::Baseline, &wl, PolicyKind::Icount);
        assert_eq!(c.cached(), 1);
        let b = c.workload_result(Arch::Baseline, &wl, PolicyKind::Icount);
        assert_eq!(c.cached(), 1);
        assert_eq!(a.threads, b.threads);
    }

    #[test]
    fn prefetch_fills_the_grid() {
        let c = quick_campaign();
        let wls = vec![
            workload(2, WorkloadClass::Ilp),
            workload(2, WorkloadClass::Mix),
        ];
        let keys = Campaign::grid(
            Arch::Baseline,
            &wls,
            &[PolicyKind::Icount, PolicyKind::DWarn],
        );
        c.prefetch(&keys);
        assert_eq!(c.cached(), 4);
        // Subsequent access hits the cache.
        let r = c.workload_result(Arch::Baseline, &wls[0], PolicyKind::DWarn);
        assert!(r.throughput() > 0.0);
        assert_eq!(c.cached(), 4);
    }

    #[test]
    fn prefetch_matches_on_demand_results() {
        // Parallel-batch and on-demand paths must agree (determinism).
        let wl = workload(2, WorkloadClass::Mem);
        let a = quick_campaign();
        a.prefetch(&[RunKey::workload(Arch::Baseline, &wl, PolicyKind::Stall)]);
        let ra = a.workload_result(Arch::Baseline, &wl, PolicyKind::Stall);
        let b = quick_campaign();
        let rb = b.workload_result(Arch::Baseline, &wl, PolicyKind::Stall);
        assert_eq!(ra.threads, rb.threads);
    }

    #[test]
    fn solo_grid_dedupes_replicas() {
        let wls = vec![workload(8, WorkloadClass::Mem)]; // mcf/twolf/vpr/parser x2
        let keys = Campaign::solo_grid(Arch::Baseline, &wls);
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn relative_ipcs_are_in_unit_range_mostly() {
        let c = quick_campaign();
        let wl = workload(2, WorkloadClass::Mix);
        let rel = c.relative_ipcs(Arch::Baseline, &wl, PolicyKind::Icount);
        assert_eq!(rel.len(), 2);
        for r in rel {
            assert!(
                r > 0.0 && r < 1.5,
                "relative IPC {r} out of plausible range"
            );
        }
    }

    #[test]
    fn workload_name_round_trip() {
        let (t, c) = parse_workload_name("6-MEM").unwrap();
        assert_eq!(t, 6);
        assert_eq!(c, WorkloadClass::Mem);
    }

    #[test]
    fn workload_name_errors_are_typed() {
        use crate::error::ExpError;
        assert!(matches!(
            parse_workload_name("nonsense"),
            Err(ExpError::BadWorkloadName { .. })
        ));
        assert!(matches!(
            parse_workload_name("x-MIX"),
            Err(ExpError::BadWorkloadName { .. })
        ));
        // The satellite case: a well-formed name with an invented class
        // must name the valid classes instead of panicking.
        match parse_workload_name("4-QUX") {
            Err(e @ ExpError::UnknownWorkloadClass { .. }) => {
                assert!(e.to_string().contains("ILP, MIX, MEM"));
            }
            other => panic!("expected UnknownWorkloadClass, got {other:?}"),
        }
    }

    #[test]
    fn failed_runs_are_recorded_not_fatal() {
        let c = quick_campaign();
        // Table 2(b) has no 3-thread workloads.
        let bad = RunKey {
            arch: Arch::Baseline,
            workload: "3-MIX".into(),
            policy: PolicyKind::Icount,
        };
        let err = c.try_result(&bad).unwrap_err();
        assert!(matches!(err, ExpError::UnknownWorkload { threads: 3, .. }));
        let failures = c.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].error.kind(), "unknown-workload");
        assert!(c.failure_summary().unwrap().contains("partial"));

        // The campaign keeps working after the failure.
        let wl = workload(2, WorkloadClass::Ilp);
        let r = c.workload_result(Arch::Baseline, &wl, PolicyKind::Icount);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn prefetch_survives_failing_keys() {
        let c = quick_campaign();
        let wl = workload(2, WorkloadClass::Mix);
        let keys = vec![
            RunKey {
                arch: Arch::Baseline,
                workload: "9-MIX".into(),
                policy: PolicyKind::Icount,
            },
            RunKey::workload(Arch::Baseline, &wl, PolicyKind::Icount),
            RunKey {
                arch: Arch::Baseline,
                workload: "solo:nosuchbench".into(),
                policy: PolicyKind::Icount,
            },
        ];
        c.prefetch(&keys);
        // The good key is cached; the bad ones are failures, not crashes.
        assert_eq!(c.cached(), 1);
        assert_eq!(c.failures().len(), 2);
        let r = c.workload_result(Arch::Baseline, &wl, PolicyKind::Icount);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn parse_jobs_accepts_positive_integers_and_defaults_when_unset() {
        assert_eq!(parse_jobs(Some("4")), Ok(4));
        assert_eq!(parse_jobs(Some(" 2 ")), Ok(2)); // surrounding whitespace ok
        assert!(parse_jobs(None).is_ok_and(|n| n >= 1)); // unset -> core count
    }

    #[test]
    fn parse_jobs_rejects_zero() {
        assert!(matches!(
            parse_jobs(Some("0")),
            Err(ConfigError::InvalidJobs { got }) if got == "0"
        ));
    }

    #[test]
    fn parse_jobs_rejects_empty() {
        assert!(matches!(
            parse_jobs(Some("")),
            Err(ConfigError::InvalidJobs { .. })
        ));
    }

    #[test]
    fn parse_jobs_rejects_non_numeric() {
        assert!(matches!(
            parse_jobs(Some("many")),
            Err(ConfigError::InvalidJobs { got }) if got == "many"
        ));
        assert!(parse_jobs(Some("-3")).is_err());
        assert!(parse_jobs(Some("2.5")).is_err());
    }
}
