//! Shared back-end resource accounting: physical registers, issue queues,
//! functional-unit bandwidth, and per-thread reorder buffers.
//!
//! These are the resources the paper's analysis revolves around: "the actual
//! problems are the issue queues and the physical registers, because they are
//! used for a variable, long period". The pipeline allocates from these pools
//! at rename/dispatch and a thread stalls when any of them is exhausted —
//! which is exactly the clog the fetch policies try to prevent.

use smt_trace::snapio::{self, SnapError, SnapReader};
use smt_trace::OpClass;

/// A counted pool of physical registers (one per class: int / fp).
///
/// `total` registers exist; `reserved` are permanently held as the
/// architectural state of the running contexts (32 per context per class),
/// matching how SMTSIM accounts renameable registers.
#[derive(Debug, Clone, Copy)]
pub struct RegPool {
    total: u32,
    reserved: u32,
    in_use: u32,
    /// High-water mark, for reporting.
    peak: u32,
}

impl RegPool {
    pub fn new(total: u32, reserved: u32) -> RegPool {
        assert!(
            reserved <= total,
            "architectural state exceeds the physical register file"
        );
        RegPool {
            total,
            reserved,
            in_use: 0,
            peak: 0,
        }
    }

    /// Renameable registers still free.
    pub fn free(&self) -> u32 {
        self.total - self.reserved - self.in_use
    }

    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Try to allocate one register.
    #[must_use]
    pub fn alloc(&mut self) -> bool {
        if self.free() == 0 {
            return false;
        }
        self.in_use += 1;
        self.peak = self.peak.max(self.in_use);
        true
    }

    /// Release one register.
    pub fn release(&mut self) {
        debug_assert!(self.in_use > 0, "register double-free");
        self.in_use -= 1;
    }

    /// Serialize the occupancy counters (capacities are construction-derived).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        snapio::put_u32(out, self.in_use);
        snapio::put_u32(out, self.peak);
    }

    /// Restore the counters captured by [`RegPool::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let in_use = r.u32()?;
        if in_use > self.total - self.reserved {
            return Err(SnapError::malformed(format!(
                "register occupancy {in_use} exceeds pool of {}",
                self.total - self.reserved
            )));
        }
        self.in_use = in_use;
        self.peak = r.u32()?;
        Ok(())
    }
}

/// The three issue queues of Table 3 (32 int, 32 fp, 32 ld/st entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IqKind {
    Int,
    Fp,
    LdSt,
}

impl IqKind {
    /// Queue an operation class dispatches into.
    pub fn for_class(class: OpClass) -> IqKind {
        match class {
            OpClass::Load | OpClass::Store => IqKind::LdSt,
            OpClass::FpAlu => IqKind::Fp,
            OpClass::IntAlu | OpClass::IntMul | OpClass::CondBranch | OpClass::Jump => IqKind::Int,
        }
    }

    pub const ALL: [IqKind; 3] = [IqKind::Int, IqKind::Fp, IqKind::LdSt];
}

/// Occupancy accounting for the shared issue queues.
#[derive(Debug, Clone, Copy)]
pub struct IssueQueues {
    caps: [u32; 3],
    used: [u32; 3],
    peaks: [u32; 3],
}

impl IssueQueues {
    pub fn new(int_cap: u32, fp_cap: u32, ldst_cap: u32) -> IssueQueues {
        IssueQueues {
            caps: [int_cap, fp_cap, ldst_cap],
            used: [0; 3],
            peaks: [0; 3],
        }
    }

    #[inline]
    fn idx(kind: IqKind) -> usize {
        match kind {
            IqKind::Int => 0,
            IqKind::Fp => 1,
            IqKind::LdSt => 2,
        }
    }

    pub fn free(&self, kind: IqKind) -> u32 {
        let i = Self::idx(kind);
        self.caps[i] - self.used[i]
    }

    pub fn used(&self, kind: IqKind) -> u32 {
        self.used[Self::idx(kind)]
    }

    pub fn peak(&self, kind: IqKind) -> u32 {
        self.peaks[Self::idx(kind)]
    }

    #[must_use]
    pub fn alloc(&mut self, kind: IqKind) -> bool {
        let i = Self::idx(kind);
        if self.used[i] == self.caps[i] {
            return false;
        }
        self.used[i] += 1;
        self.peaks[i] = self.peaks[i].max(self.used[i]);
        true
    }

    pub fn release(&mut self, kind: IqKind) {
        let i = Self::idx(kind);
        debug_assert!(self.used[i] > 0, "issue-queue double-free");
        self.used[i] -= 1;
    }

    pub fn total_used(&self) -> u32 {
        self.used.iter().sum()
    }

    /// Serialize per-queue occupancy and high-water marks.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for i in 0..3 {
            snapio::put_u32(out, self.used[i]);
            snapio::put_u32(out, self.peaks[i]);
        }
    }

    /// Restore the counters captured by [`IssueQueues::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        for i in 0..3 {
            let used = r.u32()?;
            if used > self.caps[i] {
                return Err(SnapError::malformed(format!(
                    "issue-queue occupancy {used} exceeds capacity {}",
                    self.caps[i]
                )));
            }
            self.used[i] = used;
            self.peaks[i] = r.u32()?;
        }
        Ok(())
    }
}

/// Functional-unit pools. The paper's FUs are fully pipelined, so a pool of
/// `n` units means at most `n` operations of that class can *begin* execution
/// per cycle; occupancy across cycles is unconstrained.
#[derive(Debug, Clone, Copy)]
pub struct FuPools {
    caps: [u32; 3],
    used_this_cycle: [u32; 3],
}

/// FU classes: int (ALU/mul/branch), fp, load/store ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuKind {
    Int,
    Fp,
    LdSt,
}

impl FuKind {
    pub fn for_class(class: OpClass) -> FuKind {
        match class {
            OpClass::Load | OpClass::Store => FuKind::LdSt,
            OpClass::FpAlu => FuKind::Fp,
            OpClass::IntAlu | OpClass::IntMul | OpClass::CondBranch | OpClass::Jump => FuKind::Int,
        }
    }
}

impl FuPools {
    pub fn new(int_units: u32, fp_units: u32, ldst_units: u32) -> FuPools {
        FuPools {
            caps: [int_units, fp_units, ldst_units],
            used_this_cycle: [0; 3],
        }
    }

    #[inline]
    fn idx(kind: FuKind) -> usize {
        match kind {
            FuKind::Int => 0,
            FuKind::Fp => 1,
            FuKind::LdSt => 2,
        }
    }

    /// Called at the start of every cycle.
    pub fn new_cycle(&mut self) {
        self.used_this_cycle = [0; 3];
    }

    /// Try to start an operation of `kind` this cycle.
    #[must_use]
    pub fn issue(&mut self, kind: FuKind) -> bool {
        let i = Self::idx(kind);
        if self.used_this_cycle[i] == self.caps[i] {
            return false;
        }
        self.used_this_cycle[i] += 1;
        true
    }

    pub fn available(&self, kind: FuKind) -> u32 {
        let i = Self::idx(kind);
        self.caps[i] - self.used_this_cycle[i]
    }

    /// Serialize the intra-cycle issue counters.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for &u in &self.used_this_cycle {
            snapio::put_u32(out, u);
        }
    }

    /// Restore the counters captured by [`FuPools::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        for u in &mut self.used_this_cycle {
            *u = r.u32()?;
        }
        Ok(())
    }
}

/// Per-thread reorder-buffer occupancy (Table 3: 256 entries per thread; the
/// ROB is private, so it is a counter, not a shared pool).
#[derive(Debug, Clone)]
pub struct RobCounters {
    cap: u32,
    used: Vec<u32>,
}

impl RobCounters {
    pub fn new(cap_per_thread: u32, num_threads: usize) -> RobCounters {
        RobCounters {
            cap: cap_per_thread,
            used: vec![0; num_threads],
        }
    }

    pub fn free(&self, thread: usize) -> u32 {
        self.cap - self.used[thread]
    }

    pub fn used(&self, thread: usize) -> u32 {
        self.used[thread]
    }

    #[must_use]
    pub fn alloc(&mut self, thread: usize) -> bool {
        if self.used[thread] == self.cap {
            return false;
        }
        self.used[thread] += 1;
        true
    }

    pub fn release(&mut self, thread: usize) {
        debug_assert!(self.used[thread] > 0, "ROB double-free");
        self.used[thread] -= 1;
    }

    /// Serialize per-thread ROB occupancy.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for &u in &self.used {
            snapio::put_u32(out, u);
        }
    }

    /// Restore the counters captured by [`RobCounters::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        for u in &mut self.used {
            let v = r.u32()?;
            if v > self.cap {
                return Err(SnapError::malformed(format!(
                    "ROB occupancy {v} exceeds capacity {}",
                    self.cap
                )));
            }
            *u = v;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_pool_excludes_architectural_state() {
        // Table 3: 384 int regs; 4 threads reserve 128.
        let p = RegPool::new(384, 128);
        assert_eq!(p.free(), 256);
    }

    #[test]
    fn reg_pool_exhausts_and_releases() {
        let mut p = RegPool::new(10, 8);
        assert!(p.alloc());
        assert!(p.alloc());
        assert!(!p.alloc(), "pool exhausted");
        p.release();
        assert!(p.alloc());
        assert_eq!(p.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "architectural state exceeds")]
    fn reg_pool_rejects_impossible_reservation() {
        let _ = RegPool::new(64, 65);
    }

    #[test]
    fn iq_kinds_map_classes() {
        assert_eq!(IqKind::for_class(OpClass::Load), IqKind::LdSt);
        assert_eq!(IqKind::for_class(OpClass::Store), IqKind::LdSt);
        assert_eq!(IqKind::for_class(OpClass::FpAlu), IqKind::Fp);
        assert_eq!(IqKind::for_class(OpClass::IntAlu), IqKind::Int);
        assert_eq!(IqKind::for_class(OpClass::CondBranch), IqKind::Int);
    }

    #[test]
    fn issue_queues_track_per_kind() {
        let mut q = IssueQueues::new(2, 1, 1);
        assert!(q.alloc(IqKind::Int));
        assert!(q.alloc(IqKind::Int));
        assert!(!q.alloc(IqKind::Int));
        assert!(q.alloc(IqKind::Fp));
        assert!(!q.alloc(IqKind::Fp));
        assert_eq!(q.total_used(), 3);
        q.release(IqKind::Int);
        assert_eq!(q.free(IqKind::Int), 1);
        assert_eq!(q.peak(IqKind::Int), 2);
    }

    #[test]
    fn fu_bandwidth_resets_each_cycle() {
        let mut fu = FuPools::new(2, 1, 1);
        assert!(fu.issue(FuKind::Int));
        assert!(fu.issue(FuKind::Int));
        assert!(!fu.issue(FuKind::Int));
        fu.new_cycle();
        assert!(fu.issue(FuKind::Int));
        assert_eq!(fu.available(FuKind::Int), 1);
    }

    #[test]
    fn rob_is_per_thread() {
        let mut rob = RobCounters::new(2, 2);
        assert!(rob.alloc(0));
        assert!(rob.alloc(0));
        assert!(!rob.alloc(0));
        assert!(rob.alloc(1), "thread 1 has its own ROB");
        rob.release(0);
        assert_eq!(rob.free(0), 1);
        assert_eq!(rob.used(1), 1);
    }
}
