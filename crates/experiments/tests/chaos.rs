//! Property-style acceptance tests for the chaos harness.
//!
//! The robustness contract (ISSUE 3): a chaos campaign with >= 32
//! deterministic faults across the trace, cache, and config surfaces must
//! complete with partial results, every injected fault must resolve to a
//! typed error artifact or an absorbed (still bit-identical) result, no
//! fault may hang or escape as a panic, and every non-faulted golden run
//! must reproduce its digest exactly.

use smt_experiments::chaos::{self, ChaosOpts, Outcome};

fn quick(seed: u64, faults: usize) -> ChaosOpts {
    let mut o = ChaosOpts::new(seed, faults);
    o.quick = true;
    o
}

#[test]
fn thirty_two_faults_all_resolve_typed_or_recovered() {
    let report = chaos::run(&quick(1, 32)).expect("harness-level failure");
    assert_eq!(report.faults.len(), 32);

    // Zero violations: no escaped panic, no hang, no silent corruption.
    for f in &report.faults {
        assert!(
            !matches!(f.outcome, Outcome::Violation { .. }),
            "fault #{} ({}) violated the robustness contract: {:?}",
            f.index,
            f.fault,
            f.outcome
        );
    }

    // The plan must actually span all three mandated surfaces.
    for surface in ["trace", "cache", "config"] {
        assert!(
            report.faults.iter().any(|f| f.surface == surface),
            "no fault hit the {surface} surface"
        );
    }

    // Most faults corrupt something detectable, so typed errors dominate;
    // at least one of each resolution class should appear at this width.
    let typed = report
        .faults
        .iter()
        .filter(|f| matches!(f.outcome, Outcome::TypedError { .. }))
        .count();
    assert!(typed > 0, "no fault surfaced as a typed error");

    // Final golden verification: whatever the faults did to the cache,
    // every key reproduced its pre-chaos digest bit-for-bit.
    assert!(report.goldens_ok, "golden digests diverged after chaos");
    assert!(report.golden_runs >= 4);
}

#[test]
fn chaos_is_deterministic_per_seed() {
    let a = chaos::run(&quick(2, 12)).expect("harness-level failure");
    let b = chaos::run(&quick(2, 12)).expect("harness-level failure");
    assert_eq!(a.render(), b.render(), "same seed must replay identically");

    // The first pass cycles through every kind, so compare full reports
    // (corruption positions and payloads are seed-dependent), not just
    // the kind sequence.
    let c = chaos::run(&quick(3, 12)).expect("harness-level failure");
    assert_ne!(a.render(), c.render(), "different seeds must diverge");
    assert!(c.goldens_ok);
}
