//! In-flight instruction records and the generational slab that stores them.
//!
//! Every fetched instruction (correct-path or wrong-path) lives in the slab
//! from fetch until commit or squash. Handles are generational so that
//! stale references (e.g. a waiter list entry pointing at a squashed
//! producer) are detected instead of aliasing a recycled slot.

use smt_trace::DynInst;
use smt_uarch::{IqKind, MemAccess};

/// Generational handle to an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    pub idx: u32,
    pub gen: u32,
}

/// Pipeline position of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// In the per-thread fetch queue; dispatch-eligible at `ready_at`.
    Frontend { ready_at: u64 },
    /// Dispatched into an issue queue, waiting for sources.
    Waiting,
    /// All sources ready; can issue at `at`.
    Ready { at: u64 },
    /// Issued; execution completes (result broadcast) at `complete_at`.
    Executing { complete_at: u64 },
    /// Executed; waiting to commit.
    Done,
}

/// An in-flight dynamic instruction plus its pipeline state.
#[derive(Debug, Clone)]
pub struct InFlight {
    pub thread: usize,
    /// Global fetch sequence number: the age order used by the scheduler.
    pub seq: u64,
    pub inst: DynInst,
    pub stage: Stage,
    /// Unready source count (producers still in flight).
    pub remaining_srcs: u8,
    /// Instructions waiting on this one's result.
    pub waiters: Vec<Handle>,
    /// Issue-queue entry held (from dispatch until issue).
    pub iq: Option<IqKind>,
    /// True while this instruction holds a physical register (int or fp per
    /// its class), from dispatch until commit/squash.
    pub holds_reg: bool,
    /// Producer this instruction's rename displaced (for squash repair).
    pub prev_producer: Option<Handle>,
    /// Result is available for bypass: consumers may issue such that their
    /// execution lines up with this instruction's completing execution.
    pub result_ready: bool,
    /// Memory access outcome (loads, set at execute).
    pub mem: Option<MemAccess>,
    /// The load is counted in its thread's outstanding-L1-miss counter.
    pub dmiss_counted: bool,
    /// The load is counted in its thread's declared-L2-miss counter.
    pub declared: bool,
    /// Where the front-end resumed after this instruction (the predicted
    /// next PC for branches; `pc + 4` otherwise).
    pub fetch_next_pc: u64,
    /// Branch was discovered (at fetch, against the trace) to have been
    /// mispredicted; executing it redirects the front-end.
    pub mispredicted: bool,
    pub squashed: bool,
}

/// Generational slab.
#[derive(Debug, Default)]
pub struct Slab {
    slots: Vec<(u32, Option<InFlight>)>,
    free: Vec<u32>,
    live: usize,
}

impl Slab {
    pub fn new() -> Slab {
        Slab::default()
    }

    pub fn insert(&mut self, item: InFlight) -> Handle {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.1.is_none());
            slot.1 = Some(item);
            Handle { idx, gen: slot.0 }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push((0, Some(item)));
            Handle { idx, gen: 0 }
        }
    }

    /// Access if the handle is still current.
    pub fn get(&self, h: Handle) -> Option<&InFlight> {
        self.slots
            .get(h.idx as usize)
            .filter(|s| s.0 == h.gen)
            .and_then(|s| s.1.as_ref())
    }

    pub fn get_mut(&mut self, h: Handle) -> Option<&mut InFlight> {
        self.slots
            .get_mut(h.idx as usize)
            .filter(|s| s.0 == h.gen)
            .and_then(|s| s.1.as_mut())
    }

    /// Remove the instruction; the slot's generation advances, invalidating
    /// all outstanding handles to it.
    pub fn remove(&mut self, h: Handle) -> Option<InFlight> {
        let slot = self.slots.get_mut(h.idx as usize)?;
        if slot.0 != h.gen || slot.1.is_none() {
            return None;
        }
        let item = slot.1.take();
        slot.0 = slot.0.wrapping_add(1);
        self.free.push(h.idx);
        self.live -= 1;
        item
    }

    pub fn live(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_trace::{CtrlKind, OpClass};

    fn dummy(thread: usize, seq: u64) -> InFlight {
        InFlight {
            thread,
            seq,
            inst: DynInst {
                pc: 0,
                static_idx: 0,
                class: OpClass::IntAlu,
                ctrl: CtrlKind::None,
                dest: Some(1),
                srcs: [None, None],
                mem_addr: None,
                taken: false,
                next_pc: 4,
                wrong_path: false,
            },
            stage: Stage::Frontend { ready_at: 0 },
            remaining_srcs: 0,
            waiters: Vec::new(),
            iq: None,
            holds_reg: false,
            prev_producer: None,
            result_ready: false,
            mem: None,
            dmiss_counted: false,
            declared: false,
            fetch_next_pc: 4,
            mispredicted: false,
            squashed: false,
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = Slab::new();
        let h = s.insert(dummy(0, 1));
        assert_eq!(s.get(h).unwrap().seq, 1);
        assert_eq!(s.live(), 1);
        let item = s.remove(h).unwrap();
        assert_eq!(item.seq, 1);
        assert!(s.is_empty());
        assert!(s.get(h).is_none());
    }

    #[test]
    fn stale_handles_do_not_alias_recycled_slots() {
        let mut s = Slab::new();
        let h1 = s.insert(dummy(0, 1));
        s.remove(h1);
        let h2 = s.insert(dummy(0, 2)); // reuses the slot
        assert_eq!(h1.idx, h2.idx, "slot must be recycled");
        assert!(s.get(h1).is_none(), "stale handle must not resolve");
        assert_eq!(s.get(h2).unwrap().seq, 2);
    }

    #[test]
    fn double_remove_is_none() {
        let mut s = Slab::new();
        let h = s.insert(dummy(0, 1));
        assert!(s.remove(h).is_some());
        assert!(s.remove(h).is_none());
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut s = Slab::new();
        let h = s.insert(dummy(0, 1));
        s.get_mut(h).unwrap().stage = Stage::Done;
        assert_eq!(s.get(h).unwrap().stage, Stage::Done);
    }

    #[test]
    fn live_count_tracks_inserts_and_removes() {
        let mut s = Slab::new();
        let hs: Vec<Handle> = (0..10).map(|i| s.insert(dummy(0, i))).collect();
        assert_eq!(s.live(), 10);
        for h in &hs[..5] {
            s.remove(*h);
        }
        assert_eq!(s.live(), 5);
    }
}
