//! Persistent, content-addressed campaign cache (`--cache-dir`).
//!
//! [`crate::runner::Campaign`] memoizes simulation results in memory, but
//! that memo dies with the process — every CLI invocation re-simulates the
//! full grid from scratch. This module extends the memo to disk: each
//! result is stored in one file named by the FNV-1a hash of a *canonical
//! key description* covering everything that determines the result:
//!
//! * the simulator code version ([`CODE_VERSION`] — bump it whenever a
//!   change alters simulation semantics; every stored entry then misses
//!   and is re-simulated, which is the cache's explicit invalidation story);
//! * the full `SimConfig` (via its `Debug` rendering, so ablation sweeps
//!   that perturb one field get distinct keys);
//! * the workload: every thread's benchmark name, trace seed, and skip;
//! * the fetch policy, including its parameters;
//! * the warm-up and measurement window lengths.
//!
//! The file format is a checksummed, versioned text format (the workspace
//! is dependency-free by design, so there is no serde). A reader treats
//! *any* irregularity — bad magic, failed checksum, truncation, parse
//! error, or a key collision — as a miss and re-simulates; a corrupt cache
//! can cost time but never wrong results. Floats are stored as bit
//! patterns, so a round-trip is bit-exact and digest-preserving.
//!
//! Writes go through a uniquely named temporary file followed by an atomic
//! rename, so a crashed or concurrent writer never leaves a half-written
//! entry under the final name; temp files orphaned by a crash are swept on
//! the next [`DiskCache::open`]. Loads can distinguish *why* an entry was
//! rejected ([`CacheFault`], via [`DiskCache::load_checked`]) so campaigns
//! can surface corruption as typed failure artifacts while still treating
//! it as a miss. Destructive administration (`cache clear`) takes an
//! advisory lock file so two concurrent processes cannot interleave a
//! clear with each other's writes.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use smt_pipeline::{SimResult, ThreadStats};
use smt_uarch::ThreadMemStats;

/// Simulator-semantics version baked into every cache key.
///
/// Bump this whenever a code change alters simulation *results* (timing
/// model, policy behaviour, trace synthesis, …). Entries written under the
/// old version stop matching and are re-simulated; stale files are inert
/// and can be removed with `smt-experiments cache clear`.
pub const CODE_VERSION: u32 = 1;

/// First line of every cache file.
const MAGIC: &str = "dwarn-campaign-cache v1";

/// Cache entry file extension.
const EXT: &str = "dwc";

/// FNV-1a 64-bit over a byte string (the same hand-rolled construction as
/// `SimResult::digest`: stable across Rust releases, unlike
/// `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a cache entry was rejected. Every variant is still a *miss* — the
/// campaign re-simulates — but typed so the irregularity can be reported
/// as a failure artifact instead of vanishing silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheFault {
    /// The entry file exists but could not be read.
    Unreadable(String),
    /// The file does not start with the cache magic (wrong format or
    /// overwritten by something else).
    BadMagic,
    /// The body does not match its stored checksum (bit flip, truncation,
    /// torn write).
    BadChecksum,
    /// Magic and checksum line are fine but the body does not parse.
    Malformed(&'static str),
    /// The entry is internally consistent but records a *different* key —
    /// an FNV-1a hash collision mapped another run onto this file.
    KeyCollision,
}

impl std::fmt::Display for CacheFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheFault::Unreadable(e) => write!(f, "unreadable entry: {e}"),
            CacheFault::BadMagic => write!(f, "bad magic (not a cache entry)"),
            CacheFault::BadChecksum => write!(f, "checksum mismatch"),
            CacheFault::Malformed(what) => write!(f, "malformed entry ({what})"),
            CacheFault::KeyCollision => write!(f, "key collision (different run)"),
        }
    }
}

impl std::error::Error for CacheFault {}

/// Aggregate numbers for `cache stats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Entry files present.
    pub entries: usize,
    /// Total bytes across entry files.
    pub bytes: u64,
}

/// Outcome of `cache verify`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheVerify {
    /// Entries that parsed and checksummed clean.
    pub ok: usize,
    /// Files that failed the magic/checksum/parse gauntlet.
    pub corrupt: Vec<PathBuf>,
}

/// An on-disk store of [`SimResult`]s keyed by canonical run descriptions.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `dir`. Temp files left
    /// behind by writers that crashed mid-store are removed.
    pub fn open(dir: &Path) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        let cache = DiskCache {
            dir: dir.to_path_buf(),
        };
        cache.sweep_stale_tmp();
        Ok(cache)
    }

    /// Remove `.tmpPID-SEQ` files whose writing process is no longer alive.
    /// Best-effort: sweep failures never block opening the cache.
    fn sweep_stale_tmp(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for e in entries.filter_map(|e| e.ok()) {
            let path = e.path();
            let Some(ext) = path.extension().and_then(|x| x.to_str()) else {
                continue;
            };
            let Some(rest) = ext.strip_prefix("tmp") else {
                continue;
            };
            let writer_pid = rest.split('-').next().and_then(|p| p.parse::<u32>().ok());
            let stale = match writer_pid {
                Some(pid) => pid != std::process::id() && !process_alive(pid),
                None => true, // unparseable tmp name: an old format, sweep it
            };
            if stale {
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    /// The directory this cache stores entries in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for `key_desc` lives in (diagnostics and fault
    /// injection; the file may not exist).
    pub fn entry_path(&self, key_desc: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.{EXT}", fnv1a(key_desc.as_bytes())))
    }

    /// Look up a result. Any irregularity in the stored file — missing,
    /// corrupt, truncated, or a hash collision with a different key — is a
    /// miss.
    pub fn load(&self, key_desc: &str) -> Option<SimResult> {
        self.load_checked(key_desc).ok().flatten()
    }

    /// As [`DiskCache::load`], but an irregular entry is returned as a
    /// typed [`CacheFault`] instead of being folded into the miss.
    /// `Ok(None)` means the entry simply is not there.
    pub fn load_checked(&self, key_desc: &str) -> Result<Option<SimResult>, CacheFault> {
        let text = match std::fs::read_to_string(self.entry_path(key_desc)) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CacheFault::Unreadable(e.to_string())),
        };
        parse_entry(&text, Some(key_desc)).map(Some)
    }

    /// Store a result under its key description. The entry is written to a
    /// uniquely named temp file (pid + per-process sequence number, so
    /// concurrent stores in one process never collide), fsynced, and moved
    /// into place with an atomic rename — a crash at any point leaves
    /// either the old entry or no entry, never a torn one.
    pub fn store(&self, key_desc: &str, result: &SimResult) -> std::io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = self.entry_path(key_desc);
        let tmp = path.with_extension(format!(
            "tmp{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let written = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(render_entry(key_desc, result).as_bytes())?;
            f.sync_all()
        })();
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// [`DiskCache::store`] with bounded retry for transient I/O failures:
    /// `attempts` tries total, backing off 5 ms, 10 ms, 20 ms, … plus a
    /// deterministic 0–5 ms jitter between them. The jitter decorrelates
    /// parallel writers contending on one directory (they would otherwise
    /// all retry on the same schedule) while staying fully reproducible:
    /// it is a pure function of key, pid, and attempt number.
    /// Returns the last error if every attempt fails.
    pub fn store_retrying(
        &self,
        key_desc: &str,
        result: &SimResult,
        attempts: u32,
    ) -> std::io::Result<()> {
        let mut delay = Duration::from_millis(5);
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                let seed = fnv1a(key_desc.as_bytes())
                    ^ ((std::process::id() as u64) << 32)
                    ^ attempt as u64;
                std::thread::sleep(delay + Duration::from_micros(splitmix64(seed) % 5_000));
                delay *= 2;
            }
            match self.store(key_desc, result) {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        // `attempts.max(1)` guarantees one iteration; the fallback keeps
        // this path panic-free if that invariant ever changes.
        Err(last.unwrap_or_else(|| std::io::Error::other("store_retrying ran zero attempts")))
    }

    fn entry_files(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(EXT))
            .collect();
        files.sort();
        Ok(files)
    }

    /// Entry count and total size.
    pub fn stats(&self) -> std::io::Result<CacheStats> {
        let mut s = CacheStats::default();
        for p in self.entry_files()? {
            s.entries += 1;
            s.bytes += std::fs::metadata(&p)?.len();
        }
        Ok(s)
    }

    /// Remove every entry, returning how many were deleted. Only `.dwc`
    /// files are touched; anything else in the directory is left alone.
    /// Takes the advisory lock so a clear cannot interleave with another
    /// process's clear (writers are safe regardless: stores are atomic
    /// renames, so the worst a concurrent writer sees is its fresh entry
    /// surviving the clear).
    pub fn clear(&self) -> std::io::Result<usize> {
        let _lock = self.lock_exclusive(Duration::from_secs(10))?;
        self.sweep_stale_tmp();
        let files = self.entry_files()?;
        for p in &files {
            std::fs::remove_file(p)?;
        }
        Ok(files.len())
    }

    /// Integrity-check every entry (magic, checksum, full parse).
    pub fn verify(&self) -> std::io::Result<CacheVerify> {
        let mut v = CacheVerify::default();
        for p in self.entry_files()? {
            let ok = std::fs::read_to_string(&p)
                .ok()
                .and_then(|text| parse_entry(&text, None).ok())
                .is_some();
            if ok {
                v.ok += 1;
            } else {
                v.corrupt.push(p);
            }
        }
        Ok(v)
    }

    /// Acquire the cache's advisory lock, waiting up to `timeout`. The lock
    /// is a `create_new` lock file recording the owner pid; a lock whose
    /// owner is no longer alive is stolen. Released on drop.
    pub fn lock_exclusive(&self, timeout: Duration) -> std::io::Result<CacheLock> {
        let path = self.dir.join("lock");
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(CacheLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let owner = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    let stale = match owner {
                        Some(pid) => pid != std::process::id() && !process_alive(pid),
                        None => false, // owner still writing its pid; wait
                    };
                    if stale {
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    if std::time::Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!("cache lock {} held by pid {owner:?}", path.display()),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// SplitMix64 finalizer: one well-mixed draw from a seed. Used for the
/// deterministic retry jitter — no RNG state, no global entropy.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether a process with this pid is currently alive. On Linux this reads
/// `/proc`; elsewhere it conservatively answers `true` (never steal).
/// Shared with the checkpoint store's stale-temp sweep.
pub(crate) fn process_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// RAII guard for the cache's advisory lock file.
#[derive(Debug)]
pub struct CacheLock {
    path: PathBuf,
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn render_entry(key_desc: &str, r: &SimResult) -> String {
    debug_assert!(!key_desc.contains('\n'), "key descriptions are one line");
    let mut body = String::new();
    body.push_str(&format!("key {key_desc}\n"));
    body.push_str(&format!("cycles {}\n", r.cycles));
    body.push_str(&format!(
        "bp-rate {:016x}\n",
        r.branch_mispredict_rate.to_bits()
    ));
    body.push_str(&format!("threads {}\n", r.threads.len()));
    for t in &r.threads {
        body.push_str(&format!(
            "t {} {} {} {} {} {} {} {} {} {}\n",
            t.fetched,
            t.wrong_path_fetched,
            t.committed,
            t.squashed_mispredict,
            t.squashed_flush,
            t.gated_cycles,
            t.blocked_cycles,
            t.dispatch_stalls,
            t.branches,
            t.branch_mispredicts,
        ));
    }
    body.push_str(&format!("mem {}\n", r.mem.len()));
    for m in &r.mem {
        body.push_str(&format!(
            "m {} {} {} {}\n",
            m.loads, m.l1_misses, m.l2_misses, m.tlb_misses
        ));
    }
    body.push_str("end\n");
    format!("{MAGIC}\nchecksum {:016x}\n{body}", fnv1a(body.as_bytes()))
}

/// Strict parse of one entry; `expect_key` additionally guards against a
/// hash collision mapping a different run onto this file. Any deviation
/// from the format is a typed [`CacheFault`] (and, for callers going
/// through [`DiskCache::load`], a miss).
fn parse_entry(text: &str, expect_key: Option<&str>) -> Result<SimResult, CacheFault> {
    let rest = text
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
        .ok_or(CacheFault::BadMagic)?;
    let (checksum_line, body) = rest.split_once('\n').ok_or(CacheFault::BadChecksum)?;
    let stored = checksum_line
        .strip_prefix("checksum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or(CacheFault::BadChecksum)?;
    if stored != fnv1a(body.as_bytes()) {
        return Err(CacheFault::BadChecksum);
    }
    // The body checksummed clean, so parse failures below are format
    // mismatches (e.g. a future layout change), not corruption.
    parse_body(body, expect_key)
}

fn parse_body(body: &str, expect_key: Option<&str>) -> Result<SimResult, CacheFault> {
    fn field<T>(v: Option<T>, what: &'static str) -> Result<T, CacheFault> {
        v.ok_or(CacheFault::Malformed(what))
    }

    let mut lines = body.lines();
    let key = field(
        lines.next().and_then(|l| l.strip_prefix("key ")),
        "key line",
    )?;
    if let Some(expect) = expect_key {
        if key != expect {
            return Err(CacheFault::KeyCollision);
        }
    }
    let cycles: u64 = field(
        lines
            .next()
            .and_then(|l| l.strip_prefix("cycles "))
            .and_then(|v| v.parse().ok()),
        "cycles line",
    )?;
    let bp_bits = field(
        lines
            .next()
            .and_then(|l| l.strip_prefix("bp-rate "))
            .and_then(|v| u64::from_str_radix(v, 16).ok()),
        "bp-rate line",
    )?;

    let nthreads: usize = field(
        lines
            .next()
            .and_then(|l| l.strip_prefix("threads "))
            .and_then(|v| v.parse().ok()),
        "threads line",
    )?;
    let mut threads = Vec::with_capacity(nthreads.min(64));
    for _ in 0..nthreads {
        let f = field(
            lines
                .next()
                .and_then(|l| l.strip_prefix("t "))
                .and_then(|l| parse_u64_fields(l, 10)),
            "thread line",
        )?;
        threads.push(ThreadStats {
            fetched: f[0],
            wrong_path_fetched: f[1],
            committed: f[2],
            squashed_mispredict: f[3],
            squashed_flush: f[4],
            gated_cycles: f[5],
            blocked_cycles: f[6],
            dispatch_stalls: f[7],
            branches: f[8],
            branch_mispredicts: f[9],
        });
    }

    let nmem: usize = field(
        lines
            .next()
            .and_then(|l| l.strip_prefix("mem "))
            .and_then(|v| v.parse().ok()),
        "mem line",
    )?;
    let mut mem = Vec::with_capacity(nmem.min(64));
    for _ in 0..nmem {
        let f = field(
            lines
                .next()
                .and_then(|l| l.strip_prefix("m "))
                .and_then(|l| parse_u64_fields(l, 4)),
            "mem stats line",
        )?;
        mem.push(ThreadMemStats {
            loads: f[0],
            l1_misses: f[1],
            l2_misses: f[2],
            tlb_misses: f[3],
        });
    }

    if lines.next() != Some("end") || lines.next().is_some() {
        return Err(CacheFault::Malformed("trailer"));
    }
    Ok(SimResult {
        cycles,
        threads,
        mem,
        branch_mispredict_rate: f64::from_bits(bp_bits),
    })
}

fn parse_u64_fields(line: &str, n: usize) -> Option<Vec<u64>> {
    let fields: Vec<u64> = line
        .split(' ')
        .map(|w| w.parse().ok())
        .collect::<Option<Vec<u64>>>()?;
    if fields.len() == n {
        Some(fields)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> SimResult {
        SimResult {
            cycles: 60_000,
            threads: vec![
                ThreadStats {
                    fetched: 100,
                    wrong_path_fetched: 7,
                    committed: 80,
                    squashed_mispredict: 5,
                    squashed_flush: 3,
                    gated_cycles: 11,
                    blocked_cycles: 13,
                    dispatch_stalls: 17,
                    branches: 19,
                    branch_mispredicts: 2,
                },
                ThreadStats {
                    committed: 42,
                    ..Default::default()
                },
            ],
            mem: vec![ThreadMemStats {
                loads: 30,
                l1_misses: 4,
                l2_misses: 1,
                tlb_misses: 0,
            }],
            branch_mispredict_rate: 0.062_5,
        }
    }

    fn temp_cache(tag: &str) -> DiskCache {
        let dir =
            std::env::temp_dir().join(format!("dwarn-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiskCache::open(&dir).unwrap()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let c = temp_cache("roundtrip");
        let r = sample_result();
        assert!(c.load("k1").is_none());
        c.store("k1", &r).unwrap();
        let back = c.load("k1").unwrap();
        assert_eq!(back.digest(), r.digest());
        assert_eq!(back.threads, r.threads);
        assert_eq!(back.mem, r.mem);
        assert_eq!(
            back.branch_mispredict_rate.to_bits(),
            r.branch_mispredict_rate.to_bits()
        );
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let c = temp_cache("keys");
        let mut a = sample_result();
        c.store("key-a", &a).unwrap();
        a.cycles += 1;
        c.store("key-b", &a).unwrap();
        assert_ne!(
            c.load("key-a").unwrap().cycles,
            c.load("key-b").unwrap().cycles
        );
        assert!(c.load("key-c").is_none());
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let c = temp_cache("trunc");
        c.store("k", &sample_result()).unwrap();
        let path = c.entry_path("k");
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(c.load("k").is_none(), "truncation must not be trusted");
    }

    #[test]
    fn garbage_entry_is_a_miss() {
        let c = temp_cache("garbage");
        c.store("k", &sample_result()).unwrap();
        std::fs::write(c.entry_path("k"), "not a cache entry at all\n").unwrap();
        assert!(c.load("k").is_none());
    }

    #[test]
    fn flipped_counter_fails_the_checksum() {
        let c = temp_cache("bitflip");
        c.store("k", &sample_result()).unwrap();
        let path = c.entry_path("k");
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("cycles 60000", "cycles 60001");
        std::fs::write(&path, tampered).unwrap();
        assert!(c.load("k").is_none(), "tampered body must fail checksum");
    }

    #[test]
    fn wrong_key_in_file_is_a_collision_miss() {
        let c = temp_cache("collision");
        c.store("k", &sample_result()).unwrap();
        // Simulate a hash collision: the file exists under k's hash but
        // records a different key (rewrite with a fresh checksum so only
        // the key comparison can reject it).
        let other = render_entry("other-key", &sample_result());
        std::fs::write(c.entry_path("k"), other).unwrap();
        assert!(c.load("k").is_none());
    }

    #[test]
    fn load_checked_classifies_faults() {
        let c = temp_cache("faults");
        assert!(matches!(c.load_checked("absent"), Ok(None)));

        c.store("k", &sample_result()).unwrap();
        let path = c.entry_path("k");
        let clean = std::fs::read_to_string(&path).unwrap();

        std::fs::write(&path, "something else entirely\n").unwrap();
        assert_eq!(c.load_checked("k").unwrap_err(), CacheFault::BadMagic);

        std::fs::write(&path, clean.replace("cycles 60000", "cycles 60001")).unwrap();
        assert_eq!(c.load_checked("k").unwrap_err(), CacheFault::BadChecksum);

        std::fs::write(&path, &clean[..clean.len() / 2]).unwrap();
        assert_eq!(c.load_checked("k").unwrap_err(), CacheFault::BadChecksum);

        std::fs::write(&path, render_entry("other-key", &sample_result())).unwrap();
        assert_eq!(c.load_checked("k").unwrap_err(), CacheFault::KeyCollision);

        std::fs::write(&path, clean).unwrap();
        assert!(c.load_checked("k").unwrap().is_some());
    }

    #[test]
    fn crash_mid_store_is_a_miss_on_reload() {
        // Simulate a writer that died between `File::create` and the
        // rename: the final name holds the old (or no) entry and a torn
        // temp file sits in the directory. Reopening must treat the key as
        // a miss — never an error, never a hang — and sweep the orphan.
        let c = temp_cache("crash");
        let entry = render_entry("k", &sample_result());

        // Torn temp file from a dead pid (u32::MAX exceeds pid_max, so it
        // can never be a live process).
        let tmp = c.entry_path("k").with_extension("tmp4294967295-0");
        std::fs::write(&tmp, &entry[..entry.len() / 3]).unwrap();
        // And a torn *final* file, as if a non-atomic writer had crashed.
        std::fs::write(c.entry_path("k"), &entry[..entry.len() / 2]).unwrap();

        let reopened = DiskCache::open(c.dir()).unwrap();
        assert!(reopened.load("k").is_none(), "torn entry must be a miss");
        assert!(
            matches!(reopened.load_checked("k"), Err(CacheFault::BadChecksum)),
            "the tear is attributable"
        );
        assert!(!tmp.exists(), "stale temp file swept on open");

        // A live-pid temp file is left alone (its writer may still rename).
        let mine = c
            .entry_path("k")
            .with_extension(format!("tmp{}-7", std::process::id()));
        std::fs::write(&mine, "in flight").unwrap();
        let _ = DiskCache::open(c.dir()).unwrap();
        assert!(mine.exists(), "live writer's temp file must survive");

        // Re-storing heals the entry.
        reopened.store("k", &sample_result()).unwrap();
        assert_eq!(
            reopened.load("k").unwrap().digest(),
            sample_result().digest()
        );
    }

    #[test]
    fn store_retrying_succeeds_and_reports_final_failure() {
        let c = temp_cache("retry");
        c.store_retrying("k", &sample_result(), 3).unwrap();
        assert!(c.load("k").is_some());

        // A cache whose directory vanished fails every attempt and reports
        // the last error instead of panicking or spinning.
        std::fs::remove_dir_all(c.dir()).unwrap();
        let err = c.store_retrying("k2", &sample_result(), 2).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn exclusive_lock_blocks_and_releases() {
        let c = temp_cache("lock");
        let lock = c.lock_exclusive(Duration::from_millis(50)).unwrap();
        // Second acquisition from the same (live) process times out.
        let err = c.lock_exclusive(Duration::from_millis(50)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        drop(lock);
        // Released on drop: acquirable again, and clear() works under it.
        let lock = c.lock_exclusive(Duration::from_millis(50)).unwrap();
        drop(lock);
        c.store("a", &sample_result()).unwrap();
        assert_eq!(c.clear().unwrap(), 1);
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_stolen() {
        let c = temp_cache("stale-lock");
        std::fs::write(c.dir().join("lock"), "4294967295").unwrap();
        let _lock = c
            .lock_exclusive(Duration::from_millis(200))
            .expect("dead owner's lock must be stolen");
    }

    #[test]
    fn stats_clear_verify() {
        let c = temp_cache("admin");
        c.store("a", &sample_result()).unwrap();
        c.store("b", &sample_result()).unwrap();
        let s = c.stats().unwrap();
        assert_eq!(s.entries, 2);
        assert!(s.bytes > 0);

        std::fs::write(c.entry_path("b"), "garbage").unwrap();
        let v = c.verify().unwrap();
        assert_eq!(v.ok, 1);
        assert_eq!(v.corrupt.len(), 1);

        assert_eq!(c.clear().unwrap(), 2);
        assert_eq!(c.stats().unwrap().entries, 0);
    }
}
