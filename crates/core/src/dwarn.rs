//! DWarn — the paper's contribution.
//!
//! **Detection moment:** the L1 data-cache miss — reliable (every L2 miss is
//! first an L1 miss) and early (known ~5 cycles after the load is fetched,
//! long before an L2 miss can be declared).
//!
//! **Response action:** *reduce priority* (a new RA in the paper's
//! taxonomy). Each cycle the threads are classified into the **Dmiss**
//! group (one or more in-flight L1 data misses — the per-context miss
//! counter of the paper's hardware sketch) and the **Normal** group; Normal
//! threads fetch first, each group internally ordered by ICOUNT. Threads
//! are never fetch-stalled outright: if the Normal threads cannot fill the
//! fetch bandwidth, Dmiss threads use the rest, which is what saves DWarn
//! from DG/PDG's resource under-use when few threads run — and not every L1
//! miss becomes an L2 miss, so the caution is warranted.
//!
//! **Hybrid rule (§3):** with fewer than three running threads, priority
//! reduction alone cannot keep a Dmiss thread out of the machine (fetch
//! fragmentation leaves bandwidth that the Dmiss thread soaks up), so a
//! second RA kicks in: once a load is *declared* to miss in L2, its thread
//! is gated until the load resolves. With three or more threads the
//! priority reduction alone suffices. The paper's evaluated DWarn is this
//! hybrid; [`DWarn::priority_only`] gives the pure-priority variant for
//! ablation.

use smt_pipeline::{FetchPolicy, PolicyView};

use crate::taxonomy::{Classification, DetectionMoment, ResponseAction};

/// The DWarn fetch policy.
#[derive(Debug, Clone, Copy)]
pub struct DWarn {
    /// Apply the gate-on-declared-L2-miss RA when fewer than this many
    /// threads are running (the paper uses 3: "if there are less than three
    /// threads running").
    hybrid_below: usize,
}

impl DWarn {
    /// The paper's DWarn: hybrid, gating declared L2 misses for 2-thread
    /// workloads.
    pub fn new() -> DWarn {
        DWarn { hybrid_below: 3 }
    }

    /// Pure priority-reduction variant (no gating at any thread count) —
    /// the ablation of the hybrid rule.
    pub fn priority_only() -> DWarn {
        DWarn { hybrid_below: 0 }
    }

    /// Custom hybrid threshold (ablation).
    pub fn with_hybrid_below(hybrid_below: usize) -> DWarn {
        DWarn { hybrid_below }
    }

    pub fn is_hybrid(&self) -> bool {
        self.hybrid_below > 0
    }

    pub fn classification() -> Classification {
        Classification::new(DetectionMoment::L1, ResponseAction::ReducePriority)
    }

    /// The two-group priority order: Normal (no in-flight L1-D misses)
    /// first, Dmiss after, ICOUNT within each group. Fills `out` in place.
    pub(crate) fn grouped_order_into(view: &PolicyView, out: &mut Vec<usize>) {
        view.icount_order_into(out);
        // Stable partition: Normal group keeps ICOUNT order, then Dmiss.
        crate::stall_flush::stable_partition(out, |t| view.threads[t].dmiss_count > 0);
    }
}

impl Default for DWarn {
    fn default() -> Self {
        Self::new()
    }
}

impl FetchPolicy for DWarn {
    fn name(&self) -> &'static str {
        "DWARN"
    }

    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        Self::grouped_order_into(view, out);
        if view.num_threads() < self.hybrid_below {
            // Hybrid RA: gate threads with a declared L2 miss outstanding —
            // but, as with STALL/FLUSH, never gate the last runnable thread.
            crate::stall_flush::retain_ungated_keep_one(out, view);
        }
    }

    /// The sanitizer's `INV013` check: DWarn's published order must obey the
    /// paper's two-group rule and the hybrid gating rule.
    fn audit_order(&self, view: &PolicyView, order: &[usize]) -> Result<(), String> {
        let hybrid_active = view.num_threads() < self.hybrid_below;
        // Group rule: a thread is in the Dmiss group iff it has an
        // outstanding L1 data miss; Normal threads fetch first, ICOUNT
        // ascending within each group (ties by thread index).
        let key = |t: usize| {
            let v = &view.threads[t];
            ((v.dmiss_count > 0) as u32, v.icount, t)
        };
        for w in order.windows(2) {
            if key(w[0]) > key(w[1]) {
                return Err(format!(
                    "thread {} (dmiss={} icount={}) ordered before thread {} \
                     (dmiss={} icount={}), violating Normal-first / ICOUNT order",
                    w[0],
                    view.threads[w[0]].dmiss_count,
                    view.threads[w[0]].icount,
                    w[1],
                    view.threads[w[1]].dmiss_count,
                    view.threads[w[1]].icount,
                ));
            }
        }
        // Gating rule: threads are only ever omitted by the hybrid RA —
        // declared L2 miss outstanding, fewer threads than the threshold —
        // and never all of them.
        if view.num_threads() > 0 && order.is_empty() {
            return Err("every thread gated (the keep-one rule forbids this)".into());
        }
        for t in 0..view.num_threads() {
            if order.contains(&t) {
                continue;
            }
            if !hybrid_active {
                return Err(format!(
                    "thread {t} gated with {} threads running (DWarn only gates below {})",
                    view.num_threads(),
                    self.hybrid_below
                ));
            }
            if view.threads[t].declared_l2 == 0 {
                return Err(format!(
                    "thread {t} gated without a declared L2 miss outstanding"
                ));
            }
        }
        Ok(())
    }

    /// Warn levels for the interval telemetry: 0 = Normal group, 1 = Dmiss
    /// group (priority reduced), 2 = gated by the hybrid declared-L2 rule.
    /// Pure function of the view, like `fetch_order_into` — required so
    /// levels are frozen across quiescence-skipped spans.
    fn warn_level(&self, view: &PolicyView, thread: usize) -> u8 {
        let v = &view.threads[thread];
        if v.declared_l2 > 0 && view.num_threads() < self.hybrid_below {
            2
        } else if v.dmiss_count > 0 {
            1
        } else {
            0
        }
    }

    // Pure function of the view: the quiescence engine may skip idle spans.
    fn quiescence_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_pipeline::ThreadView;

    fn tv(icount: u32, dmiss: u32, declared: u32) -> ThreadView {
        ThreadView {
            icount,
            dmiss_count: dmiss,
            declared_l2: declared,
            ..Default::default()
        }
    }

    fn view(threads: &[ThreadView]) -> PolicyView<'_> {
        PolicyView { cycle: 0, threads }
    }

    #[test]
    fn normal_threads_fetch_before_dmiss_threads() {
        // Thread 1 has the lowest ICOUNT but an in-flight L1 miss.
        let threads = vec![tv(9, 0, 0), tv(1, 1, 0), tv(4, 0, 0)];
        let order = DWarn::new().fetch_order(&view(&threads));
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn icount_orders_within_each_group() {
        let threads = vec![tv(9, 2, 0), tv(5, 1, 0), tv(7, 0, 0), tv(2, 0, 0)];
        let order = DWarn::new().fetch_order(&view(&threads));
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn dmiss_threads_are_never_dropped_at_four_threads() {
        let threads = vec![tv(1, 3, 2), tv(2, 1, 1), tv(3, 0, 0), tv(4, 0, 0)];
        let order = DWarn::new().fetch_order(&view(&threads));
        assert_eq!(order.len(), 4, "DWarn never stalls threads at 4+ threads");
    }

    #[test]
    fn hybrid_gates_declared_l2_misses_with_two_threads() {
        let threads = vec![tv(1, 1, 1), tv(9, 0, 0)];
        let order = DWarn::new().fetch_order(&view(&threads));
        assert_eq!(order, vec![1], "declared thread is gated at 2 threads");
        // Before declaration, the thread is only deprioritized.
        let threads = vec![tv(1, 1, 0), tv(9, 0, 0)];
        let order = DWarn::new().fetch_order(&view(&threads));
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn priority_only_never_gates() {
        let threads = vec![tv(1, 1, 1), tv(9, 0, 0)];
        let order = DWarn::priority_only().fetch_order(&view(&threads));
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn reduces_to_icount_when_no_misses() {
        let threads = vec![tv(5, 0, 0), tv(2, 0, 0), tv(8, 0, 0)];
        let order = DWarn::new().fetch_order(&view(&threads));
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn audit_accepts_every_order_the_policy_produces() {
        let scenarios = vec![
            vec![tv(9, 0, 0), tv(1, 1, 0), tv(4, 0, 0)],
            vec![tv(9, 2, 0), tv(5, 1, 0), tv(7, 0, 0), tv(2, 0, 0)],
            vec![tv(1, 1, 1), tv(9, 0, 0)],
            vec![tv(1, 1, 1), tv(9, 0, 1)], // all declared: keep-one applies
            vec![tv(5, 0, 0)],
        ];
        for threads in scenarios {
            let mut p = DWarn::new();
            let v = view(&threads);
            let order = p.fetch_order(&v);
            assert_eq!(
                p.audit_order(&v, &order),
                Ok(()),
                "own order rejected for {threads:?} -> {order:?}"
            );
        }
    }

    #[test]
    fn audit_rejects_dmiss_thread_ahead_of_normal_thread() {
        let threads = vec![tv(9, 0, 0), tv(1, 1, 0)];
        let p = DWarn::new();
        // Correct order is [0, 1]; a Dmiss thread first violates the group
        // rule even though its ICOUNT is lower.
        let err = p.audit_order(&view(&threads), &[1, 0]).unwrap_err();
        assert!(err.contains("Normal-first"), "{err}");
    }

    #[test]
    fn audit_rejects_icount_disorder_within_a_group() {
        let threads = vec![tv(9, 0, 0), tv(1, 0, 0)];
        let p = DWarn::new();
        let err = p.audit_order(&view(&threads), &[0, 1]).unwrap_err();
        assert!(err.contains("ICOUNT"), "{err}");
    }

    #[test]
    fn audit_rejects_gating_without_a_declared_miss() {
        // Two threads, hybrid active: omitting an undeclared thread is a
        // violation.
        let threads = vec![tv(1, 1, 0), tv(9, 0, 0)];
        let p = DWarn::new();
        let err = p.audit_order(&view(&threads), &[1]).unwrap_err();
        assert!(err.contains("without a declared L2 miss"), "{err}");
    }

    #[test]
    fn audit_rejects_gating_at_or_above_the_hybrid_threshold() {
        // Three threads: DWarn never gates, only deprioritizes.
        let threads = vec![tv(1, 1, 1), tv(5, 0, 0), tv(9, 0, 0)];
        let p = DWarn::new();
        let err = p.audit_order(&view(&threads), &[1, 2]).unwrap_err();
        assert!(err.contains("only gates below"), "{err}");
    }

    #[test]
    fn audit_rejects_the_empty_order() {
        let threads = vec![tv(1, 1, 1), tv(9, 0, 1)];
        let p = DWarn::new();
        let err = p.audit_order(&view(&threads), &[]).unwrap_err();
        assert!(err.contains("keep-one"), "{err}");
    }

    #[test]
    fn warn_levels_track_group_and_hybrid_state() {
        let p = DWarn::new();
        // 2 threads (hybrid active): declared → 2, dmiss-only → 1, clean → 0.
        let threads = vec![tv(1, 1, 1), tv(9, 0, 0)];
        let v = view(&threads);
        assert_eq!(p.warn_level(&v, 0), 2);
        assert_eq!(p.warn_level(&v, 1), 0);
        let threads = vec![tv(1, 1, 0), tv(9, 0, 0)];
        assert_eq!(p.warn_level(&view(&threads), 0), 1);
        // 4 threads: hybrid inactive, a declared miss is still only level 1.
        let threads = vec![tv(1, 1, 1), tv(2, 0, 0), tv(3, 0, 0), tv(4, 0, 0)];
        assert_eq!(p.warn_level(&view(&threads), 0), 1);
        // Priority-only variant never reaches level 2.
        let threads = vec![tv(1, 1, 1), tv(9, 0, 0)];
        assert_eq!(DWarn::priority_only().warn_level(&view(&threads), 0), 1);
    }

    #[test]
    fn classification_is_the_novel_cell() {
        assert_eq!(
            DWarn::classification(),
            Classification::new(DetectionMoment::L1, ResponseAction::ReducePriority)
        );
    }
}
