//! Property-based tests for the microarchitectural substrate: cache
//! residency/LRU laws, TLB behaviour, hierarchy timing monotonicity,
//! predictor table safety, and resource-pool conservation — over randomized
//! access sequences, driven by the workspace's deterministic PRNG
//! ([`smt_trace::Rng`]) so every failure reproduces from the fixed master
//! seed.

use smt_trace::Rng;
use smt_uarch::{
    Cache, CacheConfig, FuKind, FuPools, IqKind, IssueQueues, MemHierarchy, MemTiming, RegPool,
    Tlb, TlbConfig,
};

const CASES: usize = 32;

fn tiny_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 2048,
        ways: 2,
        line_bytes: 64,
        banks: 2,
        latency: 1,
    })
}

fn hierarchy() -> MemHierarchy {
    MemHierarchy::new(
        CacheConfig::paper_l1(),
        CacheConfig::paper_l1(),
        CacheConfig::paper_l2(),
        TlbConfig::default_dtlb(),
        MemTiming::paper_baseline(),
        2,
    )
}

/// An MRU line survives a single conflicting fill in a 2-way set.
#[test]
fn mru_line_survives_one_conflict() {
    let mut m = Rng::new(0x0A8C ^ 1);
    let mut done = 0;
    while done < CASES {
        let set = m.below(16);
        let (tag_a, tag_b, tag_c) = (m.below(64), m.below(64), m.below(64));
        if tag_a == tag_b || tag_b == tag_c || tag_a == tag_c {
            continue; // distinct tags required
        }
        done += 1;
        let mut c = Cache::new(CacheConfig {
            size_bytes: 2048,
            ways: 2,
            line_bytes: 64,
            banks: 2,
            latency: 1,
        });
        let sets = 16u64;
        let addr = |tag: u64| (tag * sets + set) * 64;
        c.fill(addr(tag_a));
        c.fill(addr(tag_b));
        let _ = c.access(addr(tag_a)); // a is MRU
        c.fill(addr(tag_c)); // must evict b
        assert!(c.probe(addr(tag_a)));
        assert!(!c.probe(addr(tag_b)));
    }
}

/// Residency never exceeds capacity and hits never lie: a probe hit means a
/// subsequent access hits too.
#[test]
fn cache_laws() {
    let mut m = Rng::new(0x0A8C ^ 2);
    for _ in 0..CASES {
        let mut c = tiny_cache();
        let n = m.range(1, 200);
        for _ in 0..n {
            let a = m.below(1 << 16);
            let probed = c.probe(a);
            let hit = c.access(a);
            assert_eq!(probed, hit, "probe and access must agree");
            if !hit {
                c.fill(a);
            }
            assert!(c.resident_lines() <= 32);
        }
        let s = c.stats();
        assert_eq!(s.accesses, n);
        assert!(s.misses <= s.accesses);
    }
}

/// TLB: LRU, capacity-bounded, and same-page accesses always hit after the
/// first touch when capacity is not exceeded in between.
#[test]
fn tlb_same_page_hits() {
    let mut m = Rng::new(0x0A8C ^ 3);
    for _ in 0..CASES {
        let mut t = Tlb::new(TlbConfig {
            entries: 16,
            page_bytes: 4096,
        });
        let mut touched = std::collections::HashSet::new();
        for _ in 0..m.range(2, 100) {
            let p = m.below(8);
            let hit = t.access(p * 4096 + (p % 7) * 16);
            // 8 distinct pages < 16 entries: after first touch, always hit.
            assert_eq!(hit, touched.contains(&p));
            touched.insert(p);
        }
    }
}

/// Hierarchy timing is sane for arbitrary loads: completion is in the
/// future, an L2 miss implies an L1 miss, and latency classes order as
/// hit < L2 hit < memory.
#[test]
fn hierarchy_timing_monotone() {
    let mut m = Rng::new(0x0A8C ^ 4);
    for _ in 0..CASES {
        let mut h = hierarchy();
        let mut now = m.below(1000);
        for _ in 0..m.range(1, 100) {
            let a = m.below(1 << 30);
            let acc = h.load(0, a, now, false);
            assert!(acc.complete_at > now);
            if acc.l2_miss {
                assert!(acc.l1_miss, "inclusive hierarchy");
            }
            let latency = acc.complete_at - now;
            let floor = if acc.tlb_miss { 160 } else { 0 };
            if !acc.l1_miss {
                assert!(latency > floor);
            } else if !acc.l2_miss {
                assert!(latency > floor, "coalesced misses can be short");
            } else {
                assert!(
                    latency >= 111 + floor,
                    "memory misses pay full latency: {latency}"
                );
            }
            now += 7;
        }
    }
}

/// The memory-bus model serializes: k simultaneous L2 misses to distinct
/// lines complete at least bus-occupancy apart.
#[test]
fn bus_serializes_misses() {
    let mut m = Rng::new(0x0A8C ^ 5);
    for _ in 0..CASES {
        let k = m.range(2, 8) as usize;
        let mut h = hierarchy();
        // Distinct cold lines, all requested at the same cycle; pages
        // pre-touched so TLB penalties don't mask bus spacing.
        for i in 0..k {
            let _ = h.load(0, 0x2000_0000 + (i as u64) * 8192, 0, false);
        }
        let mut completes: Vec<u64> = (0..k)
            .map(|i| {
                h.load(0, 0x2000_0000 + (i as u64) * 8192 + 64, 1000, false)
                    .complete_at
            })
            .collect();
        completes.sort_unstable();
        for w in completes.windows(2) {
            assert!(w[1] - w[0] >= MemTiming::paper_baseline().mem_bus_cycles);
        }
    }
}

/// Register pools conserve: allocations minus releases equals occupancy,
/// and free() + in_use() is constant.
#[test]
fn reg_pool_conservation() {
    let mut m = Rng::new(0x0A8C ^ 6);
    for _ in 0..CASES {
        let mut p = RegPool::new(64, 16);
        let budget = 64 - 16;
        let mut held = 0u32;
        for _ in 0..m.range(1, 200) {
            if m.chance(0.5) {
                if p.alloc() {
                    held += 1;
                }
            } else if held > 0 {
                p.release();
                held -= 1;
            }
            assert_eq!(p.in_use(), held);
            assert_eq!(p.free() + p.in_use(), budget);
            assert!(held <= budget);
        }
    }
}

/// Issue queues conserve per kind.
#[test]
fn issue_queue_conservation() {
    let mut m = Rng::new(0x0A8C ^ 7);
    for _ in 0..CASES {
        let mut q = IssueQueues::new(8, 4, 6);
        let kinds = [IqKind::Int, IqKind::Fp, IqKind::LdSt];
        let caps = [8u32, 4, 6];
        let mut held = [0u32; 3];
        for _ in 0..m.range(1, 200) {
            let k = m.below(3) as usize;
            if m.chance(0.5) {
                if q.alloc(kinds[k]) {
                    held[k] += 1;
                }
            } else if held[k] > 0 {
                q.release(kinds[k]);
                held[k] -= 1;
            }
            for i in 0..3 {
                assert_eq!(q.used(kinds[i]), held[i]);
                assert!(held[i] <= caps[i]);
            }
            assert_eq!(q.total_used(), held.iter().sum::<u32>());
        }
    }
}

/// FU pools never exceed per-cycle bandwidth and fully reset each cycle.
#[test]
fn fu_bandwidth_resets() {
    let mut m = Rng::new(0x0A8C ^ 8);
    for _ in 0..CASES {
        let cycles = m.range(1, 20);
        let tries = m.range(1, 12) as u32;
        let mut fu = FuPools::new(3, 2, 2);
        for _ in 0..cycles {
            fu.new_cycle();
            let mut granted = 0;
            for _ in 0..tries {
                if fu.issue(FuKind::Int) {
                    granted += 1;
                }
            }
            assert_eq!(granted, tries.min(3));
        }
    }
}
