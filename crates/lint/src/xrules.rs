//! Cross-file rules (SMT008–SMT013) over the workspace model.
//!
//! These rules never read source text: they run entirely over the
//! [`FileModel`]s extracted by `model.rs` (which is what makes the
//! per-file content-hash cache sound — a file whose model is cached
//! contributes to cross-file analysis exactly as if it had been re-read).

use crate::model::{FileModel, FnDef};
use crate::rules::{Diagnostic, RuleCode};

/// Everything the cross-file rules see.
pub struct Workspace {
    /// Lintable sources: `(repo-relative path, model)`, sorted by path.
    pub files: Vec<(String, FileModel)>,
    /// Auxiliary sources consulted but not linted locally (integration
    /// test files named by rules, e.g. `crates/pipeline/tests/sanitizer.rs`).
    pub aux: Vec<(String, FileModel)>,
    /// Documentation texts: `(repo-relative path, raw contents)`.
    pub docs: Vec<(String, String)>,
}

impl Workspace {
    fn file(&self, path: &str) -> Option<&FileModel> {
        self.files.iter().find(|(p, _)| p == path).map(|(_, m)| m)
    }

    fn aux_file(&self, path: &str) -> Option<&FileModel> {
        self.aux.iter().find(|(p, _)| p == path).map(|(_, m)| m)
    }

    fn doc(&self, path: &str) -> Option<&str> {
        self.docs
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, t)| t.as_str())
    }
}

const SIM_PATH: &str = "crates/pipeline/src/sim.rs";
const SANITIZER_PATH: &str = "crates/pipeline/src/sanitizer.rs";
const SANITIZER_TESTS_PATH: &str = "crates/pipeline/tests/sanitizer.rs";
const ERROR_PATH: &str = "crates/experiments/src/error.rs";
const MAIN_PATH: &str = "crates/experiments/src/main.rs";

/// `Simulator`'s machine-capture fns (beyond the generic `save_state` /
/// `load_state` convention): a field is snapshot-covered if *any* capture
/// fn touches it and *any* restore fn touches it.
const SIM_SAVE_FNS: [&str; 3] = ["save_machine", "snapshot", "snapshot_with_run"];
const SIM_LOAD_FNS: [&str; 3] = ["load_machine", "restore", "restore_run"];

/// Run every cross-file rule.
pub fn scan_workspace(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    snapshot_coverage(ws, &mut out);
    dispatch_exhaustiveness(ws, &mut out);
    invariant_coverage(ws, &mut out);
    hook_gating(ws, &mut out);
    exit_code_contract(ws, &mut out);
    stitch_coverage(ws, &mut out);
    out
}

fn diag(code: RuleCode, path: &str, line: usize, item: String, message: String) -> Diagnostic {
    Diagnostic {
        code,
        path: path.to_string(),
        line,
        snippet: item.clone(),
        message,
        item: Some(item),
    }
}

// ---------------------------------------------------------------------
// SMT008 — snapshot coverage
// ---------------------------------------------------------------------

fn snapshot_coverage(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for (path, m) in &ws.files {
        if !path.starts_with("crates/pipeline/") && !path.starts_with("crates/uarch/") {
            continue;
        }
        for s in &m.structs {
            if s.in_test || s.fields.is_empty() {
                continue;
            }
            let (save_fns, load_fns): (Vec<&FnDef>, Vec<&FnDef>) =
                if path == SIM_PATH && s.name == "Simulator" {
                    (
                        m.fns
                            .iter()
                            .filter(|f| {
                                !f.in_test
                                    && f.owner.as_deref() == Some("Simulator")
                                    && SIM_SAVE_FNS.contains(&f.name.as_str())
                            })
                            .collect(),
                        m.fns
                            .iter()
                            .filter(|f| {
                                !f.in_test
                                    && f.owner.as_deref() == Some("Simulator")
                                    && SIM_LOAD_FNS.contains(&f.name.as_str())
                            })
                            .collect(),
                    )
                } else {
                    // Generic convention: an inherent save_state/load_state
                    // pair marks the struct as snapshot-bearing.
                    let has_pair = m.impls.iter().any(|im| {
                        !im.in_test
                            && im.ty == s.name
                            && im.trait_name.is_none()
                            && im.methods.iter().any(|n| n == "save_state")
                    }) && m.impls.iter().any(|im| {
                        !im.in_test
                            && im.ty == s.name
                            && im.trait_name.is_none()
                            && im.methods.iter().any(|n| n == "load_state")
                    });
                    if !has_pair {
                        continue;
                    }
                    (
                        m.methods_of(&s.name, "save_state").collect(),
                        m.methods_of(&s.name, "load_state").collect(),
                    )
                };
            if save_fns.is_empty() || load_fns.is_empty() {
                continue;
            }
            for field in &s.fields {
                let saved = save_fns.iter().any(|f| f.touches_self(&field.name));
                let loaded = load_fns.iter().any(|f| f.touches_self(&field.name));
                if saved && loaded {
                    continue;
                }
                let missing = match (saved, loaded) {
                    (false, false) => "capture or restore path",
                    (false, true) => "capture path",
                    (true, false) => "restore path",
                    (true, true) => unreachable!(),
                };
                out.push(diag(
                    RuleCode::Smt008,
                    path,
                    field.line,
                    format!("{}::{}", s.name, field.name),
                    format!(
                        "field `{}` of snapshot-bearing `{}` is not touched by any {missing}; \
                         capture+restore it, or allowlist `{}#{}::{}` with a derived/scratch \
                         justification",
                        field.name, s.name, path, s.name, field.name
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// SMT009 — PolicyKind dispatch exhaustiveness
// ---------------------------------------------------------------------

/// The `PolicyKind` methods whose match must stay variant-exhaustive
/// (each has deliberately explicit arms — no wildcard — so a new variant
/// fails to compile *or* fails this lint, never silently misroutes).
const POLICY_DISPATCH_FNS: [&str; 4] = ["name", "parse", "build", "dispatch"];

fn dispatch_exhaustiveness(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some((factory_path, factory, kind)) = ws
        .files
        .iter()
        .find_map(|(p, m)| m.enum_named("PolicyKind").map(|e| (p.as_str(), m, e)))
    else {
        return;
    };
    for fname in POLICY_DISPATCH_FNS {
        let fns: Vec<&FnDef> = factory.methods_of("PolicyKind", fname).collect();
        if fns.is_empty() {
            out.push(diag(
                RuleCode::Smt009,
                factory_path,
                kind.line,
                format!("PolicyKind::{fname}"),
                format!("PolicyKind is missing required dispatch fn `{fname}`"),
            ));
            continue;
        }
        // Covered when the variant appears in a match-arm head, or —
        // for fns like `parse` whose arm heads are (masked) string
        // literals — anywhere in the fn at all.
        for v in &kind.variants {
            if !fns
                .iter()
                .any(|f| f.has_arm(&v.name) || f.mentions(&v.name))
            {
                out.push(diag(
                    RuleCode::Smt009,
                    factory_path,
                    fns[0].line,
                    format!("{}::{}", fname, v.name),
                    format!(
                        "PolicyKind::{} has no match arm in `{}` — every variant must be \
                         explicitly handled",
                        v.name, fname
                    ),
                ));
            }
        }
    }
    // Policy-contract half: every concrete type routed through `dispatch`
    // must take an explicit stance on `quiescence_safe` (skip-engine
    // safety is a per-policy decision, not a trait default), and a policy
    // that defines `warn_level` must also define `audit_order` (warn
    // semantics imply an ordering contract the sanitizer can audit).
    let dispatched: Vec<&FnDef> = factory.methods_of("PolicyKind", "dispatch").collect();
    for (path, m) in &ws.files {
        for im in &m.impls {
            if im.in_test
                || im.trait_name.as_deref() != Some("FetchPolicy")
                || !dispatched.iter().any(|f| f.mentions(&im.ty))
            {
                continue;
            }
            let methods: Vec<&str> = m
                .impls
                .iter()
                .filter(|i| {
                    !i.in_test && i.ty == im.ty && i.trait_name.as_deref() == Some("FetchPolicy")
                })
                .flat_map(|i| i.methods.iter().map(String::as_str))
                .collect();
            if !methods.contains(&"quiescence_safe") {
                out.push(diag(
                    RuleCode::Smt009,
                    path,
                    im.line,
                    format!("{}::quiescence_safe", im.ty),
                    format!(
                        "`{}` is dispatched by PolicyKind but relies on the trait default for \
                         `quiescence_safe`; state the skip-safety contract explicitly",
                        im.ty
                    ),
                ));
            }
            if methods.contains(&"warn_level") && !methods.contains(&"audit_order") {
                out.push(diag(
                    RuleCode::Smt009,
                    path,
                    im.line,
                    format!("{}::audit_order", im.ty),
                    format!(
                        "`{}` defines `warn_level` but not `audit_order`; warn-driven ordering \
                         must expose its audit contract",
                        im.ty
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// SMT010 — invariant coverage
// ---------------------------------------------------------------------

fn invariant_coverage(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(san) = ws.file(SANITIZER_PATH) else {
        return;
    };
    let Some(inv) = san.enum_named("InvariantCode") else {
        return;
    };
    // The INVxxx codes, in declaration order (the `code()` match returns
    // them variant by variant, so first-occurrence order pairs 1:1 with
    // the variant list).
    let mut codes: Vec<&str> = Vec::new();
    for (_, s) in &san.strings {
        if is_inv_code(s) && !codes.contains(&s.as_str()) {
            codes.push(s);
        }
    }
    if codes.len() != inv.variants.len() {
        out.push(diag(
            RuleCode::Smt010,
            SANITIZER_PATH,
            inv.line,
            "InvariantCode".to_string(),
            format!(
                "cannot pair InvariantCode variants with INVxxx strings: {} variants vs {} \
                 distinct codes",
                inv.variants.len(),
                codes.len()
            ),
        ));
        return;
    }
    let tests = ws.aux_file(SANITIZER_TESTS_PATH);
    let design = ws.doc("DESIGN.md");
    for (v, code) in inv.variants.iter().zip(&codes) {
        let tested = tests.is_some_and(|t| {
            t.fns.iter().any(|f| f.mentions(&v.name))
                || t.strings.iter().any(|(_, s)| s.contains(code))
        });
        if !tested {
            out.push(diag(
                RuleCode::Smt010,
                SANITIZER_PATH,
                v.line,
                format!("InvariantCode::{}", v.name),
                format!(
                    "{code} ({}) has no firing mutation test in {SANITIZER_TESTS_PATH}",
                    v.name
                ),
            ));
        }
        let documented = design.is_some_and(|t| t.contains(code));
        if !documented {
            out.push(diag(
                RuleCode::Smt010,
                SANITIZER_PATH,
                v.line,
                format!("InvariantCode::{}", v.name),
                format!("{code} ({}) is not documented in DESIGN.md", v.name),
            ));
        }
    }
}

fn is_inv_code(s: &str) -> bool {
    s.len() == 6 && s.starts_with("INV") && s[3..].bytes().all(|b| b.is_ascii_digit())
}

// ---------------------------------------------------------------------
// SMT011 — structural hook gating
// ---------------------------------------------------------------------

fn hook_gating(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for (path, m) in &ws.files {
        if !path.starts_with("crates/pipeline/") {
            continue;
        }
        for h in &m.hook_calls {
            if h.in_test || h.gated {
                continue;
            }
            out.push(diag(
                RuleCode::Smt011,
                path,
                h.line,
                h.hook.clone(),
                format!(
                    "`{}` call is not structurally dominated by a positive `ENABLED` branch; \
                     move it inside the monomorphized gate",
                    h.hook
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// SMT012 — exit-code contract
// ---------------------------------------------------------------------

/// The documented process exit codes (see README.md / EXPERIMENTS.md).
const EXIT_CONTRACT: [i64; 6] = [0, 1, 2, 3, 4, 5];

fn exit_code_contract(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    // (a) The EXIT_* constants form exactly the documented set.
    if let Some(err) = ws.file(ERROR_PATH) {
        let exits: Vec<_> = err
            .consts
            .iter()
            .filter(|c| !c.in_test && c.name.starts_with("EXIT_"))
            .collect();
        let mut seen: Vec<i64> = Vec::new();
        for c in &exits {
            match c.value {
                Some(v) if EXIT_CONTRACT.contains(&v) => {
                    if seen.contains(&v) {
                        out.push(diag(
                            RuleCode::Smt012,
                            ERROR_PATH,
                            c.line,
                            c.name.clone(),
                            format!("`{}` duplicates exit code {v}", c.name),
                        ));
                    }
                    seen.push(v);
                }
                Some(v) => out.push(diag(
                    RuleCode::Smt012,
                    ERROR_PATH,
                    c.line,
                    c.name.clone(),
                    format!(
                        "`{}` = {v} is outside the documented 0–5 exit-code contract",
                        c.name
                    ),
                )),
                None => out.push(diag(
                    RuleCode::Smt012,
                    ERROR_PATH,
                    c.line,
                    c.name.clone(),
                    format!("`{}` must be a literal integer exit code", c.name),
                )),
            }
        }
        for v in EXIT_CONTRACT {
            if !seen.contains(&v) {
                out.push(diag(
                    RuleCode::Smt012,
                    ERROR_PATH,
                    exits.first().map_or(1, |c| c.line),
                    format!("EXIT_{v}"),
                    format!("no EXIT_* constant defines documented exit code {v}"),
                ));
            }
        }
    }
    // (b) No raw integer literals at exit() call sites.
    for (path, m) in &ws.files {
        if !path.starts_with("crates/experiments/") {
            continue;
        }
        for e in &m.exit_calls {
            if e.in_test || !e.has_literal {
                continue;
            }
            out.push(diag(
                RuleCode::Smt012,
                path,
                e.line,
                "exit-literal".to_string(),
                "raw integer literal in exit(); use the named EXIT_* constants".to_string(),
            ));
        }
    }
    // (c) The CLI usage text documents every code.
    if let Some(main) = ws.file(MAIN_PATH) {
        let usage = main
            .strings
            .iter()
            .find(|(_, s)| s.to_ascii_lowercase().contains("exit codes"));
        match usage {
            None => out.push(diag(
                RuleCode::Smt012,
                MAIN_PATH,
                1,
                "usage-exit-codes".to_string(),
                "usage text has no `exit codes` section".to_string(),
            )),
            Some((line, text)) => {
                for v in EXIT_CONTRACT {
                    if !mentions_digit(text, v) {
                        out.push(diag(
                            RuleCode::Smt012,
                            MAIN_PATH,
                            *line,
                            "usage-exit-codes".to_string(),
                            format!("usage text's exit-codes section does not mention {v}"),
                        ));
                    }
                }
            }
        }
    }
    // (d) README.md / EXPERIMENTS.md document every code near their
    // exit-code anchor.
    for doc_path in ["README.md", "EXPERIMENTS.md"] {
        let Some(text) = ws.doc(doc_path) else {
            continue;
        };
        let lower = text.to_ascii_lowercase();
        let Some(anchor) = lower.find("exit code") else {
            out.push(diag(
                RuleCode::Smt012,
                doc_path,
                1,
                "doc-exit-codes".to_string(),
                format!("{doc_path} has no `exit code` section"),
            ));
            continue;
        };
        let anchor_line = crate::lexer::line_of(text, anchor);
        let window: String = text
            .lines()
            .skip(anchor_line.saturating_sub(1))
            .take(15)
            .collect::<Vec<_>>()
            .join("\n");
        for v in EXIT_CONTRACT {
            if !mentions_digit(&window, v) {
                out.push(diag(
                    RuleCode::Smt012,
                    doc_path,
                    anchor_line,
                    "doc-exit-codes".to_string(),
                    format!(
                        "{doc_path}'s exit-code section does not mention code {v} within 15 \
                         lines of the anchor"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// SMT013 — fragment-stitch coverage
// ---------------------------------------------------------------------

/// One stitched record type: where the struct lives, and the merge
/// functions that must each handle every one of its fields.
struct StitchSurface {
    struct_path: &'static str,
    struct_name: &'static str,
    merge_path: &'static str,
    merge_fns: &'static [&'static str],
}

/// The fragment stitcher's merge surface. `ThreadStats` is summed as
/// per-fragment deltas by the replay engine; `Interval`/`ThreadWindow`
/// are merged index-by-index when per-fragment interval series are
/// stitched. The merge fns are deliberately written field-exhaustively
/// (struct literal or one `+=` per field) so this rule can hold them to
/// the struct definitions.
const STITCH_SURFACES: [StitchSurface; 3] = [
    StitchSurface {
        struct_path: "crates/pipeline/src/stats.rs",
        struct_name: "ThreadStats",
        merge_path: "crates/pipeline/src/fragment.rs",
        merge_fns: &["stats_delta", "stats_add"],
    },
    StitchSurface {
        struct_path: "crates/obs/src/interval.rs",
        struct_name: "Interval",
        merge_path: "crates/obs/src/interval.rs",
        merge_fns: &["merge_interval"],
    },
    StitchSurface {
        struct_path: "crates/obs/src/interval.rs",
        struct_name: "ThreadWindow",
        merge_path: "crates/obs/src/interval.rs",
        merge_fns: &["merge_thread_window"],
    },
];

fn stitch_coverage(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for surface in &STITCH_SURFACES {
        let Some(sm) = ws.file(surface.struct_path) else {
            continue; // stitcher not in this workspace (synthetic trees)
        };
        let Some(s) = sm
            .structs
            .iter()
            .find(|s| !s.in_test && s.name == surface.struct_name)
        else {
            continue;
        };
        let merge_model = ws.file(surface.merge_path);
        let merges: Vec<&FnDef> = surface
            .merge_fns
            .iter()
            .filter_map(|name| {
                merge_model.and_then(|m| {
                    m.fns
                        .iter()
                        .find(|f| !f.in_test && f.owner.is_none() && f.name == *name)
                })
            })
            .collect();
        if merges.len() != surface.merge_fns.len() {
            let missing: Vec<&str> = surface
                .merge_fns
                .iter()
                .filter(|n| !merges.iter().any(|f| f.name == **n))
                .copied()
                .collect();
            out.push(diag(
                RuleCode::Smt013,
                surface.struct_path,
                s.line,
                surface.struct_name.to_string(),
                format!(
                    "stitched `{}` has no merge fn(s) {} in {}; fragment replay cannot \
                     prove bit-identity without them",
                    surface.struct_name,
                    missing.join(", "),
                    surface.merge_path
                ),
            ));
            continue;
        }
        for field in &s.fields {
            let missing: Vec<&str> = merges
                .iter()
                .filter(|f| !f.mentions(&field.name))
                .map(|f| f.name.as_str())
                .collect();
            if missing.is_empty() {
                continue;
            }
            out.push(diag(
                RuleCode::Smt013,
                surface.struct_path,
                field.line,
                format!("{}::{}", surface.struct_name, field.name),
                format!(
                    "field `{}` of stitched `{}` is not handled by merge fn(s) {} in {}; \
                     merge it, or allowlist `{}#{}::{}` with a non-additive justification",
                    field.name,
                    surface.struct_name,
                    missing.join(", "),
                    surface.merge_path,
                    surface.struct_path,
                    surface.struct_name,
                    field.name
                ),
            ));
        }
    }
}

/// True when `text` contains the (single-digit) value as a standalone
/// number — not as part of a longer number or identifier.
fn mentions_digit(text: &str, v: i64) -> bool {
    let needle = (b'0' + v as u8) as char;
    let b = text.as_bytes();
    text.char_indices().any(|(i, c)| {
        c == needle
            && (i == 0 || !b[i - 1].is_ascii_alphanumeric())
            && (i + 1 >= b.len() || !b[i + 1].is_ascii_alphanumeric())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::extract;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(p, src)| (p.to_string(), extract(src)))
                .collect(),
            aux: Vec::new(),
            docs: Vec::new(),
        }
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn smt008_flags_uncaptured_field() {
        let src = r#"
pub struct Wheel {
    len: usize,
    mask: u64,
}
impl Wheel {
    pub fn save_state(&self, out: &mut Vec<u8>) { put(out, self.len); }
    pub fn load_state(&mut self, b: &[u8]) { self.len = 0; self.mask = 1; }
}
"#;
        let w = ws(vec![("crates/pipeline/src/events.rs", src)]);
        let diags = scan_workspace(&w);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Smt008)
            .collect();
        assert_eq!(hits.len(), 1, "{:?}", codes_of(&diags));
        assert_eq!(hits[0].item.as_deref(), Some("Wheel::mask"));
        assert!(hits[0].message.contains("capture path"));
    }

    #[test]
    fn smt008_ignores_structs_without_snapshot_pair() {
        let src = r#"
pub struct Scratch { a: u64 }
impl Scratch {
    pub fn save_state(&self, out: &mut Vec<u8>) { put(out, self.a); }
}
"#;
        let w = ws(vec![("crates/pipeline/src/x.rs", src)]);
        assert!(scan_workspace(&w)
            .iter()
            .all(|d| d.code != RuleCode::Smt008));
    }

    #[test]
    fn smt009_flags_missing_dispatch_arm() {
        let src = r#"
pub enum PolicyKind { A, B }
impl PolicyKind {
    pub fn name(self) -> &'static str {
        match self { PolicyKind::A => "A", PolicyKind::B => "B" }
    }
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s { "A" => Some(PolicyKind::A), "B" => Some(PolicyKind::B), _ => None }
    }
    pub fn build(self) -> u32 {
        match self { PolicyKind::A => 1, PolicyKind::B => 2 }
    }
    pub fn dispatch(self) -> u32 {
        match self { PolicyKind::A => 1 }
    }
}
"#;
        let w = ws(vec![("crates/core/src/factory.rs", src)]);
        let diags = scan_workspace(&w);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Smt009)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].item.as_deref(), Some("dispatch::B"));
    }

    #[test]
    fn smt009_requires_explicit_quiescence_safe() {
        let factory = r#"
pub enum PolicyKind { A }
impl PolicyKind {
    pub fn name(self) -> &'static str { match self { PolicyKind::A => "A" } }
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s { "A" => Some(PolicyKind::A), _ => None }
    }
    pub fn build(self) -> u32 { match self { PolicyKind::A => 1 } }
    pub fn dispatch<V>(self, v: V) -> u32 {
        match self { PolicyKind::A => v.visit(Alpha::new()) }
    }
}
"#;
        let alpha = r#"
pub struct Alpha;
impl FetchPolicy for Alpha {
    fn order(&self) -> u32 { 0 }
}
"#;
        let w = ws(vec![
            ("crates/core/src/factory.rs", factory),
            ("crates/core/src/alpha.rs", alpha),
        ]);
        let diags = scan_workspace(&w);
        assert!(
            diags.iter().any(|d| d.code == RuleCode::Smt009
                && d.item.as_deref() == Some("Alpha::quiescence_safe")),
            "{diags:?}"
        );
    }

    #[test]
    fn smt010_pairs_variants_with_codes_and_checks_tests_and_docs() {
        let san = r#"
pub enum InvariantCode { FooCheck, BarCheck }
impl InvariantCode {
    pub fn code(self) -> &'static str {
        match self {
            InvariantCode::FooCheck => "INV001",
            InvariantCode::BarCheck => "INV002",
        }
    }
}
"#;
        let tests_src = r#"
#[test]
fn foo_fires() { assert_caught(Mutation::Leak, InvariantCode::FooCheck); }
"#;
        let w = Workspace {
            files: vec![(SANITIZER_PATH.to_string(), extract(san))],
            aux: vec![(SANITIZER_TESTS_PATH.to_string(), extract(tests_src))],
            docs: vec![(
                "DESIGN.md".to_string(),
                "INV001 is documented here.".to_string(),
            )],
        };
        let diags = scan_workspace(&w);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Smt010)
            .collect();
        // BarCheck: untested AND undocumented → two findings; FooCheck clean.
        assert_eq!(hits.len(), 2, "{diags:?}");
        assert!(hits
            .iter()
            .all(|d| d.item.as_deref() == Some("InvariantCode::BarCheck")));
    }

    #[test]
    fn smt011_flags_structurally_ungated_hook() {
        let src = r#"
impl<P: Probe> Sim<P> {
    fn step(&mut self) {
        if P::ENABLED {
            self.probe.on_sample(1);
        }
        self.probe.on_gate(2);
    }
}
"#;
        let w = ws(vec![("crates/pipeline/src/sim.rs", src)]);
        let diags = scan_workspace(&w);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Smt011)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].item.as_deref(), Some("on_gate"));
    }

    #[test]
    fn smt012_checks_consts_calls_usage_and_docs() {
        let err = r#"
pub const EXIT_OK: i32 = 0;
pub const EXIT_RUNTIME: i32 = 1;
pub const EXIT_USAGE: i32 = 2;
pub const EXIT_PARTIAL: i32 = 3;
pub const EXIT_CHAOS: i32 = 4;
pub const EXIT_INT: i32 = 5;
pub const EXIT_BOGUS: i32 = 9;
"#;
        let main_src = r#"
const USAGE: &str = "usage...\nexit codes: 0 ok, 1 runtime, 2 usage, 3 partial, 4 chaos";
fn main() { std::process::exit(3); }
"#;
        let w = Workspace {
            files: vec![
                (ERROR_PATH.to_string(), extract(err)),
                (MAIN_PATH.to_string(), extract(main_src)),
            ],
            aux: Vec::new(),
            docs: vec![
                (
                    "README.md".to_string(),
                    "## Exit codes\n`0` `1` `2` `3` `4` `5`\n".to_string(),
                ),
                ("EXPERIMENTS.md".to_string(), "no section here".to_string()),
            ],
        };
        let diags = scan_workspace(&w);
        let items: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Smt012)
            .map(|d| d.item.clone().unwrap_or_default())
            .collect();
        assert!(items.contains(&"EXIT_BOGUS".to_string()), "{items:?}");
        assert!(items.contains(&"exit-literal".to_string()), "{items:?}");
        // usage text misses code 5
        assert!(items.contains(&"usage-exit-codes".to_string()), "{items:?}");
        // EXPERIMENTS.md has no section at all
        assert!(items.contains(&"doc-exit-codes".to_string()), "{items:?}");
    }
    const STATS_SRC: &str = r#"
pub struct ThreadStats {
    pub fetched: u64,
    pub committed: u64,
}
"#;

    #[test]
    fn smt013_flags_merge_fn_missing_a_field() {
        // stats_add forgets `committed`.
        let frag = r#"
pub fn stats_delta(end: &ThreadStats, start: &ThreadStats) -> ThreadStats {
    ThreadStats { fetched: end.fetched - start.fetched, committed: end.committed - start.committed }
}
pub fn stats_add(acc: &mut ThreadStats, d: &ThreadStats) {
    acc.fetched += d.fetched;
}
"#;
        let diags = scan_workspace(&ws(vec![
            ("crates/pipeline/src/stats.rs", STATS_SRC),
            ("crates/pipeline/src/fragment.rs", frag),
        ]));
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Smt013)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].item.as_deref(), Some("ThreadStats::committed"));
        assert!(hits[0].message.contains("stats_add"), "{}", hits[0].message);
        assert!(
            !hits[0].message.contains("stats_delta"),
            "stats_delta does handle the field: {}",
            hits[0].message
        );
    }

    #[test]
    fn smt013_is_clean_when_every_merge_fn_handles_every_field() {
        let frag = r#"
pub fn stats_delta(end: &ThreadStats, start: &ThreadStats) -> ThreadStats {
    ThreadStats { fetched: end.fetched - start.fetched, committed: end.committed - start.committed }
}
pub fn stats_add(acc: &mut ThreadStats, d: &ThreadStats) {
    acc.fetched += d.fetched;
    acc.committed += d.committed;
}
"#;
        let diags = scan_workspace(&ws(vec![
            ("crates/pipeline/src/stats.rs", STATS_SRC),
            ("crates/pipeline/src/fragment.rs", frag),
        ]));
        assert!(
            diags.iter().all(|d| d.code != RuleCode::Smt013),
            "{diags:?}"
        );
    }

    #[test]
    fn smt013_flags_a_missing_merge_fn_outright() {
        // The struct is stitched but fragment.rs lost stats_add entirely.
        let frag = r#"
pub fn stats_delta(end: &ThreadStats, start: &ThreadStats) -> ThreadStats {
    ThreadStats { fetched: end.fetched - start.fetched, committed: end.committed - start.committed }
}
"#;
        let diags = scan_workspace(&ws(vec![
            ("crates/pipeline/src/stats.rs", STATS_SRC),
            ("crates/pipeline/src/fragment.rs", frag),
        ]));
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Smt013)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].item.as_deref(), Some("ThreadStats"));
        assert!(hits[0].message.contains("stats_add"), "{}", hits[0].message);
        // A workspace without the stitcher files at all stays silent.
        let diags = scan_workspace(&ws(vec![("crates/pipeline/src/other.rs", "fn f() {}")]));
        assert!(diags.iter().all(|d| d.code != RuleCode::Smt013));
    }
}
