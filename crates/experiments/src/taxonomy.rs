//! The §2.1 taxonomy, evaluated: every (detection moment, response action)
//! point the paper discusses — including DC-PRED, which the paper
//! classifies but does not simulate, and the pure-priority DWarn ablation —
//! raced on the same workloads.

use dwarn_core::{
    Classification, DWarn, DataGating, DcPred, Flush, PolicyKind, PredictiveDataGating, Stall,
};
use smt_metrics::table::TextTable;
use smt_workloads::{workload, WorkloadClass};

use crate::runner::{Arch, Campaign, RunKey};

/// All policies with a (DM, RA) classification, plus ICOUNT as the base.
pub fn all_policies() -> Vec<(PolicyKind, Option<Classification>)> {
    vec![
        (PolicyKind::Icount, None),
        (PolicyKind::Stall, Some(Stall::classification())),
        (PolicyKind::Flush, Some(Flush::classification())),
        (PolicyKind::Dg, Some(DataGating::classification())),
        (
            PolicyKind::Pdg,
            Some(PredictiveDataGating::classification()),
        ),
        (PolicyKind::DcPred, Some(DcPred::classification())),
        (PolicyKind::DWarnPriorityOnly, Some(DWarn::classification())),
        (PolicyKind::DWarn, Some(DWarn::classification())),
    ]
}

fn dm_str(c: &Classification) -> &'static str {
    use dwarn_core::DetectionMoment::*;
    match c.dm {
        Fetch => "fetch",
        L1 => "L1 miss",
        XCyclesAfterIssue => "X cyc after issue",
        L2 => "L2 miss",
    }
}

fn ra_str(c: &Classification) -> &'static str {
    use dwarn_core::ResponseAction::*;
    match c.ra {
        Gate => "gate",
        Squash => "squash",
        LimitResources => "limit resources",
        ReducePriority => "reduce priority",
    }
}

/// Run the full taxonomy on the 4-MIX and 4-MEM workloads.
pub fn report(campaign: &Campaign) -> String {
    let wls = [
        workload(4, WorkloadClass::Mix),
        workload(4, WorkloadClass::Mem),
    ];
    let keys: Vec<RunKey> = wls
        .iter()
        .flat_map(|wl| {
            all_policies()
                .into_iter()
                .map(move |(p, _)| RunKey::workload(Arch::Baseline, wl, p))
        })
        .chain(Campaign::solo_grid(Arch::Baseline, &wls))
        .collect();
    campaign.prefetch(&keys);

    let mut t = TextTable::new(vec![
        "policy",
        "detection",
        "response",
        "4-MIX tput",
        "4-MIX hmean",
        "4-MEM tput",
        "4-MEM hmean",
    ]);
    for (p, class) in all_policies() {
        let (dm, ra) = class
            .as_ref()
            .map(|c| (dm_str(c), ra_str(c)))
            .unwrap_or(("—", "— (occupancy priority)"));
        let mut row = vec![p.name().to_string(), dm.to_string(), ra.to_string()];
        for wl in &wls {
            let r = campaign.workload_result(Arch::Baseline, wl, p);
            row.push(format!("{:.2}", r.throughput()));
            row.push(format!("{:.2}", campaign.hmean(Arch::Baseline, wl, p)));
        }
        t.row(row);
    }
    format!(
        "Table 1, evaluated — every detection-moment/response-action point,\n\
         including DC-PRED (classified but not simulated in the paper) and the\n\
         pure-priority DWarn ablation:\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExpParams;

    #[test]
    fn taxonomy_runs_all_eight_policies() {
        let c = Campaign::new(ExpParams {
            warmup: 1_000,
            measure: 3_000,
        });
        let s = report(&c);
        for (p, _) in all_policies() {
            assert!(s.contains(p.name()), "missing {}", p.name());
        }
        assert!(s.contains("limit resources"));
        assert!(s.contains("reduce priority"));
    }

    #[test]
    fn classification_strings_cover_all_cells() {
        let classes: Vec<Classification> =
            all_policies().into_iter().filter_map(|(_, c)| c).collect();
        let dms: std::collections::HashSet<&str> = classes.iter().map(dm_str).collect();
        let ras: std::collections::HashSet<&str> = classes.iter().map(ra_str).collect();
        assert!(
            dms.len() >= 3,
            "taxonomy spans at least 3 detection moments"
        );
        assert_eq!(ras.len(), 4, "all four response actions are exercised");
    }
}
