//! Beyond the paper: adaptive meta-policies and the oracle bounds that
//! frame them.
//!
//! The paper picks one fetch policy per run. This experiment asks what a
//! policy that *re-decides* every interval window can recover: each
//! switching meta-policy ([`dwarn_core::MetaPolicy`]) samples interval
//! metrics at window boundaries and hands fetch control to one of
//! {DWarn, STALL, FLUSH, ICOUNT}. Two oracle bounds frame the selectors:
//!
//! * **best-static** — the best single candidate for the whole run,
//!   chosen in hindsight (what a perfect *offline* selector achieves);
//! * **per-interval oracle** — stitch, per interval window, the candidate
//!   that committed the most instructions in that window (what a perfect
//!   *online* selector with zero switch cost could achieve).
//!
//! Every number in the tables shares one denominator: the full run's
//! cycle count, with per-interval committed counts taken from each run's
//! [`IntervalSeries`]. That makes the ordering invariant *exact integer
//! arithmetic*, not a float comparison:
//!
//! ```text
//! worst static  ≤  best static  ≤  per-interval oracle
//! ```
//!
//! because `Σᵢ maxₚ c[p][i] ≥ maxₚ Σᵢ c[p][i] ≥ minₚ Σᵢ c[p][i]` for any
//! committed-count matrix. The report asserts it on every workload.
//!
//! Reproduce: `cargo run --release -p smt-experiments -- meta`
//! (add `--quick` for short windows, `--sanitize` to audit every run).

use dwarn_core::meta::DEFAULT_WINDOW as DEFAULT_META_WINDOW;
use dwarn_core::PolicyKind;
use smt_metrics::table::TextTable;
use smt_obs::{IntervalConfig, IntervalProbe, IntervalSeries};
use smt_pipeline::{RecordingSanitizer, SimConfig, SimResult, Simulator, Watchdog};
use smt_workloads::{all_workloads, Workload};

use crate::runner::{Arch, Campaign};

/// The candidate set the meta-policies switch over, in the order
/// [`dwarn_core::MetaPolicy::default_candidates`] installs them. The
/// oracle bounds are computed over exactly this set.
pub const CANDIDATES: [PolicyKind; 4] = [
    PolicyKind::DWarn,
    PolicyKind::Stall,
    PolicyKind::Flush,
    PolicyKind::Icount,
];

/// One workload's results: per-policy full-run IPC and Hmean, selector
/// switch counts, and the two oracle bounds.
pub struct MetaRow {
    pub workload: String,
    /// Full-run throughput IPC per static candidate, [`CANDIDATES`] order.
    pub static_ipc: Vec<f64>,
    /// Full-run throughput IPC per selector, [`PolicyKind::meta_set`] order.
    pub meta_ipc: Vec<f64>,
    /// Hmean of relative IPCs per static candidate (same order).
    pub static_hmean: Vec<f64>,
    /// Hmean of relative IPCs per selector (same order).
    pub meta_hmean: Vec<f64>,
    /// Fetch-policy switches each selector performed (same order).
    pub switches: Vec<u64>,
    /// The best-static bound and which candidate achieves it.
    pub best_static: f64,
    pub best_static_name: &'static str,
    pub worst_static: f64,
    /// The per-interval oracle bound (IPC and Hmean of the stitched run).
    pub oracle_ipc: f64,
    pub oracle_hmean: f64,
    /// `worst static ≤ best static ≤ oracle`, checked on the underlying
    /// integer committed counts.
    pub ordering_ok: bool,
}

/// One probed simulation: the measured-window [`SimResult`] (recorded as a
/// stats artifact) plus the full-run interval series the oracle math needs.
/// Honors the campaign's `--sanitize` and `--no-skip` settings.
fn run_probed(campaign: &Campaign, wl: &Workload, kind: PolicyKind) -> (SimResult, IntervalSeries) {
    let cfg = SimConfig::baseline();
    let specs = wl.thread_specs();
    let probe = IntervalProbe::new(IntervalConfig {
        window: DEFAULT_META_WINDOW,
    });
    let wd = Watchdog::default();
    let what = format!("meta/{}/{}", wl.name, kind.name());
    let (result, series) = if campaign.sanitize() {
        let mut sim =
            Simulator::try_with_specs(cfg, kind.build(), &specs, probe, RecordingSanitizer::new())
                .unwrap_or_else(|e| panic!("{what}: {e}"));
        sim.set_skip_enabled(campaign.skip());
        let r = sim
            .try_run(campaign.params.warmup, campaign.params.measure, &wd)
            .unwrap_or_else(|e| panic!("{what}: {e}"));
        assert!(
            sim.sanitizer().is_clean(),
            "{what}: {} sanitizer violation(s), first: {}",
            sim.sanitizer().total(),
            sim.sanitizer()
                .first()
                .map(ToString::to_string)
                .unwrap_or_default()
        );
        (r, sim.into_probe().into_series())
    } else {
        let mut sim = Simulator::try_with_probe(cfg, kind.build(), &specs, probe)
            .unwrap_or_else(|e| panic!("{what}: {e}"));
        sim.set_skip_enabled(campaign.skip());
        let r = sim
            .try_run(campaign.params.warmup, campaign.params.measure, &wd)
            .unwrap_or_else(|e| panic!("{what}: {e}"));
        (r, sim.into_probe().into_series())
    };
    crate::artifacts::record_tagged_with_switches(
        "meta",
        "baseline",
        &wl.name,
        kind.name(),
        &result,
        Some(total_switches(&series)),
    );
    (result, series)
}

/// Total committed instructions per interval window (all threads).
fn committed_per_interval(s: &IntervalSeries) -> Vec<u64> {
    s.intervals
        .iter()
        .map(|iv| iv.threads.iter().map(|t| t.committed).sum())
        .collect()
}

/// Total committed instructions per thread over the whole series.
fn committed_per_thread(s: &IntervalSeries, num_threads: usize) -> Vec<u64> {
    let mut per = vec![0u64; num_threads];
    for iv in &s.intervals {
        for (t, w) in iv.threads.iter().enumerate() {
            per[t] += w.committed;
        }
    }
    per
}

fn total_cycles(s: &IntervalSeries) -> u64 {
    s.intervals.iter().map(|iv| iv.cycles).sum()
}

fn total_switches(s: &IntervalSeries) -> u64 {
    s.intervals.iter().map(|iv| iv.policy_switches).sum()
}

/// Hmean of relative IPCs for per-thread committed counts over `cycles`.
fn hmean_of(committed: &[u64], cycles: u64, solos: &[f64]) -> f64 {
    let ipcs: Vec<f64> = committed
        .iter()
        .map(|&c| c as f64 / cycles as f64)
        .collect();
    smt_metrics::hmean(&smt_metrics::relative_ipcs(&ipcs, solos))
}

/// Run the full grid for one workload and derive its row.
fn compute_row(campaign: &Campaign, wl: &Workload) -> MetaRow {
    let solos: Vec<f64> = wl
        .benchmarks
        .iter()
        .map(|b| campaign.solo_ipc(Arch::Baseline, b))
        .collect();

    let static_series: Vec<IntervalSeries> = CANDIDATES
        .iter()
        .map(|&k| run_probed(campaign, wl, k).1)
        .collect();
    let cycles = total_cycles(&static_series[0]);
    for s in &static_series {
        assert_eq!(
            total_cycles(s),
            cycles,
            "{}: fixed-length runs must cover identical cycle ranges",
            wl.name
        );
    }

    // Per-candidate totals, and the stitched per-interval oracle. All
    // integer sums over the same fixed windows, so the ordering invariant
    // below is exact.
    let per_interval: Vec<Vec<u64>> = static_series.iter().map(committed_per_interval).collect();
    let static_committed: Vec<u64> = per_interval.iter().map(|c| c.iter().sum()).collect();
    let windows = per_interval.iter().map(Vec::len).max().unwrap_or(0);
    let mut oracle_committed = 0u64;
    let mut oracle_per_thread = vec![0u64; wl.benchmarks.len()];
    for i in 0..windows {
        let winner = (0..CANDIDATES.len())
            .max_by_key(|&p| per_interval[p].get(i).copied().unwrap_or(0))
            .unwrap_or(0);
        oracle_committed += per_interval[winner].get(i).copied().unwrap_or(0);
        if let Some(iv) = static_series[winner].intervals.get(i) {
            for (t, w) in iv.threads.iter().enumerate() {
                oracle_per_thread[t] += w.committed;
            }
        }
    }
    let best = (0..CANDIDATES.len())
        .max_by_key(|&p| static_committed[p])
        .unwrap_or(0);
    let best_committed = static_committed[best];
    let worst_committed = static_committed.iter().copied().min().unwrap_or(0);
    let ordering_ok = worst_committed <= best_committed && best_committed <= oracle_committed;

    let metas = PolicyKind::meta_set();
    let mut meta_ipc = Vec::new();
    let mut meta_hmean = Vec::new();
    let mut switches = Vec::new();
    for &k in &metas {
        let (_, series) = run_probed(campaign, wl, k);
        let committed = committed_per_thread(&series, wl.benchmarks.len());
        meta_ipc.push(committed.iter().sum::<u64>() as f64 / cycles as f64);
        meta_hmean.push(hmean_of(&committed, cycles, &solos));
        switches.push(total_switches(&series));
    }

    let static_hmean: Vec<f64> = static_series
        .iter()
        .map(|s| {
            hmean_of(
                &committed_per_thread(s, wl.benchmarks.len()),
                cycles,
                &solos,
            )
        })
        .collect();
    MetaRow {
        workload: wl.name.clone(),
        static_ipc: static_committed
            .iter()
            .map(|&c| c as f64 / cycles as f64)
            .collect(),
        meta_ipc,
        static_hmean,
        meta_hmean,
        switches,
        best_static: best_committed as f64 / cycles as f64,
        best_static_name: CANDIDATES[best].name(),
        worst_static: worst_committed as f64 / cycles as f64,
        oracle_ipc: oracle_committed as f64 / cycles as f64,
        oracle_hmean: hmean_of(&oracle_per_thread, cycles, &solos),
        ordering_ok,
    }
}

/// Compute every workload's row (solo baselines prefetched up front).
pub fn compute(campaign: &Campaign) -> Vec<MetaRow> {
    let wls = all_workloads();
    campaign.prefetch(&Campaign::solo_grid(Arch::Baseline, &wls));
    wls.iter().map(|wl| compute_row(campaign, wl)).collect()
}

/// Render the results chapter: full-run IPC table, Hmean table, selector
/// switch counts, and the ordering-invariant verdict.
pub fn report(campaign: &Campaign) -> String {
    let rows = compute(campaign);
    let metas = PolicyKind::meta_set();

    let mut cols = vec!["workload".to_string()];
    cols.extend(CANDIDATES.iter().map(|k| k.name().to_string()));
    cols.extend(metas.iter().map(|k| k.name().to_string()));
    cols.push("best-static".to_string());
    cols.push("iv-oracle".to_string());

    let mut ipc_t = TextTable::new(cols.iter().map(String::as_str).collect());
    let mut hm_t = TextTable::new(cols.iter().map(String::as_str).collect());
    let mut sw_t = TextTable::new(
        std::iter::once("workload")
            .chain(metas.iter().map(|k| k.name()))
            .collect(),
    );
    let mut ok = 0usize;
    for r in &rows {
        let mut ipc_row = vec![r.workload.clone()];
        ipc_row.extend(r.static_ipc.iter().map(|v| format!("{v:.2}")));
        ipc_row.extend(r.meta_ipc.iter().map(|v| format!("{v:.2}")));
        ipc_row.push(format!("{:.2} ({})", r.best_static, r.best_static_name));
        ipc_row.push(format!("{:.2}", r.oracle_ipc));
        ipc_t.row(ipc_row);

        let mut hm_row = vec![r.workload.clone()];
        hm_row.extend(r.static_hmean.iter().map(|v| format!("{v:.2}")));
        hm_row.extend(r.meta_hmean.iter().map(|v| format!("{v:.2}")));
        hm_row.push(format!(
            "{:.2}",
            r.static_hmean.iter().cloned().fold(f64::MIN, f64::max)
        ));
        hm_row.push(format!("{:.2}", r.oracle_hmean));
        hm_t.row(hm_row);

        let mut sw_row = vec![r.workload.clone()];
        sw_row.extend(r.switches.iter().map(|s| s.to_string()));
        sw_t.row(sw_row);

        ok += usize::from(r.ordering_ok);
    }
    let verdict = if ok == rows.len() {
        format!("ordering invariant: OK ({ok}/{} workloads)", rows.len())
    } else {
        format!(
            "ordering invariant: VIOLATED on {} workload(s)",
            rows.len() - ok
        )
    };
    format!(
        "Meta-policy study — interval-driven dynamic selection over {{DWARN, STALL, FLUSH, ICOUNT}}\n\
         (window = {DEFAULT_META_WINDOW} cycles; all IPCs full-run, from each run's interval series;\n\
         best-static = best single candidate in hindsight, iv-oracle = per-window stitched bound)\n\n\
         Full-run throughput IPC\n{}\n\
         Hmean of relative IPCs\n{}\n\
         Selector switch counts\n{}\n\
         worst static <= best static <= per-interval oracle on every workload, by integer\n\
         committed counts over identical windows: {verdict}\n",
        ipc_t.render(),
        hm_t.render(),
        sw_t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExpParams;
    use smt_workloads::{workload, WorkloadClass};

    fn quick() -> Campaign {
        Campaign::new(ExpParams {
            warmup: 500,
            measure: 1_500,
        })
    }

    #[test]
    fn oracle_bounds_order_on_one_workload() {
        let c = quick();
        let wl = workload(4, WorkloadClass::Mix);
        c.prefetch(&Campaign::solo_grid(
            Arch::Baseline,
            std::slice::from_ref(&wl),
        ));
        let row = compute_row(&c, &wl);
        assert!(row.ordering_ok);
        assert!(row.worst_static <= row.best_static);
        assert!(row.best_static <= row.oracle_ipc);
        assert_eq!(row.static_ipc.len(), CANDIDATES.len());
        assert_eq!(row.meta_ipc.len(), PolicyKind::meta_set().len());
    }

    #[test]
    fn sanitized_rows_match_plain_rows() {
        // The sanitizer is observation-only; the row's numbers must not
        // move when it is attached (and the run must come back clean).
        let wl = workload(2, WorkloadClass::Mem);
        let plain = quick();
        plain.prefetch(&Campaign::solo_grid(
            Arch::Baseline,
            std::slice::from_ref(&wl),
        ));
        let a = compute_row(&plain, &wl);
        let mut audited = quick();
        audited.set_sanitize(true);
        audited.prefetch(&Campaign::solo_grid(
            Arch::Baseline,
            std::slice::from_ref(&wl),
        ));
        let b = compute_row(&audited, &wl);
        assert_eq!(a.static_ipc, b.static_ipc);
        assert_eq!(a.meta_ipc, b.meta_ipc);
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.oracle_ipc, b.oracle_ipc);
    }

    #[test]
    fn report_renders_with_verdict() {
        let c = quick();
        let s = report(&c);
        assert!(s.contains("ordering invariant: OK"), "{s}");
        assert!(s.contains("META-IPC"));
        assert!(s.contains("iv-oracle"));
        assert!(s.contains("8-MEM"));
    }
}
