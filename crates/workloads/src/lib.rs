//! # smt-workloads — the paper's multiprogrammed workloads (Table 2b)
//!
//! Twelve workloads spanning 2/4/6/8 threads × {ILP, MIX, MEM}:
//!
//! | threads | ILP | MIX | MEM |
//! |---|---|---|---|
//! | 2 | gzip, bzip2 | gzip, twolf | mcf, twolf |
//! | 4 | gzip, bzip2, eon, gcc | gzip, twolf, bzip2, mcf | mcf, twolf, vpr, parser |
//! | 6 | + crafty, perlbmk | gzip, twolf, bzip2, mcf, vpr, eon | + **mcf**, **twolf** |
//! | 8 | + gap, vortex | + parser, gap | + **vpr**, **parser** |
//!
//! Bold entries are the paper's replicated benchmarks (there are not enough
//! high-L2-miss SPECint codes): their second instances are shifted in the
//! dynamic stream — the paper shifts by one million instructions — "to
//! avoid that both threads access the cache hierarchy at the same time".

use smt_pipeline::ThreadSpec;
use smt_trace::{by_name, BenchProfile};

/// Workload class, as in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    Ilp,
    Mix,
    Mem,
}

impl WorkloadClass {
    pub fn as_str(self) -> &'static str {
        match self {
            WorkloadClass::Ilp => "ILP",
            WorkloadClass::Mix => "MIX",
            WorkloadClass::Mem => "MEM",
        }
    }

    pub const ALL: [WorkloadClass; 3] =
        [WorkloadClass::Ilp, WorkloadClass::Mix, WorkloadClass::Mem];
}

/// One multiprogrammed workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// e.g. "4-MIX".
    pub name: String,
    pub class: WorkloadClass,
    pub benchmarks: Vec<&'static str>,
}

/// Stream shift applied to the second instance of a replicated benchmark
/// (the paper shifts by one million instructions on 300M-instruction
/// traces; scaled to our shorter synthetic streams).
pub const REPLICA_SHIFT: u64 = 50_000;

/// Base trace seed; all workloads use the same seed per benchmark so a
/// benchmark's static program is identical across workloads.
pub const TRACE_SEED: u64 = 0xDC_AC4E_2004;

impl Workload {
    /// Thread count.
    pub fn num_threads(&self) -> usize {
        self.benchmarks.len()
    }

    /// The benchmark profiles, in thread order.
    pub fn profiles(&self) -> Vec<BenchProfile> {
        self.benchmarks
            .iter()
            .map(|n| by_name(n).expect("workload names a known benchmark"))
            .collect()
    }

    /// Materialize simulator thread specs. Replicated benchmarks share the
    /// seed (same code image) but the second instance is stream-shifted.
    pub fn thread_specs(&self) -> Vec<ThreadSpec> {
        let mut seen: Vec<&str> = Vec::new();
        self.benchmarks
            .iter()
            .map(|&name| {
                let occurrence = seen.iter().filter(|&&s| s == name).count() as u64;
                seen.push(name);
                ThreadSpec {
                    profile: by_name(name).expect("known benchmark"),
                    seed: TRACE_SEED,
                    skip: occurrence * REPLICA_SHIFT,
                }
            })
            .collect()
    }
}

/// Build the workload for a given thread count and class (Table 2b).
/// Panics on a (count, class) pair outside the table;
/// [`try_workload`] is the fallible form.
pub fn workload(threads: usize, class: WorkloadClass) -> Workload {
    try_workload(threads, class).unwrap_or_else(|| {
        panic!(
            "Table 2b has no {threads}-thread {} workload",
            class.as_str()
        )
    })
}

/// As [`workload`], returning `None` for a (count, class) pair outside
/// Table 2(b) instead of panicking.
pub fn try_workload(threads: usize, class: WorkloadClass) -> Option<Workload> {
    use WorkloadClass::*;
    let benchmarks: Vec<&'static str> = match (threads, class) {
        (2, Ilp) => vec!["gzip", "bzip2"],
        (2, Mix) => vec!["gzip", "twolf"],
        (2, Mem) => vec!["mcf", "twolf"],
        (4, Ilp) => vec!["gzip", "bzip2", "eon", "gcc"],
        (4, Mix) => vec!["gzip", "twolf", "bzip2", "mcf"],
        (4, Mem) => vec!["mcf", "twolf", "vpr", "parser"],
        (6, Ilp) => vec!["gzip", "bzip2", "eon", "gcc", "crafty", "perlbmk"],
        (6, Mix) => vec!["gzip", "twolf", "bzip2", "mcf", "vpr", "eon"],
        (6, Mem) => vec!["mcf", "twolf", "vpr", "parser", "mcf", "twolf"],
        (8, Ilp) => vec![
            "gzip", "bzip2", "eon", "gcc", "crafty", "perlbmk", "gap", "vortex",
        ],
        (8, Mix) => vec![
            "gzip", "twolf", "bzip2", "mcf", "vpr", "eon", "parser", "gap",
        ],
        (8, Mem) => vec![
            "mcf", "twolf", "vpr", "parser", "mcf", "twolf", "vpr", "parser",
        ],
        _ => return None,
    };
    Some(Workload {
        name: format!("{threads}-{}", class.as_str()),
        class,
        benchmarks,
    })
}

/// All 12 workloads in the paper's figure order (2/4/6/8 × ILP/MIX/MEM).
pub fn all_workloads() -> Vec<Workload> {
    let mut v = Vec::with_capacity(12);
    for threads in [2usize, 4, 6, 8] {
        for class in WorkloadClass::ALL {
            v.push(workload(threads, class));
        }
    }
    v
}

/// The workloads that fit the §6 *small* architecture (a 4-context
/// processor): the 2- and 4-thread workloads, as in Figure 4.
pub fn small_arch_workloads() -> Vec<Workload> {
    let mut v = Vec::with_capacity(6);
    for threads in [2usize, 4] {
        for class in WorkloadClass::ALL {
            v.push(workload(threads, class));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_trace::ThreadClass;

    #[test]
    fn twelve_workloads_in_figure_order() {
        let all = all_workloads();
        assert_eq!(all.len(), 12);
        let names: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names[0], "2-ILP");
        assert_eq!(names[1], "2-MIX");
        assert_eq!(names[2], "2-MEM");
        assert_eq!(names[11], "8-MEM");
    }

    #[test]
    fn ilp_workloads_contain_only_ilp_benchmarks() {
        for threads in [2usize, 4, 6, 8] {
            let w = workload(threads, WorkloadClass::Ilp);
            for p in w.profiles() {
                assert_eq!(p.class, ThreadClass::Ilp, "{} in {}", p.name, w.name);
            }
        }
    }

    #[test]
    fn mem_workloads_contain_only_mem_benchmarks() {
        for threads in [2usize, 4, 6, 8] {
            let w = workload(threads, WorkloadClass::Mem);
            for p in w.profiles() {
                assert_eq!(p.class, ThreadClass::Mem, "{} in {}", p.name, w.name);
            }
        }
    }

    #[test]
    fn mix_workloads_contain_both_classes() {
        for threads in [2usize, 4, 6, 8] {
            let w = workload(threads, WorkloadClass::Mix);
            let classes: Vec<ThreadClass> = w.profiles().iter().map(|p| p.class).collect();
            assert!(classes.contains(&ThreadClass::Ilp), "{}", w.name);
            assert!(classes.contains(&ThreadClass::Mem), "{}", w.name);
        }
    }

    #[test]
    fn replicated_benchmarks_only_in_6_and_8_mem() {
        for w in all_workloads() {
            let mut names = w.benchmarks.clone();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            let has_dupes = names.len() < before;
            let expect_dupes = w.name == "6-MEM" || w.name == "8-MEM";
            assert_eq!(has_dupes, expect_dupes, "{}", w.name);
        }
    }

    #[test]
    fn replicas_are_stream_shifted() {
        let w = workload(8, WorkloadClass::Mem);
        let specs = w.thread_specs();
        // mcf appears at threads 0 and 4.
        assert_eq!(w.benchmarks[0], "mcf");
        assert_eq!(w.benchmarks[4], "mcf");
        assert_eq!(specs[0].skip, 0);
        assert_eq!(specs[4].skip, REPLICA_SHIFT);
        // Same seed → same code image.
        assert_eq!(specs[0].seed, specs[4].seed);
    }

    #[test]
    fn table_2b_exact_contents_spot_checks() {
        assert_eq!(
            workload(4, WorkloadClass::Mix).benchmarks,
            vec!["gzip", "twolf", "bzip2", "mcf"]
        );
        assert_eq!(
            workload(6, WorkloadClass::Mix).benchmarks,
            vec!["gzip", "twolf", "bzip2", "mcf", "vpr", "eon"]
        );
        assert_eq!(
            workload(8, WorkloadClass::Ilp).benchmarks,
            vec!["gzip", "bzip2", "eon", "gcc", "crafty", "perlbmk", "gap", "vortex"]
        );
    }

    #[test]
    #[should_panic(expected = "Table 2b has no")]
    fn unknown_combination_panics() {
        let _ = workload(3, WorkloadClass::Ilp);
    }

    #[test]
    fn small_arch_set_is_2_and_4_threads() {
        let v = small_arch_workloads();
        assert_eq!(v.len(), 6);
        assert!(v.iter().all(|w| w.num_threads() <= 4));
    }
}
