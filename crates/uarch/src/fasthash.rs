//! A fast, deterministic hasher for the simulator's integer-keyed maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which is wasted work here: every hot map in the simulator
//! is keyed by a `u64` (line addresses, load ids) that an adversary cannot
//! choose, and the maps are queried on nearly every simulated cycle. This
//! hasher runs the key through the splitmix64 finalizer — a full-avalanche
//! integer mix — in a handful of arithmetic instructions, and is unseeded so
//! map behaviour is identical across runs and across Rust releases.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` specialised to the splitmix-based [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Hasher state: the mixed value of the last integer written.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

/// splitmix64's finalizer: a bijective full-avalanche mix of one word.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    /// Byte-slice fallback (unused by the integer-keyed maps): FNV-1a
    /// folded through the same finalizer.
    fn write(&mut self, bytes: &[u8]) {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.hash;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.hash = mix(h);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = mix(self.hash ^ n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1_000u64 {
            m.insert(i * 64, i);
        }
        for i in 0..1_000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert_eq!(m.len(), 1_000);
    }

    #[test]
    fn mix_avalanches_sequential_keys() {
        // Line addresses differ in low bits; the mix must spread them so
        // sequential keys do not collide into adjacent buckets forever.
        let h = |k: u64| {
            let mut hh = FastHasher::default();
            hh.write_u64(k);
            hh.finish()
        };
        let a = h(0x1000);
        let b = h(0x1040);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "poor diffusion: {a:x} vs {b:x}");
    }

    #[test]
    fn deterministic_across_instances() {
        let h = |k: u64| {
            let mut hh = FastHasher::default();
            hh.write_u64(k);
            hh.finish()
        };
        assert_eq!(h(42), h(42));
    }
}
