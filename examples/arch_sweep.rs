//! Architecture sensitivity sweep: how the DWarn-over-ICOUNT advantage
//! responds to the size of the shared resources the policies fight over —
//! issue-queue entries and physical registers.
//!
//! The paper's §6 studies two fixed design points (Figures 4 and 5); this
//! example sweeps the resource axes continuously, which is the experiment a
//! user adapting the policy to a new core would run first.
//!
//! ```text
//! cargo run --release --example arch_sweep
//! ```

use dwarn_smt::core::PolicyKind;
use dwarn_smt::metrics::improvement_pct;
use dwarn_smt::metrics::table::TextTable;
use dwarn_smt::pipeline::{SimConfig, Simulator};
use dwarn_smt::workloads::{workload, WorkloadClass};

fn throughput(cfg: SimConfig, kind: PolicyKind) -> f64 {
    let wl = workload(4, WorkloadClass::Mix);
    let mut sim = Simulator::new(cfg, kind.build(), &wl.thread_specs());
    sim.run(15_000, 45_000).throughput()
}

fn main() {
    println!("4-MIX workload, baseline processor, varying one resource at a time\n");

    let mut t = TextTable::new(vec!["issue queues", "ICOUNT", "DWARN", "DWarn gain"]);
    for iq in [16u32, 24, 32, 48, 64] {
        let mut cfg = SimConfig::baseline();
        cfg.iq_int = iq;
        cfg.iq_fp = iq;
        cfg.iq_ldst = iq;
        let ic = throughput(cfg.clone(), PolicyKind::Icount);
        let dw = throughput(cfg, PolicyKind::DWarn);
        t.row(vec![
            format!("{iq} entries"),
            format!("{ic:.2}"),
            format!("{dw:.2}"),
            format!("{:+.1}%", improvement_pct(dw, ic)),
        ]);
    }
    println!("{}", t.render());
    println!("smaller queues clog sooner: DWarn's early detection matters more\n");

    let mut t = TextTable::new(vec!["phys regs", "ICOUNT", "DWARN", "DWarn gain"]);
    for regs in [192u32, 256, 320, 384, 512] {
        let mut cfg = SimConfig::baseline();
        cfg.phys_int = regs;
        cfg.phys_fp = regs;
        let ic = throughput(cfg.clone(), PolicyKind::Icount);
        let dw = throughput(cfg, PolicyKind::DWarn);
        t.row(vec![
            format!("{regs}"),
            format!("{ic:.2}"),
            format!("{dw:.2}"),
            format!("{:+.1}%", improvement_pct(dw, ic)),
        ]);
    }
    println!("{}", t.render());
    println!("ICOUNT is blind to register occupancy (§2); the fewer the registers,");
    println!("the more a run-ahead MEM thread can hurt it.");
}
