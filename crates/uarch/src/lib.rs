//! # smt-uarch — microarchitectural substrate
//!
//! The hardware structures underneath the SMT pipeline, built from scratch:
//!
//! * [`cache`] — set-associative, banked, LRU caches (tag-array model);
//! * [`hierarchy`] — the two-level memory hierarchy with MSHR coalescing and
//!   the paper's latency structure (L1 → +10 → L2 → +100 → memory);
//! * [`tlb`] — per-context data TLBs (160-cycle miss penalty);
//! * [`predictor`] — gshare + BTB + per-context RAS (Table 3 configuration);
//! * [`resources`] — the shared back-end resources the fetch policies fight
//!   over: physical register pools, issue queues, FU bandwidth, per-thread
//!   ROBs;
//! * [`fasthash`] — an unseeded splitmix64-based hasher for the hot
//!   integer-keyed maps (in-flight fill tracking, per-load policy state):
//!   the simulator is queried every cycle with keys an adversary cannot
//!   choose, so SipHash's DoS resistance is wasted cost here.

pub mod cache;
pub mod fasthash;
pub mod hierarchy;
pub mod predictor;
pub mod resources;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use fasthash::{FastHasher, FastMap};
pub use hierarchy::{IFetchAccess, MemAccess, MemHierarchy, MemTiming, ThreadMemStats};
pub use predictor::{BranchUnit, Btb, Gshare, Prediction, PredictorConfig, Ras};
pub use resources::{FuKind, FuPools, IqKind, IssueQueues, RegPool, RobCounters};
pub use tlb::{Tlb, TlbConfig};
