//! DG and PDG (El-Moursy & Albonesi \[3\]).
//!
//! **DG (data gating)** stalls a thread while it has `n` or more outstanding
//! L1 data-cache misses (the paper uses n = 1: "a thread is stalled on each
//! L1 miss"). Early and reliable detection, but the response is too strict:
//! fewer than half of L1 misses become L2 misses, so many stalls are
//! unnecessary — the resource under-use DWarn is designed to avoid.
//!
//! **PDG (predictive data gating)** moves detection to the fetch stage with
//! an L1-miss predictor (2-bit saturating counters indexed by load PC): a
//! thread stalls while (loads predicted to miss in flight) + (loads
//! predicted to hit that actually missed) ≥ n. Faster but unreliable, and —
//! as the paper observes — fetch-stalling on each predicted miss serializes
//! the misses and destroys memory-level parallelism.

use smt_pipeline::{FetchPolicy, PolicyEvent, PolicyView};
use smt_trace::snapio::{self, SnapError, SnapReader};

use crate::predictor::MissPredictor;
use crate::taxonomy::{Classification, DetectionMoment, ResponseAction};

/// DG: gate a thread while it has ≥ `n` outstanding L1 data misses.
#[derive(Debug, Clone, Copy)]
pub struct DataGating {
    n: u32,
}

impl DataGating {
    /// The paper's configuration (n = 1).
    pub fn new() -> DataGating {
        DataGating { n: 1 }
    }

    /// DG with a custom outstanding-miss threshold (used by the threshold
    /// ablation).
    pub fn with_threshold(n: u32) -> DataGating {
        assert!(n >= 1);
        DataGating { n }
    }

    pub fn threshold(&self) -> u32 {
        self.n
    }

    pub fn classification() -> Classification {
        Classification::new(DetectionMoment::L1, ResponseAction::Gate)
    }
}

impl Default for DataGating {
    fn default() -> Self {
        Self::new()
    }
}

impl FetchPolicy for DataGating {
    fn name(&self) -> &'static str {
        "DG"
    }

    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        view.icount_order_into(out);
        out.retain(|&t| view.threads[t].dmiss_count < self.n);
    }

    // Pure function of the view: the quiescence engine may skip idle spans.
    fn quiescence_safe(&self) -> bool {
        true
    }
}

/// Per-load PDG tracking state.
#[derive(Debug, Clone, Copy)]
struct PdgLoad {
    thread: usize,
    /// The load currently contributes to its thread's gate counter.
    counted: bool,
    predicted_miss: bool,
}

/// PDG: predictive data gating.
#[derive(Debug)]
pub struct PredictiveDataGating {
    n: u32,
    /// Per-load-PC L1-miss predictor.
    pub predictor: MissPredictor,
    /// Per-thread count of gating loads.
    counts: Vec<u32>,
    /// In-flight load state by load id.
    loads: smt_uarch::FastMap<u64, PdgLoad>,
}

impl PredictiveDataGating {
    pub fn new() -> PredictiveDataGating {
        Self::with_threshold(1)
    }

    pub fn with_threshold(n: u32) -> PredictiveDataGating {
        assert!(n >= 1);
        PredictiveDataGating {
            n,
            predictor: MissPredictor::new(),
            counts: Vec::new(),
            loads: smt_uarch::FastMap::default(),
        }
    }

    pub fn classification() -> Classification {
        Classification::new(DetectionMoment::Fetch, ResponseAction::Gate)
    }

    fn ensure_threads(&mut self, n: usize) {
        if self.counts.len() < n {
            self.counts.resize(n, 0);
        }
    }

    fn uncount(&mut self, load_id: u64) {
        if let Some(l) = self.loads.remove(&load_id) {
            if l.counted {
                debug_assert!(self.counts[l.thread] > 0);
                self.counts[l.thread] -= 1;
            }
        }
    }

    fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.predictor.load_state(r)?;
        let n = r.len_capped(MAX_SNAP_ITEMS)?;
        self.counts.clear();
        for _ in 0..n {
            self.counts.push(r.u32()?);
        }
        let n_loads = r.len_capped(MAX_SNAP_ITEMS)?;
        self.loads.clear();
        let mut counted = vec![0u32; self.counts.len()];
        for _ in 0..n_loads {
            let load_id = r.u64()?;
            let thread = r.usize()?;
            if thread >= self.counts.len() {
                return Err(SnapError::malformed(format!(
                    "tracked load names thread {thread} beyond the {} counted",
                    self.counts.len()
                )));
            }
            let l = PdgLoad {
                thread,
                counted: r.bool()?,
                predicted_miss: r.bool()?,
            };
            if l.counted {
                counted[thread] += 1;
            }
            if self.loads.insert(load_id, l).is_some() {
                return Err(SnapError::malformed(format!("duplicate load id {load_id}")));
            }
        }
        if counted != self.counts {
            return Err(SnapError::malformed(
                "per-thread gate counters diverge from the counted tracked loads".to_string(),
            ));
        }
        Ok(())
    }
}

/// Cap on serialized per-policy collection lengths: way above anything a
/// real machine tracks, low enough that a corrupt length cannot OOM.
const MAX_SNAP_ITEMS: usize = 1 << 24;

impl Default for PredictiveDataGating {
    fn default() -> Self {
        Self::new()
    }
}

impl FetchPolicy for PredictiveDataGating {
    fn name(&self) -> &'static str {
        "PDG"
    }

    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        self.ensure_threads(view.num_threads());
        view.icount_order_into(out);
        let counts = &self.counts;
        out.retain(|&t| counts[t] < self.n);
    }

    // `ensure_threads` is an idempotent resize and the gate counters change
    // only through `on_event`, so the order is a pure function of the view
    // between events: the quiescence engine may skip idle spans.
    fn quiescence_safe(&self) -> bool {
        true
    }

    fn on_event(&mut self, ev: &PolicyEvent) {
        match *ev {
            PolicyEvent::LoadFetched {
                thread,
                pc,
                load_id,
            } => {
                self.ensure_threads(thread + 1);
                let predicted_miss = self.predictor.predict(pc);
                if predicted_miss {
                    self.counts[thread] += 1;
                }
                self.loads.insert(
                    load_id,
                    PdgLoad {
                        thread,
                        counted: predicted_miss,
                        predicted_miss,
                    },
                );
            }
            PolicyEvent::LoadL1Outcome {
                thread,
                pc,
                load_id,
                l1_miss,
                ..
            } => {
                self.predictor.train(pc, l1_miss);
                let Some(l) = self.loads.get_mut(&load_id) else {
                    return;
                };
                debug_assert_eq!(l.thread, thread);
                if l.predicted_miss != l1_miss {
                    self.predictor.count_misprediction();
                }
                match (l.predicted_miss, l1_miss) {
                    (true, false) => {
                        // Predicted miss, actually hit: release the gate.
                        l.counted = false;
                        self.loads.remove(&load_id);
                        debug_assert!(self.counts[thread] > 0);
                        self.counts[thread] -= 1;
                    }
                    (false, true) => {
                        // Predicted hit, actually missed: starts gating now.
                        l.counted = true;
                        self.counts[thread] += 1;
                    }
                    (true, true) => {} // keeps gating until the fill
                    (false, false) => {
                        self.loads.remove(&load_id);
                    }
                }
            }
            PolicyEvent::LoadFilled { load_id, .. } | PolicyEvent::LoadSquashed { load_id, .. } => {
                self.uncount(load_id);
            }
            _ => {}
        }
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.predictor.save_state(out);
        snapio::put_usize(out, self.counts.len());
        for &c in &self.counts {
            snapio::put_u32(out, c);
        }
        let mut loads: Vec<(&u64, &PdgLoad)> = self.loads.iter().collect();
        loads.sort_by_key(|(id, _)| **id);
        snapio::put_usize(out, loads.len());
        for (id, l) in loads {
            snapio::put_u64(out, *id);
            snapio::put_usize(out, l.thread);
            snapio::put_bool(out, l.counted);
            snapio::put_bool(out, l.predicted_miss);
        }
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = SnapReader::new(bytes);
        self.load_snap(&mut r).map_err(|e| e.to_string())?;
        r.finish("PDG policy state").map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_pipeline::ThreadView;

    fn tv(icount: u32, dmiss: u32) -> ThreadView {
        ThreadView {
            icount,
            dmiss_count: dmiss,
            ..Default::default()
        }
    }

    #[test]
    fn dg_gates_on_any_outstanding_miss() {
        let threads = vec![tv(1, 1), tv(9, 0)];
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        assert_eq!(DataGating::new().fetch_order(&v), vec![1]);
    }

    #[test]
    fn dg_threshold_two_tolerates_one_miss() {
        let threads = vec![tv(1, 1), tv(9, 2)];
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        assert_eq!(DataGating::with_threshold(2).fetch_order(&v), vec![0]);
    }

    #[test]
    fn dg_can_gate_everyone() {
        // Unlike STALL, DG has no keep-one-running rule in [3].
        let threads = vec![tv(1, 1), tv(2, 3)];
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        assert!(DataGating::new().fetch_order(&v).is_empty());
    }

    fn fetched(p: &mut PredictiveDataGating, thread: usize, pc: u64, id: u64) {
        p.on_event(&PolicyEvent::LoadFetched {
            thread,
            pc,
            load_id: id,
        });
    }

    fn outcome(p: &mut PredictiveDataGating, thread: usize, pc: u64, id: u64, miss: bool) {
        p.on_event(&PolicyEvent::LoadL1Outcome {
            thread,
            pc,
            load_id: id,
            l1_miss: miss,
            l2_miss: false,
        });
    }

    #[test]
    fn pdg_learns_a_missing_load_and_gates_at_fetch() {
        let mut p = PredictiveDataGating::new();
        let pc = 0x100;
        // Train: the load misses repeatedly.
        for id in 0..4 {
            fetched(&mut p, 0, pc, id);
            outcome(&mut p, 0, pc, id, true);
            p.on_event(&PolicyEvent::LoadFilled {
                thread: 0,
                pc,
                load_id: id,
            });
        }
        assert!(p.predictor.would_predict_miss(pc));
        // Now a fetch of that load gates the thread immediately.
        fetched(&mut p, 0, pc, 100);
        let threads = vec![tv(0, 0), tv(0, 0)];
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        assert_eq!(p.fetch_order(&v), vec![1]);
        // The fill releases the gate.
        outcome(&mut p, 0, pc, 100, true);
        p.on_event(&PolicyEvent::LoadFilled {
            thread: 0,
            pc,
            load_id: 100,
        });
        assert_eq!(p.fetch_order(&v).len(), 2);
    }

    #[test]
    fn pdg_false_miss_prediction_releases_at_outcome() {
        let mut p = PredictiveDataGating::new();
        let pc = 0x200;
        for id in 0..4 {
            fetched(&mut p, 0, pc, id);
            outcome(&mut p, 0, pc, id, true);
            p.on_event(&PolicyEvent::LoadFilled {
                thread: 0,
                pc,
                load_id: id,
            });
        }
        fetched(&mut p, 0, pc, 50);
        assert_eq!(p.counts[0], 1);
        // Actually hits: gate must lift at the outcome, not at a fill.
        let before = p.predictor.mispredictions;
        outcome(&mut p, 0, pc, 50, false);
        assert_eq!(p.counts[0], 0);
        assert_eq!(p.predictor.mispredictions, before + 1);
    }

    #[test]
    fn pdg_predicted_hit_that_misses_starts_gating_late() {
        let mut p = PredictiveDataGating::new();
        let pc = 0x300;
        fetched(&mut p, 1, pc, 7);
        assert_eq!(p.counts.get(1), Some(&0));
        outcome(&mut p, 1, pc, 7, true);
        assert_eq!(p.counts[1], 1);
        p.on_event(&PolicyEvent::LoadSquashed {
            thread: 1,
            pc,
            load_id: 7,
        });
        assert_eq!(p.counts[1], 0);
    }

    #[test]
    fn pdg_squash_of_predicted_miss_releases() {
        let mut p = PredictiveDataGating::new();
        let pc = 0x400;
        for id in 0..4 {
            fetched(&mut p, 0, pc, id);
            outcome(&mut p, 0, pc, id, true);
            p.on_event(&PolicyEvent::LoadFilled {
                thread: 0,
                pc,
                load_id: id,
            });
        }
        fetched(&mut p, 0, pc, 60);
        assert_eq!(p.counts[0], 1);
        p.on_event(&PolicyEvent::LoadSquashed {
            thread: 0,
            pc,
            load_id: 60,
        });
        assert_eq!(p.counts[0], 0);
        assert!(p.loads.is_empty());
    }

    #[test]
    fn pdg_state_round_trips_and_rejects_corruption() {
        let mut p = PredictiveDataGating::new();
        for id in 0..4 {
            fetched(&mut p, 0, 0x500, id);
            outcome(&mut p, 0, 0x500, id, true);
            p.on_event(&PolicyEvent::LoadFilled {
                thread: 0,
                pc: 0x500,
                load_id: id,
            });
        }
        fetched(&mut p, 0, 0x500, 10); // predicted miss, in flight
        fetched(&mut p, 1, 0x600, 11); // predicted hit, in flight
        outcome(&mut p, 1, 0x600, 11, true); // late gate

        let mut bytes = Vec::new();
        p.save_state(&mut bytes);
        let mut q = PredictiveDataGating::new();
        q.load_state(&bytes).unwrap();
        assert_eq!(q.counts, p.counts);
        assert_eq!(q.loads.len(), p.loads.len());
        assert_eq!(q.predictor.predictions, p.predictor.predictions);
        let mut again = Vec::new();
        q.save_state(&mut again);
        assert_eq!(again, bytes, "reserialization is byte-identical");

        // Truncation and a counter/load divergence are typed errors.
        assert!(PredictiveDataGating::new()
            .load_state(&bytes[..bytes.len() - 1])
            .is_err());
        let mut broken = bytes.clone();
        let counts_at = bytes.len() - 2 * (8 + 8 + 1 + 1) - 8 - 2 * 4;
        broken[counts_at] ^= 1;
        assert!(PredictiveDataGating::new().load_state(&broken).is_err());
    }

    #[test]
    fn classifications_match_table_1() {
        assert_eq!(
            DataGating::classification(),
            Classification::new(DetectionMoment::L1, ResponseAction::Gate)
        );
        assert_eq!(
            PredictiveDataGating::classification(),
            Classification::new(DetectionMoment::Fetch, ResponseAction::Gate)
        );
    }
}
