//! Incremental per-file analysis cache, keyed by content hash.
//!
//! Each entry stores the FNV-1a hash of a file's bytes together with its
//! extracted [`FileModel`] and its *local* (line-rule) diagnostics. On a
//! warm run, files whose bytes are unchanged skip both masking/parsing and
//! the local rule scan; cross-file rules always recompute from the models
//! (they are cheap — no I/O, no parsing — and depend on other files).
//!
//! The cache degrades safely: a missing, unreadable, corrupt, or
//! version-skewed cache file is treated as empty, and entries for files
//! that vanished are dropped on store (only looked-up paths are rewritten).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::json::{self, Value};
use crate::model::FileModel;
use crate::rules::{Diagnostic, RuleCode};

/// Bump when the model schema or any rule's extraction changes; a skewed
/// cache is discarded wholesale rather than migrated.
const CACHE_VERSION: i64 = 1;

pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Entry {
    hash: u64,
    model: FileModel,
    diags: Vec<Diagnostic>,
}

/// In-memory cache state for one lint run.
#[derive(Default)]
pub struct Cache {
    old: BTreeMap<String, (u64, Value)>,
    fresh: BTreeMap<String, Entry>,
    pub hits: usize,
    pub misses: usize,
}

impl Cache {
    /// Load a cache file; any failure yields an empty cache.
    pub fn load(path: &Path) -> Cache {
        let mut cache = Cache::default();
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        let Ok(v) = json::parse(&text) else {
            return cache;
        };
        if v.get("version").and_then(Value::as_int) != Some(CACHE_VERSION) {
            return cache;
        }
        let Some(Value::Obj(files)) = v.get("files") else {
            return cache;
        };
        for (p, entry) in files {
            let Some(hash) = entry
                .get("hash")
                .and_then(Value::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
            else {
                continue;
            };
            cache.old.insert(p.clone(), (hash, entry.clone()));
        }
        cache
    }

    /// Look up a file by content hash. A hit moves the entry into the
    /// fresh set (so it survives the next store) and returns the cached
    /// model and local diagnostics.
    pub fn lookup(&mut self, path: &str, hash: u64) -> Option<(FileModel, Vec<Diagnostic>)> {
        let hit = match self.old.get(path) {
            Some((h, entry)) if *h == hash => {
                let model = entry.get("model").and_then(FileModel::from_value)?;
                let diags = entry
                    .get("diags")
                    .and_then(Value::as_arr)
                    .and_then(|a| a.iter().map(diag_from).collect::<Option<Vec<_>>>())?;
                Some((model, diags))
            }
            _ => None,
        };
        match hit {
            Some((model, diags)) => {
                self.hits += 1;
                self.fresh.insert(
                    path.to_string(),
                    Entry {
                        hash,
                        model: model.clone(),
                        diags: diags.clone(),
                    },
                );
                Some((model, diags))
            }
            None => None,
        }
    }

    /// Record a freshly analyzed file.
    pub fn insert(&mut self, path: &str, hash: u64, model: FileModel, diags: Vec<Diagnostic>) {
        self.misses += 1;
        self.fresh
            .insert(path.to_string(), Entry { hash, model, diags });
    }

    /// Persist every fresh entry (hit or newly analyzed). Entries for
    /// files no longer in the workspace are implicitly pruned.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        let files: BTreeMap<String, Value> = self
            .fresh
            .iter()
            .map(|(p, e)| {
                (
                    p.clone(),
                    Value::obj(vec![
                        ("hash", Value::str(format!("{:016x}", e.hash))),
                        ("model", e.model.to_value()),
                        (
                            "diags",
                            Value::Arr(e.diags.iter().map(diag_to_value).collect()),
                        ),
                    ]),
                )
            })
            .collect();
        let doc = Value::obj(vec![
            ("version", Value::Int(CACHE_VERSION)),
            ("files", Value::Obj(files)),
        ]);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, doc.render())
    }
}

pub fn diag_to_value(d: &Diagnostic) -> Value {
    Value::obj(vec![
        ("code", Value::str(d.code.as_str())),
        ("path", Value::str(&d.path)),
        ("line", Value::Int(d.line as i64)),
        ("snippet", Value::str(&d.snippet)),
        ("message", Value::str(&d.message)),
        (
            "item",
            d.item.as_deref().map(Value::str).unwrap_or(Value::Null),
        ),
    ])
}

pub fn diag_from(v: &Value) -> Option<Diagnostic> {
    Some(Diagnostic {
        code: RuleCode::parse(v.get("code")?.as_str()?)?,
        path: v.get("path")?.as_str()?.to_string(),
        line: v.get("line")?.as_int()? as usize,
        snippet: v.get("snippet")?.as_str()?.to_string(),
        message: v.get("message")?.as_str()?.to_string(),
        item: v.get("item")?.as_str().map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> (FileModel, Vec<Diagnostic>) {
        let model = crate::model::extract("pub struct S { a: u64 }\n");
        let diags = vec![Diagnostic {
            code: RuleCode::Smt001,
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            snippet: "let m = HashMap::new();".to_string(),
            message: "default-hasher map".to_string(),
            item: None,
        }];
        (model, diags)
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("smt-lint-cache-{}", std::process::id()));
        let file = dir.join("cache.json");
        let (model, diags) = sample_entry();
        let mut c = Cache::default();
        c.insert(
            "crates/x/src/lib.rs",
            0xdead_beef,
            model.clone(),
            diags.clone(),
        );
        c.store(&file).expect("store");

        let mut back = Cache::load(&file);
        let (m2, d2) = back
            .lookup("crates/x/src/lib.rs", 0xdead_beef)
            .expect("hit");
        assert_eq!(m2, model);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].code, diags[0].code);
        assert_eq!(d2[0].message, diags[0].message);
        assert_eq!(back.hits, 1);

        // Changed content hash: miss.
        assert!(back.lookup("crates/x/src/lib.rs", 0x1234).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_skewed_cache_is_empty() {
        let dir = std::env::temp_dir().join(format!("smt-lint-cachebad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("cache.json");
        std::fs::write(&file, "{ not json").unwrap();
        assert!(Cache::load(&file).old.is_empty());
        std::fs::write(&file, "{\"version\": 999, \"files\": {}}\n").unwrap();
        assert!(Cache::load(&file).old.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
