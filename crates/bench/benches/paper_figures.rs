//! Benches that regenerate the paper's *figures*.
//!
//! One bench per figure: Figure 1 (throughput grid + improvements), Figure
//! 2 (FLUSH overhead), Figure 3 (Hmean improvements; shares Figure 1's
//! grid), Figure 4 (small architecture), Figure 5 (deep architecture). Each
//! prints the standard-window report once, then times a short-window
//! regeneration.

use smt_bench::Group;
use smt_experiments::{figures, Campaign, ExpParams};

fn bench_params() -> ExpParams {
    ExpParams {
        warmup: 1_500,
        measure: 4_000,
    }
}

fn bench_fig1_and_fig3() {
    let campaign = Campaign::new(ExpParams::standard());
    let grid = figures::baseline_grid(&campaign);
    eprintln!("\n{}", figures::fig1_report(&grid));
    eprintln!("\n{}", figures::fig3_report(&grid));

    let mut g = Group::new("fig1_fig3_baseline");
    g.sample_size(10);
    g.bench_function("grid", || {
        let campaign = Campaign::new(bench_params());
        figures::baseline_grid(&campaign)
    });
    g.finish();
}

fn bench_fig2() {
    let campaign = Campaign::new(ExpParams::standard());
    eprintln!(
        "\n{}",
        figures::fig2_report(&figures::fig2_compute(&campaign))
    );

    let mut g = Group::new("fig2_flush_overhead");
    g.sample_size(10);
    g.bench_function("flush_runs", || {
        let campaign = Campaign::new(bench_params());
        figures::fig2_compute(&campaign)
    });
    g.finish();
}

fn bench_fig4() {
    let campaign = Campaign::new(ExpParams::standard());
    eprintln!(
        "\n{}",
        figures::fig4_report(&figures::small_grid(&campaign))
    );

    let mut g = Group::new("fig4_small_arch");
    g.sample_size(10);
    g.bench_function("small_grid", || {
        let campaign = Campaign::new(bench_params());
        figures::small_grid(&campaign)
    });
    g.finish();
}

fn bench_fig5() {
    let campaign = Campaign::new(ExpParams::standard());
    eprintln!("\n{}", figures::fig5_report(&figures::deep_grid(&campaign)));

    let mut g = Group::new("fig5_deep_arch");
    g.sample_size(10);
    g.bench_function("deep_grid", || {
        let campaign = Campaign::new(bench_params());
        figures::deep_grid(&campaign)
    });
    g.finish();
}

fn main() {
    bench_fig1_and_fig3();
    bench_fig2();
    bench_fig4();
    bench_fig5();
}
