//! Bring-your-own-workload: build custom benchmark profiles with
//! [`ProfileBuilder`] and evaluate how the fetch policies handle them.
//!
//! The scenario: a server consolidating a pointer-chasing in-memory
//! database ("dbchase"), a streaming scan ("scanner"), and two compute
//! kernels ("crunch") on one SMT core — the modern shape of the paper's
//! MIX workloads.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use dwarn_smt::core::PolicyKind;
use dwarn_smt::metrics::table::TextTable;
use dwarn_smt::pipeline::{SimConfig, Simulator, ThreadSpec};
use dwarn_smt::trace::ProfileBuilder;

fn main() {
    // A pointer-chasing in-memory index: misses to memory on 6% of loads,
    // almost no ILP around the chase.
    let dbchase = ProfileBuilder::new("dbchase")
        .miss_rates(0.09, 0.06)
        .loads(0.34)
        .chains(2)
        .pointer_chase(0.7)
        .code_blocks(250)
        .build()
        .unwrap();

    // A columnar scanner: streams through data (L1 misses galore) but the
    // stream is prefetch-friendly L2-resident work in this machine's terms.
    let scanner = ProfileBuilder::new("scanner")
        .miss_rates(0.05, 0.002)
        .loads(0.30)
        .chains(8)
        .pointer_chase(0.1)
        .code_blocks(120)
        .build()
        .unwrap();

    // Compute kernels: cache-resident, wide ILP.
    let crunch = ProfileBuilder::new("crunch")
        .miss_rates(0.002, 0.0005)
        .loads(0.20)
        .chains(10)
        .pointer_chase(0.05)
        .code_blocks(300)
        .build()
        .unwrap();

    let specs: Vec<ThreadSpec> = [&dbchase, &scanner, &crunch, &crunch]
        .iter()
        .enumerate()
        .map(|(i, p)| ThreadSpec {
            profile: (*p).clone(),
            seed: 1000 + i as u64,
            skip: i as u64 * 10_000,
        })
        .collect();

    println!("threads: dbchase, scanner, crunch, crunch\n");
    let mut t = TextTable::new(vec![
        "policy", "tput", "dbchase", "scanner", "crunch", "crunch'",
    ]);
    for kind in PolicyKind::paper_set() {
        let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), &specs);
        let r = sim.run(20_000, 60_000);
        let ipcs = r.ipcs();
        t.row(vec![
            kind.name().to_string(),
            format!("{:.2}", r.throughput()),
            format!("{:.2}", ipcs[0]),
            format!("{:.2}", ipcs[1]),
            format!("{:.2}", ipcs[2]),
            format!("{:.2}", ipcs[3]),
        ]);
    }
    println!("{}", t.render());
    println!("dbchase is the delinquent thread; watch who protects the crunchers");
    println!("without starving it.");
}
