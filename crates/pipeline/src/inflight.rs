//! In-flight instruction records and the generational slab that stores them.
//!
//! Every fetched instruction (correct-path or wrong-path) lives in the slab
//! from fetch until commit or squash. Handles are generational so that
//! stale references (e.g. a waiter list entry pointing at a squashed
//! producer) are detected instead of aliasing a recycled slot.
//!
//! # Layout
//!
//! The slab is a structure-of-arrays split along access frequency: the two
//! fields every per-cycle scan touches — the pipeline [`Stage`] (ready-list
//! compaction, commit-head checks, the quiescence probe) and the global
//! sequence number (age-ordered issue selection, squash walks) — live in
//! dense parallel arrays, while the cold remainder of the record stays in
//! [`InFlight`]. A stage sweep then reads 16-byte entries back-to-back
//! instead of striding over ~200-byte records, which is where the cycle
//! loop spends its scan time.

use smt_trace::snapio::{self, SnapError, SnapReader};
use smt_trace::DynInst;
use smt_uarch::{IqKind, MemAccess};

/// Generational handle to an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    pub idx: u32,
    pub gen: u32,
}

/// Pipeline position of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// In the per-thread fetch queue; dispatch-eligible at `ready_at`.
    Frontend { ready_at: u64 },
    /// Dispatched into an issue queue, waiting for sources.
    Waiting,
    /// All sources ready; can issue at `at`.
    Ready { at: u64 },
    /// Issued; execution completes (result broadcast) at `complete_at`.
    Executing { complete_at: u64 },
    /// Executed; waiting to commit.
    Done,
}

/// An in-flight dynamic instruction's cold state. The hot fields — stage
/// and sequence number — live in the [`Slab`]'s parallel arrays and are
/// read through [`Slab::stage`] / [`Slab::seq_of`].
#[derive(Debug, Clone)]
pub struct InFlight {
    pub thread: usize,
    pub inst: DynInst,
    /// Unready source count (producers still in flight).
    pub remaining_srcs: u8,
    /// Instructions waiting on this one's result.
    pub waiters: Vec<Handle>,
    /// Issue-queue entry held (from dispatch until issue).
    pub iq: Option<IqKind>,
    /// True while this instruction holds a physical register (int or fp per
    /// its class), from dispatch until commit/squash.
    pub holds_reg: bool,
    /// Producer this instruction's rename displaced (for squash repair).
    pub prev_producer: Option<Handle>,
    /// Result is available for bypass: consumers may issue such that their
    /// execution lines up with this instruction's completing execution.
    pub result_ready: bool,
    /// Memory access outcome (loads, set at execute).
    pub mem: Option<MemAccess>,
    /// The load is counted in its thread's outstanding-L1-miss counter.
    pub dmiss_counted: bool,
    /// The load is counted in its thread's declared-L2-miss counter.
    pub declared: bool,
    /// Where the front-end resumed after this instruction (the predicted
    /// next PC for branches; `pc + 4` otherwise).
    pub fetch_next_pc: u64,
    /// Branch was discovered (at fetch, against the trace) to have been
    /// mispredicted; executing it redirects the front-end.
    pub mispredicted: bool,
    pub squashed: bool,
}

/// Generational slab, SoA-split (see the module docs).
///
/// Liveness invariant: `gens[idx]` advances exactly when the slot's
/// occupant is removed, and a handle carrying a given generation is only
/// ever minted by [`Slab::insert`]. A generation match therefore proves
/// the slot is live *and* still holds that handle's instruction — the hot
/// validity checks ([`Slab::stage`], [`Slab::seq_of`]) never need to touch
/// the cold `items` array.
#[derive(Debug, Default)]
pub struct Slab {
    /// Cold per-instruction records.
    items: Vec<Option<InFlight>>,
    /// Generation per slot (hot: every handle validity check reads this).
    gens: Vec<u32>,
    /// Pipeline stage per slot (hot: every per-cycle scan reads this).
    stages: Vec<Stage>,
    /// Global sequence number per slot (hot: age-ordered selection).
    seqs: Vec<u64>,
    free: Vec<u32>,
    live: usize,
}

impl Slab {
    pub fn new() -> Slab {
        Slab::default()
    }

    pub fn insert(&mut self, seq: u64, stage: Stage, item: InFlight) -> Handle {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            debug_assert!(self.items[i].is_none());
            self.items[i] = Some(item);
            self.stages[i] = stage;
            self.seqs[i] = seq;
            Handle {
                idx,
                gen: self.gens[i],
            }
        } else {
            let idx = self.items.len() as u32;
            self.items.push(Some(item));
            self.gens.push(0);
            self.stages.push(stage);
            self.seqs.push(seq);
            Handle { idx, gen: 0 }
        }
    }

    /// Access the cold record if the handle is still current.
    #[inline]
    pub fn get(&self, h: Handle) -> Option<&InFlight> {
        if self.gens.get(h.idx as usize) != Some(&h.gen) {
            return None;
        }
        self.items[h.idx as usize].as_ref()
    }

    #[inline]
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut InFlight> {
        if self.gens.get(h.idx as usize) != Some(&h.gen) {
            return None;
        }
        self.items[h.idx as usize].as_mut()
    }

    /// The instruction's pipeline stage, if the handle is still current.
    #[inline]
    pub fn stage(&self, h: Handle) -> Option<Stage> {
        match self.gens.get(h.idx as usize) {
            Some(&gen) if gen == h.gen => Some(self.stages[h.idx as usize]),
            _ => None,
        }
    }

    /// The instruction's stage and sequence number in one validity check.
    #[inline]
    pub fn stage_seq(&self, h: Handle) -> Option<(Stage, u64)> {
        match self.gens.get(h.idx as usize) {
            Some(&gen) if gen == h.gen => {
                Some((self.stages[h.idx as usize], self.seqs[h.idx as usize]))
            }
            _ => None,
        }
    }

    /// Move the instruction to `stage`; the handle must be current.
    #[inline]
    pub fn set_stage(&mut self, h: Handle, stage: Stage) {
        debug_assert!(self.get(h).is_some(), "set_stage on a stale handle");
        self.stages[h.idx as usize] = stage;
    }

    /// The instruction's global sequence number, if the handle is still
    /// current.
    #[inline]
    pub fn seq_of(&self, h: Handle) -> Option<u64> {
        match self.gens.get(h.idx as usize) {
            Some(&gen) if gen == h.gen => Some(self.seqs[h.idx as usize]),
            _ => None,
        }
    }

    /// Remove the instruction; the slot's generation advances, invalidating
    /// all outstanding handles to it.
    pub fn remove(&mut self, h: Handle) -> Option<InFlight> {
        if self.gens.get(h.idx as usize) != Some(&h.gen) {
            return None;
        }
        let i = h.idx as usize;
        let item = self.items[i].take()?;
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(h.idx);
        self.live -= 1;
        Some(item)
    }

    pub fn live(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Serialize the complete slab — occupied and free slots, generations,
    /// and the free stack *in order* — so a restored slab recycles slots in
    /// exactly the sequence the original would have (handle values, and
    /// therefore everything keyed on them, stay bit-identical).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        snapio::put_usize(out, self.items.len());
        for i in 0..self.items.len() {
            snapio::put_u32(out, self.gens[i]);
            put_stage(out, self.stages[i]);
            snapio::put_u64(out, self.seqs[i]);
            snapio::put_opt(out, self.items[i].as_ref(), |out, item| {
                put_inflight(out, item)
            });
        }
        snapio::put_usize(out, self.free.len());
        for &idx in &self.free {
            snapio::put_u32(out, idx);
        }
    }

    /// Rebuild the slab from a snapshot section. The slab has no
    /// construction-derived shape, so the load replaces everything; on error
    /// the slab is unspecified and must be discarded.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        const MAX_SLOTS: usize = 1 << 24;
        let n = r.len_capped(MAX_SLOTS)?;
        let mut items = Vec::with_capacity(n);
        let mut gens = Vec::with_capacity(n);
        let mut stages = Vec::with_capacity(n);
        let mut seqs = Vec::with_capacity(n);
        let mut live = 0usize;
        for _ in 0..n {
            gens.push(r.u32()?);
            stages.push(read_stage(r)?);
            seqs.push(r.u64()?);
            let item = r.opt(read_inflight)?;
            if item.is_some() {
                live += 1;
            }
            items.push(item);
        }
        let n_free = r.len_capped(MAX_SLOTS)?;
        if n_free + live != n {
            return Err(SnapError::malformed(format!(
                "slab free count {n_free} + live {live} != slots {n}"
            )));
        }
        let mut free = Vec::with_capacity(n_free);
        let mut seen = vec![false; n];
        for _ in 0..n_free {
            let idx = r.u32()?;
            let i = idx as usize;
            if i >= n || items[i].is_some() || seen[i] {
                return Err(SnapError::malformed(format!(
                    "slab free-stack entry {idx} is out of range, occupied, or duplicated"
                )));
            }
            seen[i] = true;
            free.push(idx);
        }
        self.items = items;
        self.gens = gens;
        self.stages = stages;
        self.seqs = seqs;
        self.free = free;
        self.live = live;
        Ok(())
    }
}

// --- Snapshot field codecs for the slab's record types. ---

pub(crate) fn put_handle(out: &mut Vec<u8>, h: Handle) {
    snapio::put_u32(out, h.idx);
    snapio::put_u32(out, h.gen);
}

pub(crate) fn read_handle(r: &mut SnapReader<'_>) -> Result<Handle, SnapError> {
    Ok(Handle {
        idx: r.u32()?,
        gen: r.u32()?,
    })
}

fn put_stage(out: &mut Vec<u8>, s: Stage) {
    match s {
        Stage::Frontend { ready_at } => {
            snapio::put_u8(out, 0);
            snapio::put_u64(out, ready_at);
        }
        Stage::Waiting => snapio::put_u8(out, 1),
        Stage::Ready { at } => {
            snapio::put_u8(out, 2);
            snapio::put_u64(out, at);
        }
        Stage::Executing { complete_at } => {
            snapio::put_u8(out, 3);
            snapio::put_u64(out, complete_at);
        }
        Stage::Done => snapio::put_u8(out, 4),
    }
}

fn read_stage(r: &mut SnapReader<'_>) -> Result<Stage, SnapError> {
    Ok(match r.u8()? {
        0 => Stage::Frontend { ready_at: r.u64()? },
        1 => Stage::Waiting,
        2 => Stage::Ready { at: r.u64()? },
        3 => Stage::Executing {
            complete_at: r.u64()?,
        },
        4 => Stage::Done,
        t => return Err(SnapError::malformed(format!("Stage tag {t}"))),
    })
}

fn iq_kind_tag(k: IqKind) -> u8 {
    match k {
        IqKind::Int => 0,
        IqKind::Fp => 1,
        IqKind::LdSt => 2,
    }
}

fn iq_kind_from_tag(t: u8) -> Result<IqKind, SnapError> {
    Ok(match t {
        0 => IqKind::Int,
        1 => IqKind::Fp,
        2 => IqKind::LdSt,
        _ => return Err(SnapError::malformed(format!("IqKind tag {t}"))),
    })
}

fn put_inflight(out: &mut Vec<u8>, i: &InFlight) {
    snapio::put_usize(out, i.thread);
    i.inst.save_state(out);
    snapio::put_u8(out, i.remaining_srcs);
    snapio::put_usize(out, i.waiters.len());
    for &w in &i.waiters {
        put_handle(out, w);
    }
    snapio::put_opt(out, i.iq, |out, k| snapio::put_u8(out, iq_kind_tag(k)));
    snapio::put_bool(out, i.holds_reg);
    snapio::put_opt(out, i.prev_producer, put_handle);
    snapio::put_bool(out, i.result_ready);
    snapio::put_opt(out, i.mem.as_ref(), |out, m| {
        snapio::put_u64(out, m.complete_at);
        snapio::put_bool(out, m.l1_miss);
        snapio::put_bool(out, m.l2_miss);
        snapio::put_bool(out, m.tlb_miss);
    });
    snapio::put_bool(out, i.dmiss_counted);
    snapio::put_bool(out, i.declared);
    snapio::put_u64(out, i.fetch_next_pc);
    snapio::put_bool(out, i.mispredicted);
    snapio::put_bool(out, i.squashed);
}

fn read_inflight(r: &mut SnapReader<'_>) -> Result<InFlight, SnapError> {
    const MAX_WAITERS: usize = 1 << 20;
    let thread = r.usize()?;
    let inst = DynInst::load_state(r)?;
    let remaining_srcs = r.u8()?;
    let n_waiters = r.len_capped(MAX_WAITERS)?;
    let mut waiters = Vec::with_capacity(n_waiters);
    for _ in 0..n_waiters {
        waiters.push(read_handle(r)?);
    }
    Ok(InFlight {
        thread,
        inst,
        remaining_srcs,
        waiters,
        iq: r.opt(|r| iq_kind_from_tag(r.u8()?))?,
        holds_reg: r.bool()?,
        prev_producer: r.opt(read_handle)?,
        result_ready: r.bool()?,
        mem: r.opt(|r| {
            Ok(MemAccess {
                complete_at: r.u64()?,
                l1_miss: r.bool()?,
                l2_miss: r.bool()?,
                tlb_miss: r.bool()?,
            })
        })?,
        dmiss_counted: r.bool()?,
        declared: r.bool()?,
        fetch_next_pc: r.u64()?,
        mispredicted: r.bool()?,
        squashed: r.bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_trace::{CtrlKind, OpClass};

    fn dummy(thread: usize) -> InFlight {
        InFlight {
            thread,
            inst: DynInst {
                pc: 0,
                static_idx: 0,
                class: OpClass::IntAlu,
                ctrl: CtrlKind::None,
                dest: Some(1),
                srcs: [None, None],
                mem_addr: None,
                taken: false,
                next_pc: 4,
                wrong_path: false,
            },
            remaining_srcs: 0,
            waiters: Vec::new(),
            iq: None,
            holds_reg: false,
            prev_producer: None,
            result_ready: false,
            mem: None,
            dmiss_counted: false,
            declared: false,
            fetch_next_pc: 4,
            mispredicted: false,
            squashed: false,
        }
    }

    const FE: Stage = Stage::Frontend { ready_at: 0 };

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = Slab::new();
        let h = s.insert(1, FE, dummy(0));
        assert_eq!(s.seq_of(h), Some(1));
        assert_eq!(s.stage(h), Some(FE));
        assert_eq!(s.live(), 1);
        let item = s.remove(h).unwrap();
        assert_eq!(item.thread, 0);
        assert!(s.is_empty());
        assert!(s.get(h).is_none());
    }

    #[test]
    fn stale_handles_do_not_alias_recycled_slots() {
        let mut s = Slab::new();
        let h1 = s.insert(1, FE, dummy(0));
        s.remove(h1);
        let h2 = s.insert(2, FE, dummy(0)); // reuses the slot
        assert_eq!(h1.idx, h2.idx, "slot must be recycled");
        assert!(s.get(h1).is_none(), "stale handle must not resolve");
        assert!(s.stage(h1).is_none(), "stale stage read must not resolve");
        assert!(s.seq_of(h1).is_none(), "stale seq read must not resolve");
        assert_eq!(s.seq_of(h2), Some(2));
    }

    #[test]
    fn double_remove_is_none() {
        let mut s = Slab::new();
        let h = s.insert(1, FE, dummy(0));
        assert!(s.remove(h).is_some());
        assert!(s.remove(h).is_none());
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn set_stage_updates_the_parallel_array() {
        let mut s = Slab::new();
        let h = s.insert(1, FE, dummy(0));
        s.set_stage(h, Stage::Done);
        assert_eq!(s.stage(h), Some(Stage::Done));
        assert_eq!(s.seq_of(h), Some(1), "seq untouched by stage moves");
    }

    #[test]
    fn slab_state_round_trips_with_free_stack_order() {
        let mut s = Slab::new();
        let hs: Vec<Handle> = (0..6).map(|i| s.insert(i, FE, dummy(i as usize))).collect();
        // Remove in a scrambled order so the free stack is non-trivial.
        s.remove(hs[4]);
        s.remove(hs[1]);
        s.remove(hs[3]);
        s.set_stage(hs[2], Stage::Executing { complete_at: 99 });
        let mut buf = Vec::new();
        s.save_state(&mut buf);

        let mut t = Slab::new();
        let mut r = SnapReader::new(&buf);
        t.load_state(&mut r).unwrap();
        r.finish("slab").unwrap();
        assert_eq!(t.live(), s.live());
        assert_eq!(t.stage(hs[2]), Some(Stage::Executing { complete_at: 99 }));
        assert!(t.get(hs[1]).is_none(), "removed slots stay stale");
        // Re-serialization of equal state is byte-identical.
        let mut buf2 = Vec::new();
        t.save_state(&mut buf2);
        assert_eq!(buf2, buf);
        // Future inserts must recycle slots in the exact original order.
        let a = s.insert(10, FE, dummy(0));
        let b = t.insert(10, FE, dummy(0));
        assert_eq!(a, b, "free-stack order is part of the snapshot");

        // A free-stack entry pointing at an occupied slot is malformed.
        let mut bad = Vec::new();
        s.save_state(&mut bad);
        let tail = bad.len() - 4;
        bad[tail..].copy_from_slice(&hs[2].idx.to_le_bytes());
        let mut r = SnapReader::new(&bad);
        assert!(Slab::new().load_state(&mut r).is_err());
    }

    #[test]
    fn live_count_tracks_inserts_and_removes() {
        let mut s = Slab::new();
        let hs: Vec<Handle> = (0..10).map(|i| s.insert(i, FE, dummy(0))).collect();
        assert_eq!(s.live(), 10);
        for h in &hs[..5] {
            s.remove(*h);
        }
        assert_eq!(s.live(), 5);
    }
}
