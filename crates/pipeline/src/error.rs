//! Typed simulation errors and the forward-progress watchdog.
//!
//! The simulator can fail in exactly two ways: it can be *misconfigured*
//! ([`ConfigError`], caught before the first cycle), or it can stop making
//! forward progress at runtime ([`SimError::NoForwardProgress`] and the
//! budget variants, caught by the [`Watchdog`] inside
//! [`Simulator::try_run`](crate::Simulator::try_run)). Both carry enough
//! structure for a campaign runner to classify, report, and continue —
//! nothing in this crate panics on a user-reachable path.
//!
//! A watchdog abort includes a [`ProgressSnapshot`]: the cycle of the last
//! commit, per-thread ICOUNT / outstanding-miss / occupancy counters, and
//! shared-resource usage — the state needed to tell a starved fetch policy
//! from a resource deadlock from a runaway event loop.

use std::fmt;
use std::time::Duration;

/// A structurally invalid [`SimConfig`](crate::SimConfig) / thread-count
/// combination, rejected before simulation starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The per-context architectural-register reservation does not leave any
    /// physical registers to rename into.
    NotEnoughRegisters {
        threads: usize,
        reserved: u32,
        phys_int: u32,
        phys_fp: u32,
    },
    /// `fetch_threads` or `fetch_width` is zero — the ICOUNT x.y fetch
    /// mechanism needs at least 1.1.
    ZeroFetch {
        fetch_threads: u32,
        fetch_width: u32,
    },
    /// A simulation needs at least one hardware context.
    NoThreads,
    /// A worker-count setting (e.g. the `SMT_JOBS` environment variable)
    /// is not a positive integer. Rejected rather than silently defaulted:
    /// a typo in a CI matrix would otherwise change parallelism — and
    /// wall-clock baselines — without a trace.
    InvalidJobs {
        /// The raw value as given (may be empty).
        got: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotEnoughRegisters {
                threads,
                reserved,
                phys_int,
                phys_fp,
            } => write!(
                f,
                "{threads} threads reserve {reserved} architectural registers, \
                 exceeding the physical file ({phys_int} int / {phys_fp} fp)"
            ),
            ConfigError::ZeroFetch {
                fetch_threads,
                fetch_width,
            } => write!(
                f,
                "fetch mechanism must be at least 1.1 \
                 (got {fetch_threads}.{fetch_width})"
            ),
            ConfigError::NoThreads => write!(f, "need at least one thread"),
            ConfigError::InvalidJobs { got } => write!(
                f,
                "worker count must be a positive integer (got {got:?}); \
                 unset the variable to use all cores"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Per-thread state captured when the watchdog aborts a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadProgress {
    /// In-flight instruction count (the ICOUNT the fetch policy sees).
    pub icount: u32,
    /// Outstanding L1-D misses.
    pub dmiss: u32,
    /// Declared (or predicted) L2 misses — non-zero means the thread sits in
    /// the policy's low-priority fetch group.
    pub declared: u32,
    /// Issue-queue entries held.
    pub iq_held: u32,
    /// Physical registers held.
    pub regs_held: u32,
    /// Reorder-buffer occupancy.
    pub rob: usize,
    /// Fetch-queue occupancy (instructions buffered between fetch and
    /// dispatch).
    pub fetch_queue: usize,
    /// Instructions committed by this thread since cycle 0.
    pub committed: u64,
}

/// A structured deadlock/livelock report: everything the watchdog saw when
/// it pulled the plug.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Cycle at which the run was aborted.
    pub cycle: u64,
    /// Cycle of the most recent commit (equal to the run's start cycle if
    /// nothing ever committed).
    pub last_commit_cycle: u64,
    /// Instructions committed machine-wide since cycle 0.
    pub total_committed: u64,
    /// The active fetch policy.
    pub policy: &'static str,
    /// Per-thread counters, indexed by hardware context.
    pub threads: Vec<ThreadProgress>,
    /// Shared issue-queue occupancy: [int, fp, ldst].
    pub iq_usage: [u32; 3],
    /// Shared physical registers in use (int, fp).
    pub regs_in_use: (u32, u32),
}

impl fmt::Display for ProgressSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycle {} (last commit at {}, {} committed total, policy {})",
            self.cycle, self.last_commit_cycle, self.total_committed, self.policy
        )?;
        writeln!(
            f,
            "  shared: iq[int/fp/ldst]={}/{}/{} regs[int/fp]={}/{}",
            self.iq_usage[0],
            self.iq_usage[1],
            self.iq_usage[2],
            self.regs_in_use.0,
            self.regs_in_use.1
        )?;
        for (t, p) in self.threads.iter().enumerate() {
            let group = if p.declared > 0 { "dmiss" } else { "normal" };
            writeln!(
                f,
                "  t{t}[{group}]: icount={} dmiss={} declared={} iq={} regs={} \
                 rob={} fq={} committed={}",
                p.icount,
                p.dmiss,
                p.declared,
                p.iq_held,
                p.regs_held,
                p.rob,
                p.fetch_queue,
                p.committed
            )?;
        }
        Ok(())
    }
}

/// A failed simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration was rejected before the first cycle.
    Config(ConfigError),
    /// No instruction committed for the watchdog's `no_commit_cycles`
    /// budget — the machine is deadlocked or livelocked.
    NoForwardProgress {
        /// Cycles without a commit when the run was aborted.
        stalled_for: u64,
        snapshot: Box<ProgressSnapshot>,
    },
    /// The run exceeded the watchdog's total cycle budget.
    CycleBudgetExceeded {
        budget: u64,
        snapshot: Box<ProgressSnapshot>,
    },
    /// The run exceeded the watchdog's wall-clock budget.
    WallClockExceeded {
        budget: Duration,
        snapshot: Box<ProgressSnapshot>,
    },
    /// The fragment-replay engine could not reproduce the scout pass: a
    /// snapshot failed to restore on a replay worker, a fragment seam
    /// disagreed with its neighbour, or the stitched result's digest
    /// diverged from the sequential one. Always a defect report, never a
    /// tolerable outcome — the caller falls back to a sequential run.
    Fragment {
        /// Which fragment (0-based), when attributable to one.
        fragment: Option<usize>,
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::NoForwardProgress {
                stalled_for,
                snapshot,
            } => write!(
                f,
                "no forward progress: no commit for {stalled_for} cycles at {snapshot}"
            ),
            SimError::CycleBudgetExceeded { budget, snapshot } => {
                write!(f, "cycle budget of {budget} exceeded at {snapshot}")
            }
            SimError::WallClockExceeded { budget, snapshot } => write!(
                f,
                "wall-clock budget of {:.1}s exceeded at {snapshot}",
                budget.as_secs_f64()
            ),
            SimError::Fragment { fragment, detail } => match fragment {
                Some(i) => write!(f, "fragment replay failed at fragment {i}: {detail}"),
                None => write!(f, "fragment replay failed: {detail}"),
            },
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

impl SimError {
    /// The abort snapshot, if this error carries one.
    pub fn snapshot(&self) -> Option<&ProgressSnapshot> {
        match self {
            SimError::Config(_) | SimError::Fragment { .. } => None,
            SimError::NoForwardProgress { snapshot, .. }
            | SimError::CycleBudgetExceeded { snapshot, .. }
            | SimError::WallClockExceeded { snapshot, .. } => Some(snapshot),
        }
    }
}

/// Forward-progress and budget limits enforced by
/// [`Simulator::try_run`](crate::Simulator::try_run).
///
/// The watchdog is *observation-only*: it reads counters the simulator
/// already maintains and never influences simulation state, so guarded and
/// unguarded runs produce bit-identical results. The commit check costs two
/// compares per cycle; the wall clock is consulted only every
/// [`Watchdog::WALL_CHECK_INTERVAL`] cycles to keep `Instant::now` off the
/// hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watchdog {
    /// Abort when no instruction commits machine-wide for this many cycles
    /// (0 disables the check). The default, 20 000 cycles, is two orders of
    /// magnitude above the longest legitimate full-machine stall (a TLB miss
    /// plus a deep-config memory access is under 400 cycles).
    pub no_commit_cycles: u64,
    /// Abort after this many cycles total across the guarded run
    /// (0 disables the check).
    pub max_cycles: u64,
    /// Abort when the guarded run exceeds this much wall-clock time.
    pub max_wall: Option<Duration>,
}

impl Watchdog {
    /// Cycles between wall-clock checks.
    pub const WALL_CHECK_INTERVAL: u64 = 4096;

    /// Default livelock threshold (cycles without a commit).
    pub const DEFAULT_NO_COMMIT_CYCLES: u64 = 20_000;

    /// No limits at all — restores the unguarded `run` behaviour exactly.
    pub fn disabled() -> Watchdog {
        Watchdog {
            no_commit_cycles: 0,
            max_cycles: 0,
            max_wall: None,
        }
    }
}

impl Default for Watchdog {
    /// Livelock detection on, budgets off.
    fn default() -> Watchdog {
        Watchdog {
            no_commit_cycles: Watchdog::DEFAULT_NO_COMMIT_CYCLES,
            max_cycles: 0,
            max_wall: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_errors_render_their_parameters() {
        let e = ConfigError::NotEnoughRegisters {
            threads: 8,
            reserved: 256,
            phys_int: 256,
            phys_fp: 256,
        };
        let s = e.to_string();
        assert!(s.contains("8 threads"), "{s}");
        assert!(s.contains("256"), "{s}");
        let z = ConfigError::ZeroFetch {
            fetch_threads: 0,
            fetch_width: 8,
        }
        .to_string();
        assert!(z.contains("at least 1.1"), "{z}");
    }

    #[test]
    fn snapshot_display_lists_every_thread_and_its_group() {
        let snap = ProgressSnapshot {
            cycle: 1234,
            last_commit_cycle: 200,
            total_committed: 17,
            policy: "ICOUNT",
            threads: vec![
                ThreadProgress {
                    icount: 3,
                    dmiss: 0,
                    declared: 0,
                    iq_held: 1,
                    regs_held: 2,
                    rob: 3,
                    fetch_queue: 4,
                    committed: 10,
                },
                ThreadProgress {
                    icount: 9,
                    dmiss: 1,
                    declared: 1,
                    iq_held: 5,
                    regs_held: 6,
                    rob: 7,
                    fetch_queue: 8,
                    committed: 7,
                },
            ],
            iq_usage: [4, 0, 2],
            regs_in_use: (11, 12),
        };
        let s = snap.to_string();
        assert!(s.contains("t0[normal]"), "{s}");
        assert!(s.contains("t1[dmiss]"), "{s}");
        assert!(s.contains("last commit at 200"), "{s}");
        let e = SimError::NoForwardProgress {
            stalled_for: 1034,
            snapshot: Box::new(snap),
        };
        assert!(e.to_string().contains("no commit for 1034 cycles"));
    }

    #[test]
    fn default_watchdog_detects_livelock_only() {
        let wd = Watchdog::default();
        assert_eq!(wd.no_commit_cycles, Watchdog::DEFAULT_NO_COMMIT_CYCLES);
        assert_eq!(wd.max_cycles, 0);
        assert!(wd.max_wall.is_none());
        assert_eq!(Watchdog::disabled().no_commit_cycles, 0);
    }
}
