//! Golden restore-equivalence suite.
//!
//! The checkpoint/restore engine promises that interrupting a run at cycle
//! k, serializing the machine, restoring it into a *fresh* simulator, and
//! running to completion is **bit-identical** to never having stopped.
//! `SimResult::digest()` condenses a run to one content-exact value, so
//! every promise here is one `assert_eq!` — over every paper policy and
//! every meta-policy, each workload class, with and without the
//! quiescence-skipping engine, plus a sanitizer-audited restored run.

use std::cell::Cell;

use dwarn_core::PolicyKind;
use smt_pipeline::{
    CheckpointOpts, MachineSnapshot, RecordingSanitizer, RunOutcome, SimConfig, Simulator,
    ThreadSpec, Watchdog,
};
use smt_workloads::{workload, WorkloadClass};

const WARMUP: u64 = 400;
const MEASURE: u64 = 1_200;

/// Emit the first periodic checkpoint early enough that a meaningful tail
/// of both phases still runs after the restore.
const CAPTURE_INTERVAL: u64 = 300;

fn classes() -> [WorkloadClass; 3] {
    [WorkloadClass::Ilp, WorkloadClass::Mix, WorkloadClass::Mem]
}

/// Every policy the suite pins: the paper's six plus the three switching
/// meta-policies.
fn policies() -> Vec<PolicyKind> {
    let mut all = PolicyKind::paper_set().to_vec();
    all.extend(PolicyKind::meta_set());
    all
}

/// The straight run: no checkpointing at all.
fn straight_digest(kind: PolicyKind, specs: &[ThreadSpec], skip: bool) -> u64 {
    let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), specs);
    sim.set_skip_enabled(skip);
    sim.run(WARMUP, MEASURE).digest()
}

/// Run until the first periodic checkpoint fires, then stop with a
/// resumable snapshot — the "crash at cycle k" half of the equivalence.
fn interrupt_at_k(kind: PolicyKind, specs: &[ThreadSpec], skip: bool) -> MachineSnapshot {
    let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), specs);
    sim.set_skip_enabled(skip);
    let seen = Cell::new(false);
    let mut sink = |_: &MachineSnapshot| seen.set(true);
    let stop = || seen.get();
    let mut opts = CheckpointOpts {
        interval: CAPTURE_INTERVAL,
        sink: &mut sink,
        stop: Some(&stop),
    };
    match sim
        .try_run_checkpointed(WARMUP, MEASURE, &Watchdog::default(), &mut opts)
        .expect("capture run must not trip the watchdog")
    {
        RunOutcome::Interrupted(snap) => snap,
        RunOutcome::Completed(_) => panic!("{kind:?}: run completed before the first checkpoint"),
    }
}

/// Restore `snap` into a fresh simulator and run the remainder.
fn resumed_digest(
    kind: PolicyKind,
    specs: &[ThreadSpec],
    skip: bool,
    snap: &MachineSnapshot,
) -> u64 {
    let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), specs);
    sim.set_skip_enabled(skip);
    let pending = sim
        .restore_run(snap)
        .expect("snapshot restores into an identically-configured machine");
    let mut sink = |_: &MachineSnapshot| {};
    let mut opts = CheckpointOpts {
        interval: 0,
        sink: &mut sink,
        stop: None,
    };
    match sim
        .resume_run(pending, &Watchdog::default(), &mut opts)
        .expect("resumed run must not trip the watchdog")
    {
        RunOutcome::Completed(result) => result.digest(),
        RunOutcome::Interrupted(_) => panic!("{kind:?}: resume stopped without a stop request"),
    }
}

/// The full matrix for one skip mode: a straight run must equal
/// snapshot-at-k, restore, run-to-end — for every policy × class; the
/// snapshot also survives its own wire format exactly.
fn assert_matrix(skip: bool) {
    for class in classes() {
        let specs = workload(2, class).thread_specs();
        for kind in policies() {
            let want = straight_digest(kind, &specs, skip);
            let snap = interrupt_at_k(kind, &specs, skip);
            assert!(
                snap.cycle() > 0 && snap.cycle() < WARMUP + MEASURE,
                "{kind:?}/{class:?}: checkpoint at cycle {} is not mid-run",
                snap.cycle()
            );
            let rewired =
                MachineSnapshot::from_bytes(&snap.to_bytes()).expect("wire round-trip parses");
            assert_eq!(rewired, snap, "{kind:?}/{class:?}: wire round-trip drifted");
            let got = resumed_digest(kind, &specs, skip, &snap);
            assert_eq!(
                got, want,
                "{kind:?}/{class:?} skip={skip}: restored run diverged from straight run"
            );
        }
    }
}

#[test]
fn restore_at_k_is_bit_identical_with_skipping() {
    assert_matrix(true);
}

#[test]
fn restore_at_k_is_bit_identical_without_skipping() {
    assert_matrix(false);
}

#[test]
fn restore_is_bit_identical_across_skip_modes() {
    // A checkpoint taken by a skipping run resumes bit-identically under
    // the naive per-cycle engine, and vice versa: the snapshot captures
    // machine state, not engine strategy.
    let specs = workload(2, WorkloadClass::Mem).thread_specs();
    for kind in [PolicyKind::DWarn, PolicyKind::Flush] {
        let want = straight_digest(kind, &specs, true);
        let snap = interrupt_at_k(kind, &specs, true);
        assert_eq!(
            resumed_digest(kind, &specs, false, &snap),
            want,
            "{kind:?}: skip-captured snapshot diverged under no-skip resume"
        );
        let snap = interrupt_at_k(kind, &specs, false);
        assert_eq!(
            resumed_digest(kind, &specs, true, &snap),
            want,
            "{kind:?}: no-skip-captured snapshot diverged under skip resume"
        );
    }
}

#[test]
fn restored_run_is_sanitizer_clean() {
    // Restore into a fully-audited machine: every invariant the sanitizer
    // checks must hold in the reconstructed state, every audited cycle,
    // and the result must still be bit-identical.
    let specs = workload(2, WorkloadClass::Mix).thread_specs();
    for kind in [PolicyKind::Icount, PolicyKind::DWarn] {
        let want = straight_digest(kind, &specs, true);
        let snap = interrupt_at_k(kind, &specs, true);
        let mut sim = Simulator::try_sanitized(
            SimConfig::baseline(),
            kind.build(),
            &specs,
            RecordingSanitizer::new(),
        )
        .expect("baseline config is valid");
        let pending = sim.restore_run(&snap).expect("snapshot restores");
        let mut sink = |_: &MachineSnapshot| {};
        let mut opts = CheckpointOpts {
            interval: 0,
            sink: &mut sink,
            stop: None,
        };
        let got = match sim
            .resume_run(pending, &Watchdog::default(), &mut opts)
            .expect("sanitized resume must not trip the watchdog")
        {
            RunOutcome::Completed(result) => result.digest(),
            RunOutcome::Interrupted(_) => unreachable!("no stop requested"),
        };
        // No trailing force_audit: at the final cycle an event due *now* is
        // legitimately still queued. The periodic audits that ran every
        // audited cycle of the resumed span are the check.
        assert!(
            sim.sanitizer().is_clean(),
            "{kind:?}: restored machine failed the audit:\n{}",
            sim.sanitizer().render_report()
        );
        assert_eq!(got, want, "{kind:?}: sanitized restored run diverged");
    }
}

#[test]
fn solo_run_restores_bit_identically() {
    let specs = vec![ThreadSpec::new(smt_trace::profile::mcf())];
    let kind = PolicyKind::Icount;
    let want = straight_digest(kind, &specs, true);
    let snap = interrupt_at_k(kind, &specs, true);
    assert_eq!(resumed_digest(kind, &specs, true, &snap), want);
}
