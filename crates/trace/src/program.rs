//! Static-program generation.
//!
//! Each benchmark profile deterministically expands into a *static program*:
//! a code image of basic blocks grouped into functions, with fixed register
//! assignments, per-static-branch biases, and per-static-load address-pool
//! domination. This plays the role of the paper's "separate basic block
//! dictionary that contains all the static instructions": the front-end can
//! fetch (and execute) down a mispredicted path by synthesizing instructions
//! from the dictionary at any PC.

use crate::instr::{ArchReg, CtrlKind, MemPool, OpClass, StaticInst, NUM_ARCH_REGS};
use crate::profile::BenchProfile;
use crate::rng::Rng;

/// One basic block in the static program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction of the block.
    pub start: u32,
    /// Number of instructions including the terminator.
    pub len: u32,
    /// Index of the function (see [`StaticProgram::functions`]) owning this
    /// block.
    pub func: u32,
}

impl Block {
    /// Instruction index of the block's terminator.
    pub fn term_idx(&self) -> u32 {
        self.start + self.len - 1
    }
}

/// A function: a contiguous, half-open range of blocks. Control flow stays
/// within the function except for calls (to other function heads) and
/// returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Function {
    pub first_block: u32,
    pub last_block: u32,
}

/// A generated static program (the basic-block dictionary).
#[derive(Debug, Clone)]
pub struct StaticProgram {
    insts: Vec<StaticInst>,
    blocks: Vec<Block>,
    functions: Vec<Function>,
    /// `block_of[i]` = block index containing instruction `i`.
    block_of: Vec<u32>,
}

/// Number of parallel FP dependency chains (FP traffic is light in SPECint).
const FP_CHAINS: u32 = 2;

/// Dataflow state while generating a program: K parallel integer dependency
/// chains plus a couple of FP chains. Each chain owns a disjoint slice of
/// the architectural register space, so extending chain `c` (reading its
/// tail, writing the slice's next register round-robin) never aliases
/// another chain — the generated dataflow really is K independent strands,
/// cross-linked only by explicit second sources and pointer-chase hops.
struct ChainState {
    k: u32,
    slice: u32,
    int_rr: Vec<u8>,
    int_tails: Vec<Option<ArchReg>>,
    fp_rr: Vec<u8>,
    fp_tails: Vec<Option<ArchReg>>,
    /// Most recent load's (destination, chain).
    last_load: Option<(ArchReg, usize)>,
}

impl ChainState {
    fn new(k: u32) -> ChainState {
        assert!((1..=15).contains(&k), "1..=15 chains supported");
        ChainState {
            k,
            slice: (NUM_ARCH_REGS as u32 - 2) / k,
            int_rr: vec![0; k as usize],
            int_tails: vec![None; k as usize],
            fp_rr: vec![0; FP_CHAINS as usize],
            fp_tails: vec![None; FP_CHAINS as usize],
            last_load: None,
        }
    }

    fn pick_int(&self, rng: &mut Rng) -> usize {
        rng.below(self.k as u64) as usize
    }

    fn pick_fp(&self, rng: &mut Rng) -> usize {
        rng.below(FP_CHAINS as u64) as usize
    }

    fn int_tail(&self, c: usize) -> Option<ArchReg> {
        self.int_tails[c]
    }

    fn fp_tail(&self, c: usize) -> Option<ArchReg> {
        self.fp_tails[c]
    }

    /// Next destination register of integer chain `c` (round-robin within
    /// the chain's register slice, offset by 1 to keep r0 free).
    fn next_int_dest(&mut self, c: usize) -> ArchReg {
        let r = 1 + c as u32 * self.slice + self.int_rr[c] as u32;
        self.int_rr[c] = (self.int_rr[c] + 1) % self.slice as u8;
        // Overwriting the tracked load destination kills the chase.
        if let Some((ld, _)) = self.last_load {
            if ld == r as ArchReg {
                self.last_load = None;
            }
        }
        self.int_tails[c] = Some(r as ArchReg);
        r as ArchReg
    }

    fn next_fp_dest(&mut self, c: usize) -> ArchReg {
        let half = NUM_ARCH_REGS / FP_CHAINS as u8;
        let r = c as u8 * half + self.fp_rr[c] % half;
        self.fp_rr[c] = (self.fp_rr[c] + 1) % half;
        self.fp_tails[c] = Some(r);
        r
    }
}

impl StaticProgram {
    /// Deterministically generate the static program for a profile.
    /// The same `(profile, seed)` always yields the same program.
    pub fn generate(profile: &BenchProfile, seed: u64) -> StaticProgram {
        profile.validate().expect("invalid benchmark profile");
        let mut rng = Rng::new(seed ^ 0xD1C7_10AA_5EED_0001);

        // --- Partition blocks into functions of 4..=20 contiguous blocks.
        let mut functions = Vec::new();
        let mut b = 0u32;
        while b < profile.num_blocks {
            let size = rng.range(4, 21) as u32;
            let last = (b + size - 1).min(profile.num_blocks - 1);
            functions.push(Function {
                first_block: b,
                last_block: last,
            });
            b = last + 1;
        }

        // --- Generate block skeletons (lengths) so instruction indices and
        // block starts are known before wiring branch targets.
        let mut blocks = Vec::with_capacity(profile.num_blocks as usize);
        let mut start = 0u32;
        for (fi, f) in functions.iter().enumerate() {
            for _ in f.first_block..=f.last_block {
                let body =
                    rng.range(profile.block_len.0 as u64, profile.block_len.1 as u64 + 1) as u32;
                blocks.push(Block {
                    start,
                    len: body + 1, // + terminator
                    func: fi as u32,
                });
                start += body + 1;
            }
        }
        let total_insts = start as usize;

        // --- Emit instructions.
        let mut insts = Vec::with_capacity(total_insts);
        let mut block_of = Vec::with_capacity(total_insts);
        let mut chains = ChainState::new(profile.chains);
        let (hot_p, warm_p, cold_p) = profile.pool_probs();

        let body_weights = [
            profile.load_frac,
            profile.store_frac,
            profile.intmul_frac,
            profile.fp_frac,
            (1.0 - profile.load_frac - profile.store_frac - profile.intmul_frac - profile.fp_frac),
        ];

        // Per-block class composition is *stratified* to the profile mix:
        // each block gets its proportional share of loads/stores/etc. (with
        // randomized rounding), then shuffled. Hot loops therefore execute
        // the same instruction mix as cold paths, keeping the dynamic mix on
        // target no matter how the dynamic block-frequency distribution
        // concentrates.
        for (bi, blk) in blocks.iter().enumerate() {
            let func = &functions[blk.func as usize];
            let body = (blk.len - 1) as usize;
            let mut classes: Vec<OpClass> = Vec::with_capacity(body);
            for (wi, class) in [
                OpClass::Load,
                OpClass::Store,
                OpClass::IntMul,
                OpClass::FpAlu,
            ]
            .into_iter()
            .enumerate()
            {
                let share = body_weights[wi] * body as f64;
                let mut count = share.floor() as usize;
                if rng.f64() < share - count as f64 {
                    count += 1;
                }
                classes.extend(std::iter::repeat_n(class, count));
            }
            classes.truncate(body);
            while classes.len() < body {
                classes.push(OpClass::IntAlu);
            }
            // Fisher–Yates shuffle.
            for i in (1..classes.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                classes.swap(i, j);
            }

            for slot in 0..blk.len {
                let is_term = slot == blk.len - 1;
                let inst = if is_term {
                    Self::gen_terminator(bi as u32, func, &functions, profile, &mut rng, &chains)
                } else {
                    Self::gen_body_inst(
                        classes[slot as usize],
                        profile,
                        &mut rng,
                        &mut chains,
                        (hot_p, warm_p, cold_p),
                    )
                };
                insts.push(inst);
                block_of.push(bi as u32);
            }
        }

        StaticProgram {
            insts,
            blocks,
            functions,
            block_of,
        }
    }

    fn gen_body_inst(
        class: OpClass,
        profile: &BenchProfile,
        rng: &mut Rng,
        chains: &mut ChainState,
        pools: (f64, f64, f64),
    ) -> StaticInst {
        let (dest, srcs) = match class {
            OpClass::FpAlu => {
                let c = chains.pick_fp(rng);
                let s0 = chains.fp_tail(c);
                let s1 = if rng.chance(0.4) {
                    chains.fp_tail(chains.pick_fp(rng))
                } else {
                    None
                };
                let d = chains.next_fp_dest(c);
                (Some(d), [s0, s1])
            }
            OpClass::Store => {
                // address base + data value, off arbitrary chains
                let s0 = chains.int_tail(chains.pick_int(rng));
                let s1 = chains.int_tail(chains.pick_int(rng));
                (None, [s0, s1])
            }
            _ => {
                // Pointer-chasing: with the boost probability, this
                // instruction continues the last load's chain and consumes
                // its destination. For loads that makes the *address* depend
                // on the previous load's result — the serial load-load
                // chains that make MEM codes slow even when they hit. All
                // other chains keep running ahead past a blocked load.
                let (c, s0) = match chains.last_load {
                    Some((ld_reg, ld_chain)) if rng.chance(profile.load_consumer_boost) => {
                        (ld_chain, Some(ld_reg))
                    }
                    _ => {
                        let c = chains.pick_int(rng);
                        (c, chains.int_tail(c))
                    }
                };
                let s1 = if rng.chance(0.3) {
                    chains.int_tail(chains.pick_int(rng))
                } else {
                    None
                };
                let d = chains.next_int_dest(c);
                if class == OpClass::Load {
                    chains.last_load = Some((d, c));
                }
                (Some(d), [s0, s1])
            }
        };

        let mem_dominant = if class.is_mem() {
            if class == OpClass::Store {
                // Stores write to the hot (stack-like) region so they do not
                // perturb the load-miss-rate calibration with extra fills.
                Some(MemPool::Hot)
            } else {
                let (h, w, c) = pools;
                Some(match rng.weighted(&[h, w, c]) {
                    0 => MemPool::Hot,
                    1 => MemPool::Warm,
                    _ => MemPool::Cold,
                })
            }
        } else {
            None
        };

        StaticInst {
            class,
            ctrl: CtrlKind::None,
            dest,
            srcs,
            mem_dominant,
            taken_bias: 0.0,
            loop_period: 0,
            taken_target: 0,
        }
    }

    fn gen_terminator(
        block_idx: u32,
        func: &Function,
        functions: &[Function],
        profile: &BenchProfile,
        rng: &mut Rng,
        chains: &ChainState,
    ) -> StaticInst {
        let cond_src = chains.int_tail(chains.pick_int(rng));
        let is_last_of_func = block_idx == func.last_block;

        let (ctrl, class, bias, period, target_block) = if is_last_of_func {
            (CtrlKind::Return, OpClass::Jump, 0.0f32, 0u16, 0u32)
        } else {
            let roll = rng.f64();
            if roll < profile.call_frac && functions.len() > 1 {
                // Call-graph locality: real programs concentrate calls on a
                // small set of hot callees (which is also what keeps the
                // 256-entry BTB effective). 80% of call sites target one of
                // the first 8 functions; the rest are uniform.
                let mut fi = if rng.chance(0.8) {
                    rng.below(8.min(functions.len() as u64)) as usize
                } else {
                    rng.below(functions.len() as u64) as usize
                };
                if functions[fi].first_block == func.first_block {
                    fi = (fi + 1) % functions.len();
                }
                (
                    CtrlKind::Call,
                    OpClass::Jump,
                    0.0,
                    0,
                    functions[fi].first_block,
                )
            } else if roll < profile.call_frac + profile.jump_frac
                && block_idx + 1 < func.last_block
            {
                // Forward jump within the function (forward-only to preclude
                // unconditional livelock cycles).
                let t = rng.range(block_idx as u64 + 1, func.last_block as u64 + 1) as u32;
                (CtrlKind::Jump, OpClass::Jump, 0.0, 0, t)
            } else {
                // Conditional branch: taken target anywhere in the function
                // except this block; fallthrough is block_idx + 1.
                let span = (func.last_block - func.first_block + 1) as u64;
                let mut t = func.first_block + rng.below(span) as u32;
                if t == block_idx {
                    t = if t == func.last_block {
                        func.first_block
                    } else {
                        t + 1
                    };
                }
                // Back-edges become *deterministic loop branches*: taken
                // except on every Nth execution (the trip count). Real loop
                // branches are predictable precisely because their behaviour
                // is periodic, not stochastic — and they dominate dynamic
                // branch counts. Hard (data-dependent) branches live on
                // forward paths only, so a benchmark's misprediction rate is
                // governed by `hard_branch_frac`. Forward-branch outcomes
                // are drawn i.i.d. from a strong bias (that bias is the
                // floor on gshare's error for them).
                let (bias, period) = if t <= block_idx {
                    (1.0, rng.range(6, 48) as u16)
                } else if rng.chance(profile.hard_branch_frac) {
                    // Hard branches are moderately biased (error floor
                    // 20-32% each) rather than pure coin flips: one hard
                    // branch landing in a hot path must not be able to
                    // drag a whole benchmark to chance-level prediction.
                    let b = rng.range(20, 33) as f32 / 100.0;
                    (if rng.chance(0.5) { b } else { 1.0 - b }, 0)
                } else if rng.chance(0.5) {
                    (rng.range(94, 99) as f32 / 100.0, 0)
                } else {
                    (rng.range(2, 7) as f32 / 100.0, 0)
                };
                (CtrlKind::CondBr, OpClass::CondBranch, bias, period, t)
            }
        };

        StaticInst {
            class,
            ctrl,
            dest: None,
            srcs: [cond_src, None],
            mem_dominant: None,
            taken_bias: bias,
            loop_period: period,
            taken_target: target_block,
        }
    }

    /// Reassemble a program from its parts (trace-file loading). Validates
    /// the block/function structure and rebuilds the instruction→block map.
    pub fn from_parts(
        insts: Vec<StaticInst>,
        blocks: Vec<Block>,
        functions: Vec<Function>,
    ) -> Result<StaticProgram, String> {
        if blocks.is_empty() || functions.is_empty() {
            return Err("a program needs at least one block and function".into());
        }
        let mut block_of = Vec::with_capacity(insts.len());
        let mut expected = 0u32;
        for (bi, b) in blocks.iter().enumerate() {
            if b.start != expected || b.len == 0 {
                return Err(format!("block {bi} does not tile the image"));
            }
            if (b.func as usize) >= functions.len() {
                return Err(format!("block {bi} references unknown function"));
            }
            expected += b.len;
            for _ in 0..b.len {
                block_of.push(bi as u32);
            }
        }
        if expected as usize != insts.len() {
            return Err("blocks do not cover the instruction array".into());
        }
        for (fi, f) in functions.iter().enumerate() {
            if f.first_block > f.last_block || (f.last_block as usize) >= blocks.len() {
                return Err(format!("function {fi} has an invalid block range"));
            }
        }
        for (i, inst) in insts.iter().enumerate() {
            if inst.class.is_branch()
                && inst.ctrl != CtrlKind::Return
                && inst.ctrl != CtrlKind::None
                && (inst.taken_target as usize) >= blocks.len()
            {
                return Err(format!("instruction {i} targets an unknown block"));
            }
        }
        Ok(StaticProgram {
            insts,
            blocks,
            functions,
            block_of,
        })
    }

    /// Total number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program is empty (never the case for generated programs).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Code footprint in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.insts.len() as u64 * crate::instr::INST_BYTES
    }

    /// The static instruction at `idx`.
    pub fn inst(&self, idx: u32) -> &StaticInst {
        &self.insts[idx as usize]
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// All functions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Block containing instruction `idx`.
    pub fn block_of(&self, idx: u32) -> u32 {
        self.block_of[idx as usize]
    }

    /// First instruction index of block `b`.
    pub fn block_start(&self, b: u32) -> u32 {
        self.blocks[b as usize].start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{all_benchmarks, gzip, mcf};

    #[test]
    fn generation_is_deterministic() {
        let p = gzip();
        let a = StaticProgram::generate(&p, 7);
        let b = StaticProgram::generate(&p, 7);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() as u32 {
            assert_eq!(a.inst(i), b.inst(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = gzip();
        let a = StaticProgram::generate(&p, 7);
        let b = StaticProgram::generate(&p, 8);
        let differs = a.len() != b.len() || (0..a.len() as u32).any(|i| a.inst(i) != b.inst(i));
        assert!(differs);
    }

    #[test]
    fn blocks_tile_the_instruction_array() {
        for p in all_benchmarks() {
            let prog = StaticProgram::generate(&p, 1);
            let mut expected_start = 0u32;
            for blk in prog.blocks() {
                assert_eq!(blk.start, expected_start, "{}", p.name);
                assert!(blk.len >= 2, "block must hold body + terminator");
                expected_start += blk.len;
            }
            assert_eq!(expected_start as usize, prog.len(), "{}", p.name);
        }
    }

    #[test]
    fn every_block_ends_in_control_flow() {
        for p in all_benchmarks() {
            let prog = StaticProgram::generate(&p, 1);
            for blk in prog.blocks() {
                let term = prog.inst(blk.term_idx());
                assert!(term.class.is_branch(), "{}", p.name);
                assert_ne!(term.ctrl, CtrlKind::None);
                // Body instructions must not be branches.
                for i in blk.start..blk.term_idx() {
                    assert!(!prog.inst(i).class.is_branch(), "{}", p.name);
                }
            }
        }
    }

    #[test]
    fn branch_targets_stay_in_bounds_and_in_function() {
        for p in all_benchmarks() {
            let prog = StaticProgram::generate(&p, 3);
            for blk in prog.blocks() {
                let term = prog.inst(blk.term_idx());
                let func = prog.functions()[blk.func as usize];
                match term.ctrl {
                    CtrlKind::CondBr | CtrlKind::Jump => {
                        assert!(
                            (term.taken_target as usize) < prog.blocks().len(),
                            "{}",
                            p.name
                        );
                        let tb = term.taken_target;
                        assert!(
                            tb >= func.first_block && tb <= func.last_block,
                            "{}: intra-function target out of function",
                            p.name
                        );
                    }
                    CtrlKind::Call => {
                        // Calls target a function head.
                        let tb = term.taken_target;
                        assert!(
                            prog.functions().iter().any(|f| f.first_block == tb),
                            "{}: call target is not a function head",
                            p.name
                        );
                    }
                    CtrlKind::Return => {}
                    CtrlKind::None => panic!("terminator without ctrl kind"),
                }
            }
        }
    }

    #[test]
    fn cond_branches_never_target_their_own_block() {
        for p in all_benchmarks() {
            let prog = StaticProgram::generate(&p, 5);
            for (bi, blk) in prog.blocks().iter().enumerate() {
                let term = prog.inst(blk.term_idx());
                if term.ctrl == CtrlKind::CondBr {
                    assert_ne!(term.taken_target, bi as u32, "{}", p.name);
                }
            }
        }
    }

    #[test]
    fn unconditional_jumps_go_forward() {
        // Forward-only jumps preclude unconditional livelock cycles.
        for p in all_benchmarks() {
            let prog = StaticProgram::generate(&p, 11);
            for (bi, blk) in prog.blocks().iter().enumerate() {
                let term = prog.inst(blk.term_idx());
                if term.ctrl == CtrlKind::Jump {
                    assert!(term.taken_target > bi as u32, "{}", p.name);
                }
            }
        }
    }

    #[test]
    fn biases_are_probabilities_or_loops_are_periodic() {
        for p in all_benchmarks() {
            let prog = StaticProgram::generate(&p, 13);
            let mut saw_loop = false;
            for i in 0..prog.len() as u32 {
                let inst = prog.inst(i);
                assert!((0.0..=1.0).contains(&inst.taken_bias), "{}", p.name);
                if inst.ctrl == CtrlKind::CondBr {
                    if inst.loop_period > 0 {
                        saw_loop = true;
                        assert!(inst.loop_period >= 2, "a loop must iterate at least once");
                    } else {
                        assert!(inst.taken_bias > 0.0 && inst.taken_bias < 1.0);
                    }
                } else {
                    assert_eq!(inst.loop_period, 0, "{}", p.name);
                }
            }
            assert!(saw_loop, "{} must contain loop back-edges", p.name);
        }
    }

    #[test]
    fn loads_have_pool_domination_and_stores_are_hot() {
        for p in all_benchmarks() {
            let prog = StaticProgram::generate(&p, 17);
            let mut saw_load = false;
            for i in 0..prog.len() as u32 {
                let inst = prog.inst(i);
                match inst.class {
                    OpClass::Load => {
                        saw_load = true;
                        assert!(inst.mem_dominant.is_some());
                    }
                    OpClass::Store => {
                        assert_eq!(inst.mem_dominant, Some(MemPool::Hot));
                    }
                    _ => assert!(inst.mem_dominant.is_none()),
                }
            }
            assert!(saw_load, "{}", p.name);
        }
    }

    #[test]
    fn mcf_loads_are_dominated_by_cold_pool() {
        let prog = StaticProgram::generate(&mcf(), 19);
        let (mut cold, mut total) = (0usize, 0usize);
        for i in 0..prog.len() as u32 {
            let inst = prog.inst(i);
            if inst.class == OpClass::Load {
                total += 1;
                if inst.mem_dominant == Some(MemPool::Cold) {
                    cold += 1;
                }
            }
        }
        let frac = cold as f64 / total as f64;
        // mcf: ~29.6% of loads should be cold-dominated.
        assert!((frac - 0.296).abs() < 0.08, "cold fraction {frac}");
    }

    #[test]
    fn code_footprints_bracket_the_icache() {
        // gcc must overflow the 64 KB I-cache; bzip2 must fit easily.
        let gcc = StaticProgram::generate(&crate::profile::gcc(), 1);
        let bzip2 = StaticProgram::generate(&crate::profile::bzip2(), 1);
        assert!(gcc.code_bytes() > 64 * 1024, "{}", gcc.code_bytes());
        assert!(bzip2.code_bytes() < 16 * 1024, "{}", bzip2.code_bytes());
    }

    #[test]
    fn block_of_is_consistent() {
        let prog = StaticProgram::generate(&gzip(), 23);
        for (bi, blk) in prog.blocks().iter().enumerate() {
            for i in blk.start..blk.start + blk.len {
                assert_eq!(prog.block_of(i), bi as u32);
            }
        }
    }
}
