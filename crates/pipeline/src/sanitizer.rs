//! The µarch sanitizer: cycle-level invariant checking for the simulator.
//!
//! The paper's argument rests on resource-contention accounting being
//! exactly right — DWarn exists because Dmiss threads "slowly fill" the
//! shared issue queues and physical registers, so a silent freelist leak or
//! a misclassified Dmiss thread corrupts every reported IPC/Hmean number
//! without failing a single test. The sanitizer turns the cross-structure
//! invariants those numbers rely on into machine-checked, typed reports.
//!
//! Wired through [`Simulator`](crate::Simulator) the same way
//! [`Probe`](smt_obs::Probe) is: a generic parameter with a compile-time
//! `ENABLED` flag. The default [`NullSanitizer`] has `ENABLED = false`, so
//! every audit (and the branch guarding it) monomorphizes away and an
//! unsanitized simulator compiles to exactly the unchecked machine. With a
//! real sanitizer attached, [`Simulator::step`](crate::Simulator::step)
//! audits the whole machine at the end of every cycle and forwards each
//! violation as a typed [`InvariantViolation`] — never a panic — carrying
//! the same [`ProgressSnapshot`] the watchdog attaches to abort reports.
//!
//! The sanitizer is *observation-only*: it reads simulator state and never
//! writes it, so sanitized and unsanitized runs produce bit-identical
//! results (pinned by the golden-digest suite).
//!
//! The invariant catalog, with stable codes, lives on [`InvariantCode`];
//! the repository's `DESIGN.md` §10 documents each check and the failure
//! mode it guards against.

use std::fmt;

use crate::error::ProgressSnapshot;

/// Stable identifier for one class of machine invariant. Codes (`INV001`…)
/// never change meaning once assigned; retired checks leave gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantCode {
    /// `INV001` — integer physical-register conservation: registers marked
    /// in-use in the freelist must equal live instructions holding an int
    /// destination (catches both leaks and double-frees).
    RegConservationInt,
    /// `INV002` — floating-point physical-register conservation.
    RegConservationFp,
    /// `INV003` — issue-queue entry conservation: shared IQ occupancy
    /// counters must equal dispatched-but-not-issued instructions, per kind
    /// and per thread (`iq_held`).
    IqConservation,
    /// `INV004` — ROB-slot conservation: per-thread ROB occupancy counters
    /// must equal the ROB deque lengths, and every ROB handle must resolve
    /// to a live instruction of that thread.
    RobConservation,
    /// `INV005` — per-thread ROB age ordering: sequence numbers strictly
    /// increase from head to tail (commit order is fetch order).
    RobAgeOrder,
    /// `INV006` — ICOUNT consistency: the fetch policy's per-thread counter
    /// equals the thread's pre-issue occupancy (fetch queue + dispatched but
    /// not yet issued), the paper's definition of the ICOUNT key.
    IcountConsistency,
    /// `INV007` — EventWheel: no queued event is due in the past (a missed
    /// event would silently wedge an instruction forever).
    EventPastDue,
    /// `INV008` — EventWheel: the cached length equals the queued events
    /// across buckets and overflow (drain accounting).
    EventLenMismatch,
    /// `INV009` — outstanding L1-D miss bookkeeping: the per-thread `dmiss`
    /// counter equals the live loads flagged `dmiss_counted`, and each such
    /// load actually missed in L1 with its fill still in the future.
    DmissConsistency,
    /// `INV010` — declared-L2-miss bookkeeping: the per-thread `declared`
    /// counter equals the live loads flagged `declared`, and each such
    /// load's resolve notice is still in the future.
    DeclaredConsistency,
    /// `INV011` — slab conservation: every live in-flight instruction is in
    /// exactly one of fetch queue / ROB.
    SlabConservation,
    /// `INV012` — fetch-order validity: the policy returned in-range,
    /// duplicate-free thread indices.
    PolicyOrder,
    /// `INV013` — policy-specific ordering/gating legitimacy, as audited by
    /// [`FetchPolicy::audit_order`](crate::FetchPolicy::audit_order): for
    /// DWarn, a thread sorts into the Dmiss group iff it has an outstanding
    /// L1 data miss, and the hybrid rule gates only on a *declared* L2 miss
    /// with fewer than `hybrid_below` runnable threads.
    PolicyGating,
    /// `INV014` — cache tag-array integrity: no set holds two valid lines
    /// with the same tag (checked periodically; a duplicate would make hit
    /// results depend on probe order).
    CacheTagIntegrity,
}

impl InvariantCode {
    /// Every code, for exhaustive reporting/tests.
    pub const ALL: &'static [InvariantCode] = &[
        InvariantCode::RegConservationInt,
        InvariantCode::RegConservationFp,
        InvariantCode::IqConservation,
        InvariantCode::RobConservation,
        InvariantCode::RobAgeOrder,
        InvariantCode::IcountConsistency,
        InvariantCode::EventPastDue,
        InvariantCode::EventLenMismatch,
        InvariantCode::DmissConsistency,
        InvariantCode::DeclaredConsistency,
        InvariantCode::SlabConservation,
        InvariantCode::PolicyOrder,
        InvariantCode::PolicyGating,
        InvariantCode::CacheTagIntegrity,
    ];

    /// The stable diagnostic code (`INV001`…).
    pub fn code(self) -> &'static str {
        match self {
            InvariantCode::RegConservationInt => "INV001",
            InvariantCode::RegConservationFp => "INV002",
            InvariantCode::IqConservation => "INV003",
            InvariantCode::RobConservation => "INV004",
            InvariantCode::RobAgeOrder => "INV005",
            InvariantCode::IcountConsistency => "INV006",
            InvariantCode::EventPastDue => "INV007",
            InvariantCode::EventLenMismatch => "INV008",
            InvariantCode::DmissConsistency => "INV009",
            InvariantCode::DeclaredConsistency => "INV010",
            InvariantCode::SlabConservation => "INV011",
            InvariantCode::PolicyOrder => "INV012",
            InvariantCode::PolicyGating => "INV013",
            InvariantCode::CacheTagIntegrity => "INV014",
        }
    }

    /// One-line description of the invariant.
    pub fn summary(self) -> &'static str {
        match self {
            InvariantCode::RegConservationInt => "int physical-register conservation",
            InvariantCode::RegConservationFp => "fp physical-register conservation",
            InvariantCode::IqConservation => "issue-queue entry conservation",
            InvariantCode::RobConservation => "ROB slot conservation",
            InvariantCode::RobAgeOrder => "per-thread ROB age ordering",
            InvariantCode::IcountConsistency => "ICOUNT equals pre-issue occupancy",
            InvariantCode::EventPastDue => "no event due in the past",
            InvariantCode::EventLenMismatch => "event-wheel length accounting",
            InvariantCode::DmissConsistency => "outstanding L1-D miss bookkeeping",
            InvariantCode::DeclaredConsistency => "declared L2-miss bookkeeping",
            InvariantCode::SlabConservation => "live instructions in queue xor ROB",
            InvariantCode::PolicyOrder => "fetch order is valid and duplicate-free",
            InvariantCode::PolicyGating => "policy grouping/gating legitimacy",
            InvariantCode::CacheTagIntegrity => "no duplicate valid tags in a set",
        }
    }
}

impl fmt::Display for InvariantCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.summary())
    }
}

/// One detected invariant violation: what broke, where, and the machine
/// state at the moment it was observed.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    pub code: InvariantCode,
    /// Cycle at which the audit observed the violation.
    pub cycle: u64,
    /// Hardware context the violation is attributed to, when per-thread.
    pub thread: Option<usize>,
    /// The value the invariant requires.
    pub expected: u64,
    /// The value the machine actually holds.
    pub actual: u64,
    /// Human-readable specifics (which structure, which handle, …).
    pub detail: String,
    /// Full machine state, same shape as a watchdog abort report.
    pub snapshot: Box<ProgressSnapshot>,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at cycle {}", self.code, self.cycle)?;
        if let Some(t) = self.thread {
            write!(f, " thread {t}")?;
        }
        write!(
            f,
            ": expected {} got {} — {}",
            self.expected, self.actual, self.detail
        )
    }
}

/// A sink for invariant violations, attached to the simulator as a generic
/// parameter (mirroring [`Probe`](smt_obs::Probe)).
///
/// `ENABLED` is a compile-time constant: when false (the default
/// [`NullSanitizer`]), the per-cycle audit and its guard branch are removed
/// by monomorphization and the simulator compiles to exactly the unchecked
/// machine.
pub trait Sanitizer {
    /// Whether the simulator should audit at all. Associated constant so
    /// the check folds at compile time.
    const ENABLED: bool = true;

    /// Called once per detected violation, in deterministic order.
    fn on_violation(&mut self, v: InvariantViolation);
}

/// The default no-op sanitizer: auditing compiled out entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSanitizer;

impl Sanitizer for NullSanitizer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_violation(&mut self, _v: InvariantViolation) {}
}

/// Forwarding impl so a sanitizer can be attached by mutable reference.
impl<S: Sanitizer> Sanitizer for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline]
    fn on_violation(&mut self, v: InvariantViolation) {
        (**self).on_violation(v);
    }
}

/// A sanitizer that records violations, keeping the first
/// [`RecordingSanitizer::DEFAULT_CAP`] in full and counting the rest — a
/// broken invariant typically re-fires every cycle, and the first reports
/// are the diagnostic ones.
#[derive(Debug, Default)]
pub struct RecordingSanitizer {
    kept: Vec<InvariantViolation>,
    total: u64,
    cap: usize,
}

impl RecordingSanitizer {
    /// Violations kept in full before subsequent ones are only counted.
    pub const DEFAULT_CAP: usize = 64;

    pub fn new() -> RecordingSanitizer {
        RecordingSanitizer {
            kept: Vec::new(),
            total: 0,
            cap: Self::DEFAULT_CAP,
        }
    }

    /// As [`RecordingSanitizer::new`] with an explicit retention cap.
    pub fn with_cap(cap: usize) -> RecordingSanitizer {
        RecordingSanitizer {
            kept: Vec::new(),
            total: 0,
            cap,
        }
    }

    /// True when no violation has been observed.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Total violations observed (including those beyond the cap).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The retained violations, in detection order.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.kept
    }

    /// The first violation, if any — usually the root cause.
    pub fn first(&self) -> Option<&InvariantViolation> {
        self.kept.first()
    }

    /// True if any retained violation carries `code`.
    pub fn saw(&self, code: InvariantCode) -> bool {
        self.kept.iter().any(|v| v.code == code)
    }

    /// Multi-line report of everything retained, for logs/artifacts.
    pub fn render_report(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} invariant violation(s), {} retained:",
            self.total,
            self.kept.len()
        );
        for v in &self.kept {
            let _ = writeln!(s, "  {v}");
        }
        s
    }
}

impl Sanitizer for RecordingSanitizer {
    fn on_violation(&mut self, v: InvariantViolation) {
        self.total += 1;
        if self.kept.len() < self.cap {
            self.kept.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ProgressSnapshot;

    fn snap() -> Box<ProgressSnapshot> {
        Box::new(ProgressSnapshot {
            cycle: 7,
            last_commit_cycle: 0,
            total_committed: 0,
            policy: "TEST",
            threads: Vec::new(),
            iq_usage: [0; 3],
            regs_in_use: (0, 0),
        })
    }

    fn viol(code: InvariantCode) -> InvariantViolation {
        InvariantViolation {
            code,
            cycle: 7,
            thread: Some(1),
            expected: 3,
            actual: 4,
            detail: "unit".into(),
            snapshot: snap(),
        }
    }

    #[test]
    fn codes_are_unique_and_stable_prefixed() {
        let mut seen = std::collections::BTreeSet::new();
        for &c in InvariantCode::ALL {
            assert!(c.code().starts_with("INV"), "{c}");
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn violation_display_names_code_cycle_and_thread() {
        let s = viol(InvariantCode::IcountConsistency).to_string();
        assert!(s.contains("INV006"), "{s}");
        assert!(s.contains("cycle 7"), "{s}");
        assert!(s.contains("thread 1"), "{s}");
        assert!(s.contains("expected 3 got 4"), "{s}");
    }

    #[test]
    fn recording_sanitizer_caps_retention_but_counts_all() {
        let mut s = RecordingSanitizer::with_cap(2);
        assert!(s.is_clean());
        for _ in 0..5 {
            s.on_violation(viol(InvariantCode::EventPastDue));
        }
        assert!(!s.is_clean());
        assert_eq!(s.total(), 5);
        assert_eq!(s.violations().len(), 2);
        assert!(s.saw(InvariantCode::EventPastDue));
        assert!(!s.saw(InvariantCode::PolicyOrder));
        assert!(s.render_report().contains("5 invariant violation(s)"));
        assert!(s.first().is_some());
    }

    #[test]
    fn null_sanitizer_is_disabled_at_compile_time() {
        const { assert!(!NullSanitizer::ENABLED) };
        const { assert!(RecordingSanitizer::ENABLED) };
        // The forwarding impl inherits the flag.
        const { assert!(<&mut RecordingSanitizer as Sanitizer>::ENABLED) };
    }
}
