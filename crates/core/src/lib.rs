//! # dwarn-core — the DWarn fetch policy and its baselines
//!
//! This crate is the paper's contribution: the **DWarn** I-fetch policy
//! ("DCache Warn: an I-Fetch Policy to Increase SMT Efficiency", Cazorla,
//! Ramirez, Valero, Fernández — IPDPS 2004), together with faithful
//! implementations of every policy it is evaluated against:
//!
//! | Policy | Detection moment | Response action |
//! |--------|------------------|-----------------|
//! | ICOUNT \[12\] | — | — (occupancy-based priority) |
//! | STALL \[11\]  | X cycles after issue | gate |
//! | FLUSH \[11\]  | X cycles after issue | squash + gate |
//! | DG \[3\]      | L1 miss | gate |
//! | PDG \[3\]     | fetch (predictor) | gate |
//! | **DWarn**   | **L1 miss** | **reduce priority** (+ gate on declared L2 miss below 3 threads) |
//!
//! All policies implement [`smt_pipeline::FetchPolicy`] and plug into the
//! `smt-pipeline` simulator. Construct them directly ([`DWarn::new`]) or
//! through the [`PolicyKind`] registry.
//!
//! ```
//! use dwarn_core::PolicyKind;
//! use smt_pipeline::{SimConfig, Simulator, ThreadSpec};
//! use smt_trace::profile;
//!
//! let specs = vec![
//!     ThreadSpec::new(profile::gzip()),
//!     ThreadSpec::new(profile::twolf()),
//! ];
//! let mut sim = Simulator::new(SimConfig::baseline(), PolicyKind::DWarn.build(), &specs);
//! let result = sim.run(1_000, 2_000);
//! assert!(result.throughput() > 0.0);
//! ```
//!
//! Beyond the paper, the crate also ships DC-PRED ([`dcpred`]), two DWarn
//! hybrids ([`extensions`]), and the switching meta-policies ([`meta`]):
//! a [`MetaPolicy`] runs one candidate of {DWARN, STALL, FLUSH, ICOUNT}
//! at a time and re-selects at fixed interval boundaries from runtime
//! metrics, under one of three [`SelectorKind`] rules.
//!
//! ```
//! use dwarn_core::{MetaPolicy, SelectorKind};
//! use smt_pipeline::{FetchPolicy, SimConfig, Simulator, ThreadSpec};
//! use smt_trace::profile;
//!
//! let specs = vec![
//!     ThreadSpec::new(profile::mcf()),
//!     ThreadSpec::new(profile::gzip()),
//! ];
//! let policy = Box::new(MetaPolicy::new(SelectorKind::IpcGreedy));
//! let mut sim = Simulator::new(SimConfig::baseline(), policy, &specs);
//! let result = sim.run(2_000, 6_000);
//! assert!(result.throughput() > 0.0);
//! // Switch decisions are architectural events, logged with their cycle —
//! // and only ever taken on a decision-window boundary.
//! for s in sim.policy().switch_log() {
//!     assert_eq!(s.cycle % dwarn_core::meta::DEFAULT_WINDOW, 0);
//! }
//! ```

pub mod dcpred;
pub mod dwarn;
pub mod extensions;
pub mod factory;
pub mod gating;
pub mod icount;
pub mod meta;
pub mod predictor;
pub mod stall_flush;
pub mod taxonomy;

pub use dcpred::DcPred;
pub use dwarn::DWarn;
pub use extensions::{DWarnFlush, DWarnThreshold};
pub use factory::{PolicyKind, PolicyVisitor};
pub use gating::{DataGating, PredictiveDataGating};
pub use icount::Icount;
pub use meta::{MetaPolicy, SelectorKind};
pub use predictor::MissPredictor;
pub use stall_flush::{Flush, Stall};
pub use taxonomy::{Classification, DetectionMoment, ResponseAction};
