//! Dynamic instruction streams.
//!
//! [`ThreadTrace`] walks a static program and emits the *correct-path*
//! dynamic instruction stream for one thread: branch outcomes drawn from
//! per-static biases, memory addresses drawn from the calibrated pools, and
//! call/return traffic resolved through a shadow stack. The stream is
//! entirely determined by `(profile, seed, addr_base, skip)` and is
//! independent of anything the simulator does with it — the defining property
//! of a trace-driven simulator.
//!
//! [`SynthState`] is the wrong-path companion: after a branch misprediction
//! the front-end keeps fetching down the predicted (wrong) path by
//! synthesizing instructions out of the static program (the paper's
//! "basic block dictionary"), using a PRNG and pool pointers that are
//! deliberately separate from the correct-path stream so wrong-path fetch
//! cannot perturb the trace.

use std::sync::Arc;

use crate::instr::{CtrlKind, DynInst, MemPool, OpClass, INST_BYTES};
use crate::profile::BenchProfile;
use crate::program::StaticProgram;
use crate::rng::Rng;
use crate::snapio::{self, SnapError, SnapReader};

/// Size of the L1-resident hot pool (bytes).
pub const HOT_BYTES: u64 = 4 * 1024;
/// Number of lines in the warm pool.
///
/// The warm pool must always miss L1 but hit L2. Rather than a circular
/// buffer larger than L1 (whose L2 footprint would be 96 KB *per thread*,
/// thrashing the shared 512 KB L2 in multithreaded runs), the warm pool is
/// [`WARM_LINES`] cache lines spaced [`WARM_STRIDE`] bytes apart: the stride
/// equals one L1 way (sets × line), so every warm line maps to the *same* L1
/// set and circular access self-evicts in the 2-way L1 — while occupying
/// only 16 lines (1 KB) spread across distinct L2 sets.
pub const WARM_LINES: u64 = 16;
/// One L1 way: 512 sets × 64-byte lines.
pub const WARM_STRIDE: u64 = 512 * 64;
/// Wrap size of the cold streaming region (bytes) — effectively infinite.
pub const COLD_BYTES: u64 = 256 * 1024 * 1024;
/// Cache line size used for stream strides (matches the simulated caches).
pub const LINE_BYTES: u64 = 64;
/// Shadow call stack depth cap (drops the oldest frame on overflow).
const SHADOW_STACK_CAP: usize = 64;

/// Per-thread virtual address layout offsets (relative to `addr_base`).
const HOT_OFFSET: u64 = 0x1000_0000;
const WARM_OFFSET: u64 = 0x2000_0000;
const COLD_OFFSET: u64 = 0x4000_0000;

/// The thread's hot region `(start, bytes)` — L1-resident in steady state.
pub fn hot_region(addr_base: u64) -> (u64, u64) {
    (addr_base + HOT_OFFSET, HOT_BYTES)
}

/// The addresses of the thread's warm-pool lines — L2-resident in steady
/// state; simulators should pre-warm them into L2 (and their pages into the
/// DTLB) to reproduce the steady state the profiles are calibrated for.
/// The shape depends on the profile's `warm_kb` (see [`crate::BenchProfile`]).
pub fn warm_lines(addr_base: u64, profile: &BenchProfile) -> Vec<u64> {
    if profile.warm_kb == 0 {
        (0..WARM_LINES)
            .map(|i| addr_base + WARM_OFFSET + i * WARM_STRIDE)
            .collect()
    } else {
        let bytes = profile.warm_kb as u64 * 1024;
        (0..bytes / LINE_BYTES)
            .map(|i| addr_base + WARM_OFFSET + i * LINE_BYTES)
            .collect()
    }
}

/// Address-pool draw state. Both the correct-path walker and wrong-path
/// synthesis own one of these.
#[derive(Debug, Clone)]
pub struct PoolState {
    hot_base: u64,
    warm_base: u64,
    cold_base: u64,
    warm_ptr: u64,
    cold_ptr: u64,
    /// Aggregate (hot, warm, cold) target probabilities from the profile.
    agg: (f64, f64, f64),
    /// Per-static-load pool concentration from the profile.
    concentration: f64,
    /// Warm-set capacity in bytes; 0 selects the conflict-based 16-line set.
    warm_bytes: u64,
    /// Load draws so far, total and per pool. The draw is feedback-controlled:
    /// basic blocks execute at different frequencies, so honoring static pool
    /// domination alone would bias the aggregate mix; the controller steers
    /// the realized fractions back onto the Table 2(a) targets.
    n_loads: u64,
    n_pool: [u64; 3],
}

impl PoolState {
    fn new(addr_base: u64, profile: &BenchProfile) -> PoolState {
        PoolState {
            hot_base: addr_base + HOT_OFFSET,
            warm_base: addr_base + WARM_OFFSET,
            cold_base: addr_base + COLD_OFFSET,
            warm_ptr: 0,
            cold_ptr: 0,
            agg: profile.pool_probs(),
            concentration: profile.concentration,
            warm_bytes: profile.warm_kb as u64 * 1024,
            n_loads: 0,
            n_pool: [0; 3],
        }
    }

    /// Signed shortfall of pool `i` after `n_loads` draws: positive means the
    /// pool is under-represented relative to its target.
    fn deficit(&self, i: usize) -> f64 {
        let target = [self.agg.0, self.agg.1, self.agg.2][i];
        target * (self.n_loads as f64 + 1.0) - self.n_pool[i] as f64
    }

    /// Draw an effective address for a load dominated by `dominant`.
    ///
    /// With the profile's concentration probability the static instruction's
    /// dominant pool is honored (giving PDG's per-PC predictor something to
    /// learn), *unless* that pool is already over target; the remaining draws
    /// go to the most under-represented pool, so the realized aggregate
    /// (hot, warm, cold) mix converges on the profile targets regardless of
    /// how block execution frequencies weight the static loads.
    fn draw(&mut self, dominant: MemPool, rng: &mut Rng) -> u64 {
        let dom_idx = match dominant {
            MemPool::Hot => 0,
            MemPool::Warm => 1,
            MemPool::Cold => 2,
        };
        let pool_idx = if rng.chance(self.concentration) && self.deficit(dom_idx) > -1.0 {
            dom_idx
        } else {
            // Corrective draw: most under-represented pool.
            let (mut best, mut best_d) = (0usize, f64::NEG_INFINITY);
            for i in 0..3 {
                let d = self.deficit(i);
                if d > best_d {
                    best = i;
                    best_d = d;
                }
            }
            best
        };
        self.n_loads += 1;
        self.n_pool[pool_idx] += 1;
        match pool_idx {
            0 => self.hot_base + rng.below(HOT_BYTES / 8) * 8,
            1 => {
                if self.warm_bytes == 0 {
                    // Conflict-based set: 16 lines in one L1 set.
                    let a = self.warm_base + self.warm_ptr * WARM_STRIDE;
                    self.warm_ptr = (self.warm_ptr + 1) % WARM_LINES;
                    a
                } else {
                    // Capacity-based set: circular stream over the region.
                    let a = self.warm_base + self.warm_ptr;
                    self.warm_ptr = (self.warm_ptr + LINE_BYTES) % self.warm_bytes;
                    a
                }
            }
            _ => {
                let a = self.cold_base + self.cold_ptr;
                self.cold_ptr = (self.cold_ptr + LINE_BYTES) % COLD_BYTES;
                a
            }
        }
    }

    /// Draw a store address. Stores write the hot (stack-like) region and do
    /// not participate in the load-miss-rate feedback controller.
    fn draw_store(&mut self, rng: &mut Rng) -> u64 {
        self.hot_base + rng.below(HOT_BYTES / 8) * 8
    }

    /// (total load draws, per-pool draw counts [hot, warm, cold]).
    pub fn draw_counts(&self) -> (u64, [u64; 3]) {
        (self.n_loads, self.n_pool)
    }

    /// Serialize the evolving draw state (pointers and feedback counters).
    /// Bases, targets, and capacities are construction-derived and omitted:
    /// [`PoolState::load_state`] restores into an identically-constructed
    /// pool.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        snapio::put_u64(out, self.warm_ptr);
        snapio::put_u64(out, self.cold_ptr);
        snapio::put_u64(out, self.n_loads);
        for &n in &self.n_pool {
            snapio::put_u64(out, n);
        }
    }

    /// Restore the evolving draw state captured by [`PoolState::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.warm_ptr = r.u64()?;
        self.cold_ptr = r.u64()?;
        self.n_loads = r.u64()?;
        for n in &mut self.n_pool {
            *n = r.u64()?;
        }
        Ok(())
    }
}

/// Wrong-path instruction synthesis state (one per hardware context).
#[derive(Debug, Clone)]
pub struct SynthState {
    rng: Rng,
    pools: PoolState,
    code_base: u64,
}

impl SynthState {
    /// Build a synthesis state directly (for replayed/recorded traces that
    /// have no live [`ThreadTrace`] to fork from).
    pub fn new(profile: &BenchProfile, seed: u64, code_base: u64) -> SynthState {
        SynthState {
            rng: Rng::new(seed ^ 0xD1C7_10AA_5EED_0003),
            pools: PoolState::new(code_base, profile),
            code_base,
        }
    }

    /// Synthesize the dynamic instruction at byte `pc`. PCs outside the code
    /// image wrap modulo the program size, so the front-end can fetch down
    /// any predicted path. Branch direction / `next_pc` are placeholders: on
    /// the wrong path the front-end follows its own predictions.
    pub fn synth_at(&mut self, program: &StaticProgram, pc: u64) -> DynInst {
        let idx = self.idx_of_pc(program, pc);
        let si = *program.inst(idx);
        let canonical_pc = self.code_base + idx as u64 * INST_BYTES;
        let mem_addr = si.mem_dominant.map(|dom| {
            if si.class == OpClass::Store {
                self.pools.draw_store(&mut self.rng)
            } else {
                self.pools.draw(dom, &mut self.rng)
            }
        });
        DynInst {
            pc: canonical_pc,
            static_idx: idx,
            class: si.class,
            ctrl: si.ctrl,
            dest: si.dest,
            srcs: si.srcs,
            mem_addr,
            taken: false,
            next_pc: canonical_pc + INST_BYTES,
            wrong_path: true,
        }
    }

    /// Map a byte PC to a static instruction index (wrapping).
    pub fn idx_of_pc(&self, program: &StaticProgram, pc: u64) -> u32 {
        let rel = pc.wrapping_sub(self.code_base) / INST_BYTES;
        (rel % program.len() as u64) as u32
    }

    /// Serialize the synthesis state (PRNG + pool pointers; `code_base` is
    /// construction-derived).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for w in self.rng.state() {
            snapio::put_u64(out, w);
        }
        self.pools.save_state(out);
    }

    /// Restore the synthesis state captured by [`SynthState::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = r.u64()?;
        }
        self.rng = Rng::from_state(s);
        self.pools.load_state(r)
    }
}

/// The correct-path dynamic instruction stream for one thread.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    program: Arc<StaticProgram>,
    profile_name: &'static str,
    code_base: u64,
    seed: u64,
    cur_idx: u32,
    shadow_stack: Vec<u32>,
    rng: Rng,
    pools: PoolState,
    emitted: u64,
    /// Per-static-branch loop iteration counters (deterministic trip
    /// counts), indexed by instruction index.
    loop_counts: Vec<u16>,
}

impl ThreadTrace {
    /// Build a thread trace. `seed` selects the static program *and* the
    /// dynamic stream; `addr_base` places the thread's code and data in the
    /// simulated address space (give each context a disjoint base); `skip`
    /// fast-forwards the stream, mirroring the paper's shifting of replicated
    /// benchmarks "by one million instructions".
    pub fn new(profile: &BenchProfile, seed: u64, addr_base: u64, skip: u64) -> ThreadTrace {
        let program = Arc::new(StaticProgram::generate(profile, seed));
        Self::with_program(program, profile, seed, addr_base, skip)
    }

    /// As [`ThreadTrace::new`] but sharing an already-generated static
    /// program (replicated benchmarks share their code image).
    pub fn with_program(
        program: Arc<StaticProgram>,
        profile: &BenchProfile,
        seed: u64,
        addr_base: u64,
        skip: u64,
    ) -> ThreadTrace {
        let loop_counts = vec![0; program.len()];
        let mut t = ThreadTrace {
            program,
            profile_name: profile.name,
            code_base: addr_base,
            seed,
            cur_idx: 0,
            shadow_stack: Vec::with_capacity(SHADOW_STACK_CAP),
            rng: Rng::new(seed ^ 0xD1C7_10AA_5EED_0002),
            pools: PoolState::new(addr_base, profile),
            emitted: 0,
            loop_counts,
        };
        for _ in 0..skip {
            t.next_inst();
        }
        t
    }

    /// Benchmark name this trace was generated from.
    pub fn name(&self) -> &'static str {
        self.profile_name
    }

    /// The static program (basic-block dictionary).
    pub fn program(&self) -> &Arc<StaticProgram> {
        &self.program
    }

    /// Base byte address of the code image.
    pub fn code_base(&self) -> u64 {
        self.code_base
    }

    /// Instructions emitted so far (including skipped ones).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Pool draw statistics of the correct-path stream.
    pub fn pool_draws(&self) -> (u64, [u64; 3]) {
        self.pools.draw_counts()
    }

    /// Create the wrong-path synthesis companion for this thread. Uses a
    /// seed derived from (but independent of) the stream seed, so wrong-path
    /// fetch never perturbs the correct-path trace.
    pub fn make_synth(&self, profile: &BenchProfile) -> SynthState {
        SynthState {
            rng: Rng::new(self.seed ^ 0xD1C7_10AA_5EED_0003),
            pools: PoolState::new(self.code_base, profile),
            code_base: self.code_base,
        }
    }

    /// Byte PC of instruction index `idx`.
    fn pc_of(&self, idx: u32) -> u64 {
        self.code_base + idx as u64 * INST_BYTES
    }

    /// Byte PC of the next instruction [`ThreadTrace::next_inst`] will emit,
    /// without emitting it. This is where fetch starts.
    pub fn peek_pc(&self) -> u64 {
        self.pc_of(self.cur_idx)
    }

    /// Emit the next correct-path dynamic instruction. The stream is
    /// infinite.
    pub fn next_inst(&mut self) -> DynInst {
        let idx = self.cur_idx;
        let si = *self.program.inst(idx);
        let pc = self.pc_of(idx);
        let prog_len = self.program.len() as u32;
        let wrap = |i: u32| if i >= prog_len { 0 } else { i };

        let mem_addr = si.mem_dominant.map(|dom| {
            if si.class == OpClass::Store {
                self.pools.draw_store(&mut self.rng)
            } else {
                self.pools.draw(dom, &mut self.rng)
            }
        });

        let (taken, next_idx) = match si.ctrl {
            CtrlKind::None => (false, wrap(idx + 1)),
            CtrlKind::CondBr => {
                let taken = if si.loop_period > 0 {
                    // Deterministic loop trip count: taken except on every
                    // period-th execution.
                    let c = &mut self.loop_counts[idx as usize];
                    *c += 1;
                    if *c >= si.loop_period {
                        *c = 0;
                        false
                    } else {
                        true
                    }
                } else {
                    self.rng.chance(si.taken_bias as f64)
                };
                let next = if taken {
                    self.program.block_start(si.taken_target)
                } else {
                    wrap(idx + 1)
                };
                (taken, next)
            }
            CtrlKind::Jump => (true, self.program.block_start(si.taken_target)),
            CtrlKind::Call => {
                if self.shadow_stack.len() == SHADOW_STACK_CAP {
                    self.shadow_stack.remove(0);
                }
                self.shadow_stack.push(wrap(idx + 1));
                (true, self.program.block_start(si.taken_target))
            }
            CtrlKind::Return => {
                let next = self.shadow_stack.pop().unwrap_or_else(|| wrap(idx + 1));
                (true, next)
            }
        };

        self.cur_idx = next_idx;
        self.emitted += 1;
        DynInst {
            pc,
            static_idx: idx,
            class: si.class,
            ctrl: si.ctrl,
            dest: si.dest,
            srcs: si.srcs,
            mem_addr,
            taken,
            next_pc: self.pc_of(next_idx),
            wrong_path: false,
        }
    }

    /// Serialize the walker's evolving position: current index, shadow call
    /// stack, PRNG, pool pointers, emitted count, and loop counters. The
    /// static program, profile identity, and address layout are
    /// construction-derived and omitted.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        snapio::put_u32(out, self.cur_idx);
        snapio::put_usize(out, self.shadow_stack.len());
        for &f in &self.shadow_stack {
            snapio::put_u32(out, f);
        }
        for w in self.rng.state() {
            snapio::put_u64(out, w);
        }
        self.pools.save_state(out);
        snapio::put_u64(out, self.emitted);
        snapio::put_usize(out, self.loop_counts.len());
        for &c in &self.loop_counts {
            snapio::put_u16(out, c);
        }
    }

    /// Restore a position captured by [`ThreadTrace::save_state`] into a
    /// trace built with the same `(profile, seed, addr_base)`. Rejects
    /// snapshots whose shape (indices, loop-counter length) does not match
    /// the constructed program.
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let prog_len = self.program.len() as u32;
        let cur_idx = r.u32()?;
        if cur_idx >= prog_len {
            return Err(SnapError::malformed(format!(
                "trace index {cur_idx} out of range for program of {prog_len}"
            )));
        }
        let depth = r.len_capped(SHADOW_STACK_CAP)?;
        let mut shadow_stack = Vec::with_capacity(SHADOW_STACK_CAP);
        for _ in 0..depth {
            let f = r.u32()?;
            if f >= prog_len {
                return Err(SnapError::malformed(format!(
                    "shadow-stack frame {f} out of range for program of {prog_len}"
                )));
            }
            shadow_stack.push(f);
        }
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = r.u64()?;
        }
        let rng = Rng::from_state(s);
        self.pools.load_state(r)?;
        let emitted = r.u64()?;
        let n_counts = r.usize()?;
        if n_counts != self.loop_counts.len() {
            return Err(SnapError::malformed(format!(
                "loop-counter length {n_counts} does not match program of {}",
                self.loop_counts.len()
            )));
        }
        for c in &mut self.loop_counts {
            *c = r.u16()?;
        }
        self.cur_idx = cur_idx;
        self.shadow_stack = shadow_stack;
        self.rng = rng;
        self.emitted = emitted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{bzip2, gzip, mcf, twolf};

    fn take(trace: &mut ThreadTrace, n: usize) -> Vec<DynInst> {
        (0..n).map(|_| trace.next_inst()).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let p = gzip();
        let mut a = ThreadTrace::new(&p, 42, 0x100_0000_0000, 0);
        let mut b = ThreadTrace::new(&p, 42, 0x100_0000_0000, 0);
        for _ in 0..5000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn skip_shifts_the_stream() {
        let p = gzip();
        let mut a = ThreadTrace::new(&p, 42, 0, 0);
        let shifted = ThreadTrace::new(&p, 42, 0, 100);
        let head = take(&mut a, 100);
        let mut a2 = a; // `a` is now at position 100
        let mut s = shifted;
        // After the skip, both must emit the same continuation.
        for _ in 0..1000 {
            assert_eq!(a2.next_inst(), s.next_inst());
        }
        assert_eq!(head.len(), 100);
    }

    #[test]
    fn control_flow_is_consistent() {
        let p = twolf();
        let mut t = ThreadTrace::new(&p, 7, 0, 0);
        let mut prev: Option<DynInst> = None;
        for _ in 0..20_000 {
            let d = t.next_inst();
            if let Some(pr) = prev {
                assert_eq!(pr.next_pc, d.pc, "stream must follow its own next_pc chain");
            }
            if !d.is_branch() {
                assert!(!d.taken);
                assert_eq!(d.next_pc, d.pc + INST_BYTES);
            }
            if d.ctrl == CtrlKind::Jump || d.ctrl == CtrlKind::Call {
                assert!(d.taken, "unconditional transfers are always taken");
            }
            prev = Some(d);
        }
    }

    #[test]
    fn pcs_stay_inside_code_image() {
        let p = mcf();
        let base = 0x55_0000_0000u64;
        let mut t = ThreadTrace::new(&p, 3, base, 0);
        let code_bytes = t.program().code_bytes();
        for _ in 0..20_000 {
            let d = t.next_inst();
            assert!(d.pc >= base && d.pc < base + code_bytes);
            assert!(d.next_pc >= base && d.next_pc < base + code_bytes);
        }
    }

    #[test]
    fn memory_addresses_land_in_their_pools() {
        let p = mcf();
        let base = 0x77_0000_0000u64;
        let mut t = ThreadTrace::new(&p, 3, base, 0);
        let mut saw = (false, false, false);
        for _ in 0..50_000 {
            let d = t.next_inst();
            if let Some(a) = d.mem_addr {
                assert!(a >= base + HOT_OFFSET, "address before data region: {a:#x}");
                if a < base + HOT_OFFSET + HOT_BYTES {
                    saw.0 = true;
                } else if a >= base + WARM_OFFSET
                    && a < base + WARM_OFFSET + WARM_LINES * WARM_STRIDE
                {
                    saw.1 = true;
                } else if a >= base + COLD_OFFSET && a < base + COLD_OFFSET + COLD_BYTES {
                    saw.2 = true;
                } else {
                    panic!("address outside every pool: {a:#x}");
                }
            } else {
                assert!(!d.class.is_mem());
            }
        }
        assert!(saw.0 && saw.1 && saw.2, "mcf must exercise all three pools");
    }

    #[test]
    fn dynamic_mix_tracks_profile() {
        let p = bzip2();
        let mut t = ThreadTrace::new(&p, 11, 0, 0);
        let n = 100_000;
        let mut loads = 0usize;
        let mut branches = 0usize;
        for _ in 0..n {
            let d = t.next_inst();
            if d.class == OpClass::Load {
                loads += 1;
            }
            if d.is_branch() {
                branches += 1;
            }
        }
        let load_frac = loads as f64 / n as f64;
        // Body mix is load_frac of non-terminators; terminators are ~1/avg_len.
        assert!((load_frac - 0.20).abs() < 0.06, "load fraction {load_frac}");
        let br_frac = branches as f64 / n as f64;
        assert!(
            br_frac > 0.05 && br_frac < 0.25,
            "branch fraction {br_frac}"
        );
    }

    #[test]
    fn cold_fraction_of_loads_tracks_l2_target() {
        let p = mcf();
        let base = 0x9_0000_0000u64;
        let mut t = ThreadTrace::new(&p, 13, base, 0);
        let mut cold = 0usize;
        let mut loads = 0usize;
        for _ in 0..200_000 {
            let d = t.next_inst();
            if d.class == OpClass::Load {
                loads += 1;
                if d.mem_addr.unwrap() >= base + COLD_OFFSET {
                    cold += 1;
                }
            }
        }
        let frac = cold as f64 / loads as f64;
        assert!(
            (frac - p.l2_miss_rate).abs() < 0.02,
            "cold load fraction {frac} vs target {}",
            p.l2_miss_rate
        );
    }

    #[test]
    fn synth_covers_any_pc_and_wraps() {
        let p = gzip();
        let base = 0x1000u64;
        let t = ThreadTrace::new(&p, 5, base, 0);
        let mut synth = t.make_synth(&p);
        let prog = t.program().clone();
        let n = prog.len() as u64;
        for pc in [
            base,
            base + 4,
            base + 4 * (n - 1),
            base + 4 * n,
            base + 4 * (n + 7),
        ] {
            let d = synth.synth_at(&prog, pc);
            assert!(d.wrong_path);
            assert!((d.static_idx as u64) < n);
            if d.class.is_mem() {
                assert!(d.mem_addr.is_some());
            }
        }
    }

    #[test]
    fn synth_does_not_perturb_correct_path() {
        let p = gzip();
        let mut a = ThreadTrace::new(&p, 21, 0, 0);
        let mut b = ThreadTrace::new(&p, 21, 0, 0);
        let prog = b.program().clone();
        let mut synth = b.make_synth(&p);
        // Interleave heavy wrong-path synthesis with b's stream.
        for i in 0..5000u64 {
            let da = a.next_inst();
            for k in 0..3 {
                let _ = synth.synth_at(&prog, (i * 4 + k) * 4);
            }
            let db = b.next_inst();
            assert_eq!(da, db);
        }
    }

    #[test]
    fn replicated_instances_share_code_but_diverge_dynamically() {
        let p = twolf();
        let mut first = ThreadTrace::new(&p, 9, 0x1_0000_0000, 0);
        let mut second = ThreadTrace::new(&p, 9, 0x2_0000_0000, 1000);
        assert_eq!(first.program().len(), second.program().len());
        // Same code image (same static instructions)...
        for i in 0..first.program().len() as u32 {
            assert_eq!(first.program().inst(i), second.program().inst(i));
        }
        // ...but the dynamic streams are out of phase.
        let fa = take(&mut first, 200);
        let fb = take(&mut second, 200);
        let same = fa
            .iter()
            .zip(&fb)
            .filter(|(x, y)| x.static_idx == y.static_idx)
            .count();
        assert!(same < 200, "streams should be out of phase");
    }

    #[test]
    fn emitted_counts_skip() {
        let p = gzip();
        let t = ThreadTrace::new(&p, 1, 0, 500);
        assert_eq!(t.emitted(), 500);
    }

    #[test]
    fn trace_state_round_trips_mid_stream() {
        let p = twolf();
        let mut orig = ThreadTrace::new(&p, 17, 0x3_0000_0000, 0);
        for _ in 0..12_345 {
            orig.next_inst();
        }
        let mut buf = Vec::new();
        orig.save_state(&mut buf);

        // Restore into a freshly-constructed trace at position zero.
        let mut restored = ThreadTrace::new(&p, 17, 0x3_0000_0000, 0);
        let mut r = SnapReader::new(&buf);
        restored.load_state(&mut r).unwrap();
        r.finish("ThreadTrace").unwrap();
        assert_eq!(restored.emitted(), orig.emitted());
        for _ in 0..10_000 {
            assert_eq!(restored.next_inst(), orig.next_inst());
        }

        // Equal machine state must serialize byte-identically.
        let mut again = ThreadTrace::new(&p, 17, 0x3_0000_0000, 0);
        for _ in 0..12_345 {
            again.next_inst();
        }
        let mut buf2 = Vec::new();
        again.save_state(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn synth_state_round_trips() {
        let p = gzip();
        let t = ThreadTrace::new(&p, 5, 0x1000, 0);
        let prog = t.program().clone();
        let mut orig = t.make_synth(&p);
        for pc in 0..500u64 {
            let _ = orig.synth_at(&prog, 0x1000 + pc * 4);
        }
        let mut buf = Vec::new();
        orig.save_state(&mut buf);
        let mut restored = t.make_synth(&p);
        let mut r = SnapReader::new(&buf);
        restored.load_state(&mut r).unwrap();
        r.finish("SynthState").unwrap();
        for pc in 0..500u64 {
            let a = orig.synth_at(&prog, 0x9000 + pc * 8);
            let b = restored.synth_at(&prog, 0x9000 + pc * 8);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn trace_restore_rejects_corrupt_state() {
        let p = gzip();
        let mut orig = ThreadTrace::new(&p, 5, 0, 0);
        for _ in 0..100 {
            orig.next_inst();
        }
        let mut buf = Vec::new();
        orig.save_state(&mut buf);

        // An out-of-range current index is rejected.
        let mut bad = buf.clone();
        bad[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut t = ThreadTrace::new(&p, 5, 0, 0);
        assert!(t.load_state(&mut SnapReader::new(&bad)).is_err());

        // A truncated section is rejected with a typed error.
        let mut t = ThreadTrace::new(&p, 5, 0, 0);
        let e = t
            .load_state(&mut SnapReader::new(&buf[..buf.len() - 3]))
            .unwrap_err();
        assert!(matches!(e, SnapError::Truncated { .. }));
    }
}
