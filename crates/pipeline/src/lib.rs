//! # smt-pipeline — the cycle-level SMT simulator
//!
//! A from-scratch reproduction of the paper's simulation substrate (an
//! SMTSIM-derived trace-driven simulator): a 9-stage (configurable) SMT
//! pipeline with an ICOUNT x.y fetch mechanism, shared issue queues /
//! physical registers / functional units, per-thread reorder buffers,
//! gshare + BTB + RAS branch prediction, a two-level cache hierarchy with
//! per-context DTLBs, wrong-path execution from a basic-block dictionary,
//! and full squash machinery (needed by both branch recovery and the FLUSH
//! policy).
//!
//! The fetch-policy *interface* ([`policy::FetchPolicy`]) lives here, next
//! to its call site in the fetch stage; the policy *implementations* — the
//! paper's contribution — live in the `dwarn-core` crate.
//!
//! # Performance
//!
//! The cycle loop is allocation-free in steady state. All per-cycle
//! working sets — due-event lists, issue candidates, per-thread policy
//! views, the fetch order, and instruction waiter lists — live in scratch
//! buffers owned by [`sim::Simulator`] and are reused across cycles;
//! future events sit in a calendar-queue event wheel (per-cycle ring
//! buckets with a heap spill-over for far-out events) instead of a global
//! binary heap. Policies fill the caller's order buffer through
//! [`policy::FetchPolicy::fetch_order_into`]; the allocating
//! [`policy::FetchPolicy::fetch_order`] remains as a convenience wrapper.
//! The full design, with measured numbers, is in the repository's
//! `DESIGN.md` ("Performance model"). All of it is behaviour-preserving
//! and pinned by the golden-digest determinism suite: results are
//! bit-identical to the straightforward implementation, cycle for cycle.

pub mod config;
pub mod error;
mod events;
pub mod fragment;
pub mod frontend;
pub mod inflight;
pub mod policy;
pub mod sanitizer;
pub mod sim;
pub mod snapshot;
pub mod stats;

pub use config::SimConfig;
pub use error::{ConfigError, ProgressSnapshot, SimError, ThreadProgress, Watchdog};
pub use fragment::{FragmentOpts, FragmentReplay, FragmentReport};
pub use frontend::{CorrectPath, ThreadFront};
pub use inflight::{Handle, InFlight, Slab, Stage};
pub use policy::{DeclareAction, FetchPolicy, PolicyEvent, PolicySwitch, PolicyView, ThreadView};
pub use sanitizer::{
    InvariantCode, InvariantViolation, NullSanitizer, RecordingSanitizer, Sanitizer,
};
pub use sim::{CheckpointOpts, Mutation, PendingRun, RunOutcome, Simulator, ThreadSpec};
pub use smt_obs::{NullProbe, Probe};
pub use snapshot::{MachineSnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use stats::{OccupancyStats, SimResult, ThreadStats};
