//! Simulator configuration: the paper's baseline processor (Table 3) and the
//! two §6 variant architectures.

use crate::error::ConfigError;
use smt_uarch::{CacheConfig, MemTiming, PredictorConfig, TlbConfig};

/// Full processor + memory configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Human-readable configuration name.
    pub name: &'static str,

    // --- Fetch mechanism (ICOUNT x.y): up to `fetch_threads` threads supply
    // up to `fetch_width` instructions per cycle.
    pub fetch_width: u32,
    pub fetch_threads: u32,
    /// Per-thread fetch-queue capacity (instructions buffered between fetch
    /// and dispatch); a full queue blocks further fetch for that thread.
    pub fetch_queue: u32,

    // --- Widths.
    pub dispatch_width: u32,
    pub issue_width: u32,
    pub commit_width: u32,

    // --- Pipeline depth knobs.
    /// Cycles from fetch to dispatch-eligible (front-end depth). The
    /// baseline's value makes a load's L1 outcome known ~5 cycles after
    /// fetch, as §4 specifies; the deep config adds 3.
    pub frontend_latency: u64,
    /// Cycles from issue to the start of execution.
    pub issue_to_exec: u64,

    // --- Shared back-end resources (Table 3).
    pub iq_int: u32,
    pub iq_fp: u32,
    pub iq_ldst: u32,
    pub phys_int: u32,
    pub phys_fp: u32,
    pub rob_per_thread: u32,
    pub fu_int: u32,
    pub fu_fp: u32,
    pub fu_ldst: u32,

    // --- Memory system.
    pub l1i: CacheConfig,
    pub l1d: CacheConfig,
    pub l2: CacheConfig,
    pub tlb: TlbConfig,
    pub timing: MemTiming,

    // --- Branch prediction.
    pub predictor: PredictorConfig,

    // --- Policy-relevant constants.
    /// A load that spends more than this many cycles in the memory hierarchy
    /// is *declared* an L2 miss (the STALL/FLUSH detection rule; §5 found 15
    /// cycles best for the baseline).
    pub l2_declare_threshold: u64,
    /// Cycles of advance notice the front-end receives before a long-latency
    /// load returns ("a 2-cycle advance indication is received when a load
    /// returns from memory").
    pub early_resolve_notice: u64,
}

impl SimConfig {
    /// Table 3: the paper's baseline — 8-wide, ICOUNT 2.8, 9-stage pipeline,
    /// 32-entry issue queues, 384+384 physical registers, 6/3/4 FUs,
    /// 64 KB L1s, 512 KB L2, 100-cycle memory.
    pub fn baseline() -> SimConfig {
        SimConfig {
            name: "baseline",
            fetch_width: 8,
            fetch_threads: 2,
            fetch_queue: 32,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            // fetch(1) + decode/rename/queue(3) => dispatch at fetch+3,
            // issue at fetch+4, execute (cache access) at fetch+5: the L1
            // outcome is known 5 cycles after fetch, matching §4.
            frontend_latency: 3,
            issue_to_exec: 1,
            iq_int: 32,
            iq_fp: 32,
            iq_ldst: 32,
            phys_int: 384,
            phys_fp: 384,
            rob_per_thread: 256,
            fu_int: 6,
            fu_fp: 3,
            fu_ldst: 4,
            l1i: CacheConfig::paper_l1(),
            l1d: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            tlb: TlbConfig::default_dtlb(),
            timing: MemTiming::paper_baseline(),
            predictor: PredictorConfig::paper(),
            l2_declare_threshold: 15,
            early_resolve_notice: 2,
        }
    }

    /// §6 first variant: "a less aggressive processor" — 4-wide, 4-context,
    /// 1.4 fetch, 256 physical registers, 3 int / 2 fp / 2 ld-st units.
    pub fn small() -> SimConfig {
        SimConfig {
            name: "small",
            fetch_width: 4,
            fetch_threads: 1,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            phys_int: 256,
            phys_fp: 256,
            fu_int: 3,
            fu_fp: 2,
            fu_ldst: 2,
            ..SimConfig::baseline()
        }
    }

    /// §6 second variant: "a deeper and more aggressive processor" —
    /// 16 stages, 2.8 fetch, 64-entry issue queues, L1-miss determination
    /// +3 cycles, L1→L2 latency 15, memory 200.
    pub fn deep() -> SimConfig {
        SimConfig {
            name: "deep",
            frontend_latency: 5,
            issue_to_exec: 2,
            iq_int: 64,
            iq_fp: 64,
            iq_ldst: 64,
            timing: MemTiming {
                l1_latency: 1,
                l1_to_l2: 15,
                memory: 200,
                tlb_penalty: 160,
                mem_bus_cycles: 16,
            },
            ..SimConfig::baseline()
        }
    }

    /// Architectural registers reserved per context per class.
    pub fn arch_regs_per_thread(&self) -> u32 {
        smt_trace::NUM_ARCH_REGS as u32
    }

    /// Validate that `num_threads` contexts fit this configuration.
    pub fn validate(&self, num_threads: usize) -> Result<(), ConfigError> {
        let reserved = self.arch_regs_per_thread() * num_threads as u32;
        if reserved >= self.phys_int || reserved >= self.phys_fp {
            return Err(ConfigError::NotEnoughRegisters {
                threads: num_threads,
                reserved,
                phys_int: self.phys_int,
                phys_fp: self.phys_fp,
            });
        }
        if self.fetch_threads == 0 || self.fetch_width == 0 {
            return Err(ConfigError::ZeroFetch {
                fetch_threads: self.fetch_threads,
                fetch_width: self.fetch_width,
            });
        }
        if num_threads == 0 {
            return Err(ConfigError::NoThreads);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_3() {
        let c = SimConfig::baseline();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.fetch_threads, 2);
        assert_eq!(c.iq_int, 32);
        assert_eq!(c.phys_int, 384);
        assert_eq!(c.rob_per_thread, 256);
        assert_eq!((c.fu_int, c.fu_fp, c.fu_ldst), (6, 3, 4));
        assert_eq!(c.timing.l1_to_l2, 10);
        assert_eq!(c.timing.memory, 100);
        assert_eq!(c.timing.tlb_penalty, 160);
        assert_eq!(c.l2_declare_threshold, 15);
        // §4: L1 outcome known 5 cycles after fetch.
        assert_eq!(1 + c.frontend_latency + c.issue_to_exec, 5);
    }

    #[test]
    fn small_matches_section_6() {
        let c = SimConfig::small();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.fetch_threads, 1);
        assert_eq!(c.phys_int, 256);
        assert_eq!((c.fu_int, c.fu_fp, c.fu_ldst), (3, 2, 2));
        // Unchanged relative to baseline.
        assert_eq!(c.iq_int, 32);
        assert_eq!(c.timing.memory, 100);
    }

    #[test]
    fn deep_matches_section_6() {
        let c = SimConfig::deep();
        assert_eq!(c.fetch_threads, 2);
        assert_eq!(c.iq_int, 64);
        assert_eq!(c.timing.l1_to_l2, 15);
        assert_eq!(c.timing.memory, 200);
        // L1-miss determination 3 cycles later than baseline.
        let b = SimConfig::baseline();
        let detect = |c: &SimConfig| 1 + c.frontend_latency + c.issue_to_exec;
        assert_eq!(detect(&c), detect(&b) + 3);
    }

    #[test]
    fn validation_rejects_too_many_threads() {
        let c = SimConfig::small(); // 256 regs
        assert!(c.validate(4).is_ok());
        assert!(
            c.validate(8).is_err(),
            "8 * 32 = 256 leaves nothing to rename"
        );
        assert!(c.validate(0).is_err());
    }

    #[test]
    fn baseline_supports_eight_threads() {
        assert!(SimConfig::baseline().validate(8).is_ok());
    }

    #[test]
    fn validation_errors_are_typed() {
        let c = SimConfig::small();
        assert!(matches!(
            c.validate(8),
            Err(ConfigError::NotEnoughRegisters { threads: 8, .. })
        ));
        assert!(matches!(c.validate(0), Err(ConfigError::NoThreads)));
        let mut z = SimConfig::baseline();
        z.fetch_threads = 0;
        assert!(matches!(z.validate(2), Err(ConfigError::ZeroFetch { .. })));
    }
}
