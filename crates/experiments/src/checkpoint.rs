//! Crash-resumable campaign checkpoints (`--resume <dir>`).
//!
//! A checkpointing campaign periodically serializes every in-flight
//! simulation as a [`MachineSnapshot`] and stores it here; after a crash,
//! a SIGKILL, or a Ctrl-C, re-running with the same `--resume <dir>`
//! restores each interrupted run from its last checkpoint and continues
//! it — bit-identical to never having stopped (pinned by the golden
//! restore-equivalence suite in `tests/restore.rs`).
//!
//! Two stores live under the resume directory:
//!
//! * `checkpoints/` — one [`CheckpointStore`] entry per in-flight run,
//!   keyed (like the disk cache) by the FNV-1a hash of the run's canonical
//!   description. Completed runs delete their checkpoint.
//! * `results/` — a plain [`DiskCache`](crate::cache::DiskCache) of
//!   *completed* results, so resumed invocations never redo finished work
//!   even when no `--cache-dir` is given.
//!
//! plus `journal.jsonl`, an append-only, per-line-checksummed event log
//! ([`Journal`]) recording campaign opens, interruptions, and completions
//! — the audit trail the kill–resume CI gate checks for duplicate work.
//!
//! # Checkpoint entry wire format
//!
//! ```text
//! magic     [u8; 8]  b"DWARNCKP"
//! version   u32      CHECKPOINT_VERSION
//! key       str      canonical run description (embeds CODE_VERSION)
//! snapshot  bytes    MachineSnapshot::to_bytes (length-prefixed)
//! checksum  u64      FNV-1a over every preceding byte
//! ```
//!
//! Every irregularity in a stored entry — torn write, flipped bit, another
//! format revision, a hash collision or code-version skew (both surface as
//! a key mismatch, since the key embeds [`crate::cache::CODE_VERSION`]),
//! or a snapshot the simulator rejects — is a typed [`CheckpointFault`].
//! The campaign records it as a failure artifact, deletes the entry, and
//! re-simulates from scratch: a damaged checkpoint can cost time but never
//! a wrong number. Writes use the same crash-safe discipline as the disk
//! cache (unique temp file, fsync, atomic rename; orphaned temp files from
//! dead writers are swept on open).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use smt_obs::Json;
use smt_pipeline::{MachineSnapshot, SnapshotError};
use smt_trace::snapio::{self, fnv1a, SnapReader};

/// Leading magic of every checkpoint entry.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"DWARNCKP";

/// Checkpoint *entry* format version (the envelope around the snapshot;
/// the snapshot has its own version). Bump on any wire-format change.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Checkpoint entry file extension.
const EXT: &str = "snap";

/// Why a checkpoint entry was rejected. Every variant means the run
/// re-simulates from scratch — typed so the irregularity becomes a failure
/// artifact instead of vanishing silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointFault {
    /// The entry file exists but could not be read.
    Unreadable(String),
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The file ends before the envelope is complete.
    Truncated,
    /// The entry was written by a different envelope format revision.
    VersionSkew { found: u32, supported: u32 },
    /// The body does not match its stored checksum (bit flip, torn write).
    BadChecksum,
    /// The envelope checksummed clean but does not parse.
    Malformed(String),
    /// The entry is internally consistent but records a *different* run
    /// description: a hash collision, or a checkpoint written by another
    /// code/parameter generation (the description embeds
    /// [`crate::cache::CODE_VERSION`] and every simulation parameter).
    StaleGeneration,
    /// The embedded [`MachineSnapshot`] was rejected (its own version
    /// skew, identity mismatch, or state the simulator cannot accept).
    Snapshot(SnapshotError),
}

impl std::fmt::Display for CheckpointFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointFault::Unreadable(e) => write!(f, "unreadable checkpoint: {e}"),
            CheckpointFault::BadMagic => write!(f, "bad magic (not a checkpoint entry)"),
            CheckpointFault::Truncated => write!(f, "truncated checkpoint envelope"),
            CheckpointFault::VersionSkew { found, supported } => write!(
                f,
                "checkpoint format version {found} (this build supports {supported})"
            ),
            CheckpointFault::BadChecksum => write!(f, "checkpoint checksum mismatch"),
            CheckpointFault::Malformed(m) => write!(f, "malformed checkpoint envelope: {m}"),
            CheckpointFault::StaleGeneration => write!(
                f,
                "checkpoint belongs to a different run or code generation"
            ),
            CheckpointFault::Snapshot(e) => write!(f, "embedded snapshot rejected: {e}"),
        }
    }
}

impl std::error::Error for CheckpointFault {}

/// An on-disk store of in-flight run checkpoints, keyed by canonical run
/// descriptions (the same strings that key the disk cache).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a store rooted at `dir`. Temp files left
    /// behind by writers that crashed mid-store are swept.
    pub fn open(dir: &Path) -> std::io::Result<CheckpointStore> {
        std::fs::create_dir_all(dir)?;
        let store = CheckpointStore {
            dir: dir.to_path_buf(),
        };
        store.sweep_stale_tmp();
        Ok(store)
    }

    /// The directory this store keeps entries in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a checkpoint for `key_desc` lives in (diagnostics and
    /// fault injection; the file may not exist).
    pub fn path_for(&self, key_desc: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.{EXT}", fnv1a(key_desc.as_bytes())))
    }

    /// Remove `.tmpPID-SEQ` files whose writing process is no longer
    /// alive. Best-effort: sweep failures never block opening the store.
    fn sweep_stale_tmp(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for e in entries.filter_map(|e| e.ok()) {
            let path = e.path();
            let Some(ext) = path.extension().and_then(|x| x.to_str()) else {
                continue;
            };
            let Some(rest) = ext.strip_prefix("tmp") else {
                continue;
            };
            let writer_pid = rest.split('-').next().and_then(|p| p.parse::<u32>().ok());
            let stale = match writer_pid {
                Some(pid) => pid != std::process::id() && !crate::cache::process_alive(pid),
                None => true, // unparseable tmp name: an old format, sweep it
            };
            if stale {
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    /// Store a snapshot under its run description: unique temp file
    /// (pid + per-process sequence), fsync, atomic rename — a crash at any
    /// point leaves either the previous checkpoint or none, never a torn
    /// one.
    pub fn store(&self, key_desc: &str, snap: &MachineSnapshot) -> std::io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = self.path_for(key_desc);
        let tmp = path.with_extension(format!(
            "tmp{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let written = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&render_entry(key_desc, snap))?;
            f.sync_all()
        })();
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Delete the checkpoint for `key_desc` (the run completed, or its
    /// entry was found irregular). Missing entries are not an error.
    pub fn remove(&self, key_desc: &str) -> std::io::Result<()> {
        match std::fs::remove_file(self.path_for(key_desc)) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Load the checkpoint for `key_desc`. `Ok(None)` means no checkpoint
    /// exists; any irregularity in a present entry is a typed
    /// [`CheckpointFault`] (never a panic, never a silently wrong
    /// snapshot).
    pub fn load_checked(&self, key_desc: &str) -> Result<Option<MachineSnapshot>, CheckpointFault> {
        let bytes = match std::fs::read(self.path_for(key_desc)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointFault::Unreadable(e.to_string())),
        };
        parse_entry(&bytes, key_desc).map(Some)
    }

    /// Number of checkpoint entries currently stored.
    pub fn entries(&self) -> std::io::Result<usize> {
        Ok(std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(EXT))
            .count())
    }
}

fn render_entry(key_desc: &str, snap: &MachineSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + key_desc.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    snapio::put_u32(&mut out, CHECKPOINT_VERSION);
    snapio::put_str(&mut out, key_desc);
    snapio::put_bytes(&mut out, &snap.to_bytes());
    let sum = fnv1a(&out);
    snapio::put_u64(&mut out, sum);
    out
}

/// Strict decode of one envelope. Version is checked *before* the
/// checksum, so an entry from another format revision says so instead of
/// "corrupt" (mirroring the snapshot format's own ordering).
fn parse_entry(bytes: &[u8], expect_key: &str) -> Result<MachineSnapshot, CheckpointFault> {
    if bytes.len() < CHECKPOINT_MAGIC.len() + 4 {
        return Err(CheckpointFault::Truncated);
    }
    if bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
        return Err(CheckpointFault::BadMagic);
    }
    let version = bytes
        .get(8..12)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or(CheckpointFault::Truncated)?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointFault::VersionSkew {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    if bytes.len() < 12 + 8 {
        return Err(CheckpointFault::Truncated);
    }
    let (content, tail) = bytes.split_at(bytes.len() - 8);
    let stored = tail
        .try_into()
        .map(u64::from_le_bytes)
        .map_err(|_| CheckpointFault::Truncated)?;
    if stored != fnv1a(content) {
        return Err(CheckpointFault::BadChecksum);
    }
    let mut r = SnapReader::new(&content[12..]);
    let envelope = (|| {
        let key = r.str()?.to_string();
        let snap = r.bytes()?.to_vec();
        r.finish("checkpoint envelope")?;
        Ok::<_, smt_trace::snapio::SnapError>((key, snap))
    })();
    let (key, snap_bytes) = envelope.map_err(|e| CheckpointFault::Malformed(e.to_string()))?;
    if key != expect_key {
        return Err(CheckpointFault::StaleGeneration);
    }
    MachineSnapshot::from_bytes(&snap_bytes).map_err(CheckpointFault::Snapshot)
}

/// Append-only, per-line-checksummed campaign event log.
///
/// Each line is `<16-hex FNV-1a of payload> <payload JSON>`; a reader
/// drops any line whose checksum fails (a torn tail from a crash mid-write
/// costs that line, never the log). Events:
///
/// * `resume` — a checkpointing campaign opened this directory;
/// * `completed` — a run finished (`source` says whether it simulated in
///   this process or was served from the resume results cache);
/// * `interrupted` — a run stopped on request with a resumable checkpoint.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Open (appending) the journal at `path`.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Journal { file })
    }

    fn note(&mut self, payload: &Json) -> std::io::Result<()> {
        let payload = payload.render();
        writeln!(self.file, "{:016x} {payload}", fnv1a(payload.as_bytes()))?;
        // Flush eagerly: the journal exists precisely for crashes.
        self.file.sync_data()
    }

    /// Record that a checkpointing campaign opened this resume directory.
    pub fn note_resume(&mut self) -> std::io::Result<()> {
        self.note(&Json::obj(vec![
            ("event", Json::str("resume")),
            ("pid", Json::U64(std::process::id() as u64)),
        ]))
    }

    /// Record a completed run: `source` is `"sim"` for a fresh simulation
    /// or `"resume-cache"` when served from the resume results store.
    pub fn note_completed(&mut self, what: &str, digest: u64, source: &str) -> std::io::Result<()> {
        self.note(&Json::obj(vec![
            ("event", Json::str("completed")),
            ("what", Json::str(what.to_string())),
            ("digest", Json::str(format!("{digest:#018x}"))),
            ("source", Json::str(source.to_string())),
        ]))
    }

    /// Record a run interrupted with a resumable checkpoint on disk.
    pub fn note_interrupted(&mut self, what: &str, cycle: u64) -> std::io::Result<()> {
        self.note(&Json::obj(vec![
            ("event", Json::str("interrupted")),
            ("what", Json::str(what.to_string())),
            ("cycle", Json::U64(cycle)),
        ]))
    }

    /// Read back every checksummed-clean payload line of a journal file.
    /// Lines failing their checksum (torn tail, corruption) are dropped,
    /// not errors; a missing file reads as empty.
    pub fn read_verified(path: &Path) -> std::io::Result<Vec<String>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        Ok(text
            .lines()
            .filter_map(|line| {
                let (crc, payload) = line.split_once(' ')?;
                let stored = u64::from_str_radix(crc, 16).ok()?;
                (stored == fnv1a(payload.as_bytes())).then(|| payload.to_string())
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwarn_core::PolicyKind;
    use smt_pipeline::{SimConfig, Simulator};
    use smt_workloads::{workload, WorkloadClass};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dwarn-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot() -> MachineSnapshot {
        let specs = workload(2, WorkloadClass::Mix).thread_specs();
        let mut sim = Simulator::new(SimConfig::baseline(), PolicyKind::DWarn.build(), &specs);
        sim.run(0, 500);
        sim.snapshot()
    }

    #[test]
    fn store_load_round_trip_is_exact() {
        let s = CheckpointStore::open(&temp_dir("roundtrip")).unwrap();
        let snap = sample_snapshot();
        assert!(s.load_checked("k").unwrap().is_none());
        s.store("k", &snap).unwrap();
        let back = s.load_checked("k").unwrap().unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.digest(), snap.digest());
        assert_eq!(s.entries().unwrap(), 1);
        s.remove("k").unwrap();
        assert!(s.load_checked("k").unwrap().is_none());
        s.remove("k").unwrap(); // idempotent
    }

    #[test]
    fn corruption_modes_are_typed() {
        let s = CheckpointStore::open(&temp_dir("faults")).unwrap();
        let snap = sample_snapshot();
        s.store("k", &snap).unwrap();
        let path = s.path_for("k");
        let clean = std::fs::read(&path).unwrap();

        // Truncations: envelope-header cuts are Truncated, deeper cuts fail
        // the checksum. Either way: typed, never a panic.
        for cut in [0, 5, 11, clean.len() / 2, clean.len() - 1] {
            std::fs::write(&path, &clean[..cut]).unwrap();
            let fault = s.load_checked("k").unwrap_err();
            assert!(
                matches!(
                    fault,
                    CheckpointFault::Truncated | CheckpointFault::BadChecksum
                ),
                "cut {cut}: {fault}"
            );
        }

        // A single flipped payload bit fails the checksum.
        let mut flipped = clean.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(
            s.load_checked("k").unwrap_err(),
            CheckpointFault::BadChecksum
        );

        // Wrong magic.
        std::fs::write(&path, b"something else entirely, not a checkpoint").unwrap();
        assert_eq!(s.load_checked("k").unwrap_err(), CheckpointFault::BadMagic);

        // Envelope version skew is reported as such even though the stale
        // checksum no longer matches (version is checked first).
        let mut skew = clean.clone();
        skew[8..12].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &skew).unwrap();
        assert_eq!(
            s.load_checked("k").unwrap_err(),
            CheckpointFault::VersionSkew {
                found: 9,
                supported: CHECKPOINT_VERSION
            }
        );

        // Snapshot-level version skew behind a *valid* envelope: doctor the
        // inner snapshot's version field and re-wrap with a fresh envelope
        // checksum. The wrapper accepts; the snapshot layer rejects.
        let mut inner = snap.to_bytes();
        inner[8..12].copy_from_slice(&99u32.to_le_bytes());
        let mut wrapped = Vec::new();
        wrapped.extend_from_slice(&CHECKPOINT_MAGIC);
        snapio::put_u32(&mut wrapped, CHECKPOINT_VERSION);
        snapio::put_str(&mut wrapped, "k");
        snapio::put_bytes(&mut wrapped, &inner);
        let sum = fnv1a(&wrapped);
        snapio::put_u64(&mut wrapped, sum);
        std::fs::write(&path, &wrapped).unwrap();
        assert!(matches!(
            s.load_checked("k").unwrap_err(),
            CheckpointFault::Snapshot(SnapshotError::VersionSkew { found: 99, .. })
        ));

        // Healing: re-storing replaces the damage.
        s.store("k", &snap).unwrap();
        assert_eq!(s.load_checked("k").unwrap().unwrap(), snap);
    }

    #[test]
    fn foreign_key_is_a_stale_generation() {
        let s = CheckpointStore::open(&temp_dir("stale")).unwrap();
        let snap = sample_snapshot();
        // A checkpoint written under another description (different code
        // version, different parameters, or a hash collision) lands on this
        // key's path: it must be rejected as stale, not restored.
        s.store("v999 some-other-generation", &snap).unwrap();
        std::fs::rename(
            s.path_for("v999 some-other-generation"),
            s.path_for("v1 this-generation"),
        )
        .unwrap();
        assert_eq!(
            s.load_checked("v1 this-generation").unwrap_err(),
            CheckpointFault::StaleGeneration
        );
    }

    #[test]
    fn stale_temp_files_are_swept_on_open() {
        let dir = temp_dir("sweep");
        let s = CheckpointStore::open(&dir).unwrap();
        // Orphan from a dead pid (u32::MAX exceeds pid_max).
        let dead = s.path_for("k").with_extension("tmp4294967295-0");
        std::fs::write(&dead, b"torn").unwrap();
        // In-flight file from this (live) process.
        let mine = s
            .path_for("k")
            .with_extension(format!("tmp{}-3", std::process::id()));
        std::fs::write(&mine, b"in flight").unwrap();
        let _ = CheckpointStore::open(&dir).unwrap();
        assert!(!dead.exists(), "dead writer's temp file swept");
        assert!(mine.exists(), "live writer's temp file survives");
    }

    #[test]
    fn journal_round_trips_and_drops_torn_tail() {
        let dir = temp_dir("journal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let mut j = Journal::open(&path).unwrap();
        j.note_resume().unwrap();
        j.note_completed("baseline/2-MIX/DWARN", 0xABCD, "sim")
            .unwrap();
        j.note_interrupted("baseline/2-MEM/FLUSH", 1234).unwrap();
        drop(j);
        // Simulate a crash mid-append: a torn final line.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "0123456789abcdef {{\"event\":\"comp").unwrap();
        drop(f);

        let entries = Journal::read_verified(&path).unwrap();
        assert_eq!(entries.len(), 3, "torn tail dropped: {entries:?}");
        assert!(entries[0].contains("\"event\":\"resume\""));
        assert!(entries[1].contains("\"what\":\"baseline/2-MIX/DWARN\""));
        assert!(entries[1].contains("\"source\":\"sim\""));
        assert!(entries[2].contains("\"cycle\":1234"));

        // Reopening appends after the torn line without disturbing it.
        let mut j = Journal::open(&path).unwrap();
        j.note_resume().unwrap();
        // The torn fragment merged with the new line is itself dropped,
        // but the log as a whole keeps accepting entries.
        let after = Journal::read_verified(&path).unwrap();
        assert!(after.len() >= 3);

        // A missing journal reads as empty.
        assert!(Journal::read_verified(&dir.join("absent.jsonl"))
            .unwrap()
            .is_empty());
    }
}
