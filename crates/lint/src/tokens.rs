//! Token trees over the masked source.
//!
//! The masking lexer (`lexer::mask_source`) already removes the only
//! constructs that make Rust hard to tokenize byte-by-byte: comments,
//! string/char literals, and lifetimes' leading quotes survive as blanks.
//! On top of the mask this module builds a classic token-tree layer:
//! identifiers, punctuation, and *groups* — balanced `()`/`[]`/`{}` regions
//! parsed into nested trees.  Byte offsets into the original source are kept
//! on every token so rules can report accurate line numbers.
//!
//! The tree is deliberately lossy (no literals' contents, no whitespace) —
//! it exists so the model extractor in `model.rs` can walk item structure
//! without a real Rust parser and without any external dependency.

/// Which delimiter a [`Group`] was opened with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    Paren,
    Bracket,
    Brace,
}

impl Delim {
    fn open(b: u8) -> Option<Delim> {
        match b {
            b'(' => Some(Delim::Paren),
            b'[' => Some(Delim::Bracket),
            b'{' => Some(Delim::Brace),
            _ => None,
        }
    }

    fn close(self) -> u8 {
        match self {
            Delim::Paren => b')',
            Delim::Bracket => b']',
            Delim::Brace => b'}',
        }
    }
}

/// One node of the token tree.
#[derive(Debug, Clone)]
pub enum Tok {
    /// Identifier or keyword; `text` is the exact source spelling.
    Ident { text: String, off: usize },
    /// Numeric literal (e.g. `256`, `0xFF`, `1_000u64`); spelling preserved.
    Number { text: String, off: usize },
    /// Single punctuation byte (`:`, `;`, `<`, `-`, …).  Multi-byte operators
    /// appear as consecutive puncts; consumers that care (arrow skipping)
    /// reassemble them.
    Punct { ch: u8, off: usize },
    /// Balanced delimiter group with its parsed contents.
    Group {
        delim: Delim,
        toks: Vec<Tok>,
        off: usize,
    },
}

impl Tok {
    pub fn off(&self) -> usize {
        match self {
            Tok::Ident { off, .. }
            | Tok::Number { off, .. }
            | Tok::Punct { off, .. }
            | Tok::Group { off, .. } => *off,
        }
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tok::Ident { text, .. } if text == s)
    }

    pub fn is_punct(&self, c: u8) -> bool {
        matches!(self, Tok::Punct { ch, .. } if *ch == c)
    }

    pub fn ident_text(&self) -> Option<&str> {
        match self {
            Tok::Ident { text, .. } => Some(text),
            _ => None,
        }
    }

    pub fn group(&self, d: Delim) -> Option<&[Tok]> {
        match self {
            Tok::Group { delim, toks, .. } if *delim == d => Some(toks),
            _ => None,
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize masked source into a flat token stream, then fold balanced
/// delimiters into groups.  Unbalanced delimiters are tolerated (the stray
/// closer is dropped, an unclosed group ends at EOF) so a half-edited file
/// degrades to a shallower tree instead of a hard error.
pub fn parse(masked: &str) -> Vec<Tok> {
    let bytes = masked.as_bytes();
    let mut i = 0usize;
    let mut stack: Vec<(Delim, usize, Vec<Tok>)> = Vec::new();
    let mut cur: Vec<Tok> = Vec::new();
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_start(b) {
            let start = i;
            while i < bytes.len() && is_ident_cont(bytes[i]) {
                i += 1;
            }
            cur.push(Tok::Ident {
                text: masked[start..i].to_string(),
                off: start,
            });
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            // Numeric literal: digits plus the alnum/underscore/dot tail
            // (covers hex, suffixes, floats).  `1.method()` is not valid on
            // an integer literal in this codebase, so the greedy dot is safe.
            while i < bytes.len()
                && (is_ident_cont(bytes[i])
                    || (bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())))
            {
                i += 1;
            }
            cur.push(Tok::Number {
                text: masked[start..i].to_string(),
                off: start,
            });
            continue;
        }
        if let Some(d) = Delim::open(b) {
            stack.push((d, i, std::mem::take(&mut cur)));
            i += 1;
            continue;
        }
        if matches!(b, b')' | b']' | b'}') {
            if let Some((d, off, parent)) = stack.pop() {
                if d.close() == b {
                    let toks = std::mem::replace(&mut cur, parent);
                    cur.push(Tok::Group {
                        delim: d,
                        toks,
                        off,
                    });
                } else {
                    // Mismatched closer: restore and drop the byte.
                    stack.push((d, off, parent));
                }
            }
            i += 1;
            continue;
        }
        cur.push(Tok::Punct { ch: b, off: i });
        i += 1;
    }
    // Unclosed groups: fold innermost-first so partial content is kept.
    while let Some((d, off, parent)) = stack.pop() {
        let toks = std::mem::replace(&mut cur, parent);
        cur.push(Tok::Group {
            delim: d,
            toks,
            off,
        });
    }
    cur
}

/// Collect every identifier in a token slice (recursing into groups) into
/// `out`.  Used to build per-function "mentions" sets.
pub fn collect_idents<'a>(toks: &'a [Tok], out: &mut Vec<&'a str>) {
    for t in toks {
        match t {
            Tok::Ident { text, .. } => out.push(text),
            Tok::Group { toks, .. } => collect_idents(toks, out),
            _ => {}
        }
    }
}

/// Collect identifiers that appear immediately after `self.` (recursing into
/// groups).  This is the core of snapshot-coverage analysis: a field is
/// "touched" by a method iff `self.<field>` appears somewhere in its body.
pub fn collect_self_fields<'a>(toks: &'a [Tok], out: &mut Vec<&'a str>) {
    let mut prev_was_self_dot = false;
    let mut prev_was_self = false;
    for t in toks {
        match t {
            Tok::Ident { text, .. } => {
                if prev_was_self_dot {
                    out.push(text);
                }
                prev_was_self = text == "self";
                prev_was_self_dot = false;
            }
            Tok::Punct { ch: b'.', .. } => {
                prev_was_self_dot = prev_was_self;
                prev_was_self = false;
            }
            Tok::Group { toks, .. } => {
                collect_self_fields(toks, out);
                prev_was_self = false;
                prev_was_self_dot = false;
            }
            _ => {
                prev_was_self = false;
                prev_was_self_dot = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask_source;

    fn tree(src: &str) -> Vec<Tok> {
        parse(&mask_source(src))
    }

    #[test]
    fn flat_idents_and_puncts() {
        let t = tree("let x = y + 1;");
        assert!(t[0].is_ident("let"));
        assert!(t[1].is_ident("x"));
        assert!(t[2].is_punct(b'='));
        assert!(matches!(&t[4], Tok::Punct { ch: b'+', .. }));
        assert!(matches!(&t[5], Tok::Number { text, .. } if text == "1"));
    }

    #[test]
    fn nested_groups() {
        let t = tree("fn f(a: u32) { g([a, 2]); }");
        let body = t
            .iter()
            .find_map(|t| t.group(Delim::Brace))
            .expect("brace group");
        let call = body
            .iter()
            .find_map(|t| t.group(Delim::Paren))
            .expect("call parens");
        assert!(call.iter().any(|t| t.group(Delim::Bracket).is_some()));
    }

    #[test]
    fn offsets_point_into_source() {
        let src = "mod m {\n    fn inner() {}\n}\n";
        let t = tree(src);
        let grp = t.iter().find_map(|t| t.group(Delim::Brace)).unwrap();
        let fn_tok = grp.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(&src[fn_tok.off()..fn_tok.off() + 2], "fn");
    }

    #[test]
    fn unbalanced_input_degrades() {
        // A stray closer and an unclosed brace must not panic or loop.
        let t = tree(") fn f( {");
        assert!(t.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn masked_strings_do_not_tokenize() {
        let t = tree(r#"let s = "fn not_a_fn() {";"#);
        assert!(!t.iter().any(|t| t.is_ident("not_a_fn")));
    }

    #[test]
    fn self_field_collection() {
        let src = "fn save(&self) { put(self.now); self.stats.record(x); other.field; }";
        let t = tree(src);
        let mut fields = Vec::new();
        collect_self_fields(&t, &mut fields);
        assert!(fields.contains(&"now"));
        assert!(fields.contains(&"stats"));
        assert!(!fields.contains(&"field"));
        assert!(!fields.contains(&"record"));
    }
}
