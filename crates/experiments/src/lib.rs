//! # smt-experiments — the paper's evaluation, regenerated
//!
//! One module per table/figure of "DCache Warn: an I-Fetch Policy to
//! Increase SMT Efficiency" (IPDPS 2004):
//!
//! | Experiment | Module | CLI |
//! |---|---|---|
//! | Table 2(a) | [`table2a`] | `table2a` |
//! | Figure 1(a,b) | [`figures::fig1_report`] | `fig1` |
//! | Figure 2 | [`figures::fig2_report`] | `fig2` |
//! | Figure 3 | [`figures::fig3_report`] | `fig3` |
//! | Table 4 | [`table4`] | `table4` |
//! | Figure 4(a,b) | [`figures::fig4_report`] | `fig4` |
//! | Figure 5(a,b) | [`figures::fig5_report`] | `fig5` |
//! | §5 prose ablations | [`ablation`] | `ablation` |
//! | Table 1 evaluated (incl. DC-PRED) | [`taxonomy`] | `taxonomy` |
//! | Extension study (DWarn+FLUSH) | [`extensions`] | `extensions` |
//! | Meta-policy study (adaptive selection + oracle bounds) | [`meta`] | `meta` |
//!
//! Run everything: `cargo run --release -p smt-experiments -- all`.
//! Absolute IPCs come from a synthetic-trace substrate, so the comparison
//! target is the paper's *shape* — who wins, by roughly what factor, where
//! the crossovers fall — not its absolute numbers (see DESIGN.md).
//!
//! # Result caching
//!
//! Experiments share simulations through [`runner::Campaign`], an
//! in-memory memo over the (architecture, workload, policy) grid. With
//! `--cache-dir <dir>` (programmatically: [`Campaign::with_disk_cache`]),
//! the memo persists across processes via [`cache::DiskCache`], a
//! content-addressed store keyed by a canonical description of everything
//! that determines a result — code version, full `SimConfig`, thread
//! specs, policy (with parameters), and window lengths. A warm `all` pass
//! serves every simulation from disk and spends its time purely on report
//! rendering; `smt-experiments cache <stats|clear|verify>` administers a
//! store. Entries are checksummed and never trusted when stale or corrupt
//! — any irregularity falls back to re-simulation, so a damaged cache can
//! cost time but never change a number.

pub mod ablation;
pub mod artifacts;
pub mod cache;
pub mod chaos;
pub mod checkpoint;
pub mod error;
pub mod extensions;
pub mod figures;
pub mod grid;
pub mod interrupt;
pub mod meta;
pub mod paper;
pub mod report;
pub mod runner;
pub mod suite;
pub mod table2a;
pub mod table4;
pub mod taxonomy;
pub mod tracing;

pub use cache::{CacheFault, DiskCache};
pub use checkpoint::{CheckpointFault, CheckpointStore, Journal};
pub use error::{ExpError, RunFailure};
pub use grid::{GridData, Metric};
pub use runner::{Arch, Campaign, ExpParams, RunKey};

/// Lock `m`, recovering the guard when the mutex is poisoned. Campaign
/// state (memo tables, failure lists, artifact sinks) stays structurally
/// valid under panics — every writer either completes its push/insert or
/// leaves the collection untouched — and a sweep degrades to partial
/// results rather than cascading one isolated panic into an abort.
pub(crate) fn lock_unpoisoned<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
