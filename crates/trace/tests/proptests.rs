//! Property-based tests for the trace substrate: PRNG distributions, static
//! program structure, stream consistency, and pool calibration — over
//! randomized seeds and profiles, driven by the crate's own deterministic
//! [`Rng`] so every failure reproduces from the fixed master seed.

use smt_trace::{all_benchmarks, CtrlKind, OpClass, Rng, StaticProgram, ThreadTrace};

const CASES: usize = 24;

fn pick_profile(r: &mut Rng) -> smt_trace::BenchProfile {
    all_benchmarks()[r.below(12) as usize].clone()
}

/// below(b) is always < b, for arbitrary seeds and bounds.
#[test]
fn rng_below_bound() {
    let mut m = Rng::new(0x77ace ^ 1);
    for _ in 0..CASES {
        let mut r = m.fork();
        let bound = m.range(1, u64::MAX);
        for _ in 0..64 {
            assert!(r.below(bound) < bound);
        }
    }
}

/// The geometric helper respects its bounds.
#[test]
fn rng_geometric_bounds() {
    let mut m = Rng::new(0x77ace ^ 2);
    for _ in 0..CASES {
        let mut r = m.fork();
        let p = m.f64() * 0.99;
        let max = m.range(1, 64);
        for _ in 0..64 {
            let v = r.geometric(p, max);
            assert!((1..=max).contains(&v));
        }
    }
}

/// weighted() never picks a zero-weight bucket.
#[test]
fn rng_weighted_skips_zero() {
    let mut m = Rng::new(0x77ace ^ 3);
    for _ in 0..CASES {
        let mut r = m.fork();
        let hole = m.below(4) as usize;
        let mut weights = [1.0f64; 4];
        weights[hole] = 0.0;
        for _ in 0..64 {
            assert_ne!(r.weighted(&weights), hole);
        }
    }
}

/// Same seed ⇒ identical streams; different seeds ⇒ different streams
/// (overwhelmingly).
#[test]
fn rng_determinism() {
    let mut m = Rng::new(0x77ace ^ 4);
    for _ in 0..CASES {
        let seed = m.next_u64();
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }
}

/// Program generation is a pure function of (profile, seed).
#[test]
fn program_generation_is_pure() {
    let mut m = Rng::new(0x77ace ^ 5);
    for _ in 0..CASES {
        let p = pick_profile(&mut m);
        let seed = m.next_u64();
        let a = StaticProgram::generate(&p, seed);
        let b = StaticProgram::generate(&p, seed);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() as u32 {
            assert_eq!(a.inst(i), b.inst(i));
        }
    }
}

/// Calls always target function heads; returns only terminate functions.
#[test]
fn call_return_structure() {
    let mut m = Rng::new(0x77ace ^ 6);
    for _ in 0..CASES {
        let p = pick_profile(&mut m);
        let seed = m.below(100_000);
        let prog = StaticProgram::generate(&p, seed);
        let heads: Vec<u32> = prog.functions().iter().map(|f| f.first_block).collect();
        for blk in prog.blocks() {
            let term = prog.inst(blk.term_idx());
            match term.ctrl {
                CtrlKind::Call => assert!(heads.contains(&term.taken_target)),
                CtrlKind::Return => {
                    let func = prog.functions()[blk.func as usize];
                    assert_eq!(prog.block_of(blk.term_idx()), func.last_block);
                }
                _ => {}
            }
        }
    }
}

/// The dynamic instruction mix stays within sane bounds of the profile for
/// arbitrary seeds (stratified block composition at work).
#[test]
fn dynamic_mix_is_stable() {
    let mut m = Rng::new(0x77ace ^ 7);
    for _ in 0..CASES {
        let p = pick_profile(&mut m);
        let seed = m.below(100_000);
        let mut t = ThreadTrace::new(&p, seed, 0, 0);
        let n = 20_000;
        let mut loads = 0usize;
        for _ in 0..n {
            if t.next_inst().class == OpClass::Load {
                loads += 1;
            }
        }
        let frac = loads as f64 / n as f64;
        // Body fraction minus terminator share, with generous slack.
        assert!(
            frac > p.load_frac * 0.5 && frac < p.load_frac * 1.2,
            "load fraction {frac} vs profile {} ({} seed {seed})",
            p.load_frac,
            p.name
        );
    }
}

/// Loop branches honor their deterministic periods: over a long window, a
/// loop branch's not-taken (exit) fraction is exactly 1/period.
#[test]
fn loop_periods_are_deterministic() {
    let mut m = Rng::new(0x77ace ^ 8);
    for _ in 0..CASES {
        let p = pick_profile(&mut m);
        let seed = m.below(100_000);
        let mut t = ThreadTrace::new(&p, seed, 0, 0);
        let prog = t.program().clone();
        use std::collections::HashMap;
        let mut counts: HashMap<u32, (u64, u64)> = HashMap::new(); // (taken, total)
        for _ in 0..30_000 {
            let d = t.next_inst();
            if d.ctrl == CtrlKind::CondBr && prog.inst(d.static_idx).loop_period > 0 {
                let e = counts.entry(d.static_idx).or_insert((0, 0));
                e.0 += d.taken as u64;
                e.1 += 1;
            }
        }
        for (idx, (taken, total)) in counts {
            let period = prog.inst(idx).loop_period as u64;
            if total >= 4 * period {
                // Executed several full trips: the exit fraction must be
                // within one trip of 1/period.
                let exits = total - taken;
                let expected = total / period;
                assert!(
                    exits.abs_diff(expected) <= 2,
                    "loop {idx}: {exits} exits vs expected {expected} over {total}"
                );
            }
        }
    }
}

/// Wrong-path synthesis never panics for arbitrary PCs and produces
/// instructions marked wrong-path.
#[test]
fn synth_total_for_arbitrary_pcs() {
    let mut m = Rng::new(0x77ace ^ 9);
    for _ in 0..CASES {
        let p = pick_profile(&mut m);
        let seed = m.below(100_000);
        let base = 0x4_0000u64;
        let t = ThreadTrace::new(&p, seed, base, 0);
        let prog = t.program().clone();
        let mut synth = t.make_synth(&p);
        for _ in 0..m.range(1, 50) {
            let pc = m.below(u32::MAX as u64 + 1);
            let d = synth.synth_at(&prog, base + pc * 4);
            assert!(d.wrong_path);
            assert!((d.static_idx as usize) < prog.len());
        }
    }
}
