//! Trace files: record a dynamic instruction stream (plus its basic-block
//! dictionary) to a compact binary format and replay it later.
//!
//! A trace-driven simulator lives or dies by its trace tooling. This module
//! gives the synthetic streams a durable form: record once, archive, replay
//! bit-for-bit — or generate traces with external tooling that writes the
//! same format. A recorded trace carries everything the simulator needs:
//!
//! * the static program (the wrong-path dictionary),
//! * the profile name (for wrong-path pool synthesis),
//! * the dynamic records (static index, memory address, branch outcome,
//!   successor).
//!
//! Format (`DWTR`, version 1, little-endian):
//!
//! ```text
//! magic "DWTR" | u32 version | u8 name_len | name bytes
//! u64 code_base | u32 n_static | n_static × StaticInst records
//! u32 n_blocks  | n_blocks × (u32 start, u32 len, u32 func)
//! u32 n_funcs   | n_funcs × (u32 first, u32 last)
//! u64 n_dyn     | n_dyn × dynamic records
//! ```

use std::io::{self, Read, Write};

use crate::instr::{CtrlKind, DynInst, MemPool, OpClass, StaticInst, INST_BYTES};
use crate::profile::{by_name, BenchProfile};
use crate::program::{Block, Function, StaticProgram};
use crate::stream::ThreadTrace;

const MAGIC: &[u8; 4] = b"DWTR";
const VERSION: u32 = 1;

fn class_code(c: OpClass) -> u8 {
    match c {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::FpAlu => 2,
        OpClass::Load => 3,
        OpClass::Store => 4,
        OpClass::CondBranch => 5,
        OpClass::Jump => 6,
    }
}

fn class_from(code: u8) -> io::Result<OpClass> {
    Ok(match code {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMul,
        2 => OpClass::FpAlu,
        3 => OpClass::Load,
        4 => OpClass::Store,
        5 => OpClass::CondBranch,
        6 => OpClass::Jump,
        _ => return Err(bad("unknown op class")),
    })
}

fn ctrl_code(c: CtrlKind) -> u8 {
    match c {
        CtrlKind::None => 0,
        CtrlKind::CondBr => 1,
        CtrlKind::Jump => 2,
        CtrlKind::Call => 3,
        CtrlKind::Return => 4,
    }
}

fn ctrl_from(code: u8) -> io::Result<CtrlKind> {
    Ok(match code {
        0 => CtrlKind::None,
        1 => CtrlKind::CondBr,
        2 => CtrlKind::Jump,
        3 => CtrlKind::Call,
        4 => CtrlKind::Return,
        _ => return Err(bad("unknown ctrl kind")),
    })
}

fn pool_code(p: Option<MemPool>) -> u8 {
    match p {
        None => 0,
        Some(MemPool::Hot) => 1,
        Some(MemPool::Warm) => 2,
        Some(MemPool::Cold) => 3,
    }
}

fn pool_from(code: u8) -> io::Result<Option<MemPool>> {
    Ok(match code {
        0 => None,
        1 => Some(MemPool::Hot),
        2 => Some(MemPool::Warm),
        3 => Some(MemPool::Cold),
        _ => return Err(bad("unknown mem pool")),
    })
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

struct Writer<W: Write> {
    w: W,
}

impl<W: Write> Writer<W> {
    fn u8(&mut self, v: u8) -> io::Result<()> {
        self.w.write_all(&[v])
    }
    fn u16(&mut self, v: u16) -> io::Result<()> {
        self.w.write_all(&v.to_le_bytes())
    }
    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.w.write_all(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.w.write_all(&v.to_le_bytes())
    }
    fn f32(&mut self, v: f32) -> io::Result<()> {
        self.w.write_all(&v.to_le_bytes())
    }
}

struct Reader<R: Read> {
    r: R,
}

impl<R: Read> Reader<R> {
    fn u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.r.read_exact(&mut b)?;
        Ok(b[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        let mut b = [0u8; 2];
        self.r.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }
    fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.r.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f32(&mut self) -> io::Result<f32> {
        let mut b = [0u8; 4];
        self.r.read_exact(&mut b)?;
        Ok(f32::from_le_bytes(b))
    }
}

/// A fully-loaded recorded trace: static program, identity, and the dynamic
/// stream.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    /// Profile name recorded in the file (must name a known benchmark so
    /// wrong-path synthesis can be configured).
    pub profile_name: String,
    pub code_base: u64,
    pub program: StaticProgram,
    pub insts: Vec<DynInst>,
}

impl RecordedTrace {
    /// Record `n` instructions of a synthetic stream into memory.
    pub fn record(profile: &BenchProfile, seed: u64, addr_base: u64, n: u64) -> RecordedTrace {
        let mut t = ThreadTrace::new(profile, seed, addr_base, 0);
        let program = (**t.program()).clone();
        let insts = (0..n).map(|_| t.next_inst()).collect();
        RecordedTrace {
            profile_name: profile.name.to_string(),
            code_base: addr_base,
            program,
            insts,
        }
    }

    /// The profile the trace was generated from.
    pub fn profile(&self) -> Option<BenchProfile> {
        by_name(&self.profile_name)
    }

    /// Serialize to the binary format.
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = Writer { w };
        w.w.write_all(MAGIC)?;
        w.u32(VERSION)?;
        let name = self.profile_name.as_bytes();
        assert!(name.len() < 256);
        w.u8(name.len() as u8)?;
        w.w.write_all(name)?;
        w.u64(self.code_base)?;

        // Static program.
        w.u32(self.program.len() as u32)?;
        for i in 0..self.program.len() as u32 {
            let si = self.program.inst(i);
            w.u8(class_code(si.class))?;
            w.u8(ctrl_code(si.ctrl))?;
            w.u8(si.dest.map_or(0xFF, |d| d))?;
            w.u8(si.srcs[0].map_or(0xFF, |s| s))?;
            w.u8(si.srcs[1].map_or(0xFF, |s| s))?;
            w.u8(pool_code(si.mem_dominant))?;
            w.f32(si.taken_bias)?;
            w.u16(si.loop_period)?;
            w.u32(si.taken_target)?;
        }
        w.u32(self.program.blocks().len() as u32)?;
        for b in self.program.blocks() {
            w.u32(b.start)?;
            w.u32(b.len)?;
            w.u32(b.func)?;
        }
        w.u32(self.program.functions().len() as u32)?;
        for f in self.program.functions() {
            w.u32(f.first_block)?;
            w.u32(f.last_block)?;
        }

        // Dynamic records.
        w.u64(self.insts.len() as u64)?;
        for d in &self.insts {
            w.u32(d.static_idx)?;
            let flags = (d.taken as u8) | ((d.mem_addr.is_some() as u8) << 1);
            w.u8(flags)?;
            if let Some(a) = d.mem_addr {
                w.u64(a)?;
            }
            let next_idx = (d.next_pc - self.code_base) / INST_BYTES;
            w.u32(next_idx as u32)?;
        }
        Ok(())
    }

    /// Deserialize from the binary format.
    pub fn read_from<R: Read>(r: R) -> io::Result<RecordedTrace> {
        let mut r = Reader { r };
        let mut magic = [0u8; 4];
        r.r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a DWTR trace file"));
        }
        if r.u32()? != VERSION {
            return Err(bad("unsupported trace version"));
        }
        let name_len = r.u8()? as usize;
        let mut name = vec![0u8; name_len];
        r.r.read_exact(&mut name)?;
        let profile_name = String::from_utf8(name).map_err(|_| bad("profile name is not UTF-8"))?;
        // Replay needs the profile's pool calibration for wrong-path
        // synthesis; an unknown name would panic much later, in
        // `ThreadFront::from_recording`.
        if by_name(&profile_name).is_none() {
            return Err(bad("trace names an unknown benchmark profile"));
        }
        let code_base = r.u64()?;

        let n_static = r.u32()? as usize;
        let mut insts = Vec::with_capacity(n_static);
        for _ in 0..n_static {
            let class = class_from(r.u8()?)?;
            let ctrl = ctrl_from(r.u8()?)?;
            let dest = match r.u8()? {
                0xFF => None,
                d => Some(d),
            };
            let s0 = match r.u8()? {
                0xFF => None,
                s => Some(s),
            };
            let s1 = match r.u8()? {
                0xFF => None,
                s => Some(s),
            };
            let mem_dominant = pool_from(r.u8()?)?;
            let taken_bias = r.f32()?;
            let loop_period = r.u16()?;
            let taken_target = r.u32()?;
            insts.push(StaticInst {
                class,
                ctrl,
                dest,
                srcs: [s0, s1],
                mem_dominant,
                taken_bias,
                loop_period,
                taken_target,
            });
        }
        let n_blocks = r.u32()? as usize;
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            blocks.push(Block {
                start: r.u32()?,
                len: r.u32()?,
                func: r.u32()?,
            });
        }
        let n_funcs = r.u32()? as usize;
        let mut functions = Vec::with_capacity(n_funcs);
        for _ in 0..n_funcs {
            functions.push(Function {
                first_block: r.u32()?,
                last_block: r.u32()?,
            });
        }
        let program = StaticProgram::from_parts(insts, blocks, functions).map_err(|e| bad(&e))?;

        let n_dyn = r.u64()?;
        let mut dyn_insts = Vec::with_capacity(n_dyn as usize);
        for _ in 0..n_dyn {
            let static_idx = r.u32()?;
            if static_idx as usize >= program.len() {
                return Err(bad("dynamic record references unknown static index"));
            }
            let flags = r.u8()?;
            let taken = flags & 1 != 0;
            let mem_addr = if flags & 2 != 0 { Some(r.u64()?) } else { None };
            let next_idx = r.u32()?;
            if next_idx as usize >= program.len() {
                return Err(bad("dynamic record has out-of-range successor"));
            }
            let si = program.inst(static_idx);
            // A load record with no address would panic the pipeline's
            // cache-access stage much later; reject it here, where the
            // corruption is attributable to the file.
            if si.class == OpClass::Load && mem_addr.is_none() {
                return Err(bad("load record is missing its memory address"));
            }
            dyn_insts.push(DynInst {
                pc: code_base + static_idx as u64 * INST_BYTES,
                static_idx,
                class: si.class,
                ctrl: si.ctrl,
                dest: si.dest,
                srcs: si.srcs,
                mem_addr,
                taken,
                next_pc: code_base + next_idx as u64 * INST_BYTES,
                wrong_path: false,
            });
        }
        if dyn_insts.is_empty() {
            return Err(bad("trace has no dynamic records"));
        }
        Ok(RecordedTrace {
            profile_name,
            code_base,
            program,
            insts: dyn_insts,
        })
    }

    /// Serialize into a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        self.write_to(&mut v).expect("Vec<u8> writes cannot fail");
        v
    }

    /// Parse from a byte slice.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<RecordedTrace> {
        Self::read_from(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{gzip, mcf};

    #[test]
    fn round_trips_bit_for_bit() {
        let rec = RecordedTrace::record(&gzip(), 42, 0x1000, 5_000);
        let bytes = rec.to_bytes();
        let back = RecordedTrace::from_bytes(&bytes).unwrap();
        assert_eq!(back.profile_name, "gzip");
        assert_eq!(back.code_base, 0x1000);
        assert_eq!(back.insts, rec.insts);
        assert_eq!(back.program.len(), rec.program.len());
        for i in 0..rec.program.len() as u32 {
            assert_eq!(back.program.inst(i), rec.program.inst(i));
        }
    }

    #[test]
    fn recorded_stream_matches_live_generation() {
        let p = mcf();
        let rec = RecordedTrace::record(&p, 7, 0x4000, 2_000);
        let mut live = ThreadTrace::new(&p, 7, 0x4000, 0);
        for d in &rec.insts {
            assert_eq!(*d, live.next_inst());
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(RecordedTrace::from_bytes(b"not a trace").is_err());
        // Right magic, wrong version.
        let mut v = MAGIC.to_vec();
        v.extend(99u32.to_le_bytes());
        assert!(RecordedTrace::from_bytes(&v).is_err());
    }

    #[test]
    fn rejects_truncated_files() {
        let rec = RecordedTrace::record(&gzip(), 1, 0, 100);
        let bytes = rec.to_bytes();
        for cut in [10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                RecordedTrace::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_load_records_without_an_address() {
        // A flags-byte corruption can clear the has-address bit of a load
        // record; the file must be rejected at parse time, not allowed to
        // panic the pipeline's cache-access stage later.
        let mut rec = RecordedTrace::record(&mcf(), 5, 0x2000, 2_000);
        let victim = rec
            .insts
            .iter_mut()
            .find(|d| d.class == OpClass::Load)
            .expect("mcf traces contain loads");
        victim.mem_addr = None;
        let err = RecordedTrace::from_bytes(&rec.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing its memory address"));
    }

    #[test]
    fn profile_lookup_round_trips() {
        let rec = RecordedTrace::record(&gzip(), 1, 0, 10);
        assert_eq!(rec.profile().unwrap().name, "gzip");
    }

    #[test]
    fn compact_encoding() {
        // Sanity: the dynamic record overhead stays near the design size
        // (9–17 bytes per instruction).
        let rec = RecordedTrace::record(&gzip(), 3, 0, 10_000);
        let bytes = rec.to_bytes();
        let per_inst = bytes.len() as f64 / 10_000.0;
        assert!(
            per_inst < 20.0,
            "dynamic encoding too fat: {per_inst} bytes/inst"
        );
    }
}
