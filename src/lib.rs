//! Workspace umbrella crate: re-exports the full public API surface.
pub use dwarn_core as core;
pub use smt_experiments as experiments;
pub use smt_metrics as metrics;
pub use smt_obs as obs;
pub use smt_pipeline as pipeline;
pub use smt_trace as trace;
pub use smt_uarch as uarch;
pub use smt_workloads as workloads;
