//! The allowlist: the only sanctioned way to keep a diagnostic.
//!
//! Format (`lint.allow` at the repository root), one entry per line:
//!
//! ```text
//! # comment
//! SMT002 crates/pipeline/src/sim.rs  watchdog wall-clock check, sampled off the hot path
//! ```
//!
//! `CODE  repo/relative/path.rs  justification…` — whitespace-separated,
//! justification mandatory (an entry without one is a parse error: the
//! point of the file is that every suppression explains itself). An entry
//! suppresses every diagnostic of that code in that file; an entry that
//! suppresses *nothing* is itself reported as [`RuleCode::Smt005`] so the
//! list can only shrink as violations are fixed.
//!
//! Cross-file rules (SMT008+) report *item-granular* findings, and their
//! entries name the item after a `#`:
//!
//! ```text
//! SMT008 crates/pipeline/src/sim.rs#Simulator::waiter_pool  free-pool scratch, rebuilt on demand
//! ```
//!
//! An item entry suppresses only that item's finding; a plain path entry
//! still suppresses every finding of its code in the file.

use crate::rules::{Diagnostic, RuleCode};

#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub code: RuleCode,
    pub path: String,
    /// Item granularity (`Type::field` after a `#` in the entry), if any.
    pub item: Option<String>,
    pub reason: String,
    /// 1-based line in the allowlist file (for SMT005 reports).
    pub line: usize,
}

impl AllowEntry {
    /// The `path` or `path#item` spelling, as written in the file.
    pub fn target(&self) -> String {
        match &self.item {
            Some(it) => format!("{}#{}", self.path, it),
            None => self.path.clone(),
        }
    }

    fn matches(&self, d: &Diagnostic) -> bool {
        self.code == d.code
            && self.path == d.path
            && match &self.item {
                Some(it) => d.item.as_deref() == Some(it.as_str()),
                None => true,
            }
    }
}

/// Parse the allowlist text. Returns every malformed line as an error
/// string; a half-parsed allowlist must never half-suppress.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, Vec<String>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let code = parts.next().unwrap_or("");
        let target = parts.next().unwrap_or("").trim();
        let reason = parts.next().unwrap_or("").trim();
        let (path, item) = match target.split_once('#') {
            Some((p, it)) if !it.is_empty() => (p, Some(it.to_string())),
            _ => (target, None),
        };
        let Some(code) = RuleCode::parse(code) else {
            errors.push(format!("allowlist line {}: unknown code {code:?}", idx + 1));
            continue;
        };
        if code == RuleCode::Smt005 {
            errors.push(format!(
                "allowlist line {}: SMT005 (stale entry) cannot itself be allowlisted",
                idx + 1
            ));
            continue;
        }
        if path.is_empty() {
            errors.push(format!("allowlist line {}: missing path", idx + 1));
            continue;
        }
        if reason.is_empty() {
            errors.push(format!(
                "allowlist line {}: entry for {} {} has no justification",
                idx + 1,
                code,
                target
            ));
            continue;
        }
        entries.push(AllowEntry {
            code,
            path: path.to_string(),
            item,
            reason: reason.to_string(),
            line: idx + 1,
        });
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// The outcome of a lint run after the allowlist is applied.
#[derive(Debug, Default)]
pub struct Report {
    /// Diagnostics not covered by any allowlist entry — these fail CI.
    /// Includes one `SMT005` per stale allowlist entry.
    pub active: Vec<Diagnostic>,
    /// Diagnostics an allowlist entry absorbed (shown with `--verbose`).
    pub suppressed: Vec<Diagnostic>,
    /// Files scanned.
    pub files: usize,
    /// Files served from the incremental cache (0 on cold/uncached runs).
    pub cache_hits: usize,
    /// Files freshly analyzed this run.
    pub cache_misses: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.active.is_empty()
    }
}

/// Split raw diagnostics into active and suppressed, and convert stale
/// allowlist entries into active `SMT005` diagnostics.
pub fn apply(diags: Vec<Diagnostic>, allow: &[AllowEntry], allow_path: &str) -> Report {
    let mut used = vec![false; allow.len()];
    let mut report = Report::default();
    for d in diags {
        // Prefer the most specific entry (item-granular before whole-file)
        // so a stale item entry cannot hide behind a broad one.
        let hit = allow
            .iter()
            .position(|a| a.item.is_some() && a.matches(&d))
            .or_else(|| allow.iter().position(|a| a.item.is_none() && a.matches(&d)));
        match hit {
            Some(i) => {
                used[i] = true;
                report.suppressed.push(d);
            }
            None => report.active.push(d),
        }
    }
    for (a, used) in allow.iter().zip(used) {
        if !used {
            report.active.push(Diagnostic {
                code: RuleCode::Smt005,
                path: allow_path.to_string(),
                line: a.line,
                snippet: format!("{} {}  {}", a.code, a.target(), a.reason),
                message: format!(
                    "stale allowlist entry: no {} diagnostic in {} — delete it",
                    a.code,
                    a.target()
                ),
                item: None,
            });
        }
    }
    report
        .active
        .sort_by(|a, b| (a.path.as_str(), a.line, a.code).cmp(&(b.path.as_str(), b.line, b.code)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: RuleCode, path: &str) -> Diagnostic {
        Diagnostic {
            code,
            path: path.to_string(),
            line: 1,
            snippet: String::new(),
            message: String::new(),
            item: None,
        }
    }

    fn item_diag(code: RuleCode, path: &str, item: &str) -> Diagnostic {
        Diagnostic {
            item: Some(item.to_string()),
            ..diag(code, path)
        }
    }

    #[test]
    fn parses_entries_and_skips_comments() {
        let text = "# header\n\nSMT002 crates/pipeline/src/sim.rs  the watchdog's wall clock\n";
        let entries = parse_allowlist(text).expect("valid");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].code, RuleCode::Smt002);
        assert_eq!(entries[0].path, "crates/pipeline/src/sim.rs");
        assert!(entries[0].reason.contains("watchdog"));
    }

    #[test]
    fn justification_is_mandatory() {
        let errs = parse_allowlist("SMT001 crates/uarch/src/fasthash.rs\n").unwrap_err();
        assert!(errs[0].contains("no justification"), "{errs:?}");
    }

    #[test]
    fn unknown_codes_and_selfreferential_smt005_are_rejected() {
        assert!(parse_allowlist("SMT999 x.rs why\n").is_err());
        assert!(parse_allowlist("SMT005 lint.allow why\n").is_err());
    }

    #[test]
    fn matching_entries_suppress_and_stale_entries_fire_smt005() {
        let entries = parse_allowlist(
            "SMT001 crates/uarch/src/fasthash.rs  the FastMap definition site\n\
             SMT002 crates/nowhere/src/gone.rs  a file that no longer trips\n",
        )
        .expect("valid");
        let diags = vec![
            diag(RuleCode::Smt001, "crates/uarch/src/fasthash.rs"),
            diag(RuleCode::Smt001, "crates/pipeline/src/sim.rs"),
        ];
        let r = apply(diags, &entries, "lint.allow");
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.active.len(), 2);
        assert!(r.active.iter().any(|d| d.code == RuleCode::Smt005));
        assert!(r
            .active
            .iter()
            .any(|d| d.code == RuleCode::Smt001 && d.path.ends_with("sim.rs")));
    }

    #[test]
    fn item_entries_parse_and_match_only_their_item() {
        let entries = parse_allowlist(
            "SMT008 crates/pipeline/src/sim.rs#Simulator::waiter_pool  scratch pool rebuilt on demand\n",
        )
        .expect("valid");
        assert_eq!(entries[0].path, "crates/pipeline/src/sim.rs");
        assert_eq!(entries[0].item.as_deref(), Some("Simulator::waiter_pool"));
        let diags = vec![
            item_diag(
                RuleCode::Smt008,
                "crates/pipeline/src/sim.rs",
                "Simulator::waiter_pool",
            ),
            item_diag(
                RuleCode::Smt008,
                "crates/pipeline/src/sim.rs",
                "Simulator::sanitizer",
            ),
        ];
        let r = apply(diags, &entries, "lint.allow");
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(
            r.suppressed[0].item.as_deref(),
            Some("Simulator::waiter_pool")
        );
        assert!(r
            .active
            .iter()
            .any(|d| d.item.as_deref() == Some("Simulator::sanitizer")));
        assert!(
            !r.active.iter().any(|d| d.code == RuleCode::Smt005),
            "the item entry was used, so it is not stale"
        );
    }

    #[test]
    fn plain_path_entry_still_covers_item_diagnostics() {
        let entries = parse_allowlist(
            "SMT008 crates/pipeline/src/sim.rs  whole-file waiver for a migration window\n",
        )
        .expect("valid");
        let diags = vec![item_diag(
            RuleCode::Smt008,
            "crates/pipeline/src/sim.rs",
            "Simulator::waiter_pool",
        )];
        let r = apply(diags, &entries, "lint.allow");
        assert_eq!(r.suppressed.len(), 1);
        assert!(r.active.is_empty());
    }
}
