//! Cross-crate integration tests: the paper's headline claims, checked
//! end-to-end on miniature simulation windows.
//!
//! Full-length windows live in `smt-experiments`; these tests use smaller
//! ones so `cargo test` stays quick, and assert the *orderings* that are
//! robust at that scale.

use dwarn_smt::core::PolicyKind;
use dwarn_smt::metrics;
use dwarn_smt::pipeline::{SimConfig, Simulator, ThreadSpec};
use dwarn_smt::workloads::{workload, WorkloadClass};

fn run(kind: PolicyKind, threads: usize, class: WorkloadClass) -> dwarn_smt::pipeline::SimResult {
    let wl = workload(threads, class);
    let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), &wl.thread_specs());
    sim.run(10_000, 25_000)
}

#[test]
fn dwarn_beats_icount_on_mem_workloads() {
    // The headline: ICOUNT tolerates L2 misses and clogs; DWarn does not.
    for threads in [6usize, 8] {
        let ic = run(PolicyKind::Icount, threads, WorkloadClass::Mem).throughput();
        let dw = run(PolicyKind::DWarn, threads, WorkloadClass::Mem).throughput();
        assert!(
            dw > ic * 1.1,
            "{threads}-MEM: DWarn {dw} should clearly beat ICOUNT {ic}"
        );
    }
}

#[test]
fn dwarn_matches_icount_on_ilp_workloads() {
    // With no L1 misses to react to, DWarn degenerates to ICOUNT.
    for threads in [4usize, 8] {
        let ic = run(PolicyKind::Icount, threads, WorkloadClass::Ilp).throughput();
        let dw = run(PolicyKind::DWarn, threads, WorkloadClass::Ilp).throughput();
        let ratio = dw / ic;
        assert!(
            (0.9..1.1).contains(&ratio),
            "{threads}-ILP: DWarn/ICOUNT ratio {ratio}"
        );
    }
}

#[test]
fn dwarn_beats_dg_and_pdg_on_mix_fairness() {
    // The under-use argument: gating on every L1 miss sacrifices MEM
    // threads; DWarn's priority reduction keeps them alive. Visible in the
    // MEM threads' relative progress on a MIX workload.
    let wl = workload(4, WorkloadClass::Mix); // gzip, twolf, bzip2, mcf
    let mcf_ipc = |kind: PolicyKind| {
        let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), &wl.thread_specs());
        sim.run(10_000, 25_000).ipcs()[3]
    };
    let dw = mcf_ipc(PolicyKind::DWarn);
    let dg = mcf_ipc(PolicyKind::Dg);
    let pdg = mcf_ipc(PolicyKind::Pdg);
    assert!(
        dw > dg && dw > pdg,
        "mcf under DWarn {dw} must outrun DG {dg} and PDG {pdg}"
    );
}

#[test]
fn flush_pays_for_mem_throughput_with_refetches() {
    // Figure 2's trade: on MEM workloads FLUSH is competitive-or-better on
    // raw throughput, but squashes a large share of fetched instructions.
    let fl = run(PolicyKind::Flush, 8, WorkloadClass::Mem);
    let dw = run(PolicyKind::DWarn, 8, WorkloadClass::Mem);
    assert!(
        fl.flushed_fraction() > 0.10,
        "FLUSH refetch overhead on 8-MEM should exceed 10%, got {}",
        fl.flushed_fraction()
    );
    assert!(
        dw.flushed_fraction() == 0.0,
        "DWarn never squashes via the flush path"
    );
}

#[test]
fn relative_ipcs_and_hmean_are_well_formed() {
    let wl = workload(2, WorkloadClass::Mix);
    let solo: Vec<f64> = wl
        .benchmarks
        .iter()
        .map(|b| {
            let spec = ThreadSpec {
                profile: dwarn_smt::trace::by_name(b).unwrap(),
                seed: dwarn_smt::workloads::TRACE_SEED,
                skip: 0,
            };
            let mut sim = Simulator::new(
                SimConfig::baseline(),
                PolicyKind::Icount.build(),
                std::slice::from_ref(&spec),
            );
            sim.run(10_000, 25_000).ipcs()[0]
        })
        .collect();
    for kind in PolicyKind::paper_set() {
        let r = run(kind, 2, WorkloadClass::Mix);
        let rel = metrics::relative_ipcs(&r.ipcs(), &solo);
        for &v in &rel {
            assert!(
                v > 0.0 && v < 1.6,
                "{}: relative IPC {v} implausible",
                kind.name()
            );
        }
        let h = metrics::hmean(&rel);
        assert!(h > 0.0 && h <= metrics::weighted_speedup(&rel) + 1e-12);
    }
}

#[test]
fn table_2a_classification_survives_the_full_stack() {
    // Running each benchmark solo through the full simulator reproduces the
    // MEM/ILP split of Table 2a.
    for p in dwarn_smt::trace::all_benchmarks() {
        let spec = ThreadSpec {
            profile: p.clone(),
            seed: 1,
            skip: 0,
        };
        let mut sim = Simulator::new(
            SimConfig::baseline(),
            PolicyKind::Icount.build(),
            std::slice::from_ref(&spec),
        );
        let r = sim.run(10_000, 30_000);
        let l2 = r.mem[0].l2_miss_rate();
        match p.class {
            dwarn_smt::trace::ThreadClass::Mem => {
                assert!(l2 > 0.006, "{}: MEM benchmark with L2 rate {l2}", p.name)
            }
            dwarn_smt::trace::ThreadClass::Ilp => {
                assert!(l2 < 0.012, "{}: ILP benchmark with L2 rate {l2}", p.name)
            }
        }
    }
}

#[test]
fn all_policies_run_all_table_2b_workloads() {
    // Smoke over the full grid at tiny windows: nothing panics, everyone
    // makes progress.
    for wl in dwarn_smt::workloads::all_workloads() {
        for kind in PolicyKind::paper_set() {
            let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), &wl.thread_specs());
            let r = sim.run(2_000, 5_000);
            assert!(
                r.throughput() > 0.1,
                "{} on {}: throughput {}",
                kind.name(),
                wl.name,
                r.throughput()
            );
        }
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let wl = workload(4, WorkloadClass::Mem);
    let mut a = Simulator::new(
        SimConfig::baseline(),
        PolicyKind::Flush.build(),
        &wl.thread_specs(),
    );
    let mut b = Simulator::new(
        SimConfig::baseline(),
        PolicyKind::Flush.build(),
        &wl.thread_specs(),
    );
    let ra = a.run(5_000, 10_000);
    let rb = b.run(5_000, 10_000);
    assert_eq!(ra.threads, rb.threads);
    assert_eq!(ra.mem, rb.mem);
}
