//! Structured JSON run artifacts (`--stats-json <dir>`).
//!
//! Every simulation the CLI performs — campaign runs, solo baselines, and
//! the ad-hoc ablation sweeps — is recorded here while the flag is active,
//! then written out as one JSON document per run when the process finishes.
//! Harmonic means of relative IPCs are computed at flush time from whatever
//! `solo:<bench>` baselines the same invocation happened to run, so the
//! artifacts of e.g. `table4 --stats-json out/` are self-contained.
//!
//! The sink is a process-wide mutex because [`crate::runner::Campaign`]
//! simulates uncached keys from a worker-thread pool; `record` is a no-op
//! (one uncontended lock) until [`enable`] is called.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use smt_obs::Json;
use smt_pipeline::{SimResult, ThreadStats};

use crate::runner::RunKey;

/// One recorded simulation.
struct RunRecord {
    /// Which experiment produced the run (e.g. `"campaign"`,
    /// `"ablation:dg-threshold"`).
    tag: String,
    arch: String,
    /// Workload name (`"4-MIX"`) or solo baseline (`"solo:mcf"`).
    workload: String,
    policy: String,
    result: SimResult,
    /// `(skipped_cycles, total_cycles)` when the run executed in this
    /// process; `None` for cache-served results (the quiescence engine's
    /// skip count is observation-only and deliberately kept out of the
    /// persisted [`SimResult`]).
    skip: Option<(u64, u64)>,
    /// Fetch-policy switch count when the run executed in this process
    /// (zero for static policies, `None` for cache-served results — like
    /// `skip`, the switch log is observational and not persisted).
    switches: Option<u64>,
    /// `(fragments, fragment_cycles)` when the run executed through the
    /// time-axis fragment-replay engine; `None` for sequential and
    /// cache-served runs. Observational, like `skip`: fragmented results
    /// are proven bit-identical, so nothing else in the record changes.
    fragments: Option<(u64, u64)>,
}

/// One recorded run failure (watchdog trip, isolated panic, cache fault).
struct FailureRecord {
    what: String,
    kind: &'static str,
    detail: String,
}

struct Sink {
    dir: PathBuf,
    records: Vec<RunRecord>,
    failures: Vec<FailureRecord>,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Start collecting run artifacts, to be written under `dir` by [`flush`].
pub fn enable(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    *crate::lock_unpoisoned(&SINK) = Some(Sink {
        dir: dir.to_path_buf(),
        records: Vec::new(),
        failures: Vec::new(),
    });
    Ok(())
}

/// Whether [`enable`] has been called (and [`flush`] has not yet run).
pub fn enabled() -> bool {
    crate::lock_unpoisoned(&SINK).is_some()
}

/// Record a campaign run. No-op unless [`enable`]d.
pub fn record(key: &RunKey, result: &SimResult) {
    record_with_runtime(key, result, None, None, None);
}

/// As [`record`], with the run's in-process execution accounting:
/// quiescence-skip cycles (`skip = (skipped_cycles, total_cycles)`), the
/// fetch-policy switch count (non-zero only for the switching
/// meta-policies), and the fragment-replay shape
/// (`fragments = (fragments, fragment_cycles)`, `None` for sequential
/// runs). All are `None` for cache-served results.
pub fn record_with_runtime(
    key: &RunKey,
    result: &SimResult,
    skip: Option<(u64, u64)>,
    switches: Option<u64>,
    fragments: Option<(u64, u64)>,
) {
    let mut sink = crate::lock_unpoisoned(&SINK);
    if let Some(sink) = sink.as_mut() {
        sink.records.push(RunRecord {
            tag: "campaign".to_string(),
            arch: key.arch.as_str().to_string(),
            workload: key.workload.clone(),
            policy: key.policy.name().to_string(),
            result: result.clone(),
            skip,
            switches,
            fragments,
        });
    }
}

/// Record an arbitrary run (the ablation sweeps build their own
/// simulators outside the campaign cache). No-op unless [`enable`]d.
pub fn record_tagged(tag: &str, arch: &str, workload: &str, policy: &str, result: &SimResult) {
    record_tagged_with_switches(tag, arch, workload, policy, result, None);
}

/// As [`record_tagged`], carrying the run's live policy-switch count. A
/// tagged run is always an in-process execution, so callers that have the
/// count (the `meta` study, the `trace` subcommand) pass `Some` — zero
/// for a static policy is a real measurement, not a missing one.
pub fn record_tagged_with_switches(
    tag: &str,
    arch: &str,
    workload: &str,
    policy: &str,
    result: &SimResult,
    switches: Option<u64>,
) {
    let mut sink = crate::lock_unpoisoned(&SINK);
    if let Some(sink) = sink.as_mut() {
        sink.records.push(RunRecord {
            tag: tag.to_string(),
            arch: arch.to_string(),
            workload: workload.to_string(),
            policy: policy.to_string(),
            result: result.clone(),
            skip: None,
            switches,
            fragments: None,
        });
    }
}

/// Record a failed run as a typed artifact. No-op unless [`enable`]d (the
/// campaign additionally keeps its own in-memory failure list either way).
pub fn record_failure(what: &str, error: &crate::error::ExpError) {
    let mut sink = crate::lock_unpoisoned(&SINK);
    if let Some(sink) = sink.as_mut() {
        sink.failures.push(FailureRecord {
            what: what.to_string(),
            kind: error.kind(),
            detail: error.to_string(),
        });
    }
}

/// Write one JSON file per recorded run (plus `failures.json` when any run
/// failed) and disable the sink. Returns the number of files written and
/// the directory, or `None` when not enabled.
pub fn flush() -> std::io::Result<Option<(usize, PathBuf)>> {
    let Some(sink) = crate::lock_unpoisoned(&SINK).take() else {
        return Ok(None);
    };
    let solos = solo_ipcs(&sink.records);
    let mut written = 0;
    for (i, rec) in sink.records.iter().enumerate() {
        let path = sink.dir.join(format!(
            "{i:03}-{}.json",
            sanitize(&format!("{}-{}-{}", rec.arch, rec.workload, rec.policy))
        ));
        std::fs::write(&path, run_json(rec, &solos).render_pretty())?;
        written += 1;
    }
    if !sink.failures.is_empty() {
        let items: Vec<Json> = sink
            .failures
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("run", Json::str(f.what.clone())),
                    ("kind", Json::str(f.kind.to_string())),
                    ("error", Json::str(f.detail.clone())),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("schema", Json::str("smt-failures-v1")),
            ("schema_version", Json::U64(1)),
            ("failures", Json::Arr(items)),
        ]);
        std::fs::write(sink.dir.join("failures.json"), doc.render_pretty())?;
        written += 1;
    }
    Ok(Some((written, sink.dir)))
}

/// The stats document for one run, outside the sink — the `trace`
/// subcommand writes this next to its Chrome trace. Relative IPCs and the
/// Hmean are null (no solo baselines in a single-run export).
pub fn stats_json(tag: &str, arch: &str, workload: &str, policy: &str, result: &SimResult) -> Json {
    run_json(
        &RunRecord {
            tag: tag.to_string(),
            arch: arch.to_string(),
            workload: workload.to_string(),
            policy: policy.to_string(),
            result: result.clone(),
            skip: None,
            switches: None,
            fragments: None,
        },
        &[],
    )
}

/// Single-threaded ICOUNT IPCs per (arch, benchmark), from the recorded
/// `solo:` baselines — the relative-IPC denominators.
fn solo_ipcs(records: &[RunRecord]) -> Vec<(String, String, f64)> {
    records
        .iter()
        .filter_map(|r| {
            let bench = r.workload.strip_prefix("solo:")?;
            Some((r.arch.clone(), bench.to_string(), r.result.ipcs()[0]))
        })
        .collect()
}

/// The benchmark running on each hardware context, when derivable from the
/// workload name.
fn benchmarks_of(workload: &str) -> Option<Vec<String>> {
    if let Some(bench) = workload.strip_prefix("solo:") {
        return Some(vec![bench.to_string()]);
    }
    let (n, c) = workload.split_once('-')?;
    let threads: usize = n.parse().ok()?;
    let class = match c {
        "ILP" => smt_workloads::WorkloadClass::Ilp,
        "MIX" => smt_workloads::WorkloadClass::Mix,
        "MEM" => smt_workloads::WorkloadClass::Mem,
        _ => return None,
    };
    Some(
        smt_workloads::try_workload(threads, class)?
            .benchmarks
            .iter()
            .map(|b| b.to_string())
            .collect(),
    )
}

pub(crate) fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

fn thread_json(
    index: usize,
    bench: Option<&str>,
    s: &ThreadStats,
    rel: Option<f64>,
    r: &SimResult,
) -> Json {
    let mut pairs = vec![
        ("index", Json::U64(index as u64)),
        (
            "benchmark",
            bench.map_or(Json::Null, |b| Json::str(b.to_string())),
        ),
        ("ipc", Json::F64(s.ipc(r.cycles))),
        ("relative_ipc", rel.map_or(Json::Null, Json::F64)),
        ("fetched", Json::U64(s.fetched)),
        ("wrong_path_fetched", Json::U64(s.wrong_path_fetched)),
        ("committed", Json::U64(s.committed)),
        ("squashed_mispredict", Json::U64(s.squashed_mispredict)),
        ("squashed_flush", Json::U64(s.squashed_flush)),
        ("gated_cycles", Json::U64(s.gated_cycles)),
        ("blocked_cycles", Json::U64(s.blocked_cycles)),
        ("dispatch_stalls", Json::U64(s.dispatch_stalls)),
        ("branches", Json::U64(s.branches)),
        ("branch_mispredicts", Json::U64(s.branch_mispredicts)),
    ];
    if let Some(m) = r.mem.get(index) {
        pairs.push((
            "mem",
            Json::obj(vec![
                ("loads", Json::U64(m.loads)),
                ("l1_misses", Json::U64(m.l1_misses)),
                ("l2_misses", Json::U64(m.l2_misses)),
                ("tlb_misses", Json::U64(m.tlb_misses)),
                ("l1_miss_rate", Json::F64(m.l1_miss_rate())),
                ("l2_miss_rate", Json::F64(m.l2_miss_rate())),
            ]),
        ));
    }
    Json::obj(pairs)
}

/// The stats document for one run: identity, headline metrics, and the full
/// per-thread breakdown (IPC, gating/stall cycles, wrong-path fetches,
/// memory behaviour).
fn run_json(rec: &RunRecord, solos: &[(String, String, f64)]) -> Json {
    let r = &rec.result;
    let benches = benchmarks_of(&rec.workload);
    // Per-thread relative IPCs where this invocation also ran the solo
    // baseline; Hmean only when every thread has one.
    let rels: Vec<Option<f64>> = (0..r.threads.len())
        .map(|t| {
            let b = benches.as_ref()?.get(t)?;
            let solo = solos.iter().find(|(a, s, _)| *a == rec.arch && s == b)?.2;
            Some(r.threads[t].ipc(r.cycles) / solo)
        })
        .collect();
    let hmean = if rec.workload.starts_with("solo:") {
        None
    } else if rels.iter().all(|r| r.is_some()) && !rels.is_empty() {
        Some(smt_metrics::hmean(
            &rels.iter().copied().flatten().collect::<Vec<_>>(),
        ))
    } else {
        None
    };

    let threads: Vec<Json> = r
        .threads
        .iter()
        .enumerate()
        .map(|(t, s)| {
            let bench = benches.as_ref().and_then(|b| b.get(t)).map(String::as_str);
            thread_json(t, bench, s, rels[t], r)
        })
        .collect();

    let sum = |f: fn(&ThreadStats) -> u64| -> u64 { r.threads.iter().map(f).sum() };
    Json::obj(vec![
        ("schema", Json::str("smt-stats-v3")),
        ("schema_version", Json::U64(3)),
        ("experiment", Json::str(rec.tag.clone())),
        ("arch", Json::str(rec.arch.clone())),
        ("workload", Json::str(rec.workload.clone())),
        ("policy", Json::str(rec.policy.clone())),
        ("cycles", Json::U64(r.cycles)),
        // Fraction of simulated cycles the quiescence engine bulk-advanced.
        // Null for cache-served results: skip accounting is observational
        // (results are bit-identical either way) and not persisted.
        (
            "skip_ratio",
            rec.skip.map_or(Json::Null, |(skipped, total)| {
                Json::F64(if total == 0 {
                    0.0
                } else {
                    skipped as f64 / total as f64
                })
            }),
        ),
        // Fetch-policy switches the run's policy performed (zero for the
        // static policies). Null for cache-served results, like skip_ratio.
        (
            "policy_switches",
            rec.switches.map_or(Json::Null, Json::U64),
        ),
        // Fragment-replay shape (v3): how many time-axis fragments the
        // run was split into and the fragment length in cycles. Null for
        // sequential and cache-served runs; fragmented results are proven
        // digest-identical, so these are purely execution metadata.
        (
            "fragments",
            rec.fragments.map_or(Json::Null, |(n, _)| Json::U64(n)),
        ),
        (
            "fragment_cycles",
            rec.fragments.map_or(Json::Null, |(_, c)| Json::U64(c)),
        ),
        ("throughput_ipc", Json::F64(r.throughput())),
        ("hmean_relative_ipc", hmean.map_or(Json::Null, Json::F64)),
        (
            "branch_mispredict_rate",
            Json::F64(r.branch_mispredict_rate),
        ),
        (
            "totals",
            Json::obj(vec![
                ("fetched", Json::U64(r.total_fetched())),
                (
                    "wrong_path_fetched",
                    Json::U64(r.total_wrong_path_fetched()),
                ),
                ("wrong_path_fraction", Json::F64(r.wrong_path_fraction())),
                ("committed", Json::U64(sum(|t| t.committed))),
                ("flush_squashed", Json::U64(r.total_flush_squashed())),
                ("flushed_fraction", Json::F64(r.flushed_fraction())),
                ("gated_cycles", Json::U64(sum(|t| t.gated_cycles))),
                ("blocked_cycles", Json::U64(sum(|t| t.blocked_cycles))),
                ("dispatch_stalls", Json::U64(sum(|t| t.dispatch_stalls))),
            ]),
        ),
        ("threads", Json::Arr(threads)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_result(ipcs: &[f64]) -> SimResult {
        SimResult {
            cycles: 1_000,
            threads: ipcs
                .iter()
                .map(|&i| ThreadStats {
                    committed: (i * 1_000.0) as u64,
                    fetched: (i * 1_500.0) as u64,
                    wrong_path_fetched: 10,
                    ..Default::default()
                })
                .collect(),
            mem: vec![],
            branch_mispredict_rate: 0.05,
        }
    }

    #[test]
    fn benchmarks_derive_from_workload_names() {
        assert_eq!(benchmarks_of("solo:mcf"), Some(vec!["mcf".to_string()]));
        let mix = benchmarks_of("4-MIX").unwrap();
        assert_eq!(mix.len(), 4);
        assert_eq!(benchmarks_of("weird"), None);
    }

    #[test]
    fn run_json_includes_hmean_when_solos_recorded() {
        let wl = smt_workloads::workload(2, smt_workloads::WorkloadClass::Mix);
        let rec = RunRecord {
            tag: "campaign".into(),
            arch: "baseline".into(),
            workload: wl.name.clone(),
            policy: "DWARN".into(),
            result: fake_result(&[1.0, 1.0]),
            skip: Some((250, 1_000)),
            switches: Some(3),
            fragments: Some((8, 10_000)),
        };
        let solos: Vec<(String, String, f64)> = wl
            .benchmarks
            .iter()
            .map(|b| ("baseline".to_string(), b.to_string(), 2.0))
            .collect();
        let doc = run_json(&rec, &solos).render();
        assert!(doc.contains("\"hmean_relative_ipc\":0.5"), "{doc}");
        assert!(doc.contains("\"wrong_path_fetched\":20"), "{doc}");
        assert!(doc.contains("\"schema\":\"smt-stats-v3\""), "{doc}");
        assert!(doc.contains("\"schema_version\":3"), "{doc}");
        assert!(doc.contains("\"skip_ratio\":0.25"), "{doc}");
        assert!(doc.contains("\"policy_switches\":3"), "{doc}");
        assert!(doc.contains("\"fragments\":8"), "{doc}");
        assert!(doc.contains("\"fragment_cycles\":10000"), "{doc}");

        // Without solo baselines the Hmean is null, not wrong.
        let doc = run_json(&rec, &[]).render();
        assert!(doc.contains("\"hmean_relative_ipc\":null"), "{doc}");
    }

    #[test]
    fn skip_ratio_is_null_for_cache_served_runs() {
        let doc = stats_json(
            "trace",
            "baseline",
            "2-MIX",
            "ICOUNT",
            &fake_result(&[1.0, 1.0]),
        )
        .render();
        assert!(doc.contains("\"skip_ratio\":null"), "{doc}");
        assert!(doc.contains("\"fragments\":null"), "{doc}");
        assert!(doc.contains("\"fragment_cycles\":null"), "{doc}");
    }

    #[test]
    fn filenames_are_sanitized() {
        assert_eq!(
            sanitize("baseline-solo:mcf-ICOUNT"),
            "baseline-solo-mcf-icount"
        );
    }
}
