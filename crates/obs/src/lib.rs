//! # smt-obs — observability for the DWarn SMT simulator
//!
//! The paper's argument is about *where* shared resources go: issue-queue
//! entries and physical registers clogged by threads with outstanding data
//! cache misses. End-of-run aggregates cannot show that; this crate provides
//! cycle-resolved visibility with zero cost when disabled:
//!
//! * [`Probe`] — a trait of pipeline hook points (fetch, dispatch, issue,
//!   commit, squash, gate/ungate, L1-miss begin/end, L2-miss declare,
//!   occupancy samples). Every method has an empty default body and the
//!   simulator is generic over `P: Probe`, so the disabled case
//!   ([`NullProbe`]) monomorphizes to nothing — no virtual calls, no
//!   branches, no allocations.
//! * [`Registry`] / [`Histogram`] — named counters and log2-bucketed
//!   latency histograms.
//! * [`EventRing`] — bounded ring buffer of [`TraceEvent`]s (oldest events
//!   are dropped first, with a drop count kept).
//! * [`RecordingProbe`] — the batteries-included [`Probe`]: per-thread
//!   counters, miss-latency and gate-duration histograms, the event ring,
//!   and per-thread occupancy time-series.
//! * [`IntervalProbe`] — fixed-window interval sampler: per-interval,
//!   per-thread time-series (IPC, gate breakdown, miss counts, occupancy
//!   integrals) with closed-form accounting across quiescence-skipped
//!   spans, so skipped and `--no-skip` runs produce bit-identical series.
//! * [`chrome`] — export captured events as Chrome trace-event JSON,
//!   loadable in Perfetto / `chrome://tracing`.
//! * [`json`] — a small dependency-free JSON document builder (and parser)
//!   used by the exporters and by `smt-experiments`' `--stats-json` run
//!   artifacts and `report` subcommand.

pub mod chrome;
pub mod interval;
pub mod json;
pub mod probe;
pub mod record;
pub mod registry;
pub mod ring;

pub use chrome::chrome_trace;
pub use interval::{Interval, IntervalConfig, IntervalProbe, IntervalSeries, ThreadWindow};
pub use json::Json;
pub use probe::{CycleState, GateReason, NullProbe, OccupancySample, Probe, SquashKind};
pub use record::RecordingProbe;
pub use registry::{Histogram, Registry};
pub use ring::{EventKind, EventRing, TraceEvent};
