//! The fetch-policy interface.
//!
//! An I-fetch policy decides, every cycle, which threads may fetch and in
//! what priority order. It observes the per-thread state the paper's
//! policies use — ICOUNT occupancy, outstanding L1 data-cache misses,
//! declared L2 misses — through [`PolicyView`], and tracks load lifecycles
//! through [`PolicyEvent`]s. The policy *implementations* (ICOUNT, STALL,
//! FLUSH, DG, PDG, DWarn) live in the `dwarn-core` crate; the trait lives
//! here, next to its call site in the fetch stage.

/// Per-thread state visible to a fetch policy at the start of a cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadView {
    /// Instructions in pre-issue stages (fetch queue + rename + issue
    /// queues): the ICOUNT priority key.
    pub icount: u32,
    /// Outstanding L1 data-cache misses (the paper's per-context data miss
    /// counter: incremented on each data-cache miss, decremented on fill).
    pub dmiss_count: u32,
    /// Outstanding loads *declared* to miss in L2 (spent longer in the
    /// hierarchy than the declare threshold, minus the early-resolve
    /// notice).
    pub declared_l2: u32,
    /// True while the thread cannot fetch anyway (I-cache miss pending or
    /// fetch queue full). Informational: the fetch engine skips such
    /// threads regardless of policy order.
    pub fetch_blocked: bool,
}

/// Snapshot handed to the policy each cycle.
#[derive(Debug, Clone)]
pub struct PolicyView<'a> {
    pub cycle: u64,
    pub threads: &'a [ThreadView],
}

impl PolicyView<'_> {
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Thread indices sorted by ascending ICOUNT (the ICOUNT fetch order).
    pub fn icount_order(&self) -> Vec<usize> {
        let mut order = Vec::new();
        self.icount_order_into(&mut order);
        order
    }

    /// As [`PolicyView::icount_order`], filling `out` in place (cleared
    /// first) so the per-cycle fetch path reuses one buffer instead of
    /// allocating. Hand-rolled insertion sort: the list is at most the
    /// hardware context count (≤ 8), where the general sort's dispatch
    /// overhead dominates the per-cycle cost.
    pub fn icount_order_into(&self, out: &mut Vec<usize>) {
        out.clear();
        for t in 0..self.threads.len() {
            let key = self.threads[t].icount;
            let mut i = out.len();
            out.push(t);
            // Ties break by thread index; `t` is the largest index so far,
            // so a strict comparison keeps the order identical to sorting
            // by `(icount, t)`.
            while i > 0 && self.threads[out[i - 1]].icount > key {
                out[i] = out[i - 1];
                i -= 1;
            }
            out[i] = t;
        }
    }
}

/// Load-lifecycle and thread events delivered to the policy. `load_id` is a
/// unique id per dynamic load (its global sequence number), letting stateful
/// policies (PDG) track individual loads across events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyEvent {
    /// A load was fetched. PDG consults its miss predictor here.
    LoadFetched {
        thread: usize,
        pc: u64,
        load_id: u64,
    },
    /// The load's cache outcome became known (at cache access).
    LoadL1Outcome {
        thread: usize,
        pc: u64,
        load_id: u64,
        l1_miss: bool,
        /// True when the access also missed in L2 (only possible with
        /// `l1_miss`). DC-PRED trains its L2-miss predictor on this.
        l2_miss: bool,
    },
    /// The load's data returned (cache fill); outstanding-miss state clears.
    LoadFilled {
        thread: usize,
        pc: u64,
        load_id: u64,
    },
    /// The load was squashed (branch misprediction or FLUSH) after being
    /// fetched; any per-load policy state must be dropped.
    LoadSquashed {
        thread: usize,
        pc: u64,
        load_id: u64,
    },
    /// A load of this thread has been declared a (probable) L2 miss: it
    /// spent more than the declare threshold in the hierarchy.
    L2MissDeclared { thread: usize, load_id: u64 },
    /// A previously declared load is about to return (the 2-cycle advance
    /// indication).
    DeclaredLoadResolved { thread: usize, load_id: u64 },
    /// `count` instructions of this thread retired this cycle. Batched —
    /// delivered at most once per thread per cycle, with `count` covering
    /// every retirement of that thread in the cycle — and only to policies
    /// that opt in through [`FetchPolicy::wants_commit_events`]; the
    /// commit stage checks a flag cached at construction, so policies
    /// that keep the default pay one predictable branch per retirement
    /// and nothing else. Composite policies use this to integrate
    /// per-interval IPC without reading simulator statistics; batching
    /// keeps that integration at ~one virtual call per cycle instead of
    /// one per retired µop (the difference is the bulk of the meta-policy
    /// overhead `BENCH_PR7.json` gates).
    Committed { thread: usize, count: u32 },
}

/// One recorded policy transition of a switching (composite) policy: at
/// `cycle`, fetch-priority control moved from the `from` candidate to the
/// `to` candidate. Exposed through [`FetchPolicy::switch_log`] so campaign
/// code can report switch counts without the simulator tracking them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicySwitch {
    /// Cycle at which the new candidate took effect (a window boundary).
    pub cycle: u64,
    /// Name of the candidate that was active before the switch.
    pub from: &'static str,
    /// Name of the candidate that is active from `cycle` on.
    pub to: &'static str,
}

/// What the simulator should do when a load is declared an L2 miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclareAction {
    /// Nothing structural (the policy may still gate fetch).
    None,
    /// Squash the offending thread's instructions younger than the load and
    /// keep the thread fetch-stalled until the load resolves (FLUSH).
    FlushAfterLoad,
}

/// A fetch policy. Implementations are expected to be deterministic
/// functions of the view + the event history.
pub trait FetchPolicy {
    /// Short name as used in the paper's figures (e.g. "DWARN").
    fn name(&self) -> &'static str;

    /// Threads allowed to fetch this cycle, highest priority first, written
    /// into `out` (cleared first). Threads not listed are gated. The fetch
    /// engine additionally skips threads that cannot fetch (I-cache miss
    /// pending, full fetch queue).
    ///
    /// This is the method the simulator calls every cycle; `out` is a
    /// buffer owned by the simulator and reused across cycles, so a policy
    /// that fills it in place keeps the fetch stage allocation-free.
    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>);

    /// Allocating convenience wrapper around
    /// [`FetchPolicy::fetch_order_into`] (tests, diagnostics).
    fn fetch_order(&mut self, view: &PolicyView) -> Vec<usize> {
        let mut out = Vec::new();
        self.fetch_order_into(view, &mut out);
        out
    }

    /// Observe a load-lifecycle event.
    fn on_event(&mut self, _ev: &PolicyEvent) {}

    /// Sanitizer hook: verify that `order` — the fetch order this policy
    /// just produced from `view` — satisfies the policy's own documented
    /// invariants (e.g. for DWarn: Normal-group threads precede Dmiss-group
    /// threads, ICOUNT ascends within each group, and the hybrid rule gates
    /// only declared-L2-miss threads below the thread-count threshold).
    ///
    /// Called once per cycle when a sanitizer is attached, never otherwise.
    /// `order` is guaranteed in-range and duplicate-free (the simulator
    /// checks that first). Returns a description of the first inconsistency
    /// found; the simulator reports it as an `INV013` violation. The
    /// default claims nothing.
    fn audit_order(&self, _view: &PolicyView, _order: &[usize]) -> Result<(), String> {
        Ok(())
    }

    /// Structural response when an L2 miss is declared.
    fn declare_action(&self) -> DeclareAction {
        DeclareAction::None
    }

    /// Whether this policy ever returns resource caps. The dispatch stage
    /// only builds the per-cycle view and queries
    /// [`FetchPolicy::resource_caps`] when this is true, keeping the
    /// common (non-capping) policies off that per-cycle cost.
    fn uses_resource_caps(&self) -> bool {
        false
    }

    /// Per-thread resource caps for this cycle (the LIMIT-RESOURCES response
    /// action of DC-PRED): `Some(f)` restricts the thread to fraction `f` of
    /// each shared back-end pool (issue-queue entries, renameable
    /// registers) at dispatch. `None` = unrestricted. The default policy
    /// restricts nobody. Only called when
    /// [`FetchPolicy::uses_resource_caps`] returns true.
    fn resource_caps(&mut self, view: &PolicyView) -> Vec<Option<f32>> {
        vec![None; view.num_threads()]
    }

    /// Telemetry: the policy's warn level for `thread` given `view` — e.g.
    /// DWarn reports 1 while a thread sits in the demoted Dmiss priority
    /// group and 2 while the hybrid rule gates it outright. Must be a pure
    /// function of the view (no internal state, no [`PolicyView::cycle`]
    /// reads) so that levels are frozen across quiescent spans; the
    /// simulator samples it only when a probe is attached and reports
    /// *transitions* through the probe's `on_warn_change` hook. The
    /// default — policies with no warn concept — is a constant 0.
    fn warn_level(&self, _view: &PolicyView, _thread: usize) -> u8 {
        0
    }

    /// Whether the quiescence-skipping engine may fast-forward the clock
    /// while this policy is attached.
    ///
    /// Opting in asserts a contract: [`FetchPolicy::fetch_order_into`] is a
    /// *pure, idempotent* function of the [`PolicyView`] thread states —
    /// it keeps no per-cycle mutable state, does not read
    /// [`PolicyView::cycle`] (except as allowed by
    /// [`FetchPolicy::skip_horizon`], below), and calling it twice with the
    /// same view is indistinguishable from calling it once. Under that
    /// contract, cycles in which no thread can fetch, dispatch, issue, or
    /// commit produce the same fetch order every cycle, so the engine can
    /// account for the whole idle span in closed form. Policies with
    /// per-cycle internal dynamics (or resource caps, which feed dispatch
    /// every cycle) must keep the default `false`, which pins them to the
    /// naive loop.
    ///
    /// A switching policy may opt in *and* read [`PolicyView::cycle`] — but
    /// only to compare it against the boundary it publishes through
    /// [`FetchPolicy::skip_horizon`]. The engine never skips across that
    /// boundary and always executes the boundary cycle naively, so between
    /// boundaries the policy's behavior is cycle-independent and the
    /// contract holds span by span.
    fn quiescence_safe(&self) -> bool {
        false
    }

    /// The earliest future cycle this policy must observe *naively* — the
    /// quiescence engine caps every bulk advance so it never lands past the
    /// horizon, and runs the horizon cycle itself through the naive loop
    /// (where [`FetchPolicy::fetch_order_into`] is guaranteed to be
    /// called). Switching policies return their next window boundary here
    /// so that selector decisions land on exactly the same cycle whether
    /// skipping is on or off. `None` (the default, for every static
    /// policy) leaves spans unbounded.
    ///
    /// A returned horizon `<= now` pins the *current* cycle to the naive
    /// loop (the engine refuses to skip at all this cycle).
    fn skip_horizon(&self, _now: u64) -> Option<u64> {
        None
    }

    /// The name of the policy currently making fetch decisions — for a
    /// composite (switching) policy, the active candidate; for everything
    /// else, [`FetchPolicy::name`] itself (the default). The fetch stage
    /// samples this only when a probe is attached and reports *changes*
    /// through the probe's `on_policy_switch` hook.
    fn active_policy(&self) -> &'static str {
        self.name()
    }

    /// Whether this policy wants [`PolicyEvent::Committed`] notifications.
    /// The simulator caches the answer at construction; leaving the default
    /// `false` keeps the commit stage's retirement loop free of policy
    /// calls.
    fn wants_commit_events(&self) -> bool {
        false
    }

    /// The transitions a switching policy has performed so far, oldest
    /// first. Static policies never switch; the default is empty. Campaign
    /// code reads this after a run to report switch counts in stats
    /// artifacts.
    fn switch_log(&self) -> &[PolicySwitch] {
        &[]
    }

    /// Checkpoint hook: serialize the policy's *evolving* state (per-load
    /// tracking maps, predictor tables, selector estimates, interval-window
    /// phase, switch logs) into `out`. Stateless policies — anything whose
    /// fetch order is a pure function of the view — keep the default empty
    /// body. The simulator embeds these bytes in its
    /// [`MachineSnapshot`](crate::snapshot::MachineSnapshot) and hands them
    /// back through [`FetchPolicy::load_state`] on restore.
    fn save_state(&self, _out: &mut Vec<u8>) {}

    /// Checkpoint hook: restore state written by
    /// [`FetchPolicy::save_state`] into an identically-constructed policy.
    /// Implementations must reject malformed or mismatched bytes with a
    /// descriptive error (never panic) and should treat their state as
    /// unspecified after a failure. The default accepts only an empty
    /// section, so a stateful snapshot can never be silently dropped by a
    /// stateless policy.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "policy {} is stateless but the snapshot carries {} bytes of policy state",
                self.name(),
                bytes.len()
            ))
        }
    }
}

/// Boxed policies forward everything, so `Box<dyn FetchPolicy>` is itself
/// a `FetchPolicy` and the simulator can be generic over `F: FetchPolicy`
/// with the dyn path as just another instantiation.
impl<T: FetchPolicy + ?Sized> FetchPolicy for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        (**self).fetch_order_into(view, out)
    }
    fn fetch_order(&mut self, view: &PolicyView) -> Vec<usize> {
        (**self).fetch_order(view)
    }
    fn on_event(&mut self, ev: &PolicyEvent) {
        (**self).on_event(ev)
    }
    fn audit_order(&self, view: &PolicyView, order: &[usize]) -> Result<(), String> {
        (**self).audit_order(view, order)
    }
    fn declare_action(&self) -> DeclareAction {
        (**self).declare_action()
    }
    fn uses_resource_caps(&self) -> bool {
        (**self).uses_resource_caps()
    }
    fn resource_caps(&mut self, view: &PolicyView) -> Vec<Option<f32>> {
        (**self).resource_caps(view)
    }
    fn warn_level(&self, view: &PolicyView, thread: usize) -> u8 {
        (**self).warn_level(view, thread)
    }
    fn quiescence_safe(&self) -> bool {
        (**self).quiescence_safe()
    }
    fn skip_horizon(&self, now: u64) -> Option<u64> {
        (**self).skip_horizon(now)
    }
    fn active_policy(&self) -> &'static str {
        (**self).active_policy()
    }
    fn wants_commit_events(&self) -> bool {
        (**self).wants_commit_events()
    }
    fn switch_log(&self) -> &[PolicySwitch] {
        (**self).switch_log()
    }
    fn save_state(&self, out: &mut Vec<u8>) {
        (**self).save_state(out)
    }
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        (**self).load_state(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl FetchPolicy for Dummy {
        fn name(&self) -> &'static str {
            "DUMMY"
        }
        fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
            view.icount_order_into(out);
        }
    }

    #[test]
    fn icount_order_sorts_ascending_with_stable_ties() {
        let threads = vec![
            ThreadView {
                icount: 5,
                ..Default::default()
            },
            ThreadView {
                icount: 2,
                ..Default::default()
            },
            ThreadView {
                icount: 5,
                ..Default::default()
            },
            ThreadView {
                icount: 0,
                ..Default::default()
            },
        ];
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        assert_eq!(v.icount_order(), vec![3, 1, 0, 2]);
    }

    #[test]
    fn default_declare_action_is_none() {
        let d = Dummy;
        assert_eq!(d.declare_action(), DeclareAction::None);
    }
}
