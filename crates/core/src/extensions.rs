//! Extensions beyond the paper's evaluated policies — the "what would we
//! try next" directions its conclusions point at.
//!
//! * [`DWarnFlush`]: DWarn's early, gentle response (priority reduction on
//!   L1 miss) combined with FLUSH's late, drastic one (squash on declared
//!   L2 miss). The paper's results beg for this: DWarn wins everywhere
//!   except the 6/8-thread MEM workloads, where "it is more preferable to
//!   free resources by flushing the delinquent threads than to freeze
//!   resources" — so flush exactly there.
//! * [`DWarnThreshold`]: DWarn with a configurable Dmiss-entry threshold
//!   (the paper's counter compares against zero; k > 1 tolerates isolated
//!   misses before demoting a thread).

use smt_pipeline::{DeclareAction, FetchPolicy, PolicyView};
use smt_trace::snapio::{self, SnapReader};

use crate::dwarn::DWarn;

/// DWarn priorities + FLUSH's squash response on declared L2 misses.
///
/// `flush_at_or_above` controls when the squash response activates: the
/// paper's data says flushing only pays under heavy MEM pressure, so the
/// default flushes at 6+ threads and behaves exactly like (hybrid) DWarn
/// below that.
#[derive(Debug, Clone, Copy)]
pub struct DWarnFlush {
    inner: DWarn,
    flush_at_or_above: usize,
    /// Set per cycle from the view; drives `declare_action`.
    flushing: bool,
}

impl DWarnFlush {
    /// Flush on declared L2 misses at 6+ threads (the regime where FLUSH
    /// beats DWarn in the paper), plain hybrid DWarn below.
    pub fn new() -> DWarnFlush {
        Self::with_flush_threshold(6)
    }

    /// Custom activation point for the squash response.
    pub fn with_flush_threshold(flush_at_or_above: usize) -> DWarnFlush {
        DWarnFlush {
            inner: DWarn::new(),
            flush_at_or_above,
            flushing: false,
        }
    }
}

impl Default for DWarnFlush {
    fn default() -> Self {
        Self::new()
    }
}

impl FetchPolicy for DWarnFlush {
    fn name(&self) -> &'static str {
        "DWARN+FLUSH"
    }

    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        self.flushing = view.num_threads() >= self.flush_at_or_above;
        self.inner.fetch_order_into(view, out);
        if self.flushing {
            // While flushing is active, gate declared threads (as FLUSH
            // does) on top of the DWarn grouping — keep one runnable.
            crate::stall_flush::retain_ungated_keep_one(out, view);
        }
    }

    fn declare_action(&self) -> DeclareAction {
        if self.flushing {
            DeclareAction::FlushAfterLoad
        } else {
            DeclareAction::None
        }
    }

    // `flushing` is recomputed from the (constant) thread count on every
    // call, so a repeated call with the same view is indistinguishable from
    // one: the quiescence engine may skip idle spans.
    fn quiescence_safe(&self) -> bool {
        true
    }

    // `flushing` is read by `declare_action` between the fetch that set it
    // and the next one, so it is evolving state a snapshot must carry.
    fn save_state(&self, out: &mut Vec<u8>) {
        snapio::put_bool(out, self.flushing);
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = SnapReader::new(bytes);
        self.flushing = r.bool().map_err(|e| e.to_string())?;
        r.finish("DWARN+FLUSH policy state")
            .map_err(|e| e.to_string())
    }
}

/// DWarn with a configurable in-flight-miss threshold for Dmiss membership.
#[derive(Debug, Clone, Copy)]
pub struct DWarnThreshold {
    k: u32,
}

impl DWarnThreshold {
    /// Demote a thread only once it has `k` or more in-flight L1-D misses
    /// (`k = 1` is the paper's DWarn grouping, without the hybrid gate).
    pub fn new(k: u32) -> DWarnThreshold {
        assert!(k >= 1);
        DWarnThreshold { k }
    }
}

impl FetchPolicy for DWarnThreshold {
    fn name(&self) -> &'static str {
        "DWARN-K"
    }

    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        view.icount_order_into(out);
        crate::stall_flush::stable_partition(out, |t| view.threads[t].dmiss_count >= self.k);
    }

    // Pure function of the view: the quiescence engine may skip idle spans.
    fn quiescence_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_pipeline::ThreadView;

    fn tv(icount: u32, dmiss: u32, declared: u32) -> ThreadView {
        ThreadView {
            icount,
            dmiss_count: dmiss,
            declared_l2: declared,
            ..Default::default()
        }
    }

    #[test]
    fn dwarn_flush_is_plain_dwarn_below_threshold() {
        let mut p = DWarnFlush::new(); // flush at 6+
        let threads = vec![tv(1, 1, 1), tv(9, 0, 0), tv(4, 0, 0), tv(2, 0, 0)];
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        let order = p.fetch_order(&v);
        assert_eq!(order.len(), 4, "no gating at 4 threads");
        assert_eq!(p.declare_action(), DeclareAction::None);
    }

    #[test]
    fn dwarn_flush_flushes_at_six_threads() {
        let mut p = DWarnFlush::new();
        let threads = vec![
            tv(1, 1, 1),
            tv(9, 0, 0),
            tv(4, 0, 0),
            tv(2, 0, 0),
            tv(3, 1, 0),
            tv(5, 0, 0),
        ];
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        let order = p.fetch_order(&v);
        assert_eq!(order.len(), 5, "declared thread 0 is gated");
        assert!(!order.contains(&0));
        assert_eq!(p.declare_action(), DeclareAction::FlushAfterLoad);
        // Dmiss thread 4 still fetches, just last.
        assert_eq!(*order.last().unwrap(), 4);
    }

    #[test]
    fn dwarn_flush_keeps_one_running() {
        let mut p = DWarnFlush::with_flush_threshold(2);
        let threads = vec![tv(5, 1, 1), tv(1, 1, 2)];
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        assert_eq!(p.fetch_order(&v).len(), 1);
    }

    #[test]
    fn dwarn_flush_state_round_trips_the_flushing_flag() {
        let mut p = DWarnFlush::with_flush_threshold(2);
        let threads = vec![tv(5, 1, 1), tv(1, 1, 2)];
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        let _ = p.fetch_order(&v);
        assert_eq!(p.declare_action(), DeclareAction::FlushAfterLoad);
        let mut bytes = Vec::new();
        p.save_state(&mut bytes);
        // A fresh policy has not fetched yet: declare_action differs until
        // the snapshot state is loaded.
        let mut q = DWarnFlush::with_flush_threshold(2);
        assert_eq!(q.declare_action(), DeclareAction::None);
        q.load_state(&bytes).unwrap();
        assert_eq!(q.declare_action(), DeclareAction::FlushAfterLoad);
        assert!(q.load_state(&[]).is_err(), "truncated state is an error");
    }

    #[test]
    fn dwarn_threshold_tolerates_isolated_misses() {
        let mut k2 = DWarnThreshold::new(2);
        let threads = vec![tv(9, 1, 0), tv(1, 2, 0), tv(5, 0, 0)];
        let v = PolicyView {
            cycle: 0,
            threads: &threads,
        };
        // Thread 0 (1 miss) stays in the Normal group under k=2; thread 1
        // (2 misses) is demoted despite the lowest ICOUNT.
        assert_eq!(k2.fetch_order(&v), vec![2, 0, 1]);
        // Under k=1 both missing threads are demoted (ICOUNT within group).
        let mut k1 = DWarnThreshold::new(1);
        assert_eq!(k1.fetch_order(&v), vec![2, 1, 0]);
    }
}
