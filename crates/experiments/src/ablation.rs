//! Ablations the paper reports in prose:
//!
//! * §5: the DG outstanding-miss threshold — the paper found n = 1 best
//!   ("a low value can lead to over-stalling, a high value causes that ...
//!   internal shared resources \[are\] clogged").
//! * §5: the STALL/FLUSH L2-declare threshold — 15 cycles was best for the
//!   baseline architecture.
//! * §3/§5.2: DWarn's hybrid rule — gating declared L2 misses below three
//!   threads vs. pure priority reduction.

use dwarn_core::{DWarn, DataGating, PolicyKind};
use smt_metrics::table::TextTable;
use smt_pipeline::{FetchPolicy, SimConfig};
use smt_workloads::{workload, Workload, WorkloadClass};

use crate::runner::Campaign;

/// One cached ablation run. `desc` must pin down the policy *and its
/// parameters* (it is the policy part of the campaign cache key); the boxed
/// policy's own `name()` is what the stats artifact records.
fn run_policy(
    campaign: &Campaign,
    cfg: SimConfig,
    wl: &Workload,
    desc: &str,
    policy: impl Fn() -> Box<dyn FetchPolicy> + Sync,
    tag: &str,
) -> f64 {
    let name = policy().name();
    let result = campaign.run_custom(&cfg, &wl.thread_specs(), desc, policy);
    crate::artifacts::record_tagged(tag, "baseline", &wl.name, name, &result);
    result.throughput()
}

/// DG threshold sweep on 4-MIX and 4-MEM.
pub fn dg_threshold_sweep(campaign: &Campaign) -> String {
    let mut t = TextTable::new(vec!["workload", "n=1", "n=2", "n=4", "ICOUNT"]);
    for wl in [
        workload(4, WorkloadClass::Mix),
        workload(4, WorkloadClass::Mem),
    ] {
        let mut row = vec![wl.name.clone()];
        for n in [1u32, 2, 4] {
            let tput = run_policy(
                campaign,
                SimConfig::baseline(),
                &wl,
                &format!("DG(n={n})"),
                || Box::new(DataGating::with_threshold(n)),
                "ablation:dg-threshold",
            );
            row.push(format!("{tput:.2}"));
        }
        let ic = run_policy(
            campaign,
            SimConfig::baseline(),
            &wl,
            "ICOUNT",
            || PolicyKind::Icount.build(),
            "ablation:dg-threshold",
        );
        row.push(format!("{ic:.2}"));
        t.row(row);
    }
    format!(
        "Ablation — DG outstanding-miss threshold (throughput)\n\
         Paper: n = 1 presents the best overall results.\n\n{}",
        t.render()
    )
}

/// STALL/FLUSH declare-threshold sweep on 4-MEM.
pub fn declare_threshold_sweep(campaign: &Campaign) -> String {
    let mut t = TextTable::new(vec!["policy", "thr=8", "thr=15", "thr=30", "thr=60"]);
    let wl = workload(4, WorkloadClass::Mem);
    for kind in [PolicyKind::Stall, PolicyKind::Flush] {
        let mut row = vec![kind.name().to_string()];
        for thr in [8u64, 15, 30, 60] {
            let mut cfg = SimConfig::baseline();
            cfg.l2_declare_threshold = thr;
            let tput = run_policy(
                campaign,
                cfg,
                &wl,
                kind.name(),
                || kind.build(),
                &format!("ablation:declare-thr{thr}"),
            );
            row.push(format!("{tput:.2}"));
        }
        t.row(row);
    }
    format!(
        "Ablation — L2-declare threshold (throughput, 4-MEM)\n\
         Paper: 15 cycles presents the best overall results for the baseline.\n\n{}",
        t.render()
    )
}

/// DWarn hybrid-rule ablation: hybrid vs. priority-only on the 2-thread
/// workloads (where the rule matters) and 4-thread workloads (where it is
/// inactive by design).
pub fn dwarn_hybrid_ablation(campaign: &Campaign) -> String {
    let mut t = TextTable::new(vec![
        "workload",
        "DWarn(hybrid)",
        "DWarn(prio-only)",
        "ICOUNT",
    ]);
    for (threads, class) in [
        (2, WorkloadClass::Mix),
        (2, WorkloadClass::Mem),
        (4, WorkloadClass::Mix),
        (4, WorkloadClass::Mem),
    ] {
        let wl = workload(threads, class);
        let tag = "ablation:hybrid-rule";
        let hybrid = run_policy(
            campaign,
            SimConfig::baseline(),
            &wl,
            "DWARN",
            || Box::new(DWarn::new()),
            tag,
        );
        let prio = run_policy(
            campaign,
            SimConfig::baseline(),
            &wl,
            "DWARN(prio-only)",
            || Box::new(DWarn::priority_only()),
            tag,
        );
        let ic = run_policy(
            campaign,
            SimConfig::baseline(),
            &wl,
            "ICOUNT",
            || PolicyKind::Icount.build(),
            tag,
        );
        t.row(vec![
            wl.name.clone(),
            format!("{hybrid:.2}"),
            format!("{prio:.2}"),
            format!("{ic:.2}"),
        ]);
    }
    format!(
        "Ablation — DWarn hybrid rule (throughput)\n\
         Paper §3: with fewer than three threads, priority reduction alone cannot\n\
         keep a Dmiss thread from slowly filling the machine; the hybrid gates\n\
         declared L2 misses there. At 4+ threads the two variants coincide.\n\n{}",
        t.render()
    )
}

/// Fetch-mechanism sweep: the x.y axis the paper probes at two points
/// (1.4 in §6's small machine, 2.8 everywhere else), swept continuously.
/// The paper's §3 prediction: the fewer threads that can fetch per cycle,
/// the less DWarn's priority reduction leaks — and at 1.X the Dmiss
/// group cannot fetch at all while a Normal thread exists.
pub fn fetch_mechanism_sweep(campaign: &Campaign) -> String {
    let mut t = TextTable::new(vec!["mechanism", "ICOUNT", "DWARN", "DWarn gain"]);
    let wl = workload(4, WorkloadClass::Mix);
    for (threads, width) in [(1u32, 4u32), (1, 8), (2, 4), (2, 8), (4, 8)] {
        let mut cfg = SimConfig::baseline();
        cfg.fetch_threads = threads;
        cfg.fetch_width = width;
        let tag = format!("ablation:fetch-{threads}.{width}");
        let ic = run_policy(
            campaign,
            cfg.clone(),
            &wl,
            "ICOUNT",
            || PolicyKind::Icount.build(),
            &tag,
        );
        let dw = run_policy(
            campaign,
            cfg,
            &wl,
            "DWARN",
            || PolicyKind::DWarn.build(),
            &tag,
        );
        t.row(vec![
            format!("{threads}.{width}"),
            format!("{ic:.2}"),
            format!("{dw:.2}"),
            format!("{:+.1}%", smt_metrics::improvement_pct(dw, ic)),
        ]);
    }
    format!(
        "Ablation — fetch mechanism (ICOUNT x.y), 4-MIX throughput\n\
         Paper probes x.y at 2.8 (baseline/deep) and 1.4 (small machine).\n\n{}",
        t.render()
    )
}

/// All ablations.
pub fn report(campaign: &Campaign) -> String {
    format!(
        "{}\n{}\n{}\n{}",
        dg_threshold_sweep(campaign),
        declare_threshold_sweep(campaign),
        dwarn_hybrid_ablation(campaign),
        fetch_mechanism_sweep(campaign)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExpParams;

    #[test]
    fn hybrid_equals_prio_only_at_four_threads() {
        // At 4 threads, DWarn's hybrid rule is inactive by construction,
        // so the two variants must produce *identical* runs.
        let c = Campaign::new(ExpParams {
            warmup: 2_000,
            measure: 6_000,
        });
        let wl = workload(4, WorkloadClass::Mix);
        let a = run_policy(
            &c,
            SimConfig::baseline(),
            &wl,
            "DWARN",
            || Box::new(DWarn::new()),
            "test",
        );
        let b = run_policy(
            &c,
            SimConfig::baseline(),
            &wl,
            "DWARN(prio-only)",
            || Box::new(DWarn::priority_only()),
            "test",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn ablation_reports_render() {
        let c = Campaign::new(ExpParams {
            warmup: 500,
            measure: 2_000,
        });
        let s = dg_threshold_sweep(&c);
        assert!(s.contains("n=1"));
        let s = declare_threshold_sweep(&c);
        assert!(s.contains("thr=15"));
    }
}
