//! Doc-consistency checks: the CLI invocations documented in README.md
//! and EXPERIMENTS.md must agree with the CLI that actually ships.
//!
//! The CLI's usage text is a hand-rolled string in `src/main.rs` (no
//! argument-parsing framework), so nothing ties the docs to the code at
//! compile time. These tests close the loop the cheap way: every
//! `smt-experiments -- ...` command line quoted in the top-level docs is
//! parsed, and each `--flag` and each subcommand/experiment name must
//! appear in the usage text / experiment suite. A renamed flag or a
//! removed experiment now fails the build instead of rotting in the docs.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/experiments -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Every `--flag` token occurring in `text`.
fn flags_in(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for raw in text.split_whitespace() {
        let token = raw.trim_matches(|c: char| !(c.is_ascii_alphanumeric() || c == '-'));
        if let Some(rest) = token.strip_prefix("--") {
            if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
                out.insert(format!("--{rest}"));
            }
        }
    }
    out
}

/// The flag vocabulary the CLI itself documents (the USAGE string in
/// `src/main.rs`), which is what `--help`-style output prints.
fn usage_flags() -> BTreeSet<String> {
    let main = read(&repo_root().join("crates/experiments/src/main.rs"));
    let start = main
        .find("const USAGE")
        .expect("main.rs lost its USAGE string");
    let end = main[start..].find("\";").expect("unterminated USAGE") + start;
    flags_in(&main[start..end])
}

/// Subcommands and experiment names the CLI accepts.
fn known_commands() -> BTreeSet<String> {
    let mut names: BTreeSet<String> = smt_experiments::suite::ALL
        .iter()
        .map(|(n, _)| n.to_string())
        .collect();
    for extra in [
        "all", "compare", "cache", "trace", "chaos", "lint", "report",
    ] {
        names.insert(extra.to_string());
    }
    names
}

/// Command lines of the form `smt-experiments -- <args>` quoted in `doc`.
fn documented_invocations(doc: &str) -> Vec<String> {
    doc.lines()
        .filter_map(|l| {
            let i = l.find("smt-experiments")?;
            let rest = &l[i + "smt-experiments".len()..];
            let rest = rest.trim_start();
            let args = rest
                .strip_prefix("-- ")
                .or_else(|| rest.strip_prefix("--\t"))?;
            Some(args.trim().to_string())
        })
        .collect()
}

fn check_doc(name: &str) {
    let doc = read(&repo_root().join(name));
    let usage = usage_flags();
    let commands = known_commands();
    let invocations = documented_invocations(&doc);
    assert!(
        !invocations.is_empty(),
        "{name} documents no smt-experiments invocations; the extraction broke"
    );
    for inv in &invocations {
        for flag in flags_in(inv) {
            assert!(
                usage.contains(&flag),
                "{name} documents `smt-experiments -- {inv}` but `{flag}` is not in the \
                 CLI usage text — stale docs or an undocumented flag"
            );
        }
        // The first bare word is the subcommand / experiment name.
        if let Some(first) = inv.split_whitespace().find(|t| !t.starts_with('-')) {
            let first = first.trim_matches(|c: char| !(c.is_ascii_alphanumeric()));
            if !first.is_empty()
                && first
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
            {
                assert!(
                    commands.contains(first),
                    "{name} documents `smt-experiments -- {inv}` but `{first}` is not a \
                     known experiment or subcommand"
                );
            }
        }
    }
}

#[test]
fn readme_invocations_match_the_cli() {
    check_doc("README.md");
}

#[test]
fn experiments_md_invocations_match_the_cli() {
    check_doc("EXPERIMENTS.md");
}

#[test]
fn usage_names_every_experiment() {
    // The suite is the source of truth for what `all` runs; the usage
    // text must name each entry (and `meta` specifically must be there —
    // it is the results chapter's repro entry point).
    let main = read(&repo_root().join("crates/experiments/src/main.rs"));
    for (name, _) in smt_experiments::suite::ALL {
        assert!(
            main.contains(&format!("\n  {name}")) || main.contains(&format!(" {name} ")),
            "experiment `{name}` missing from the USAGE text"
        );
    }
}
