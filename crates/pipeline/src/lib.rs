//! # smt-pipeline — the cycle-level SMT simulator
//!
//! A from-scratch reproduction of the paper's simulation substrate (an
//! SMTSIM-derived trace-driven simulator): a 9-stage (configurable) SMT
//! pipeline with an ICOUNT x.y fetch mechanism, shared issue queues /
//! physical registers / functional units, per-thread reorder buffers,
//! gshare + BTB + RAS branch prediction, a two-level cache hierarchy with
//! per-context DTLBs, wrong-path execution from a basic-block dictionary,
//! and full squash machinery (needed by both branch recovery and the FLUSH
//! policy).
//!
//! The fetch-policy *interface* ([`policy::FetchPolicy`]) lives here, next
//! to its call site in the fetch stage; the policy *implementations* — the
//! paper's contribution — live in the `dwarn-core` crate.

pub mod config;
pub mod frontend;
pub mod inflight;
pub mod policy;
pub mod sim;
pub mod stats;

pub use config::SimConfig;
pub use frontend::{CorrectPath, ThreadFront};
pub use inflight::{Handle, InFlight, Slab, Stage};
pub use policy::{DeclareAction, FetchPolicy, PolicyEvent, PolicyView, ThreadView};
pub use sim::{Simulator, ThreadSpec};
pub use stats::{OccupancyStats, SimResult, ThreadStats};
