//! Trace recording and replay: the trace-driven workflow.
//!
//! Records a synthetic mcf trace to a `DWTR` file, loads it back, and runs
//! the replayed trace against a live-generated twin under DWarn — the two
//! simulations agree cycle-for-cycle.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```

use std::io::{BufReader, BufWriter};

use dwarn_smt::core::PolicyKind;
use dwarn_smt::pipeline::{SimConfig, Simulator, ThreadFront, ThreadSpec};
use dwarn_smt::trace::{profile, RecordedTrace};

fn main() -> std::io::Result<()> {
    let p = profile::mcf();
    let seed = 2004;
    let base = Simulator::thread_addr_base(0);

    // 1. Record 300k instructions to disk.
    let rec = RecordedTrace::record(&p, seed, base, 300_000);
    let path = std::env::temp_dir().join("mcf.dwtr");
    rec.write_to(BufWriter::new(std::fs::File::create(&path)?))?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "recorded {} instructions of {} to {} ({:.1} MB, {:.1} B/inst)",
        rec.insts.len(),
        rec.profile_name,
        path.display(),
        bytes as f64 / 1e6,
        bytes as f64 / rec.insts.len() as f64
    );

    // 2. Load it back and simulate.
    let loaded = RecordedTrace::read_from(BufReader::new(std::fs::File::open(&path)?))?;
    let front = ThreadFront::from_recording(&loaded, seed, base);
    let mut replayed = Simulator::with_fronts(
        SimConfig::baseline(),
        PolicyKind::DWarn.build(),
        vec![front],
    );
    let rr = replayed.run(10_000, 30_000);

    // 3. The live-generated twin.
    let mut live = Simulator::new(
        SimConfig::baseline(),
        PolicyKind::DWarn.build(),
        &[ThreadSpec {
            profile: p,
            seed,
            skip: 0,
        }],
    );
    let rl = live.run(10_000, 30_000);

    println!(
        "replayed: IPC {:.4}, L1D miss {:.1}%, committed {}",
        rr.ipcs()[0],
        100.0 * rr.mem[0].l1_miss_rate(),
        rr.threads[0].committed
    );
    println!(
        "live:     IPC {:.4}, L1D miss {:.1}%, committed {}",
        rl.ipcs()[0],
        100.0 * rl.mem[0].l1_miss_rate(),
        rl.threads[0].committed
    );
    assert_eq!(rr.threads, rl.threads, "replay must match live generation");
    println!("cycle-exact match ✓");
    std::fs::remove_file(&path).ok();
    Ok(())
}
