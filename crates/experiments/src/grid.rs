//! The (workload × policy) evaluation grid shared by Figures 1, 3, 4, 5.

use std::collections::HashMap;

use dwarn_core::PolicyKind;
use smt_metrics::table::{pct, TextTable};
use smt_workloads::{Workload, WorkloadClass};

use crate::runner::{Arch, Campaign};

/// Which metric a view of the grid reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    Throughput,
    Hmean,
}

impl Metric {
    pub fn as_str(self) -> &'static str {
        match self {
            Metric::Throughput => "Throughput",
            Metric::Hmean => "Hmean",
        }
    }
}

/// All six policies evaluated over a workload list on one architecture.
#[derive(Debug, Clone)]
pub struct GridData {
    pub arch: Arch,
    pub workloads: Vec<Workload>,
    pub throughput: HashMap<(String, PolicyKind), f64>,
    pub hmean: HashMap<(String, PolicyKind), f64>,
}

/// Run the full grid (all paper policies plus the solo baselines Hmean
/// needs), in parallel.
pub fn compute(campaign: &Campaign, arch: Arch, workloads: &[Workload]) -> GridData {
    let policies = PolicyKind::paper_set();
    let mut keys = Campaign::grid(arch, workloads, &policies);
    keys.extend(Campaign::solo_grid(arch, workloads));
    campaign.prefetch(&keys);

    let mut throughput = HashMap::new();
    let mut hmean = HashMap::new();
    for wl in workloads {
        for &p in &policies {
            let r = campaign.workload_result(arch, wl, p);
            throughput.insert((wl.name.clone(), p), r.throughput());
            hmean.insert((wl.name.clone(), p), campaign.hmean(arch, wl, p));
        }
    }
    GridData {
        arch,
        workloads: workloads.to_vec(),
        throughput,
        hmean,
    }
}

impl GridData {
    pub fn value(&self, metric: Metric, wl: &str, policy: PolicyKind) -> f64 {
        let map = match metric {
            Metric::Throughput => &self.throughput,
            Metric::Hmean => &self.hmean,
        };
        // A cell absent from the grid (a failed run that was recorded and
        // skipped) renders as NaN in the report instead of aborting it.
        map.get(&(wl.to_string(), policy))
            .copied()
            .unwrap_or(f64::NAN)
    }

    /// DWarn's improvement (%) over `baseline` on one workload.
    pub fn improvement(&self, metric: Metric, wl: &str, baseline: PolicyKind) -> f64 {
        smt_metrics::improvement_pct(
            self.value(metric, wl, PolicyKind::DWarn),
            self.value(metric, wl, baseline),
        )
    }

    /// Average DWarn improvement over `baseline` across the workloads of
    /// one class.
    pub fn class_avg_improvement(
        &self,
        metric: Metric,
        class: WorkloadClass,
        baseline: PolicyKind,
    ) -> f64 {
        let vals: Vec<f64> = self
            .workloads
            .iter()
            .filter(|w| w.class == class)
            .map(|w| self.improvement(metric, &w.name, baseline))
            .collect();
        smt_metrics::mean(&vals)
    }

    /// Average DWarn improvement over `baseline` across all workloads.
    pub fn avg_improvement(&self, metric: Metric, baseline: PolicyKind) -> f64 {
        let vals: Vec<f64> = self
            .workloads
            .iter()
            .map(|w| self.improvement(metric, &w.name, baseline))
            .collect();
        smt_metrics::mean(&vals)
    }

    /// The absolute-value table (Figure 1a style).
    pub fn absolute_table(&self, metric: Metric) -> String {
        let mut header = vec!["workload".to_string()];
        header.extend(PolicyKind::paper_set().iter().map(|p| p.name().to_string()));
        let mut t = TextTable::new(header);
        for wl in &self.workloads {
            let mut row = vec![wl.name.clone()];
            for p in PolicyKind::paper_set() {
                row.push(format!("{:.2}", self.value(metric, &wl.name, p)));
            }
            t.row(row);
        }
        t.render()
    }

    /// A paper-style grouped bar chart of the absolute values (Figure 1a).
    pub fn chart(&self, metric: Metric) -> String {
        let mut chart = smt_metrics::chart::BarChart::new(
            format!(
                "{} per policy ({} architecture)",
                metric.as_str(),
                self.arch.as_str()
            ),
            PolicyKind::paper_set()
                .iter()
                .map(|p| p.name().to_string())
                .collect(),
        );
        for wl in &self.workloads {
            chart.group(
                wl.name.clone(),
                PolicyKind::paper_set()
                    .iter()
                    .map(|&p| self.value(metric, &wl.name, p))
                    .collect(),
            );
        }
        chart.render()
    }

    /// The DWarn-over-baselines improvement table (Figure 1b / 3 / 4 / 5
    /// style), with per-class averages at the bottom.
    pub fn improvement_table(&self, metric: Metric) -> String {
        let mut header = vec!["workload".to_string()];
        header.extend(
            PolicyKind::baselines()
                .iter()
                .map(|p| format!("DWarn/{}", p.name())),
        );
        let mut t = TextTable::new(header);
        for wl in &self.workloads {
            let mut row = vec![wl.name.clone()];
            for p in PolicyKind::baselines() {
                row.push(pct(self.improvement(metric, &wl.name, p)));
            }
            t.row(row);
        }
        for class in WorkloadClass::ALL {
            if !self.workloads.iter().any(|w| w.class == class) {
                continue;
            }
            let mut row = vec![format!("avg-{}", class.as_str())];
            for p in PolicyKind::baselines() {
                row.push(pct(self.class_avg_improvement(metric, class, p)));
            }
            t.row(row);
        }
        let mut row = vec!["avg".to_string()];
        for p in PolicyKind::baselines() {
            row.push(pct(self.avg_improvement(metric, p)));
        }
        t.row(row);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExpParams;
    use smt_workloads::workload;

    fn tiny_grid() -> GridData {
        let c = Campaign::new(ExpParams {
            warmup: 1_500,
            measure: 5_000,
        });
        let wls = vec![
            workload(2, WorkloadClass::Ilp),
            workload(2, WorkloadClass::Mem),
        ];
        compute(&c, Arch::Baseline, &wls)
    }

    #[test]
    fn grid_covers_all_cells() {
        let g = tiny_grid();
        assert_eq!(g.throughput.len(), 12);
        assert_eq!(g.hmean.len(), 12);
        for wl in &g.workloads {
            for p in PolicyKind::paper_set() {
                assert!(g.value(Metric::Throughput, &wl.name, p) > 0.0);
                assert!(g.value(Metric::Hmean, &wl.name, p) > 0.0);
            }
        }
    }

    #[test]
    fn tables_render() {
        let g = tiny_grid();
        let abs = g.absolute_table(Metric::Throughput);
        assert!(abs.contains("2-ILP") && abs.contains("DWARN"));
        let imp = g.improvement_table(Metric::Hmean);
        assert!(imp.contains("DWarn/PDG"));
        assert!(imp.contains("avg-MEM"));
        assert!(imp.lines().last().unwrap().starts_with("avg"));
    }

    #[test]
    fn improvement_is_zero_against_self_value() {
        let g = tiny_grid();
        let v = g.value(Metric::Throughput, "2-ILP", PolicyKind::DWarn);
        assert!((smt_metrics::improvement_pct(v, v)).abs() < 1e-12);
    }
}
