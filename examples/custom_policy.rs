//! Implementing a custom fetch policy against the public `FetchPolicy`
//! trait — the extension point a downstream user of this library would
//! reach for.
//!
//! Two custom policies are built here and raced against ICOUNT and DWarn:
//!
//! * `RoundRobin` — the classic strawman: rotate fetch priority each cycle,
//!   ignoring all machine state.
//! * `DWarnPlusTlb` — a DWarn extension sketch: treat a thread with any
//!   outstanding *declared* load as a third, lowest class even at 4+
//!   threads (a milder cousin of the paper's hybrid gate).
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use dwarn_smt::core::PolicyKind;
use dwarn_smt::metrics::table::TextTable;
use dwarn_smt::pipeline::{FetchPolicy, PolicyView, SimConfig, Simulator};
use dwarn_smt::workloads::{workload, WorkloadClass};

/// Rotating fetch priority, blind to all machine state.
struct RoundRobin {
    turn: usize,
}

impl FetchPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        let n = view.num_threads();
        self.turn = (self.turn + 1) % n;
        out.clear();
        out.extend((0..n).map(|i| (self.turn + i) % n));
    }
}

/// DWarn with a third priority class: threads with a *declared* long-latency
/// load sort behind every merely-L1-missing thread, at any thread count.
struct ThreeClassDWarn;

impl FetchPolicy for ThreeClassDWarn {
    fn name(&self) -> &'static str {
        "DWARN-3C"
    }

    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        view.icount_order_into(out);
        out.sort_by_key(|&t| {
            let v = view.threads[t];
            if v.declared_l2 > 0 {
                2u32
            } else if v.dmiss_count > 0 {
                1
            } else {
                0
            }
        });
    }
}

fn main() {
    let wl = workload(4, WorkloadClass::Mix);
    println!("workload {}: {}\n", wl.name, wl.benchmarks.join(", "));

    let mut t = TextTable::new(vec!["policy", "throughput", "per-thread IPCs"]);
    let mut run = |name: String, policy: Box<dyn FetchPolicy>| {
        let mut sim = Simulator::new(SimConfig::baseline(), policy, &wl.thread_specs());
        let r = sim.run(20_000, 60_000);
        let ipcs: Vec<String> = r.ipcs().iter().map(|i| format!("{i:.2}")).collect();
        t.row(vec![
            name,
            format!("{:.2}", r.throughput()),
            ipcs.join(" / "),
        ]);
    };

    run("ICOUNT".into(), PolicyKind::Icount.build());
    run("DWARN".into(), PolicyKind::DWarn.build());
    run("RR (custom)".into(), Box::new(RoundRobin { turn: 0 }));
    run("DWARN-3C (custom)".into(), Box::new(ThreeClassDWarn));

    println!("{}", t.render());
    println!("threads: {}", wl.benchmarks.join(" / "));
}
