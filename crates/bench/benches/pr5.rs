//! Regression-gated performance baseline for the quiescence-skipping cycle
//! engine: emits `BENCH_PR5.json` with the same schema as `BENCH_PR2.json`
//! (simulator cycles-per-second under every paper policy, full-suite wall
//! time cold and warm) plus the engine's `skip_ratio` — the fraction of
//! simulated cycles advanced in bulk — per workload class.
//!
//! ```text
//! cargo bench -p smt-bench --bench pr5
//! ```
//!
//! CI runs this, uploads the JSON as a build artifact, and fails the job
//! if the cold pass regresses more than 10% against the committed PR 2
//! baseline or the warm pass exceeds its budget.

use std::path::{Path, PathBuf};
use std::time::Instant;

use dwarn_core::PolicyKind;
use smt_bench::black_box;
use smt_obs::Json;
use smt_pipeline::{SimConfig, Simulator};
use smt_workloads::{workload, WorkloadClass};

/// Cycles simulated per policy microbench.
const MICRO_CYCLES: u64 = 20_000;

/// Simulator cycles per wall-clock second for one policy on 4-MIX.
fn cycles_per_sec(policy: PolicyKind) -> f64 {
    let wl = workload(4, WorkloadClass::Mix);
    // One untimed warm-up, then the timed run.
    for timed in [false, true] {
        let mut sim = Simulator::new(SimConfig::baseline(), policy.build(), &wl.thread_specs());
        let t0 = Instant::now();
        black_box(sim.run(0, MICRO_CYCLES));
        if timed {
            return MICRO_CYCLES as f64 / t0.elapsed().as_secs_f64();
        }
    }
    unreachable!()
}

/// Fraction of cycles the quiescence engine advanced in bulk for a
/// 4-thread workload of `class` under DWarn. MEM workloads spend most of
/// their time waiting on L2 misses, so they should skip the most.
fn skip_ratio(class: WorkloadClass) -> f64 {
    const WARMUP: u64 = 1_000;
    const MEASURE: u64 = 20_000;
    let wl = workload(4, class);
    let mut sim = Simulator::new(
        SimConfig::baseline(),
        PolicyKind::DWarn.build(),
        &wl.thread_specs(),
    );
    black_box(sim.run(WARMUP, MEASURE));
    sim.skipped_cycles() as f64 / (WARMUP + MEASURE) as f64
}

/// Wall time of the cached paper suite against `campaign` — the same
/// set the CLI's `all` runs. `meta` (the one entry beyond it) is live by
/// design (its oracle math bypasses the result cache), so timing it here
/// would break the warm-pass budget this baseline exists to gate.
fn suite_wall(campaign: &smt_experiments::Campaign) -> f64 {
    let t0 = Instant::now();
    for &(name, f) in smt_experiments::suite::ALL {
        if name == "meta" {
            continue;
        }
        black_box(f(campaign));
        eprintln!("  [{name} done at {:.1}s]", t0.elapsed().as_secs_f64());
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    // `cargo bench -- <filter>`: skip entirely when a filter names another
    // bench, mirroring the Group-based targets.
    if let Some(filter) = std::env::args().skip(1).find(|a| !a.starts_with('-')) {
        if !"pr5".contains(filter.as_str()) {
            return;
        }
    }

    let mut policy_rates = Vec::new();
    for p in PolicyKind::paper_set() {
        let rate = cycles_per_sec(p);
        eprintln!("cycles/sec {:10} {:>12.0}", p.name(), rate);
        policy_rates.push((p.name(), rate));
    }

    let mut skip_ratios = Vec::new();
    for (name, class) in [
        ("ILP", WorkloadClass::Ilp),
        ("MIX", WorkloadClass::Mix),
        ("MEM", WorkloadClass::Mem),
    ] {
        let ratio = skip_ratio(class);
        eprintln!("skip ratio {name:10} {:>11.1}%", ratio * 100.0);
        skip_ratios.push((name, ratio));
    }

    let params = smt_experiments::ExpParams::standard();
    let repo_root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cache_dir = repo_root.join("target/bench-pr5-cache");
    let cache = smt_experiments::DiskCache::open(&cache_dir).expect("create bench cache dir");
    cache.clear().expect("start cold");

    eprintln!("cold suite (every simulation runs):");
    let cold = suite_wall(&smt_experiments::Campaign::with_disk_cache(params, &cache_dir).unwrap());
    eprintln!("warm suite (every result from the persistent cache):");
    let warm = suite_wall(&smt_experiments::Campaign::with_disk_cache(params, &cache_dir).unwrap());
    eprintln!("all cold: {cold:.1}s   all warm: {warm:.3}s");

    let json = Json::obj(vec![
        ("bench", Json::str("pr5")),
        ("schema_version", Json::U64(1)),
        ("micro_cycles_per_policy_run", Json::U64(MICRO_CYCLES)),
        (
            "cycles_per_sec",
            Json::obj(
                policy_rates
                    .iter()
                    .map(|&(name, rate)| (name, Json::F64(rate)))
                    .collect(),
            ),
        ),
        (
            "skip_ratio",
            Json::obj(
                skip_ratios
                    .iter()
                    .map(|&(name, ratio)| (name, Json::F64(ratio)))
                    .collect(),
            ),
        ),
        ("all_cold_seconds", Json::F64(cold)),
        ("all_warm_seconds", Json::F64(warm)),
    ]);
    let out = repo_root.join("BENCH_PR5.json");
    std::fs::write(&out, json.render_pretty() + "\n").expect("write BENCH_PR5.json");
    eprintln!("wrote {}", out.display());
}
