//! Raw simulator microbenchmarks: cycles-per-second of the pipeline itself
//! under representative workloads, plus trace-generation throughput. These
//! measure the substrate, not the paper's results.

use dwarn_core::PolicyKind;
use smt_bench::Group;
use smt_pipeline::{SimConfig, Simulator};
use smt_trace::profile;
use smt_workloads::{workload, WorkloadClass};

fn bench_simulator_speed() {
    let mut g = Group::new("simulator_cycles");
    g.sample_size(10);
    for (name, threads, class) in [
        ("2-ILP", 2, WorkloadClass::Ilp),
        ("4-MIX", 4, WorkloadClass::Mix),
        ("8-MEM", 8, WorkloadClass::Mem),
    ] {
        let wl = workload(threads, class);
        g.bench_function(&format!("dwarn/{name}"), || {
            let mut sim = Simulator::new(
                SimConfig::baseline(),
                PolicyKind::DWarn.build(),
                &wl.thread_specs(),
            );
            sim.run(0, 10_000)
        });
    }
    g.finish();
}

fn bench_trace_generation() {
    let mut g = Group::new("trace_generation");
    g.sample_size(10);
    g.bench_function("gcc_stream", || {
        let p = profile::gcc();
        let mut t = smt_trace::ThreadTrace::new(&p, 7, 0, 0);
        let mut acc = 0u64;
        for _ in 0..100_000 {
            acc = acc.wrapping_add(t.next_inst().pc);
        }
        acc
    });
    g.finish();
}

fn main() {
    bench_simulator_speed();
    bench_trace_generation();
}
