//! Raw simulator microbenchmarks: cycles-per-second of the pipeline itself
//! under representative workloads, plus trace-generation throughput. These
//! measure the substrate, not the paper's results.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dwarn_core::PolicyKind;
use smt_pipeline::{SimConfig, Simulator};
use smt_trace::profile;
use smt_workloads::{workload, WorkloadClass};

fn bench_simulator_speed(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_cycles");
    g.sample_size(10);
    for (name, threads, class) in [
        ("2-ILP", 2, WorkloadClass::Ilp),
        ("4-MIX", 4, WorkloadClass::Mix),
        ("8-MEM", 8, WorkloadClass::Mem),
    ] {
        let wl = workload(threads, class);
        g.throughput(Throughput::Elements(10_000));
        g.bench_function(format!("dwarn/{name}"), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(
                    SimConfig::baseline(),
                    PolicyKind::DWarn.build(),
                    &wl.thread_specs(),
                );
                sim.run(0, 10_000)
            })
        });
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("gcc_stream", |b| {
        b.iter(|| {
            let p = profile::gcc();
            let mut t = smt_trace::ThreadTrace::new(&p, 7, 0, 0);
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(t.next_inst().pc);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(simulator, bench_simulator_speed, bench_trace_generation);
criterion_main!(simulator);
