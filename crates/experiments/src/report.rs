//! The `report` subcommand: phase segmentation over interval time-series.
//!
//! Reads the `*.intervals.jsonl` files an `--intervals <dir>` campaign
//! wrote (schema `smt-intervals-v1`), segments each run's per-interval IPC
//! series into phases with a change-point threshold, and renders a
//! per-run phase summary table. Everything here consumes the files through
//! [`smt_obs::Json::parse`] — the reporting path exercises the same schema
//! a user's tooling would, instead of peeking at in-process structs.

use std::path::{Path, PathBuf};

use smt_obs::Json;

use crate::error::ExpError;

/// One parsed interval (the subset of `smt-intervals-v1` the report uses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalPoint {
    pub index: u64,
    pub start_cycle: u64,
    pub cycles: u64,
    pub skipped: u64,
    /// Aggregate (all-thread) committed IPC over the interval.
    pub ipc: f64,
}

/// A maximal run of consecutive intervals with similar aggregate IPC.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// First and last interval index (inclusive).
    pub first: u64,
    pub last: u64,
    pub start_cycle: u64,
    pub cycles: u64,
    pub skipped: u64,
    pub mean_ipc: f64,
    pub intervals: usize,
}

/// One run's parsed series plus its segmentation.
#[derive(Debug, Clone)]
pub struct SeriesSummary {
    /// File stem (e.g. `baseline-4-mix-dwarn`).
    pub name: String,
    pub window: u64,
    pub threads: Vec<String>,
    pub points: Vec<IntervalPoint>,
    pub phases: Vec<Phase>,
}

/// Relative IPC deviation that opens a new phase. An interval breaks the
/// current phase when its IPC differs from the phase's running mean by
/// more than `max(PHASE_REL_TOL × mean, PHASE_ABS_TOL)` — the absolute
/// floor keeps near-idle stretches (IPC ≈ 0) from fragmenting into
/// single-interval phases over noise.
pub const PHASE_REL_TOL: f64 = 0.25;
pub const PHASE_ABS_TOL: f64 = 0.1;

/// Segment an IPC series into phases with the threshold change-point rule
/// above. Deterministic: a pure fold over the points in order.
pub fn segment(points: &[IntervalPoint]) -> Vec<Phase> {
    let mut phases: Vec<Phase> = Vec::new();
    let mut cur: Option<Phase> = None;
    for p in points {
        match cur.as_mut() {
            Some(ph)
                if (p.ipc - ph.mean_ipc).abs()
                    <= (PHASE_REL_TOL * ph.mean_ipc).max(PHASE_ABS_TOL) =>
            {
                // Extend: fold the interval into the running mean,
                // weighting by cycle count so partial tail windows don't
                // drag the mean.
                let w_old = ph.cycles as f64;
                let w_new = p.cycles as f64;
                ph.mean_ipc = (ph.mean_ipc * w_old + p.ipc * w_new) / (w_old + w_new).max(1.0);
                ph.last = p.index;
                ph.cycles += p.cycles;
                ph.skipped += p.skipped;
                ph.intervals += 1;
            }
            _ => {
                if let Some(done) = cur.take() {
                    phases.push(done);
                }
                cur = Some(Phase {
                    first: p.index,
                    last: p.index,
                    start_cycle: p.start_cycle,
                    cycles: p.cycles,
                    skipped: p.skipped,
                    mean_ipc: p.ipc,
                    intervals: 1,
                });
            }
        }
    }
    if let Some(done) = cur.take() {
        phases.push(done);
    }
    phases
}

fn io_err(context: &str, detail: impl std::fmt::Display) -> ExpError {
    ExpError::Io {
        context: context.to_string(),
        detail: detail.to_string(),
    }
}

/// Parse one `*.intervals.jsonl` file and segment it.
pub fn summarize_file(path: &Path) -> Result<SeriesSummary, ExpError> {
    let ctx = format!("reading interval series {}", path.display());
    let body = std::fs::read_to_string(path).map_err(|e| io_err(&ctx, e))?;
    let mut lines = body.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or_else(|| io_err(&ctx, "empty file"))?;
    let header = Json::parse(header_line).map_err(|e| io_err(&ctx, e))?;
    let schema = header.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "smt-intervals-v1" {
        return Err(io_err(&ctx, format!("unexpected schema {schema:?}")));
    }
    let window = header
        .get("window")
        .and_then(Json::as_u64)
        .ok_or_else(|| io_err(&ctx, "header missing window"))?;
    let threads: Vec<String> = header
        .get("threads")
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .map(|t| t.as_str().unwrap_or("?").to_string())
                .collect()
        })
        .unwrap_or_default();
    let mut points = Vec::new();
    for line in lines {
        let v = Json::parse(line).map_err(|e| io_err(&ctx, e))?;
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| io_err(&ctx, format!("interval missing {k:?}")))
        };
        points.push(IntervalPoint {
            index: field("i")?,
            start_cycle: field("start")?,
            cycles: field("cycles")?,
            skipped: field("skipped")?,
            ipc: v
                .get("ipc")
                .and_then(Json::as_f64)
                .ok_or_else(|| io_err(&ctx, "interval missing \"ipc\""))?,
        });
    }
    let phases = segment(&points);
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("?")
        .trim_end_matches(".intervals.jsonl")
        .to_string();
    Ok(SeriesSummary {
        name,
        window,
        threads,
        points,
        phases,
    })
}

/// Render one run's phase table.
pub fn render_summary(s: &SeriesSummary) -> String {
    let mut t = smt_metrics::table::TextTable::new(vec![
        "phase",
        "intervals",
        "cycles",
        "start",
        "mean IPC",
        "skipped",
    ]);
    for (i, ph) in s.phases.iter().enumerate() {
        let skip_pct = if ph.cycles == 0 {
            0.0
        } else {
            100.0 * ph.skipped as f64 / ph.cycles as f64
        };
        t.row(vec![
            format!("P{i}"),
            format!("{}..{}", ph.first, ph.last),
            ph.cycles.to_string(),
            ph.start_cycle.to_string(),
            format!("{:.3}", ph.mean_ipc),
            format!("{skip_pct:.1}%"),
        ]);
    }
    format!(
        "{} (window {}, threads [{}]): {} interval(s), {} phase(s)\n{}",
        s.name,
        s.window,
        s.threads.join(", "),
        s.points.len(),
        s.phases.len(),
        t.render()
    )
}

/// The `report` subcommand body: summarize every `*.intervals.jsonl` under
/// `dir` (sorted by file name for a deterministic report) and render the
/// per-run phase tables.
pub fn report_dir(dir: &Path) -> Result<String, ExpError> {
    let ctx = format!("listing interval series in {}", dir.display());
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| io_err(&ctx, e))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".intervals.jsonl"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(io_err(&ctx, "no *.intervals.jsonl files found"));
    }
    let mut out = String::new();
    for (i, f) in files.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_summary(&summarize_file(f)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(index: u64, ipc: f64) -> IntervalPoint {
        IntervalPoint {
            index,
            start_cycle: index * 1024,
            cycles: 1024,
            skipped: 0,
            ipc,
        }
    }

    #[test]
    fn segment_splits_on_ipc_steps_and_tolerates_noise() {
        let points: Vec<IntervalPoint> = (0..10)
            .map(|i| {
                let ipc = if i < 5 {
                    2.0 + 0.05 * (i % 2) as f64
                } else {
                    0.5
                };
                pt(i, ipc)
            })
            .collect();
        let phases = segment(&points);
        assert_eq!(phases.len(), 2, "{phases:?}");
        assert_eq!((phases[0].first, phases[0].last), (0, 4));
        assert_eq!((phases[1].first, phases[1].last), (5, 9));
        assert!((phases[1].mean_ipc - 0.5).abs() < 1e-9);
    }

    #[test]
    fn segment_absolute_floor_keeps_idle_stretches_together() {
        // Near-zero IPC wiggle stays one phase thanks to PHASE_ABS_TOL.
        let points: Vec<IntervalPoint> = (0..6).map(|i| pt(i, 0.01 * (i % 3) as f64)).collect();
        assert_eq!(segment(&points).len(), 1);
    }

    #[test]
    fn summarize_round_trips_a_rendered_series() {
        let mut probe = smt_obs::IntervalProbe::new(smt_obs::IntervalConfig { window: 64 });
        use smt_obs::Probe;
        for c in 0..200u64 {
            if c % 2 == 0 {
                probe.on_commit(c, 0, 0, 1);
            }
            let state = smt_obs::CycleState {
                cycle: c,
                iq: [1, 0, 0],
                regs_int: 4,
                regs_fp: 2,
                rob: &[3],
                iq_per_thread: &[1],
                outstanding_miss: &[0],
                gate: &[None],
            };
            probe.on_cycle_state(&state);
        }
        let series = probe.into_series();
        let dir = std::env::temp_dir().join(format!("smt-report-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline-solo-mcf-icount.intervals.jsonl");
        std::fs::write(&path, series.to_jsonl(&["mcf".to_string()])).unwrap();

        let s = summarize_file(&path).unwrap();
        assert_eq!(s.window, 64);
        assert_eq!(s.threads, vec!["mcf".to_string()]);
        assert_eq!(s.points.len(), series.intervals.len());
        assert!(!s.phases.is_empty());
        let rendered = report_dir(&dir).unwrap();
        assert!(rendered.contains("baseline-solo-mcf-icount"), "{rendered}");
        assert!(rendered.contains("mean IPC"), "{rendered}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
