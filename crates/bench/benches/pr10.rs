//! Fragment-replay speedup baseline for the time-axis parallel engine:
//! emits `BENCH_PR10.json`.
//!
//! The gated number compares one sequential probed + sanitized MEM-class
//! run against the same run executed as a Null/Null scout pass plus
//! concurrent per-fragment re-simulation (`Simulator::try_run_fragmented`)
//! at `SMT_JOBS` workers (default 4, the CI shape). Both sides produce the
//! run's full observability payload — interval series and the cycle-level
//! audit — and the stitched result must be digest-identical to the
//! sequential one; the JSON carries the equality flag so CI gates
//! correctness and speed together. Also reported: snapshot count and
//! bytes for the scout cadence, and the interval-series stitch time.
//!
//! ```text
//! SMT_JOBS=4 cargo bench -p smt-bench --bench pr10
//! ```
//!
//! The speedup gate (>= 1.4x) assumes >= `SMT_JOBS` hardware threads;
//! `available_cores` is recorded so a starved runner is diagnosable from
//! the artifact alone.

use std::path::{Path, PathBuf};
use std::time::Instant;

use smt_bench::black_box;
use smt_experiments::runner::parse_jobs;
use smt_obs::{IntervalConfig, IntervalProbe, IntervalSeries, Json};
use smt_pipeline::{
    FragmentOpts, RecordingSanitizer, SimConfig, SimError, Simulator, ThreadSpec, Watchdog,
};
use smt_workloads::{workload, WorkloadClass};

/// Standard (non-quick) campaign windows: the gate models a real single
/// run, not a smoke run.
const WARMUP: u64 = 20_000;
const MEASURE: u64 = 60_000;

/// Scout snapshot cadence — 8 fragments per 80k-cycle run, matching the
/// default `--fragments` campaign cadence.
const FRAGMENT_CYCLES: u64 = 10_000;

/// Interval-probe window for both sides.
const WINDOW: u64 = 4_096;

/// Timed repetitions; trial 0 is an untimed warm-up. The best per-trial
/// speedup is kept (noise rejection: both sides of every ratio run under
/// the same CPU-frequency drift).
const TRIALS: usize = 5;

fn specs() -> Vec<ThreadSpec> {
    workload(2, WorkloadClass::Mem).thread_specs()
}

fn policy() -> Box<dyn smt_pipeline::FetchPolicy> {
    dwarn_core::PolicyKind::DWarn.build()
}

/// One sequential probed + sanitized run: `(wall seconds, digest, series)`.
fn sequential(specs: &[ThreadSpec]) -> (f64, u64, IntervalSeries) {
    let mut sim = Simulator::try_with_specs(
        SimConfig::baseline(),
        policy(),
        specs,
        IntervalProbe::new(IntervalConfig { window: WINDOW }),
        RecordingSanitizer::new(),
    )
    .expect("baseline config");
    let t0 = Instant::now();
    let result = sim
        .try_run(WARMUP, MEASURE, &Watchdog::default())
        .expect("sequential run");
    let wall = t0.elapsed().as_secs_f64();
    assert!(sim.sanitizer().is_clean(), "sequential audit failed");
    (wall, result.digest(), sim.into_probe().into_series())
}

struct FragRun {
    wall: f64,
    digest: u64,
    series: IntervalSeries,
    fragments: u64,
    snapshot_bytes: u64,
    stitch_sec: f64,
}

/// One fragmented run end to end: Null/Null scout, `jobs`-wide probed +
/// sanitized replay, interval-series stitch.
fn fragmented(specs: &[ThreadSpec], jobs: usize) -> FragRun {
    let mut scout = Simulator::new(SimConfig::baseline(), policy(), specs);
    let factory = || {
        Simulator::try_with_specs(
            SimConfig::baseline(),
            policy(),
            specs,
            IntervalProbe::new(IntervalConfig { window: WINDOW }),
            RecordingSanitizer::new(),
        )
        .map_err(SimError::from)
    };
    let t0 = Instant::now();
    let report = scout
        .try_run_fragmented(
            WARMUP,
            MEASURE,
            &Watchdog::default(),
            &FragmentOpts {
                jobs,
                fragment_cycles: FRAGMENT_CYCLES,
            },
            &factory,
        )
        .expect("fragmented run");
    for frag in &report.fragments {
        assert!(
            frag.sanitizer.is_clean(),
            "fragment {} audit failed",
            frag.index
        );
    }
    let fragments = report.fragments.len() as u64;
    let snapshot_bytes = report.snapshot_bytes;
    let digest = report.result.digest();
    let parts: Vec<IntervalSeries> = report
        .fragments
        .into_iter()
        .map(|f| f.probe.into_series())
        .collect();
    let s0 = Instant::now();
    let series = IntervalSeries::stitch(parts.iter()).expect("series stitch");
    let stitch_sec = s0.elapsed().as_secs_f64();
    let wall = t0.elapsed().as_secs_f64();
    FragRun {
        wall,
        digest,
        series,
        fragments,
        snapshot_bytes,
        stitch_sec,
    }
}

fn main() {
    if let Some(filter) = std::env::args().skip(1).find(|a| !a.starts_with('-')) {
        if !"pr10".contains(filter.as_str()) {
            return;
        }
    }
    let jobs = match std::env::var("SMT_JOBS") {
        Ok(v) => parse_jobs(Some(&v)).expect("SMT_JOBS must be a positive integer"),
        Err(_) => 4,
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let specs = specs();

    let mut seq_best = f64::INFINITY;
    let mut frag_best = f64::INFINITY;
    let mut stitch_best = f64::INFINITY;
    let mut speedup: f64 = 0.0;
    let mut digests_equal = true;
    let mut fragments = 0;
    let mut snapshot_bytes = 0;
    for trial in 0..=TRIALS {
        let (seq_s, seq_digest, seq_series) = sequential(&specs);
        let frag = fragmented(&specs, jobs);
        digests_equal &= frag.digest == seq_digest && frag.series.digest() == seq_series.digest();
        fragments = frag.fragments;
        snapshot_bytes = frag.snapshot_bytes;
        if trial > 0 {
            // Trial 0 is an untimed warm-up.
            seq_best = seq_best.min(seq_s);
            frag_best = frag_best.min(frag.wall);
            stitch_best = stitch_best.min(frag.stitch_sec);
            speedup = speedup.max(seq_s / frag.wall);
        }
        black_box((frag.digest, seq_digest));
    }

    eprintln!("sequential probed+sanitized    {:>9.1} ms", seq_best * 1e3);
    eprintln!(
        "fragmented, {jobs} jobs            {:>9.1} ms",
        frag_best * 1e3
    );
    eprintln!("speedup                        {speedup:>9.3}x (CI bound 1.4x at 4 jobs)");
    eprintln!("fragments                      {fragments:>9}  ({snapshot_bytes} snapshot bytes)");
    eprintln!(
        "series stitch                  {:>9.3} ms",
        stitch_best * 1e3
    );
    eprintln!("digest equality                {digests_equal:>9}");
    eprintln!("available cores                {cores:>9}");

    let json = Json::obj(vec![
        ("bench", Json::str("pr10")),
        ("schema_version", Json::U64(1)),
        ("warmup", Json::U64(WARMUP)),
        ("measure", Json::U64(MEASURE)),
        ("fragment_cycles", Json::U64(FRAGMENT_CYCLES)),
        ("jobs", Json::U64(jobs as u64)),
        ("available_cores", Json::U64(cores as u64)),
        ("trials", Json::U64(TRIALS as u64)),
        ("fragments", Json::U64(fragments)),
        ("snapshot_bytes", Json::U64(snapshot_bytes)),
        ("sequential_sec", Json::F64(seq_best)),
        ("fragmented_sec", Json::F64(frag_best)),
        ("stitch_sec", Json::F64(stitch_best)),
        ("speedup", Json::F64(speedup)),
        ("digests_equal", Json::Bool(digests_equal)),
    ]);
    let repo_root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = repo_root.join("BENCH_PR10.json");
    std::fs::write(&out, json.render_pretty() + "\n").expect("write BENCH_PR10.json");
    eprintln!("wrote {}", out.display());
}
