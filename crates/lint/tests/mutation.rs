//! Mutation validation of the cross-file rules: each test copies the real
//! workspace, seeds one representative coverage hole, and proves the rule
//! that exists to catch it actually fires. This is the lint's own
//! sanitizer-style evidence — a rule that cannot catch its target
//! mutation is dead weight.

mod util;

use smt_lint::RuleCode;
use util::TempWorkspace;

#[test]
fn pristine_copy_is_clean() {
    let ws = TempWorkspace::copy_current("pristine");
    let r = ws.run();
    assert!(
        r.is_clean(),
        "the copied tree must lint clean before any mutation:\n{}",
        smt_lint::render(&r, false)
    );
}

#[test]
fn dropping_a_snapshot_capture_fires_smt008() {
    let ws = TempWorkspace::copy_current("smt008");
    ws.mutate(
        "crates/pipeline/src/sim.rs",
        "snapio::put_u64(out, self.skip_spans);",
        "",
    );
    let r = ws.run();
    assert!(
        r.active
            .iter()
            .any(|d| d.code == RuleCode::Smt008
                && d.item.as_deref() == Some("Simulator::skip_spans")),
        "un-captured skip_spans must fire SMT008:\n{}",
        smt_lint::render(&r, false)
    );
}

#[test]
fn dropping_a_dispatch_arm_fires_smt009() {
    let ws = TempWorkspace::copy_current("smt009");
    ws.mutate(
        "crates/core/src/factory.rs",
        "PolicyKind::Flush => v.visit(Flush::new()),",
        "",
    );
    let r = ws.run();
    assert!(
        r.active
            .iter()
            .any(|d| d.code == RuleCode::Smt009 && d.message.contains("Flush")),
        "a dispatch fn missing the Flush variant must fire SMT009:\n{}",
        smt_lint::render(&r, false)
    );
}

#[test]
fn untesting_an_invariant_fires_smt010() {
    let ws = TempWorkspace::copy_current("smt010");
    // Retarget INV008's only mutation test at a different invariant: the
    // EventLenMismatch class loses its firing evidence.
    ws.mutate(
        "crates/pipeline/tests/sanitizer.rs",
        "InvariantCode::EventLenMismatch",
        "InvariantCode::EventPastDue",
    );
    let r = ws.run();
    assert!(
        r.active
            .iter()
            .any(|d| d.code == RuleCode::Smt010 && d.message.contains("INV008")),
        "an untested invariant must fire SMT010:\n{}",
        smt_lint::render(&r, false)
    );
}

#[test]
fn ungating_a_hook_fires_smt011() {
    let ws = TempWorkspace::copy_current("smt011");
    ws.append(
        "crates/pipeline/src/sim.rs",
        "\nfn rogue_probe_poke<P: Probe>(probe: &mut P, state: &CycleState) {\n    \
         probe.on_sample(state);\n}\n",
    );
    let r = ws.run();
    assert!(
        r.active.iter().any(|d| d.code == RuleCode::Smt011),
        "a hook call outside any ENABLED gate must fire SMT011:\n{}",
        smt_lint::render(&r, false)
    );
}

#[test]
fn dropping_a_stitch_field_fires_smt013() {
    let ws = TempWorkspace::copy_current("smt013");
    // The fragment stitcher's additive merge forgets one counter: every
    // sequential test stays green, fragmented runs silently under-report.
    ws.mutate(
        "crates/pipeline/src/fragment.rs",
        "acc.dispatch_stalls += d.dispatch_stalls;",
        "",
    );
    let r = ws.run();
    assert!(
        r.active.iter().any(|d| d.code == RuleCode::Smt013
            && d.item.as_deref() == Some("ThreadStats::dispatch_stalls")),
        "a merge fn missing a ThreadStats field must fire SMT013:\n{}",
        smt_lint::render(&r, false)
    );
}

#[test]
fn exit_const_drift_fires_smt012() {
    let ws = TempWorkspace::copy_current("smt012");
    ws.append(
        "crates/experiments/src/error.rs",
        "\npub const EXIT_ROGUE: i32 = 9;\n",
    );
    let r = ws.run();
    assert!(
        r.active
            .iter()
            .any(|d| d.code == RuleCode::Smt012 && d.message.contains("EXIT_ROGUE")),
        "an exit const outside the 0-5 contract must fire SMT012:\n{}",
        smt_lint::render(&r, false)
    );
}
