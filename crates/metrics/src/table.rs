//! Plain-text table formatting for experiment reports: fixed-width columns,
//! right-aligned numbers, paper-style layout.

/// A simple column-aligned text table builder.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a header underline; first column left-aligned, the rest
    /// right-aligned.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[0]));
                } else {
                    line.push_str(&format!("  {:>width$}", c, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with 2 decimals (the paper's IPC precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage with sign and one decimal, as in "+18.0%".
pub fn pct(x: f64) -> String {
    format!("{x:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["wl", "IC", "DWARN"]);
        t.row(vec!["2-ILP", "3.91", "3.95"]);
        t.row(vec!["8-MEM", "1.2", "1.61"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("DWARN"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric columns line up.
        assert!(lines[2].ends_with("3.95"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(18.04), "+18.0%");
        assert_eq!(pct(-2.96), "-3.0%");
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
    }
}
