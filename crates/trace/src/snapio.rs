//! Minimal binary serialization primitives for machine snapshots.
//!
//! The checkpoint/restore engine serializes the complete simulator state —
//! spread across every crate of the workspace — into one versioned,
//! checksummed byte buffer. This module is the shared vocabulary: a writer
//! that appends fixed-width little-endian primitives to a `Vec<u8>` and a
//! bounds-checked [`SnapReader`] that consumes them in the same order.
//! It lives here, at the bottom of the dependency chain, so `smt-uarch`,
//! `smt-pipeline`, and `dwarn-core` can all expose `save_state` /
//! `load_state` methods over their private fields without a new crate.
//!
//! Design rules, shared by every `save_state` in the workspace:
//!
//! * **Little-endian, fixed-width.** No varints: snapshots are consumed by
//!   the producing machine (crash-resume) and compared byte-for-byte by
//!   the golden restore-equivalence suite, so simplicity beats size.
//! * **Evolving state only.** Construction-derived state (configs, code
//!   images, pre-computed tables) is *not* serialized; `load_state`
//!   restores into an identically-constructed object and validates that
//!   the construction-derived shape (lengths, capacities) matches.
//! * **Deterministic order.** Hash-map content is written sorted by key;
//!   everything else in declaration order. Two snapshots of equal machine
//!   state are byte-identical.
//! * **Floats as bit patterns.** `f64` round-trips through `to_bits`, so
//!   NaN payloads and signed zeros survive exactly.

use std::fmt;

/// A malformed or truncated snapshot section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The reader ran out of bytes mid-field.
    Truncated {
        /// Bytes requested by the failing read.
        needed: usize,
        /// Bytes remaining in the buffer.
        left: usize,
    },
    /// A field decoded to a value the receiving structure cannot accept
    /// (length mismatch against the constructed shape, unknown enum tag,
    /// out-of-range index, ...).
    Malformed(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, left } => {
                write!(f, "truncated snapshot: needed {needed} bytes, {left} left")
            }
            SnapError::Malformed(m) => write!(f, "malformed snapshot field: {m}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl SnapError {
    /// Shorthand for a [`SnapError::Malformed`] with a formatted message.
    pub fn malformed(msg: impl Into<String>) -> SnapError {
        SnapError::Malformed(msg.into())
    }
}

// --- Writer side: free functions appending to a Vec<u8>. ---

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// `usize` is written as `u64`; snapshots are architecture-portable.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// `f32` as its bit pattern (exact round-trip).
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

/// `f64` as its bit pattern (exact round-trip, NaN payloads included).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Length-prefixed raw bytes.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_usize(out, v.len());
    out.extend_from_slice(v);
}

/// Length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

/// `Option<T>` via a presence byte followed by the payload.
pub fn put_opt<T>(out: &mut Vec<u8>, v: Option<T>, mut put: impl FnMut(&mut Vec<u8>, T)) {
    match v {
        None => put_bool(out, false),
        Some(x) => {
            put_bool(out, true);
            put(out, x);
        }
    }
}

/// A bounds-checked cursor over a snapshot section.
#[derive(Debug, Clone, Copy)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — `load_state` callers check
    /// this to reject trailing garbage.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                left: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::malformed(format!("bool byte {b:#x}"))),
        }
    }

    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::malformed(format!("usize overflow: {v}")))
    }

    /// A `usize` additionally bounded by `max` — for collection lengths,
    /// so a corrupt length field fails fast instead of triggering a huge
    /// allocation.
    pub fn len_capped(&mut self, max: usize) -> Result<usize, SnapError> {
        let v = self.usize()?;
        if v > max {
            return Err(SnapError::malformed(format!(
                "length {v} exceeds cap {max}"
            )));
        }
        Ok(v)
    }

    pub fn f32(&mut self) -> Result<f32, SnapError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed raw bytes (borrowed from the buffer).
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| SnapError::malformed(format!("invalid utf-8: {e}")))
    }

    /// `Option<T>` via a presence byte.
    pub fn opt<T>(
        &mut self,
        mut read: impl FnMut(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        if self.bool()? {
            Ok(Some(read(self)?))
        } else {
            Ok(None)
        }
    }

    /// Fail unless the section was consumed exactly.
    pub fn finish(self, what: &str) -> Result<(), SnapError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapError::malformed(format!(
                "{} bytes of trailing data after {what}",
                self.remaining()
            )))
        }
    }
}

/// FNV-1a over a byte slice — the workspace's standard content checksum
/// (same constants as `SimResult::digest` and the campaign cache).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_bool(&mut buf, true);
        put_u16(&mut buf, 0x1234);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_usize(&mut buf, 123_456);
        put_f32(&mut buf, -0.0);
        put_f64(&mut buf, f64::INFINITY);
        put_bytes(&mut buf, b"abc");
        put_str(&mut buf, "déjà");
        put_opt(&mut buf, Some(9u64), put_u64);
        put_opt::<u64>(&mut buf, None, put_u64);

        let mut r = SnapReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert_eq!(r.str().unwrap(), "déjà");
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(9));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        r.finish("test").unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        let mut r = SnapReader::new(&buf);
        let _ = r.u16().unwrap();
        let e = r.u64().unwrap_err();
        assert!(matches!(e, SnapError::Truncated { needed: 8, left: 2 }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 1);
        put_u8(&mut buf, 0);
        let mut r = SnapReader::new(&buf);
        let _ = r.u64().unwrap();
        let e = r.finish("section").unwrap_err();
        assert!(e.to_string().contains("trailing data after section"), "{e}");
    }

    #[test]
    fn bad_bool_and_length_cap_are_malformed() {
        let buf = [7u8];
        assert!(SnapReader::new(&buf).bool().is_err());
        let mut buf = Vec::new();
        put_usize(&mut buf, 1 << 40);
        assert!(SnapReader::new(&buf).len_capped(1024).is_err());
    }

    #[test]
    fn nan_payloads_survive() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut buf = Vec::new();
        put_f64(&mut buf, weird);
        let back = SnapReader::new(&buf).f64().unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") per the published reference values.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
