//! Sanitizer end-to-end tests: a clean machine audits clean (and
//! bit-identical to an unsanitized run), and mutation-style corruptions of
//! each invariant class are actually caught with the matching code.

use smt_pipeline::{
    FetchPolicy, InvariantCode, Mutation, NullProbe, PolicyView, RecordingSanitizer, SimConfig,
    Simulator, ThreadSpec,
};
use smt_trace::profile;

struct IcountTest;

impl FetchPolicy for IcountTest {
    fn name(&self) -> &'static str {
        "ICOUNT-TEST"
    }
    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        view.icount_order_into(out);
    }
}

fn specs() -> Vec<ThreadSpec> {
    vec![
        ThreadSpec::new(profile::mcf()),
        ThreadSpec::new(profile::bzip2()),
    ]
}

fn sanitized() -> Simulator<NullProbe, RecordingSanitizer> {
    Simulator::try_sanitized(
        SimConfig::baseline(),
        Box::new(IcountTest) as Box<dyn FetchPolicy>,
        &specs(),
        RecordingSanitizer::new(),
    )
    .expect("baseline config is valid")
}

/// Run long enough for every machine structure (ROB, IQs, event wheel,
/// outstanding misses, declarations) to be exercised.
const WARM: u64 = 3_000;

#[test]
fn clean_machine_audits_clean_and_stays_bit_identical() {
    let mut plain = Simulator::new(SimConfig::baseline(), Box::new(IcountTest), &specs());
    let mut checked = sanitized();
    let r_plain = plain.run(1_000, 5_000);
    let r_checked = checked.run(1_000, 5_000);
    assert_eq!(
        r_plain.digest(),
        r_checked.digest(),
        "the sanitizer is observation-only; sanitized runs must be bit-identical"
    );
    assert!(
        checked.sanitizer().is_clean(),
        "clean machine reported violations:\n{}",
        checked.sanitizer().render_report()
    );
}

/// Inject one mutation into a warmed-up machine and return the recorded
/// violations.
fn violations_after(m: Mutation) -> RecordingSanitizer {
    let mut sim = sanitized();
    for _ in 0..WARM {
        sim.step();
    }
    assert!(
        sim.sanitizer().is_clean(),
        "machine must be clean before the mutation:\n{}",
        sim.sanitizer().render_report()
    );
    // Some corruptions need a particular transient state (a free ROB slot,
    // a free register); step until the injection lands.
    let mut guard = 0;
    while !sim.inject_for_test(m) {
        sim.step();
        guard += 1;
        assert!(guard < 10_000, "mutation {m:?} never became applicable");
    }
    sim.force_audit();
    sim.into_sanitizer()
}

fn assert_caught(m: Mutation, code: InvariantCode) {
    let rec = violations_after(m);
    assert!(
        rec.saw(code),
        "mutation {m:?} must trigger {code}; got:\n{}",
        rec.render_report()
    );
}

#[test]
fn leaked_int_register_is_caught() {
    assert_caught(Mutation::LeakIntReg, InvariantCode::RegConservationInt);
}

#[test]
fn leaked_fp_register_is_caught() {
    assert_caught(Mutation::LeakFpReg, InvariantCode::RegConservationFp);
}

#[test]
fn leaked_iq_entry_is_caught() {
    assert_caught(Mutation::LeakIqEntry, InvariantCode::IqConservation);
}

#[test]
fn leaked_rob_slot_is_caught() {
    assert_caught(Mutation::LeakRobSlot, InvariantCode::RobConservation);
}

#[test]
fn inflated_icount_is_caught() {
    assert_caught(Mutation::InflateIcount, InvariantCode::IcountConsistency);
}

#[test]
fn phantom_dmiss_misclassification_is_caught() {
    // The corrupted counter would sort thread 0 into DWarn's Dmiss group
    // without an outstanding L1 miss — exactly the misclassification the
    // paper's accounting must exclude.
    assert_caught(Mutation::PhantomDmiss, InvariantCode::DmissConsistency);
}

#[test]
fn phantom_declared_l2_miss_is_caught() {
    assert_caught(
        Mutation::PhantomDeclared,
        InvariantCode::DeclaredConsistency,
    );
}

#[test]
fn past_due_event_is_caught() {
    assert_caught(Mutation::PastDueEvent, InvariantCode::EventPastDue);
}

#[test]
fn skewed_event_wheel_length_is_caught() {
    assert_caught(Mutation::SkewEventLen, InvariantCode::EventLenMismatch);
}

#[test]
fn dropped_rob_entry_is_caught() {
    // A lost in-flight instruction: the slab still counts it live, but no
    // fetch queue or ROB holds it any more.
    assert_caught(Mutation::DropRobEntry, InvariantCode::SlabConservation);
}

#[test]
fn duplicated_cache_tag_is_caught() {
    assert_caught(
        Mutation::DuplicateCacheTag,
        InvariantCode::CacheTagIntegrity,
    );
}

#[test]
fn past_due_event_also_reports_expected_cycle() {
    let rec = violations_after(Mutation::PastDueEvent);
    let v = rec
        .violations()
        .iter()
        .find(|v| v.code == InvariantCode::EventPastDue)
        .expect("INV007 recorded");
    assert!(v.actual < v.expected, "the event is due in the past: {v}");
    assert!(
        !v.snapshot.threads.is_empty(),
        "snapshot carries thread state"
    );
}

#[test]
fn rob_age_disorder_is_caught() {
    let mut sim = sanitized();
    for _ in 0..WARM {
        sim.step();
    }
    // The ROB drains between cycles; retry until the swap lands on a
    // moment with at least two in-flight instructions.
    let mut applied = sim.inject_for_test(Mutation::RobAgeSwap);
    let mut guard = 0;
    while !applied && guard < 10_000 {
        sim.step();
        applied = sim.inject_for_test(Mutation::RobAgeSwap);
        guard += 1;
    }
    assert!(applied, "never found two ROB entries to swap");
    sim.force_audit();
    let rec = sim.into_sanitizer();
    assert!(
        rec.saw(InvariantCode::RobAgeOrder),
        "swapped ROB entries must trigger INV005; got:\n{}",
        rec.render_report()
    );
}

/// A policy that lies: produces a duplicated fetch order.
struct DuplicatingPolicy;

impl FetchPolicy for DuplicatingPolicy {
    fn name(&self) -> &'static str {
        "DUP-TEST"
    }
    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..view.num_threads());
        out.push(0); // thread 0 twice
    }
}

#[test]
fn duplicate_fetch_order_is_caught() {
    let mut sim = Simulator::try_sanitized(
        SimConfig::baseline(),
        Box::new(DuplicatingPolicy),
        &specs(),
        RecordingSanitizer::new(),
    )
    .expect("valid config");
    sim.step();
    let rec = sim.into_sanitizer();
    assert!(
        rec.saw(InvariantCode::PolicyOrder),
        "duplicated order must trigger INV012; got:\n{}",
        rec.render_report()
    );
}

/// A policy whose published order contradicts its own audit rule — the
/// plumbing that lets DWarn's group/gating invariants surface as INV013.
struct SelfContradictingPolicy;

impl FetchPolicy for SelfContradictingPolicy {
    fn name(&self) -> &'static str {
        "CONTRADICT-TEST"
    }
    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        // Claims (via audit) to order by ascending ICOUNT, but emits
        // descending order.
        view.icount_order_into(out);
        out.reverse();
    }
    fn audit_order(&self, view: &PolicyView, order: &[usize]) -> Result<(), String> {
        for w in order.windows(2) {
            if view.threads[w[0]].icount > view.threads[w[1]].icount {
                return Err(format!(
                    "thread {} (icount {}) ordered before thread {} (icount {})",
                    w[0], view.threads[w[0]].icount, w[1], view.threads[w[1]].icount
                ));
            }
        }
        Ok(())
    }
}

#[test]
fn policy_order_contradicting_its_own_invariants_is_caught() {
    let mut sim = Simulator::try_sanitized(
        SimConfig::baseline(),
        Box::new(SelfContradictingPolicy),
        &specs(),
        RecordingSanitizer::new(),
    )
    .expect("valid config");
    // Step until the threads' ICOUNTs diverge enough for the reversed
    // order to be provably wrong.
    for _ in 0..WARM {
        sim.step();
        if sim.sanitizer().saw(InvariantCode::PolicyGating) {
            break;
        }
    }
    let rec = sim.into_sanitizer();
    assert!(
        rec.saw(InvariantCode::PolicyGating),
        "self-contradicting order must trigger INV013; got:\n{}",
        rec.render_report()
    );
}

#[test]
fn null_sanitizer_default_still_exposes_check_invariants() {
    // The legacy panic-based checker stays for fast in-test assertions.
    let mut sim = Simulator::new(SimConfig::baseline(), Box::new(IcountTest), &specs());
    for _ in 0..500 {
        sim.step();
    }
    sim.check_invariants();
}
