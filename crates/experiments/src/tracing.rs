//! The `trace` subcommand: run one (architecture, workload, policy)
//! simulation under a [`RecordingProbe`] and export the capture as a Chrome
//! trace-event file (loadable in Perfetto / `chrome://tracing`) plus a
//! structured stats JSON.
//!
//! ```text
//! cargo run -p smt-experiments -- trace --policy dwarn --workload mix4
//! cargo run -p smt-experiments -- trace --policy flush --workload 4-MEM \
//!     --arch deep --cycles 50000 --detail --out traces/
//! ```

use std::path::PathBuf;

use dwarn_core::PolicyKind;
use smt_obs::{chrome_trace, Json, RecordingProbe};
use smt_pipeline::Simulator;
use smt_workloads::WorkloadClass;

use crate::runner::Arch;

/// Parsed `trace` subcommand options.
pub struct TraceOpts {
    pub policy: PolicyKind,
    pub threads: usize,
    pub class: WorkloadClass,
    pub arch: Arch,
    pub warmup: u64,
    pub measure: u64,
    pub sample_every: u64,
    /// Also capture per-instruction fetch/dispatch/issue/commit instants.
    pub detail: bool,
    /// Event-ring capacity (oldest events drop beyond this).
    pub ring: usize,
    pub out_dir: PathBuf,
}

impl Default for TraceOpts {
    fn default() -> TraceOpts {
        TraceOpts {
            policy: PolicyKind::DWarn,
            threads: 4,
            class: WorkloadClass::Mix,
            arch: Arch::Baseline,
            warmup: 2_000,
            measure: 20_000,
            sample_every: 50,
            detail: false,
            ring: 1 << 20,
            out_dir: PathBuf::from("target/traces"),
        }
    }
}

/// Parse a workload spelling leniently: `mix4`, `4-MIX`, `4mem`, `MEM`
/// (thread count defaults to 4) all work.
fn parse_workload(s: &str) -> Result<(usize, WorkloadClass), String> {
    let lower = s.to_ascii_lowercase();
    let digits: String = lower.chars().filter(|c| c.is_ascii_digit()).collect();
    let letters: String = lower.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    let class = match letters.as_str() {
        "ilp" => WorkloadClass::Ilp,
        "mix" => WorkloadClass::Mix,
        "mem" => WorkloadClass::Mem,
        other => return Err(format!("unknown workload class '{other}' in '{s}'")),
    };
    let threads = if digits.is_empty() {
        4
    } else {
        digits
            .parse::<usize>()
            .map_err(|_| format!("bad thread count in '{s}'"))?
    };
    if !(1..=8).contains(&threads) {
        return Err(format!("thread count {threads} out of range 1..=8"));
    }
    Ok((threads, class))
}

fn parse_arch(s: &str) -> Result<Arch, String> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" => Ok(Arch::Baseline),
        "small" => Ok(Arch::Small),
        "deep" => Ok(Arch::Deep),
        other => Err(format!("unknown arch '{other}' (baseline|small|deep)")),
    }
}

/// Parse the arguments after `trace`.
pub fn parse_args(args: &[&str]) -> Result<TraceOpts, String> {
    let mut o = TraceOpts::default();
    let mut it = args.iter();
    while let Some(&a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a {
            "--policy" => {
                let v = value(a)?;
                o.policy = PolicyKind::parse(&v).ok_or_else(|| format!("unknown policy '{v}'"))?;
            }
            "--workload" => (o.threads, o.class) = parse_workload(&value(a)?)?,
            "--arch" => o.arch = parse_arch(&value(a)?)?,
            "--warmup" => o.warmup = value(a)?.parse().map_err(|e| format!("--warmup: {e}"))?,
            "--cycles" => o.measure = value(a)?.parse().map_err(|e| format!("--cycles: {e}"))?,
            "--sample-every" => {
                o.sample_every = value(a)?
                    .parse()
                    .map_err(|e| format!("--sample-every: {e}"))?;
                if o.sample_every == 0 {
                    return Err("--sample-every must be >= 1".to_string());
                }
            }
            "--detail" => o.detail = true,
            "--out" => o.out_dir = PathBuf::from(value(a)?),
            other => return Err(format!("unknown trace argument '{other}'")),
        }
    }
    Ok(o)
}

/// Run the traced simulation and write `<arch>-<workload>-<policy>.trace.json`
/// and `...stats.json` under `out_dir`. Returns a human-readable summary.
///
/// Like every other CLI entry path, the workload and configuration are
/// validated up front with typed errors rather than trusted to downstream
/// panics.
pub fn run(o: &TraceOpts) -> Result<String, crate::error::ExpError> {
    use crate::error::ExpError;
    let io = |path: &std::path::Path| {
        let context = path.display().to_string();
        move |e: std::io::Error| ExpError::Io {
            context,
            detail: e.to_string(),
        }
    };
    let wl = smt_workloads::try_workload(o.threads, o.class).ok_or(ExpError::UnknownWorkload {
        threads: o.threads,
        class: o.class.as_str(),
    })?;
    let specs = wl.thread_specs();
    let cfg = o.arch.config();
    cfg.validate(specs.len())?;
    let probe = RecordingProbe::new(specs.len(), o.ring).with_detail(o.detail);
    let mut sim = Simulator::with_probe(cfg, o.policy.build(), &specs, probe);
    let (result, occ) = sim.run_sampled(o.warmup, o.measure, o.sample_every);
    let probe = sim.into_probe();

    let names: Vec<String> = wl.benchmarks.iter().map(|b| b.to_string()).collect();
    let trace = chrome_trace(probe.ring(), probe.samples(), &names);

    let mut stats =
        crate::artifacts::stats_json("trace", o.arch.as_str(), &wl.name, o.policy.name(), &result);
    if let Json::Obj(pairs) = &mut stats {
        // A trace is always a live execution, so the switch count exists
        // (the generic stats path leaves it null for cache-served runs).
        if let Some(p) = pairs.iter_mut().find(|(k, _)| k == "policy_switches") {
            p.1 = Json::U64(probe.policy_switches());
        }
        pairs.push((
            "capture".to_string(),
            Json::obj(vec![
                ("events", Json::U64(probe.ring().len() as u64)),
                ("events_dropped", Json::U64(probe.ring().dropped())),
                ("occupancy_samples", Json::U64(probe.samples().len() as u64)),
                ("sample_every", Json::U64(o.sample_every)),
                ("detail", Json::Bool(o.detail)),
            ]),
        ));
        pairs.push((
            "occupancy".to_string(),
            Json::obj(vec![
                (
                    "avg_iq",
                    Json::Arr(occ.avg_iq.iter().map(|&x| Json::F64(x)).collect()),
                ),
                (
                    "peak_iq",
                    Json::Arr(occ.peak_iq.iter().map(|&x| Json::U64(x as u64)).collect()),
                ),
                (
                    "avg_regs",
                    Json::Arr(vec![Json::F64(occ.avg_regs.0), Json::F64(occ.avg_regs.1)]),
                ),
                (
                    "avg_rob",
                    Json::Arr(occ.avg_rob.iter().map(|&x| Json::F64(x)).collect()),
                ),
            ]),
        ));
    }
    // Also feed the global --stats-json sink, when active.
    crate::artifacts::record_tagged_with_switches(
        "trace",
        o.arch.as_str(),
        &wl.name,
        o.policy.name(),
        &result,
        Some(probe.policy_switches()),
    );

    std::fs::create_dir_all(&o.out_dir).map_err(io(&o.out_dir))?;
    let stem = format!(
        "{}-{}-{}",
        o.arch.as_str(),
        wl.name.to_ascii_lowercase(),
        o.policy.name().to_ascii_lowercase()
    );
    let trace_path = o.out_dir.join(format!("{stem}.trace.json"));
    let stats_path = o.out_dir.join(format!("{stem}.stats.json"));
    std::fs::write(&trace_path, &trace).map_err(io(&trace_path))?;
    std::fs::write(&stats_path, stats.render_pretty()).map_err(io(&stats_path))?;

    Ok(format!(
        "traced {} / {} / {} for {} cycles (+{} warmup)\n\
         throughput {:.2} IPC, {} events captured ({} dropped), {} occupancy samples\n\
         trace: {}\n\
         stats: {}",
        o.arch.as_str(),
        wl.name,
        o.policy.name(),
        o.measure,
        o.warmup,
        result.throughput(),
        probe.ring().len(),
        probe.ring().dropped(),
        probe.samples().len(),
        trace_path.display(),
        stats_path.display(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_spellings_parse() {
        assert_eq!(parse_workload("mix4").unwrap(), (4, WorkloadClass::Mix));
        assert_eq!(parse_workload("4-MIX").unwrap(), (4, WorkloadClass::Mix));
        assert_eq!(parse_workload("2mem").unwrap(), (2, WorkloadClass::Mem));
        assert_eq!(parse_workload("ILP").unwrap(), (4, WorkloadClass::Ilp));
        assert!(parse_workload("9-MIX").is_err());
        assert!(parse_workload("fft4").is_err());
    }

    #[test]
    fn args_parse_into_options() {
        let o = parse_args(&[
            "--policy",
            "flush",
            "--workload",
            "mem2",
            "--arch",
            "deep",
            "--cycles",
            "123",
            "--detail",
        ])
        .unwrap();
        assert_eq!(o.policy, PolicyKind::Flush);
        assert_eq!((o.threads, o.class), (2, WorkloadClass::Mem));
        assert_eq!(o.arch, Arch::Deep);
        assert_eq!(o.measure, 123);
        assert!(o.detail);
        assert!(parse_args(&["--policy"]).is_err());
        assert!(parse_args(&["--frobnicate"]).is_err());
    }

    #[test]
    fn trace_runs_and_writes_files() {
        let dir = std::env::temp_dir().join("smt-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let o = TraceOpts {
            warmup: 200,
            measure: 2_000,
            out_dir: dir.clone(),
            ..TraceOpts::default()
        };
        let summary = run(&o).unwrap();
        assert!(summary.contains("trace:"));
        let trace = std::fs::read_to_string(dir.join("baseline-4-mix-dwarn.trace.json")).unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["));
        let stats = std::fs::read_to_string(dir.join("baseline-4-mix-dwarn.stats.json")).unwrap();
        assert!(stats.contains("\"throughput_ipc\""));
        assert!(stats.contains("\"occupancy\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
