//! End-to-end pipeline tests using a minimal ICOUNT policy defined here
//! (the real policy implementations live in `dwarn-core`, which depends on
//! this crate).

use smt_pipeline::{
    CheckpointOpts, FetchPolicy, MachineSnapshot, PolicyView, RunOutcome, SimConfig, Simulator,
    SnapshotError, ThreadSpec, Watchdog,
};
use smt_trace::profile;

struct IcountTest;

impl FetchPolicy for IcountTest {
    fn name(&self) -> &'static str {
        "ICOUNT-TEST"
    }
    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        view.icount_order_into(out);
    }
}

fn sim(specs: Vec<ThreadSpec>) -> Simulator {
    Simulator::new(SimConfig::baseline(), Box::new(IcountTest), &specs)
}

fn spec(p: smt_trace::BenchProfile, seed: u64, skip: u64) -> ThreadSpec {
    ThreadSpec {
        profile: p,
        seed,
        skip,
    }
}

#[test]
fn single_ilp_thread_commits_with_reasonable_ipc() {
    let mut s = sim(vec![spec(profile::bzip2(), 1, 0)]);
    let r = s.run(5_000, 20_000);
    let ipc = r.ipcs()[0];
    assert!(
        ipc > 1.0,
        "an ILP benchmark on an 8-wide machine should exceed IPC 1, got {ipc}"
    );
    assert!(ipc <= 8.0, "cannot exceed machine width, got {ipc}");
}

#[test]
fn single_mem_thread_is_memory_bound() {
    let mut s = sim(vec![spec(profile::mcf(), 1, 0)]);
    let r = s.run(5_000, 20_000);
    let ipc = r.ipcs()[0];
    assert!(
        ipc < 1.0,
        "mcf misses to memory on ~9% of instructions; IPC must be low, got {ipc}"
    );
    assert!(ipc > 0.01, "but it must make progress, got {ipc}");
}

#[test]
fn ilp_thread_outruns_mem_thread() {
    let mut a = sim(vec![spec(profile::bzip2(), 1, 0)]);
    let mut b = sim(vec![spec(profile::mcf(), 1, 0)]);
    let ra = a.run(5_000, 20_000);
    let rb = b.run(5_000, 20_000);
    assert!(ra.ipcs()[0] > 3.0 * rb.ipcs()[0]);
}

#[test]
fn simulation_is_deterministic() {
    let specs = vec![spec(profile::gzip(), 3, 0), spec(profile::twolf(), 4, 0)];
    let mut a = sim(specs.clone());
    let mut b = sim(specs);
    let ra = a.run(2_000, 10_000);
    let rb = b.run(2_000, 10_000);
    assert_eq!(ra.threads, rb.threads);
    assert_eq!(ra.mem, rb.mem);
}

#[test]
fn invariants_hold_throughout_a_mixed_run() {
    let mut s = sim(vec![
        spec(profile::gzip(), 1, 0),
        spec(profile::mcf(), 2, 0),
        spec(profile::twolf(), 3, 0),
        spec(profile::bzip2(), 4, 0),
    ]);
    for _ in 0..200 {
        for _ in 0..50 {
            s.step();
        }
        s.check_invariants();
    }
    assert!(s.total_committed() > 0);
}

#[test]
fn two_threads_share_the_machine() {
    let mut s = sim(vec![
        spec(profile::gzip(), 1, 0),
        spec(profile::bzip2(), 2, 0),
    ]);
    let r = s.run(5_000, 20_000);
    // Both threads must make progress under ICOUNT.
    assert!(r.ipcs()[0] > 0.1, "thread 0 starved: {:?}", r.ipcs());
    assert!(r.ipcs()[1] > 0.1, "thread 1 starved: {:?}", r.ipcs());
    // And the total must exceed what a fair half-machine would give either.
    assert!(r.throughput() > 1.0);
}

#[test]
fn mem_stats_match_profile_targets_in_isolation() {
    // Table 2a reproduction at the pipeline level: run mcf alone and check
    // the realized L1/L2 miss rates against the profile's calibration.
    let p = profile::mcf();
    let mut s = sim(vec![spec(p.clone(), 7, 0)]);
    let r = s.run(10_000, 60_000);
    let m = &r.mem[0];
    assert!(m.loads > 1_000, "need a meaningful sample, got {}", m.loads);
    let l1 = m.l1_miss_rate();
    let l2 = m.l2_miss_rate();
    assert!(
        (l1 - p.l1_miss_rate).abs() < 0.08,
        "L1 miss rate {l1} vs target {}",
        p.l1_miss_rate
    );
    assert!(
        (l2 - p.l2_miss_rate).abs() < 0.08,
        "L2 miss rate {l2} vs target {}",
        p.l2_miss_rate
    );
}

#[test]
fn branch_mispredictions_occur_but_are_bounded() {
    let mut s = sim(vec![spec(profile::twolf(), 5, 0)]);
    let r = s.run(5_000, 30_000);
    let rate = r.branch_mispredict_rate;
    assert!(rate > 0.005, "some branches must mispredict, rate {rate}");
    assert!(rate < 0.30, "gshare should do better than {rate}");
    // Misprediction squashes must have happened.
    assert!(r.threads[0].squashed_mispredict > 0);
}

#[test]
fn small_config_runs_and_is_slower() {
    let specs = vec![spec(profile::gzip(), 1, 0), spec(profile::bzip2(), 2, 0)];
    let mut big = Simulator::new(SimConfig::baseline(), Box::new(IcountTest), &specs);
    let mut small = Simulator::new(SimConfig::small(), Box::new(IcountTest), &specs);
    let rb = big.run(5_000, 20_000);
    let rs = small.run(5_000, 20_000);
    assert!(
        rs.throughput() < rb.throughput(),
        "a 4-wide 1.4 machine cannot beat the 8-wide 2.8 baseline: {} vs {}",
        rs.throughput(),
        rb.throughput()
    );
    assert!(rs.throughput() > 0.2);
}

#[test]
fn deep_config_runs() {
    let specs = vec![spec(profile::gzip(), 1, 0), spec(profile::mcf(), 2, 0)];
    let mut s = Simulator::new(SimConfig::deep(), Box::new(IcountTest), &specs);
    let r = s.run(5_000, 20_000);
    assert!(r.throughput() > 0.1);
}

#[test]
fn eight_threads_run_without_leaks() {
    let names = [
        "gzip", "twolf", "bzip2", "mcf", "vpr", "eon", "parser", "gap",
    ];
    let specs: Vec<ThreadSpec> = names
        .iter()
        .enumerate()
        .map(|(i, n)| spec(profile::by_name(n).unwrap(), 10 + i as u64, 0))
        .collect();
    let mut s = sim(specs);
    let r = s.run(3_000, 15_000);
    s.check_invariants();
    assert!(r.throughput() > 1.0, "throughput {}", r.throughput());
    for (i, t) in r.threads.iter().enumerate() {
        assert!(t.committed > 0, "thread {i} ({}) starved", names[i]);
    }
}

#[test]
fn fetch_never_exceeds_commit_plus_squash_accounting() {
    let mut s = sim(vec![
        spec(profile::gzip(), 1, 0),
        spec(profile::mcf(), 2, 0),
    ]);
    let r = s.run(0, 20_000);
    for t in &r.threads {
        // Everything fetched is eventually committed, squashed, or still in
        // flight; over a long window fetched >= committed.
        assert!(t.fetched >= t.committed);
    }
}

// ----------------------------------------------------------------------
// Checkpoint / restore
// ----------------------------------------------------------------------

#[test]
fn restore_at_cycle_k_matches_the_straight_run() {
    let specs = vec![spec(profile::gzip(), 3, 0), spec(profile::mcf(), 4, 0)];
    let mut a = sim(specs.clone());
    for _ in 0..3_000 {
        a.step();
    }
    let snap = a.snapshot();
    assert!(!snap.has_run_state());
    // The snapshot survives the wire format.
    let snap = MachineSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    for _ in 0..6_000 {
        a.step();
    }
    let straight = a.snapshot();

    let mut b = sim(specs);
    b.restore(&snap).unwrap();
    // Equal machine state serializes to equal bytes immediately...
    assert_eq!(b.snapshot().digest(), snap.digest());
    // ...and continues bit-identically.
    for _ in 0..6_000 {
        b.step();
    }
    assert_eq!(b.snapshot().digest(), straight.digest());
    b.check_invariants();
}

#[test]
fn restore_rejects_a_differently_shaped_simulator() {
    let mut one = sim(vec![spec(profile::gzip(), 1, 0)]);
    one.run(0, 500);
    let snap = one.snapshot();
    let mut two = sim(vec![
        spec(profile::gzip(), 1, 0),
        spec(profile::mcf(), 2, 0),
    ]);
    assert!(matches!(
        two.restore(&snap).unwrap_err(),
        SnapshotError::IdentityMismatch(_)
    ));
    // A machine-only snapshot cannot seed a resume.
    let mut same = sim(vec![spec(profile::gzip(), 1, 0)]);
    assert_eq!(
        same.restore_run(&snap).unwrap_err(),
        SnapshotError::NoRunState
    );
    // Different configuration, same thread count and policy.
    let mut small = Simulator::new(
        SimConfig::small(),
        Box::new(IcountTest),
        &[spec(profile::gzip(), 1, 0)],
    );
    assert!(matches!(
        small.restore(&snap).unwrap_err(),
        SnapshotError::IdentityMismatch(_)
    ));
}

#[test]
fn interrupted_checkpointed_run_resumes_to_the_straight_result() {
    let specs = vec![spec(profile::twolf(), 5, 0), spec(profile::mcf(), 6, 0)];
    let wd = Watchdog::default();

    let mut a = sim(specs.clone());
    let straight = a.try_run(2_000, 10_000, &wd).unwrap();

    // Checkpoint every 1000 cycles; request a stop at the third poll.
    let polls = std::cell::Cell::new(0u32);
    let stop = || {
        polls.set(polls.get() + 1);
        polls.get() == 3
    };
    let mut periodic = Vec::new();
    let mut sink = |s: &MachineSnapshot| periodic.push(s.to_bytes());
    let mut opts = CheckpointOpts {
        interval: 1_000,
        sink: &mut sink,
        stop: Some(&stop),
    };
    let mut b = sim(specs.clone());
    let out = b
        .try_run_checkpointed(2_000, 10_000, &wd, &mut opts)
        .unwrap();
    let RunOutcome::Interrupted(snap) = out else {
        panic!("the stop request must interrupt the run");
    };
    assert!(snap.has_run_state());
    assert!(!periodic.is_empty(), "periodic checkpoints must have fired");

    // A fresh, identically-constructed simulator resumes through the wire
    // format — with a *different* checkpoint interval, which must not
    // change the result (chunking is behavior-neutral).
    let snap = MachineSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let mut c = sim(specs);
    let pending = c.restore_run(&snap).unwrap();
    assert!(pending.cycles_left() > 0);
    let mut sink2 = |_: &MachineSnapshot| {};
    let mut opts2 = CheckpointOpts {
        interval: 700,
        sink: &mut sink2,
        stop: None,
    };
    let RunOutcome::Completed(resumed) = c.resume_run(pending, &wd, &mut opts2).unwrap() else {
        panic!("no stop request on resume: the run must complete");
    };
    assert_eq!(resumed.cycles, straight.cycles);
    assert_eq!(resumed.threads, straight.threads);
    assert_eq!(resumed.mem, straight.mem);
    assert_eq!(
        resumed.branch_mispredict_rate.to_bits(),
        straight.branch_mispredict_rate.to_bits()
    );
    c.check_invariants();
}

#[test]
fn checkpointed_run_without_interruption_equals_try_run() {
    let specs = vec![spec(profile::gzip(), 9, 0), spec(profile::bzip2(), 10, 0)];
    let wd = Watchdog::default();
    let mut a = sim(specs.clone());
    let straight = a.try_run(1_000, 8_000, &wd).unwrap();

    let mut count = 0usize;
    let mut sink = |_: &MachineSnapshot| count += 1;
    let mut opts = CheckpointOpts {
        interval: 500,
        sink: &mut sink,
        stop: None,
    };
    let mut b = sim(specs);
    let RunOutcome::Completed(r) = b
        .try_run_checkpointed(1_000, 8_000, &wd, &mut opts)
        .unwrap()
    else {
        panic!("no stop request: the run must complete");
    };
    assert_eq!(r.threads, straight.threads);
    assert_eq!(r.mem, straight.mem);
    assert!(count > 0, "periodic checkpoints must have fired");
}
