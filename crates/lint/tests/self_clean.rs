//! The lint's own gate: this repository, scanned with its checked-in
//! allowlist, must be clean. This is the same check CI's "Static
//! analysis" job runs via the `smt-lint` binary; keeping it as a test
//! means `cargo test` alone already enforces the policy.

use std::path::Path;

#[test]
fn the_workspace_is_lint_clean_under_the_checked_in_allowlist() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = smt_lint::find_workspace_root(here).expect("workspace root above crates/lint");
    let report = smt_lint::run(&root).expect("lint run");
    assert!(
        report.files > 50,
        "suspiciously few sources scanned ({}); did the walk break?",
        report.files
    );
    assert!(
        report.is_clean(),
        "non-allowlisted diagnostics:\n{}",
        smt_lint::render(&report, false)
    );
    // The allowlist itself must be load-bearing: if it suppresses nothing
    // at all, it should be deleted (individual stale entries already fail
    // as SMT005 inside `run`).
    assert!(
        !report.suppressed.is_empty(),
        "lint.allow exists but suppressed nothing"
    );
}

#[test]
fn every_allowlist_entry_names_an_existing_file() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = smt_lint::find_workspace_root(here).expect("workspace root");
    let text = std::fs::read_to_string(root.join(smt_lint::ALLOWLIST_NAME)).expect("allowlist");
    let entries = smt_lint::parse_allowlist(&text).expect("well-formed allowlist");
    assert!(!entries.is_empty());
    for e in &entries {
        assert!(
            root.join(&e.path).is_file(),
            "allowlist entry points at a missing file: {}",
            e.path
        );
        assert!(
            e.reason.split_whitespace().count() >= 4,
            "justification for {} {} is too thin: {:?}",
            e.code,
            e.path,
            e.reason
        );
    }
}
