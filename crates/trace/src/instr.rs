//! Abstract µop instruction model.
//!
//! Fetch policies are ISA-agnostic: they act on per-thread occupancy counters
//! and cache events. The simulator therefore runs an abstract RISC-like µop
//! set — enough structure (register dependencies, memory addresses, control
//! flow) to drive a cycle-accurate out-of-order SMT back-end, without Alpha
//! instruction semantics.

/// Architectural register name. Integer and FP registers live in separate
/// spaces of [`NUM_ARCH_REGS`] names each.
pub type ArchReg = u8;

/// Architectural registers per class (int / fp), matching a classic RISC ISA.
pub const NUM_ARCH_REGS: u8 = 32;

/// Instruction word size in bytes; PCs advance by this much.
pub const INST_BYTES: u64 = 4;

/// Operation classes. Each class maps to one functional-unit pool and one
/// issue queue in the back-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU op.
    IntAlu,
    /// Multi-cycle integer multiply/divide.
    IntMul,
    /// Floating-point op.
    FpAlu,
    /// Memory load (int destination).
    Load,
    /// Memory store (no destination).
    Store,
    /// Conditional branch.
    CondBranch,
    /// Unconditional control transfer (jump, call, or return; see
    /// [`CtrlKind`]).
    Jump,
}

impl OpClass {
    /// True for control-flow instructions.
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::CondBranch | OpClass::Jump)
    }

    /// True for memory instructions.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Register class of the destination (if any): true = fp.
    pub fn dest_is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu)
    }

    /// Base execution latency in cycles (memory latency is added dynamically
    /// for loads by the cache hierarchy).
    pub fn base_latency(self) -> u64 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::FpAlu => 4,
            OpClass::Load => 1,  // address generation; cache adds the rest
            OpClass::Store => 1, // address generation; data drains at commit
            OpClass::CondBranch => 1,
            OpClass::Jump => 1,
        }
    }
}

/// Refinement of control-flow instructions, used by the front-end to choose
/// the right predictor structure (gshare, BTB, or return-address stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrlKind {
    /// Not a control-flow instruction.
    None,
    /// Conditional branch: gshare direction + BTB target.
    CondBr,
    /// Unconditional direct jump: BTB target.
    Jump,
    /// Call: BTB target; pushes the return address on the RAS.
    Call,
    /// Return: target predicted by popping the RAS.
    Return,
}

/// Address pools a static memory instruction can draw from. The pool mix is
/// what calibrates a benchmark's L1/L2 miss rates against the *real* cache
/// model (see `profile.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemPool {
    /// Small region resident in L1 — hits.
    Hot,
    /// Circularly-streamed region larger than L1 but resident in L2 —
    /// L1 misses that hit in L2.
    Warm,
    /// Endless streaming region — misses both levels.
    Cold,
}

/// A *static* instruction: one slot in a program's code image. Register
/// assignments are fixed at program-generation time, so data dependencies are
/// structural, as in real code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticInst {
    pub class: OpClass,
    /// Control-flow refinement; `CtrlKind::None` unless `class.is_branch()`.
    pub ctrl: CtrlKind,
    /// Destination architectural register, if the class produces a value.
    pub dest: Option<ArchReg>,
    /// Up to two source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// For memory ops: the pool this static instruction is *dominated* by.
    /// Each dynamic instance draws from the dominant pool with the profile's
    /// concentration probability, else from the aggregate mixture.
    pub mem_dominant: Option<MemPool>,
    /// For conditional branches: per-static probability of being taken
    /// (i.i.d. draw). Ignored when `loop_period > 0`.
    pub taken_bias: f32,
    /// For loop back-edges: the branch is taken except on every
    /// `loop_period`-th execution (a deterministic trip count, which is what
    /// makes real loop branches predictable). 0 = not a loop branch.
    pub loop_period: u16,
    /// For CondBr/Jump/Call: *instruction index* of the taken target.
    /// Unused (0) for other classes and for returns.
    pub taken_target: u32,
}

/// A *dynamic* instruction: one element of the executed (or wrong-path)
/// instruction stream handed to the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Byte PC of this instruction.
    pub pc: u64,
    /// Index of the static instruction in its program (for predictor tables
    /// and wrong-path dictionary lookups).
    pub static_idx: u32,
    pub class: OpClass,
    pub ctrl: CtrlKind,
    pub dest: Option<ArchReg>,
    pub srcs: [Option<ArchReg>; 2],
    /// Effective byte address for memory ops.
    pub mem_addr: Option<u64>,
    /// For branches: the actual direction taken in this dynamic instance
    /// (unconditional transfers are always taken).
    pub taken: bool,
    /// Byte PC of the next instruction actually executed after this one.
    pub next_pc: u64,
    /// True if this instruction was synthesized for wrong-path fetch (its
    /// `taken`/`next_pc` fields are placeholders the front-end overrides).
    pub wrong_path: bool,
}

impl DynInst {
    /// True if this instruction can redirect fetch.
    pub fn is_branch(&self) -> bool {
        self.class.is_branch()
    }
}

// --- Snapshot serialization (see `snapio`): dynamic instructions appear in
// --- evolving machine state (replay buffers, in-flight slabs), so they
// --- round-trip through the checkpoint format with explicit enum tags.

use crate::snapio::{self, SnapError, SnapReader};

impl OpClass {
    fn snap_tag(self) -> u8 {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::FpAlu => 2,
            OpClass::Load => 3,
            OpClass::Store => 4,
            OpClass::CondBranch => 5,
            OpClass::Jump => 6,
        }
    }

    fn from_snap_tag(t: u8) -> Result<OpClass, SnapError> {
        Ok(match t {
            0 => OpClass::IntAlu,
            1 => OpClass::IntMul,
            2 => OpClass::FpAlu,
            3 => OpClass::Load,
            4 => OpClass::Store,
            5 => OpClass::CondBranch,
            6 => OpClass::Jump,
            _ => return Err(SnapError::malformed(format!("OpClass tag {t}"))),
        })
    }
}

impl CtrlKind {
    fn snap_tag(self) -> u8 {
        match self {
            CtrlKind::None => 0,
            CtrlKind::CondBr => 1,
            CtrlKind::Jump => 2,
            CtrlKind::Call => 3,
            CtrlKind::Return => 4,
        }
    }

    fn from_snap_tag(t: u8) -> Result<CtrlKind, SnapError> {
        Ok(match t {
            0 => CtrlKind::None,
            1 => CtrlKind::CondBr,
            2 => CtrlKind::Jump,
            3 => CtrlKind::Call,
            4 => CtrlKind::Return,
            _ => return Err(SnapError::malformed(format!("CtrlKind tag {t}"))),
        })
    }
}

impl DynInst {
    /// Serialize for a machine snapshot.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        snapio::put_u64(out, self.pc);
        snapio::put_u32(out, self.static_idx);
        snapio::put_u8(out, self.class.snap_tag());
        snapio::put_u8(out, self.ctrl.snap_tag());
        snapio::put_opt(out, self.dest, snapio::put_u8);
        for s in self.srcs {
            snapio::put_opt(out, s, snapio::put_u8);
        }
        snapio::put_opt(out, self.mem_addr, snapio::put_u64);
        snapio::put_bool(out, self.taken);
        snapio::put_u64(out, self.next_pc);
        snapio::put_bool(out, self.wrong_path);
    }

    /// Deserialize one instruction from a snapshot section.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<DynInst, SnapError> {
        Ok(DynInst {
            pc: r.u64()?,
            static_idx: r.u32()?,
            class: OpClass::from_snap_tag(r.u8()?)?,
            ctrl: CtrlKind::from_snap_tag(r.u8()?)?,
            dest: r.opt(|r| r.u8())?,
            srcs: [r.opt(|r| r.u8())?, r.opt(|r| r.u8())?],
            mem_addr: r.opt(|r| r.u64())?,
            taken: r.bool()?,
            next_pc: r.u64()?,
            wrong_path: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_predicates() {
        assert!(OpClass::CondBranch.is_branch());
        assert!(OpClass::Jump.is_branch());
        assert!(!OpClass::Load.is_branch());
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
    }

    #[test]
    fn latencies_are_positive() {
        for c in [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::FpAlu,
            OpClass::Load,
            OpClass::Store,
            OpClass::CondBranch,
            OpClass::Jump,
        ] {
            assert!(c.base_latency() >= 1);
        }
    }

    #[test]
    fn dyn_inst_round_trips_through_snapshot_bytes() {
        let insts = [
            DynInst {
                pc: 0x4000_0010,
                static_idx: 4,
                class: OpClass::Load,
                ctrl: CtrlKind::None,
                dest: Some(7),
                srcs: [Some(1), None],
                mem_addr: Some(0xDEAD_BEE0),
                taken: false,
                next_pc: 0x4000_0014,
                wrong_path: false,
            },
            DynInst {
                pc: 0x4000_0020,
                static_idx: 8,
                class: OpClass::CondBranch,
                ctrl: CtrlKind::CondBr,
                dest: None,
                srcs: [Some(3), Some(4)],
                mem_addr: None,
                taken: true,
                next_pc: 0x4000_0000,
                wrong_path: true,
            },
        ];
        let mut buf = Vec::new();
        for d in &insts {
            d.save_state(&mut buf);
        }
        let mut r = crate::snapio::SnapReader::new(&buf);
        for d in &insts {
            assert_eq!(DynInst::load_state(&mut r).unwrap(), *d);
        }
        r.finish("insts").unwrap();
        // Unknown enum tags are typed errors, not panics.
        let mut bad = Vec::new();
        insts[0].save_state(&mut bad);
        bad[12] = 0xFF; // OpClass tag byte (after pc + static_idx)
        let mut r = crate::snapio::SnapReader::new(&bad);
        assert!(DynInst::load_state(&mut r).is_err());
    }

    #[test]
    fn only_fp_ops_write_fp_regs() {
        assert!(OpClass::FpAlu.dest_is_fp());
        assert!(!OpClass::Load.dest_is_fp());
        assert!(!OpClass::IntAlu.dest_is_fp());
    }
}
