//! Criterion benches that regenerate the paper's *tables*.
//!
//! Each bench prints the regenerated table once (so `cargo bench` output
//! contains the paper artefacts) and then times the regeneration with short
//! simulation windows.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_experiments::{table2a, table4, Campaign, ExpParams};

fn bench_params() -> ExpParams {
    ExpParams {
        warmup: 2_000,
        measure: 6_000,
    }
}

fn bench_table2a(c: &mut Criterion) {
    // Print the real (standard-window) table once.
    let campaign = Campaign::new(ExpParams::standard());
    eprintln!("\n{}", table2a::report(&table2a::compute(&campaign)));

    let mut g = c.benchmark_group("table2a");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let campaign = Campaign::new(bench_params());
            table2a::compute(&campaign)
        })
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let campaign = Campaign::new(ExpParams::standard());
    eprintln!("\n{}", table4::report(&table4::compute(&campaign)));

    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let campaign = Campaign::new(bench_params());
            table4::compute(&campaign)
        })
    });
    g.finish();
}

criterion_group!(tables, bench_table2a, bench_table4);
criterion_main!(tables);
