//! Observability from the library: attach a [`RecordingProbe`] to a
//! simulation, inspect its counters and histograms, and export the capture
//! as a Chrome trace-event file you can open in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing` — the gated stretches
//! of each thread show up as named slices, dcache misses as async spans.
//!
//! ```text
//! cargo run --release --example trace_capture
//! ```

use dwarn_smt::core::PolicyKind;
use dwarn_smt::obs::{chrome_trace, GateReason, RecordingProbe};
use dwarn_smt::pipeline::{SimConfig, Simulator};
use dwarn_smt::workloads::{workload, WorkloadClass};

fn main() {
    let wl = workload(4, WorkloadClass::Mix);
    let specs = wl.thread_specs();

    // Same constructor shape as Simulator::new, plus the probe. NullProbe
    // (what `new` uses) compiles to nothing; RecordingProbe records
    // counters, histograms, an event ring and occupancy samples.
    let probe = RecordingProbe::new(specs.len(), 1 << 20);
    let mut sim = Simulator::with_probe(
        SimConfig::baseline(),
        PolicyKind::DWarn.build(),
        &specs,
        probe,
    );
    let (result, _occ) = sim.run_sampled(2_000, 20_000, 50);
    let probe = sim.into_probe();

    println!(
        "{} under DWarn: throughput {:.2} IPC\n",
        wl.name,
        result.throughput()
    );
    for (t, bench) in wl.benchmarks.iter().enumerate() {
        let c = probe.thread(t);
        let gate_h = probe.gate_duration(t);
        let miss_h = probe.l1_latency(t);
        println!(
            "t{t} {bench:<7} committed {:>6}  L1 misses {:>5} (mean latency {:>5.1} cy)  \
             gated {:>3}x (mean {:>5.1} cy, {} by policy)",
            c.committed,
            c.l1_miss_begins,
            miss_h.mean(),
            c.gates,
            gate_h.mean(),
            c.gates_by_reason[GateReason::Policy.index()],
        );
    }
    println!(
        "\nevent ring: {} events captured, {} dropped; {} occupancy samples",
        probe.ring().len(),
        probe.ring().dropped(),
        probe.samples().len()
    );

    let names: Vec<String> = wl.benchmarks.iter().map(|b| b.to_string()).collect();
    let trace = chrome_trace(probe.ring(), probe.samples(), &names);
    let path = "target/trace_capture.trace.json";
    std::fs::write(path, trace).expect("write trace");
    println!("wrote {path} — open it at https://ui.perfetto.dev");
}
