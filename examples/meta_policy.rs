//! Meta-policy demo: run the three adaptive selectors against their four
//! static candidates on one workload, then show *when* the winner switched
//! and which candidate held fetch control in each phase.
//!
//! ```text
//! cargo run --release --example meta_policy            # default 4-MEM
//! cargo run --release --example meta_policy -- 8 MIX
//! ```
//!
//! See EXPERIMENTS.md "Beyond the paper: dynamic policy selection" for the
//! full study (all workloads, Hmean fairness, and the two oracle bounds);
//! this example is the minimal programmatic version.

use dwarn_smt::core::PolicyKind;
use dwarn_smt::metrics::table::TextTable;
use dwarn_smt::pipeline::{SimConfig, Simulator};
use dwarn_smt::workloads::{workload, WorkloadClass};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(4);
    let class = match args.get(1).map(String::as_str) {
        Some("ILP") => WorkloadClass::Ilp,
        Some("MIX") => WorkloadClass::Mix,
        _ => WorkloadClass::Mem,
    };
    let wl = workload(threads, class);
    println!("workload {}: {}\n", wl.name, wl.benchmarks.join(", "));

    let statics = [
        PolicyKind::DWarn,
        PolicyKind::Stall,
        PolicyKind::Flush,
        PolicyKind::Icount,
    ];
    let mut t = TextTable::new(vec!["policy", "tput IPC", "switches", "final active"]);
    let mut best_meta: Option<(f64, Vec<dwarn_smt::pipeline::PolicySwitch>)> = None;

    for kind in statics.iter().chain(PolicyKind::meta_set().iter()) {
        let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), &wl.thread_specs());
        let r = sim.run(20_000, 60_000);
        let switches = sim.policy().switch_log().to_vec();
        t.row(vec![
            kind.name().to_string(),
            format!("{:.2}", r.throughput()),
            format!("{}", switches.len()),
            sim.policy().active_policy().to_string(),
        ]);
        if matches!(kind, PolicyKind::Meta(_))
            && best_meta
                .as_ref()
                .is_none_or(|(ipc, _)| r.throughput() > *ipc)
        {
            best_meta = Some((r.throughput(), switches));
        }
    }
    println!("{}", t.render());

    // The best selector's decision timeline: each line is one window
    // boundary where control changed hands (a quiet selector prints few).
    if let Some((ipc, switches)) = best_meta {
        println!("best selector ({ipc:.2} IPC) switch timeline:");
        if switches.is_empty() {
            println!("  (never switched — DWARN held fetch for the whole run)");
        }
        for s in &switches {
            println!("  cycle {:>6}: {} -> {}", s.cycle, s.from, s.to);
        }
    }
}
