//! Per-file structural model extracted from token trees.
//!
//! `extract` walks the token tree of one masked source file and produces a
//! flat, serializable [`FileModel`]: struct field lists, enum variants,
//! functions (with their identifier/`self.field`/match-arm mention sets),
//! impl blocks, integer consts, string literals, tracked observability-hook
//! calls (with structural `ENABLED` gating), and `exit(..)` call sites.
//! The cross-file rules in `xrules.rs` run entirely over these models, so
//! they never re-read source text — which is what makes the content-hash
//! cache in `cache.rs` sound.

use crate::json::Value;
use crate::lexer::{extract_strings, line_of, mask_source, test_region_lines};
use crate::tokens::{self, Delim, Tok};

/// Named item (struct field or enum variant) with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Named {
    pub name: String,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    pub name: String,
    pub line: usize,
    pub fields: Vec<Named>,
    pub in_test: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    pub name: String,
    pub line: usize,
    pub variants: Vec<Named>,
    pub in_test: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    pub name: String,
    pub line: usize,
    /// `Some(type)` when defined inside an `impl` block.
    pub owner: Option<String>,
    /// `Some(trait)` when the impl block is a trait impl.
    pub trait_impl: Option<String>,
    /// True for methods declared (possibly with defaults) inside `trait {}`.
    pub in_trait_decl: bool,
    /// Sorted, deduplicated identifiers mentioned anywhere in the
    /// signature or body.
    pub idents: Vec<String>,
    /// Sorted, deduplicated identifiers appearing as `self.<ident>`.
    pub self_fields: Vec<String>,
    /// Sorted, deduplicated identifiers appearing in `match` arm heads.
    pub arm_idents: Vec<String>,
    pub in_test: bool,
}

impl FnDef {
    pub fn mentions(&self, ident: &str) -> bool {
        self.idents
            .binary_search_by(|s| s.as_str().cmp(ident))
            .is_ok()
    }

    pub fn touches_self(&self, field: &str) -> bool {
        self.self_fields
            .binary_search_by(|s| s.as_str().cmp(field))
            .is_ok()
    }

    pub fn has_arm(&self, ident: &str) -> bool {
        self.arm_idents
            .binary_search_by(|s| s.as_str().cmp(ident))
            .is_ok()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplDef {
    pub ty: String,
    pub trait_name: Option<String>,
    pub line: usize,
    pub methods: Vec<String>,
    pub in_test: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstDef {
    pub name: String,
    pub line: usize,
    /// Integer value when the initializer is a single numeric literal.
    pub value: Option<i64>,
    pub in_test: bool,
}

/// A call to one of the tracked observability hooks, with the result of
/// the structural gating analysis (see [`crate::rules::GATED_HOOKS`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HookCall {
    pub hook: String,
    pub line: usize,
    /// True when the call is dominated by a positive `ENABLED` branch (or
    /// sits after an `if !..ENABLED { return/continue/break }` guard, or
    /// inside the body of a tracked hook itself).
    pub gated: bool,
    pub in_test: bool,
}

/// A call to `exit(..)` (e.g. `std::process::exit`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExitCall {
    pub line: usize,
    /// True when the argument list contains a bare numeric literal.
    pub has_literal: bool,
    pub in_test: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileModel {
    pub structs: Vec<StructDef>,
    pub enums: Vec<EnumDef>,
    pub fns: Vec<FnDef>,
    pub impls: Vec<ImplDef>,
    pub consts: Vec<ConstDef>,
    /// String literals as `(line, content)`, comments excluded.
    pub strings: Vec<(usize, String)>,
    pub hook_calls: Vec<HookCall>,
    pub exit_calls: Vec<ExitCall>,
}

impl FileModel {
    pub fn struct_named(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name && !s.in_test)
    }

    pub fn enum_named(&self, name: &str) -> Option<&EnumDef> {
        self.enums.iter().find(|e| e.name == name && !e.in_test)
    }

    /// All non-test fns with the given name owned by `ty` (across impls).
    pub fn methods_of<'a>(&'a self, ty: &'a str, name: &'a str) -> impl Iterator<Item = &'a FnDef> {
        self.fns
            .iter()
            .filter(move |f| !f.in_test && f.name == name && f.owner.as_deref() == Some(ty))
    }
}

/// Extract the structural model of one source file.
pub fn extract(src: &str) -> FileModel {
    let masked = mask_source(src);
    let toks = tokens::parse(&masked);
    let flags = test_region_lines(&masked);
    let mut m = FileModel {
        strings: extract_strings(src),
        ..FileModel::default()
    };
    let mut ex = Extractor {
        masked: &masked,
        flags: &flags,
        model: &mut m,
    };
    ex.walk_items(&toks, None, None);
    ex.walk_hooks(&toks, false);
    m
}

struct Extractor<'a> {
    masked: &'a str,
    flags: &'a [bool],
    model: &'a mut FileModel,
}

/// Owner context for item walking: (self type, trait being implemented).
type Owner<'a> = Option<(&'a str, Option<&'a str>)>;

impl Extractor<'_> {
    fn line(&self, off: usize) -> usize {
        line_of(self.masked, off)
    }

    fn in_test(&self, line: usize) -> bool {
        self.flags
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Walk a token list at item level (file root, `mod`/`impl`/`trait`
    /// bodies). `owner` is the impl self-type context; `trait_decl` the
    /// enclosing trait declaration name.
    fn walk_items(&mut self, toks: &[Tok], owner: Owner, trait_decl: Option<&str>) {
        let mut i = 0;
        while i < toks.len() {
            // Skip attributes: `#[...]` (outer) and `#![...]` (inner).
            if toks[i].is_punct(b'#') {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_punct(b'!')) {
                    j += 1;
                }
                if toks
                    .get(j)
                    .is_some_and(|t| t.group(Delim::Bracket).is_some())
                {
                    i = j + 1;
                    continue;
                }
            }
            let Some(kw) = toks[i].ident_text() else {
                i += 1;
                continue;
            };
            match kw {
                "struct" => i = self.take_struct(toks, i),
                "enum" => i = self.take_enum(toks, i),
                "fn" => i = self.take_fn(toks, i, owner, trait_decl),
                "impl" => i = self.take_impl(toks, i),
                "trait" => i = self.take_trait(toks, i),
                "mod" => {
                    // `mod name { ... }` — recurse in the same context.
                    let (body, next) = find_body(toks, i + 1);
                    if let Some(b) = body {
                        if let Some(inner) = toks[b].group(Delim::Brace) {
                            self.walk_items(inner, owner, trait_decl);
                        }
                    }
                    i = next;
                }
                "const" | "static" => i = self.take_const(toks, i),
                _ => i += 1,
            }
        }
    }

    fn take_struct(&mut self, toks: &[Tok], kw: usize) -> usize {
        let Some(name_tok) = toks.get(kw + 1) else {
            return kw + 1;
        };
        let Some(name) = name_tok.ident_text() else {
            return kw + 1;
        };
        let line = self.line(name_tok.off());
        let (body, next) = find_body(toks, kw + 2);
        let fields = match body {
            Some(b) => self.parse_fields(toks[b].group(Delim::Brace).unwrap_or(&[])),
            None => Vec::new(), // unit or tuple struct: no named fields
        };
        self.model.structs.push(StructDef {
            name: name.to_string(),
            line,
            fields,
            in_test: self.in_test(line),
        });
        next
    }

    fn take_enum(&mut self, toks: &[Tok], kw: usize) -> usize {
        let Some(name_tok) = toks.get(kw + 1) else {
            return kw + 1;
        };
        let Some(name) = name_tok.ident_text() else {
            return kw + 1;
        };
        let line = self.line(name_tok.off());
        let (body, next) = find_body(toks, kw + 2);
        let variants = match body {
            Some(b) => self.parse_variants(toks[b].group(Delim::Brace).unwrap_or(&[])),
            None => Vec::new(),
        };
        self.model.enums.push(EnumDef {
            name: name.to_string(),
            line,
            variants,
            in_test: self.in_test(line),
        });
        next
    }

    /// Parse `name: Type,` entries of a struct body, skipping attributes
    /// and visibility modifiers.
    fn parse_fields(&self, toks: &[Tok]) -> Vec<Named> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_punct(b'#') {
                i += 1;
                if toks
                    .get(i)
                    .is_some_and(|t| t.group(Delim::Bracket).is_some())
                {
                    i += 1;
                }
                continue;
            }
            if toks[i].is_ident("pub") {
                i += 1;
                if toks.get(i).is_some_and(|t| t.group(Delim::Paren).is_some()) {
                    i += 1;
                }
                continue;
            }
            if let (Some(name), true) = (
                toks[i].ident_text(),
                toks.get(i + 1).is_some_and(|t| t.is_punct(b':')),
            ) {
                out.push(Named {
                    name: name.to_string(),
                    line: self.line(toks[i].off()),
                });
                i = skip_to_comma(toks, i + 2);
                continue;
            }
            i += 1;
        }
        out
    }

    /// Parse enum variant names, skipping attributes, payloads, and
    /// explicit discriminants.
    fn parse_variants(&self, toks: &[Tok]) -> Vec<Named> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_punct(b'#') {
                i += 1;
                if toks
                    .get(i)
                    .is_some_and(|t| t.group(Delim::Bracket).is_some())
                {
                    i += 1;
                }
                continue;
            }
            if let Some(name) = toks[i].ident_text() {
                out.push(Named {
                    name: name.to_string(),
                    line: self.line(toks[i].off()),
                });
                i = skip_to_comma(toks, i + 1);
                continue;
            }
            i += 1;
        }
        out
    }

    fn take_fn(
        &mut self,
        toks: &[Tok],
        kw: usize,
        owner: Owner,
        trait_decl: Option<&str>,
    ) -> usize {
        let Some(name_tok) = toks.get(kw + 1) else {
            return kw + 1;
        };
        let Some(name) = name_tok.ident_text() else {
            // `fn(u64) -> u64` type position, not an item.
            return kw + 1;
        };
        let line = self.line(name_tok.off());
        let (body, next) = find_body(toks, kw + 2);
        let sig_end = body.unwrap_or(next);
        let mut idents: Vec<&str> = Vec::new();
        tokens::collect_idents(&toks[kw + 2..sig_end.min(toks.len())], &mut idents);
        let mut self_fields: Vec<&str> = Vec::new();
        let mut arm_idents: Vec<String> = Vec::new();
        if let Some(b) = body {
            if let Some(inner) = toks[b].group(Delim::Brace) {
                tokens::collect_idents(inner, &mut idents);
                tokens::collect_self_fields(inner, &mut self_fields);
                collect_arm_idents(inner, &mut arm_idents);
            }
        }
        self.model.fns.push(FnDef {
            name: name.to_string(),
            line,
            owner: owner.map(|(t, _)| t.to_string()),
            trait_impl: owner.and_then(|(_, tr)| tr.map(str::to_string)),
            in_trait_decl: trait_decl.is_some(),
            idents: sort_dedup(idents),
            self_fields: sort_dedup(self_fields),
            arm_idents: sort_dedup_owned(arm_idents),
            in_test: self.in_test(line),
        });
        next
    }

    fn take_impl(&mut self, toks: &[Tok], kw: usize) -> usize {
        let (body, next) = find_body(toks, kw + 1);
        let header_end = body.unwrap_or(next);
        // Depth-0 idents of the header (generic params live inside `<..>`
        // and are excluded by the same angle tracking find_body uses).
        let header = depth0_idents(&toks[kw + 1..header_end.min(toks.len())]);
        let for_pos = header.iter().position(|(t, _)| *t == "for");
        let (ty, trait_name, ty_off) = match for_pos {
            Some(p) => {
                let ty = header[p + 1..].last();
                let tr = header[..p]
                    .iter()
                    .rfind(|(t, _)| !matches!(*t, "impl" | "dyn" | "const" | "unsafe"));
                match ty {
                    Some((t, off)) => (*t, tr.map(|(n, _)| n.to_string()), *off),
                    None => return next,
                }
            }
            None => match header
                .iter()
                .rfind(|(t, _)| !matches!(*t, "impl" | "dyn" | "const" | "unsafe"))
            {
                Some((t, off)) => (*t, None, *off),
                None => return next,
            },
        };
        let line = self.line(ty_off);
        let mut methods = Vec::new();
        if let Some(b) = body {
            if let Some(inner) = toks[b].group(Delim::Brace) {
                let before = self.model.fns.len();
                self.walk_items(inner, Some((ty, trait_name.as_deref())), None);
                methods = self.model.fns[before..]
                    .iter()
                    .map(|f| f.name.clone())
                    .collect();
            }
        }
        self.model.impls.push(ImplDef {
            ty: ty.to_string(),
            trait_name,
            line,
            methods,
            in_test: self.in_test(line),
        });
        next
    }

    fn take_trait(&mut self, toks: &[Tok], kw: usize) -> usize {
        let Some(name) = toks.get(kw + 1).and_then(|t| t.ident_text()) else {
            return kw + 1;
        };
        let (body, next) = find_body(toks, kw + 2);
        if let Some(b) = body {
            if let Some(inner) = toks[b].group(Delim::Brace) {
                self.walk_items(inner, None, Some(name));
            }
        }
        next
    }

    fn take_const(&mut self, toks: &[Tok], kw: usize) -> usize {
        let Some(name_tok) = toks.get(kw + 1) else {
            return kw + 1;
        };
        let Some(name) = name_tok.ident_text() else {
            return kw + 1;
        };
        // `const fn ...`, `static mut ...`: not a const item name.
        if matches!(name, "fn" | "mut" | "unsafe" | "extern") {
            return kw + 1;
        }
        let line = self.line(name_tok.off());
        // Find `=` then the value tokens up to `;`.
        let mut i = kw + 2;
        while i < toks.len() && !toks[i].is_punct(b'=') && !toks[i].is_punct(b';') {
            i += 1;
        }
        let mut value = None;
        if i < toks.len() && toks[i].is_punct(b'=') {
            let start = i + 1;
            let mut end = start;
            while end < toks.len() && !toks[end].is_punct(b';') {
                end += 1;
            }
            if end == start + 1 {
                if let Tok::Number { text, .. } = &toks[start] {
                    value = parse_int(text);
                }
            }
            i = end;
        }
        self.model.consts.push(ConstDef {
            name: name.to_string(),
            line,
            value,
            in_test: self.in_test(line),
        });
        i + 1
    }

    /// Structural `ENABLED`-gating walk over the whole file: records every
    /// call to a tracked hook (and to `exit`) with whether it is dominated
    /// by a positive `ENABLED` condition.
    fn walk_hooks(&mut self, toks: &[Tok], gated_at_entry: bool) {
        let mut gated = gated_at_entry;
        let mut i = 0;
        while i < toks.len() {
            match &toks[i] {
                Tok::Ident { text, .. } if text == "fn" => {
                    // Enter the fn body with fresh gating: a tracked hook's
                    // own body is reachable only through a gated call.
                    let name = toks.get(i + 1).and_then(|t| t.ident_text());
                    let (body, next) = find_body(toks, i + 2);
                    if let Some(b) = body {
                        let entry = name.is_some_and(|n| crate::rules::GATED_HOOKS.contains(&n));
                        if let Some(inner) = toks[b].group(Delim::Brace) {
                            self.walk_hooks(inner, entry);
                        }
                    }
                    i = next;
                }
                Tok::Ident { text, .. } if text == "if" => {
                    let mut j = i + 1;
                    while j < toks.len() && toks[j].group(Delim::Brace).is_none() {
                        j += 1;
                    }
                    let cond = &toks[i + 1..j.min(toks.len())];
                    let neg = cond.first().is_some_and(|t| t.is_punct(b'!'));
                    let mut cond_ids = Vec::new();
                    tokens::collect_idents(cond, &mut cond_ids);
                    let has_enabled = cond_ids.contains(&"ENABLED");
                    // Calls inside the condition itself (rare) inherit the
                    // surrounding gating.
                    self.scan_calls(cond, gated);
                    if j < toks.len() {
                        if let Some(block) = toks[j].group(Delim::Brace) {
                            let block_gated = gated || (has_enabled && !neg);
                            self.walk_hooks(block, block_gated);
                            if has_enabled && neg && block_exits(block) {
                                // `if !..ENABLED { return; }` guard: the
                                // rest of this scope is enabled-only.
                                gated = true;
                            }
                        }
                    }
                    i = j + 1;
                }
                Tok::Group { toks: inner, .. } => {
                    // Check for a hook call heading this group first.
                    self.walk_hooks(inner, gated);
                    i += 1;
                }
                Tok::Ident { text, off } => {
                    let is_call = toks
                        .get(i + 1)
                        .is_some_and(|t| t.group(Delim::Paren).is_some());
                    let after_fn_kw = i > 0 && toks[i - 1].is_ident("fn");
                    if is_call && !after_fn_kw {
                        let line = self.line(*off);
                        if crate::rules::GATED_HOOKS.contains(&text.as_str()) {
                            self.model.hook_calls.push(HookCall {
                                hook: text.clone(),
                                line,
                                gated,
                                in_test: self.in_test(line),
                            });
                        } else if text == "exit" {
                            let args = toks[i + 1].group(Delim::Paren).unwrap_or(&[]);
                            self.model.exit_calls.push(ExitCall {
                                line,
                                has_literal: contains_number(args),
                                in_test: self.in_test(line),
                            });
                        }
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    fn scan_calls(&mut self, toks: &[Tok], gated: bool) {
        // Conditions contain no `if`/`fn`, so the generic walk is safe.
        for t in toks {
            if let Tok::Group { toks: inner, .. } = t {
                self.walk_hooks(inner, gated);
            }
        }
    }
}

/// True when the block contains a top-level early exit.
fn block_exits(toks: &[Tok]) -> bool {
    toks.iter().any(|t| {
        matches!(t, Tok::Ident { text, .. }
            if text == "return" || text == "continue" || text == "break")
    })
}

fn contains_number(toks: &[Tok]) -> bool {
    toks.iter().any(|t| match t {
        Tok::Number { .. } => true,
        Tok::Group { toks, .. } => contains_number(toks),
        _ => false,
    })
}

/// Scan forward from `i` for the item body: the first `{..}` group or `;`
/// at angle-depth 0 (`->` arrows and generic args are skipped). Returns
/// `(body index, index after the item)`.
fn find_body(toks: &[Tok], mut i: usize) -> (Option<usize>, usize) {
    let mut angle: i32 = 0;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct { ch: b'<', .. } => angle += 1,
            Tok::Punct { ch: b'>', .. } => {
                let arrow = i > 0 && toks[i - 1].is_punct(b'-');
                if !arrow {
                    angle = (angle - 1).max(0);
                }
            }
            Tok::Punct { ch: b';', .. } if angle == 0 => return (None, i + 1),
            Tok::Group {
                delim: Delim::Brace,
                ..
            } if angle == 0 => return (Some(i), i + 1),
            _ => {}
        }
        i += 1;
    }
    (None, i)
}

/// Skip to just past the next `,` at angle-depth 0.
fn skip_to_comma(toks: &[Tok], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct { ch: b'<', .. } => angle += 1,
            Tok::Punct { ch: b'>', .. } => {
                let arrow = i > 0 && toks[i - 1].is_punct(b'-');
                if !arrow {
                    angle = (angle - 1).max(0);
                }
            }
            Tok::Punct { ch: b',', .. } if angle == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Depth-0 identifiers (outside `<..>`) with their offsets.
fn depth0_idents(toks: &[Tok]) -> Vec<(&str, usize)> {
    let mut out = Vec::new();
    let mut angle: i32 = 0;
    for (i, t) in toks.iter().enumerate() {
        match t {
            Tok::Punct { ch: b'<', .. } => angle += 1,
            Tok::Punct { ch: b'>', .. } => {
                let arrow = i > 0 && toks[i - 1].is_punct(b'-');
                if !arrow {
                    angle = (angle - 1).max(0);
                }
            }
            Tok::Ident { text, off } if angle == 0 => out.push((text.as_str(), *off)),
            _ => {}
        }
    }
    out
}

/// Collect identifiers appearing in `match` arm heads (recursively).
fn collect_arm_idents(toks: &[Tok], out: &mut Vec<String>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("match") {
            let mut j = i + 1;
            while j < toks.len() && toks[j].group(Delim::Brace).is_none() {
                j += 1;
            }
            if let Some(arms) = toks.get(j).and_then(|t| t.group(Delim::Brace)) {
                extract_arms(arms, out);
                i = j + 1;
                continue;
            }
        }
        if let Tok::Group { toks: inner, .. } = &toks[i] {
            collect_arm_idents(inner, out);
        }
        i += 1;
    }
}

fn extract_arms(toks: &[Tok], out: &mut Vec<String>) {
    let mut i = 0;
    while i < toks.len() {
        // Head: tokens until the fat arrow `=>`.
        let mut head_end = None;
        let mut j = i;
        while j + 1 < toks.len() {
            if toks[j].is_punct(b'=') && toks[j + 1].is_punct(b'>') {
                // Not the `=` of `==`/`<=`/`>=`/`!=`.
                let prev_op = j > i
                    && matches!(&toks[j - 1], Tok::Punct { ch, .. }
                        if matches!(ch, b'=' | b'<' | b'>' | b'!'));
                if !prev_op {
                    head_end = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(he) = head_end else { break };
        let mut ids = Vec::new();
        tokens::collect_idents(&toks[i..he], &mut ids);
        out.extend(ids.into_iter().map(str::to_string));
        // Body: a brace group, or an expression up to the next depth-0 `,`.
        let mut k = he + 2;
        if let Some(t) = toks.get(k) {
            if t.group(Delim::Brace).is_some() {
                collect_arm_idents(std::slice::from_ref(&toks[k]), out);
                k += 1;
                if toks.get(k).is_some_and(|t| t.is_punct(b',')) {
                    k += 1;
                }
            } else {
                let start = k;
                while k < toks.len() && !toks[k].is_punct(b',') {
                    k += 1;
                }
                collect_arm_idents(&toks[start..k], out);
                if k < toks.len() {
                    k += 1;
                }
            }
        }
        i = k;
    }
}

fn parse_int(text: &str) -> Option<i64> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        return i64::from_str_radix(&digits, 16).ok();
    }
    let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn sort_dedup(mut v: Vec<&str>) -> Vec<String> {
    v.sort_unstable();
    v.dedup();
    v.into_iter().map(str::to_string).collect()
}

fn sort_dedup_owned(mut v: Vec<String>) -> Vec<String> {
    v.sort_unstable();
    v.dedup();
    v
}

// ---------------------------------------------------------------------
// JSON (de)serialization for the incremental cache.
// ---------------------------------------------------------------------

fn named_to_value(n: &Named) -> Value {
    Value::obj(vec![
        ("name", Value::str(&n.name)),
        ("line", Value::Int(n.line as i64)),
    ])
}

fn named_from(v: &Value) -> Option<Named> {
    Some(Named {
        name: v.get("name")?.as_str()?.to_string(),
        line: v.get("line")?.as_int()? as usize,
    })
}

fn strs(v: &[String]) -> Value {
    Value::Arr(v.iter().map(Value::str).collect())
}

fn strs_from(v: &Value) -> Option<Vec<String>> {
    v.as_arr()?
        .iter()
        .map(|s| s.as_str().map(str::to_string))
        .collect()
}

impl FileModel {
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            (
                "structs",
                Value::Arr(
                    self.structs
                        .iter()
                        .map(|s| {
                            Value::obj(vec![
                                ("name", Value::str(&s.name)),
                                ("line", Value::Int(s.line as i64)),
                                (
                                    "fields",
                                    Value::Arr(s.fields.iter().map(named_to_value).collect()),
                                ),
                                ("in_test", Value::Bool(s.in_test)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "enums",
                Value::Arr(
                    self.enums
                        .iter()
                        .map(|e| {
                            Value::obj(vec![
                                ("name", Value::str(&e.name)),
                                ("line", Value::Int(e.line as i64)),
                                (
                                    "variants",
                                    Value::Arr(e.variants.iter().map(named_to_value).collect()),
                                ),
                                ("in_test", Value::Bool(e.in_test)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fns",
                Value::Arr(
                    self.fns
                        .iter()
                        .map(|f| {
                            Value::obj(vec![
                                ("name", Value::str(&f.name)),
                                ("line", Value::Int(f.line as i64)),
                                (
                                    "owner",
                                    f.owner.as_deref().map(Value::str).unwrap_or(Value::Null),
                                ),
                                (
                                    "trait_impl",
                                    f.trait_impl
                                        .as_deref()
                                        .map(Value::str)
                                        .unwrap_or(Value::Null),
                                ),
                                ("in_trait_decl", Value::Bool(f.in_trait_decl)),
                                ("idents", strs(&f.idents)),
                                ("self_fields", strs(&f.self_fields)),
                                ("arm_idents", strs(&f.arm_idents)),
                                ("in_test", Value::Bool(f.in_test)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "impls",
                Value::Arr(
                    self.impls
                        .iter()
                        .map(|im| {
                            Value::obj(vec![
                                ("ty", Value::str(&im.ty)),
                                (
                                    "trait_name",
                                    im.trait_name
                                        .as_deref()
                                        .map(Value::str)
                                        .unwrap_or(Value::Null),
                                ),
                                ("line", Value::Int(im.line as i64)),
                                ("methods", strs(&im.methods)),
                                ("in_test", Value::Bool(im.in_test)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "consts",
                Value::Arr(
                    self.consts
                        .iter()
                        .map(|c| {
                            Value::obj(vec![
                                ("name", Value::str(&c.name)),
                                ("line", Value::Int(c.line as i64)),
                                ("value", c.value.map(Value::Int).unwrap_or(Value::Null)),
                                ("in_test", Value::Bool(c.in_test)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "strings",
                Value::Arr(
                    self.strings
                        .iter()
                        .map(|(line, s)| Value::Arr(vec![Value::Int(*line as i64), Value::str(s)]))
                        .collect(),
                ),
            ),
            (
                "hook_calls",
                Value::Arr(
                    self.hook_calls
                        .iter()
                        .map(|h| {
                            Value::obj(vec![
                                ("hook", Value::str(&h.hook)),
                                ("line", Value::Int(h.line as i64)),
                                ("gated", Value::Bool(h.gated)),
                                ("in_test", Value::Bool(h.in_test)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "exit_calls",
                Value::Arr(
                    self.exit_calls
                        .iter()
                        .map(|e| {
                            Value::obj(vec![
                                ("line", Value::Int(e.line as i64)),
                                ("has_literal", Value::Bool(e.has_literal)),
                                ("in_test", Value::Bool(e.in_test)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_value(v: &Value) -> Option<FileModel> {
        let mut m = FileModel::default();
        for s in v.get("structs")?.as_arr()? {
            m.structs.push(StructDef {
                name: s.get("name")?.as_str()?.to_string(),
                line: s.get("line")?.as_int()? as usize,
                fields: s
                    .get("fields")?
                    .as_arr()?
                    .iter()
                    .map(named_from)
                    .collect::<Option<_>>()?,
                in_test: s.get("in_test")?.as_bool()?,
            });
        }
        for e in v.get("enums")?.as_arr()? {
            m.enums.push(EnumDef {
                name: e.get("name")?.as_str()?.to_string(),
                line: e.get("line")?.as_int()? as usize,
                variants: e
                    .get("variants")?
                    .as_arr()?
                    .iter()
                    .map(named_from)
                    .collect::<Option<_>>()?,
                in_test: e.get("in_test")?.as_bool()?,
            });
        }
        for f in v.get("fns")?.as_arr()? {
            m.fns.push(FnDef {
                name: f.get("name")?.as_str()?.to_string(),
                line: f.get("line")?.as_int()? as usize,
                owner: f.get("owner")?.as_str().map(str::to_string),
                trait_impl: f.get("trait_impl")?.as_str().map(str::to_string),
                in_trait_decl: f.get("in_trait_decl")?.as_bool()?,
                idents: strs_from(f.get("idents")?)?,
                self_fields: strs_from(f.get("self_fields")?)?,
                arm_idents: strs_from(f.get("arm_idents")?)?,
                in_test: f.get("in_test")?.as_bool()?,
            });
        }
        for im in v.get("impls")?.as_arr()? {
            m.impls.push(ImplDef {
                ty: im.get("ty")?.as_str()?.to_string(),
                trait_name: im.get("trait_name")?.as_str().map(str::to_string),
                line: im.get("line")?.as_int()? as usize,
                methods: strs_from(im.get("methods")?)?,
                in_test: im.get("in_test")?.as_bool()?,
            });
        }
        for c in v.get("consts")?.as_arr()? {
            m.consts.push(ConstDef {
                name: c.get("name")?.as_str()?.to_string(),
                line: c.get("line")?.as_int()? as usize,
                value: c.get("value")?.as_int(),
                in_test: c.get("in_test")?.as_bool()?,
            });
        }
        for s in v.get("strings")?.as_arr()? {
            let pair = s.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            m.strings
                .push((pair[0].as_int()? as usize, pair[1].as_str()?.to_string()));
        }
        for h in v.get("hook_calls")?.as_arr()? {
            m.hook_calls.push(HookCall {
                hook: h.get("hook")?.as_str()?.to_string(),
                line: h.get("line")?.as_int()? as usize,
                gated: h.get("gated")?.as_bool()?,
                in_test: h.get("in_test")?.as_bool()?,
            });
        }
        for e in v.get("exit_calls")?.as_arr()? {
            m.exit_calls.push(ExitCall {
                line: e.get("line")?.as_int()? as usize,
                has_literal: e.get("has_literal")?.as_bool()?,
                in_test: e.get("in_test")?.as_bool()?,
            });
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
pub struct Machine {
    pub now: u64,
    stats: Vec<(usize, u64)>,
    scratch: Box<dyn Fn(u64) -> u64>,
}

pub enum Kind {
    A,
    B(u32),
    C { x: u8 },
}

impl Machine {
    pub fn save_state(&self, out: &mut Vec<u8>) {
        put(out, self.now);
        for s in &self.stats {
            put(out, s.1);
        }
    }
    pub fn load_state(&mut self) {
        self.now = 0;
        self.stats.clear();
    }
    fn classify(&self, k: Kind) -> u32 {
        match k {
            Kind::A => 0,
            Kind::B(v) => v,
            Kind::C { x } => x as u32,
        }
    }
}

impl Default for Machine {
    fn default() -> Self { todo!() }
}

pub const LIMIT: u64 = 256;
pub const NAME: &str = "machine";

#[cfg(test)]
mod tests {
    fn helper() {}
}
"#;

    #[test]
    fn extracts_struct_fields() {
        let m = extract(SAMPLE);
        let s = m.struct_named("Machine").expect("Machine");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["now", "stats", "scratch"]);
        assert!(!s.in_test);
    }

    #[test]
    fn extracts_enum_variants() {
        let m = extract(SAMPLE);
        let e = m.enum_named("Kind").expect("Kind");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn fns_carry_owner_and_self_fields() {
        let m = extract(SAMPLE);
        let save = m.methods_of("Machine", "save_state").next().expect("save");
        assert!(save.touches_self("now"));
        assert!(save.touches_self("stats"));
        assert!(!save.touches_self("scratch"));
        let load = m.methods_of("Machine", "load_state").next().expect("load");
        assert!(load.touches_self("now"));
        let default = m.fns.iter().find(|f| f.name == "default").expect("default");
        assert_eq!(default.trait_impl.as_deref(), Some("Default"));
    }

    #[test]
    fn match_arm_idents_are_collected() {
        let m = extract(SAMPLE);
        let classify = m
            .methods_of("Machine", "classify")
            .next()
            .expect("classify");
        assert!(classify.has_arm("A"));
        assert!(classify.has_arm("B"));
        assert!(classify.has_arm("C"));
        assert!(!classify.has_arm("save_state"));
    }

    #[test]
    fn consts_and_strings() {
        let m = extract(SAMPLE);
        let limit = m.consts.iter().find(|c| c.name == "LIMIT").unwrap();
        assert_eq!(limit.value, Some(256));
        assert!(m.strings.iter().any(|(_, s)| s == "machine"));
    }

    #[test]
    fn impl_methods_listed() {
        let m = extract(SAMPLE);
        let inherent = m
            .impls
            .iter()
            .find(|i| i.ty == "Machine" && i.trait_name.is_none())
            .unwrap();
        assert!(inherent.methods.contains(&"save_state".to_string()));
        assert!(inherent.methods.contains(&"load_state".to_string()));
        let tr = m
            .impls
            .iter()
            .find(|i| i.trait_name.as_deref() == Some("Default"))
            .unwrap();
        assert_eq!(tr.ty, "Machine");
    }

    #[test]
    fn test_region_items_flagged() {
        let m = extract(SAMPLE);
        let helper = m.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.in_test);
    }

    #[test]
    fn hook_gating_positive_and_guard() {
        let src = r#"
impl<P: Probe> Sim<P> {
    fn step(&mut self) {
        if P::ENABLED {
            self.probe.on_sample(1);
        }
        self.probe.on_gate(2);
        if !P::ENABLED {
            return;
        }
        self.probe.on_ungate(3);
    }
    fn audit_cycle(&mut self) {
        self.probe.on_warn_change(4);
    }
}
"#;
        let m = extract(src);
        let by_hook = |h: &str| {
            m.hook_calls
                .iter()
                .find(|c| c.hook == h)
                .unwrap_or_else(|| panic!("{h} not found"))
        };
        assert!(by_hook("on_sample").gated, "inside if ENABLED");
        assert!(!by_hook("on_gate").gated, "no gate");
        assert!(by_hook("on_ungate").gated, "after !ENABLED guard");
        assert!(by_hook("on_warn_change").gated, "inside tracked hook body");
    }

    #[test]
    fn exit_calls_flag_literals() {
        let src = r#"
fn main() {
    std::process::exit(2);
    std::process::exit(EXIT_OK);
}
"#;
        let m = extract(src);
        assert_eq!(m.exit_calls.len(), 2);
        assert!(m.exit_calls[0].has_literal);
        assert!(!m.exit_calls[1].has_literal);
    }

    #[test]
    fn model_json_round_trip() {
        let m = extract(SAMPLE);
        let v = m.to_value();
        let text = v.render();
        let back = FileModel::from_value(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(m, back);
    }
}
