//! `smt-lint` — CLI for the workspace determinism lint.
//!
//! ```text
//! smt-lint [--root DIR] [--verbose] [--rules] [--json PATH] [--cache PATH]
//! ```
//!
//! `--json PATH` writes machine-readable diagnostics (every finding with
//! code, file, line, item, message, allowlisted flag) alongside the human
//! report; `-` writes the JSON to stdout instead of the human report.
//! `--cache PATH` enables the incremental per-file cache: unchanged files
//! are served from it, and it is rewritten after the run.
//!
//! Exit 0: clean. Exit 1: non-allowlisted diagnostics (printed one per
//! line as `path:line: CODE message`). Exit 2: usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: smt-lint [--root DIR] [--verbose] [--rules] [--json PATH] [--cache PATH]";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut json_out: Option<PathBuf> = None;
    let mut cache: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage("--json needs a path (or `-` for stdout)"),
            },
            "--cache" => match args.next() {
                Some(p) => cache = Some(PathBuf::from(p)),
                None => return usage("--cache needs a path"),
            },
            "--verbose" | "-v" => verbose = true,
            "--rules" => {
                for c in smt_lint::RuleCode::ALL {
                    println!("{c}  {}", c.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match smt_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return usage("not inside a cargo workspace (pass --root)"),
            }
        }
    };
    match smt_lint::run_with_cache(&root, cache.as_deref()) {
        Ok(report) => {
            let json = smt_lint::render_json(&report);
            match &json_out {
                Some(p) if p.as_os_str() == "-" => print!("{json}"),
                Some(p) => {
                    if let Err(e) = std::fs::write(p, &json) {
                        eprintln!("smt-lint: writing {}: {e}", p.display());
                        return ExitCode::from(2);
                    }
                    print!("{}", smt_lint::render(&report, verbose));
                }
                None => print!("{}", smt_lint::render(&report, verbose)),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("smt-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("smt-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
