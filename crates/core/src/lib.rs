//! # dwarn-core — the DWarn fetch policy and its baselines
//!
//! This crate is the paper's contribution: the **DWarn** I-fetch policy
//! ("DCache Warn: an I-Fetch Policy to Increase SMT Efficiency", Cazorla,
//! Ramirez, Valero, Fernández — IPDPS 2004), together with faithful
//! implementations of every policy it is evaluated against:
//!
//! | Policy | Detection moment | Response action |
//! |--------|------------------|-----------------|
//! | ICOUNT \[12\] | — | — (occupancy-based priority) |
//! | STALL \[11\]  | X cycles after issue | gate |
//! | FLUSH \[11\]  | X cycles after issue | squash + gate |
//! | DG \[3\]      | L1 miss | gate |
//! | PDG \[3\]     | fetch (predictor) | gate |
//! | **DWarn**   | **L1 miss** | **reduce priority** (+ gate on declared L2 miss below 3 threads) |
//!
//! All policies implement [`smt_pipeline::FetchPolicy`] and plug into the
//! `smt-pipeline` simulator. Construct them directly ([`DWarn::new`]) or
//! through the [`PolicyKind`] registry.
//!
//! ```
//! use dwarn_core::PolicyKind;
//! use smt_pipeline::{SimConfig, Simulator, ThreadSpec};
//! use smt_trace::profile;
//!
//! let specs = vec![
//!     ThreadSpec::new(profile::gzip()),
//!     ThreadSpec::new(profile::twolf()),
//! ];
//! let mut sim = Simulator::new(SimConfig::baseline(), PolicyKind::DWarn.build(), &specs);
//! let result = sim.run(1_000, 2_000);
//! assert!(result.throughput() > 0.0);
//! ```

pub mod dcpred;
pub mod dwarn;
pub mod extensions;
pub mod factory;
pub mod gating;
pub mod icount;
pub mod predictor;
pub mod stall_flush;
pub mod taxonomy;

pub use dcpred::DcPred;
pub use dwarn::DWarn;
pub use extensions::{DWarnFlush, DWarnThreshold};
pub use factory::{PolicyKind, PolicyVisitor};
pub use gating::{DataGating, PredictiveDataGating};
pub use icount::Icount;
pub use predictor::MissPredictor;
pub use stall_flush::{Flush, Stall};
pub use taxonomy::{Classification, DetectionMoment, ResponseAction};
