//! Property-based tests over the core data structures and simulator
//! invariants: randomized seeds, workload compositions, address streams, and
//! run lengths, driven by the workspace's own deterministic PRNG
//! ([`dwarn_smt::trace::Rng`]) so the suite needs no external dependencies
//! and every failure reproduces from the fixed master seed.

use dwarn_smt::core::PolicyKind;
use dwarn_smt::metrics;
use dwarn_smt::pipeline::{SimConfig, Simulator, ThreadSpec};
use dwarn_smt::trace::{all_benchmarks, CtrlKind, Rng, StaticProgram, ThreadTrace};
use dwarn_smt::uarch::{Cache, CacheConfig};

fn pick_profile(r: &mut Rng) -> dwarn_smt::trace::BenchProfile {
    all_benchmarks()[r.below(12) as usize].clone()
}

/// Any (profile, seed): the dynamic stream follows its own next_pc chain and
/// stays inside the code image.
#[test]
fn stream_control_flow_is_self_consistent() {
    let mut r = Rng::new(0x0B5EED ^ 1);
    for _ in 0..16 {
        let p = pick_profile(&mut r);
        let seed = r.below(1_000_000);
        let base = 0x10_0000u64;
        let mut t = ThreadTrace::new(&p, seed, base, 0);
        let code_bytes = t.program().code_bytes();
        let mut prev_next = None;
        for _ in 0..3_000 {
            let d = t.next_inst();
            if let Some(pn) = prev_next {
                assert_eq!(pn, d.pc, "{} seed {seed}", p.name);
            }
            assert!(d.pc >= base && d.pc < base + code_bytes);
            prev_next = Some(d.next_pc);
        }
    }
}

/// Any (profile, seed): the generated program is structurally sound —
/// blocks tile the image, terminators are branches, targets in bounds.
#[test]
fn programs_are_structurally_sound() {
    let mut r = Rng::new(0x0B5EED ^ 2);
    for _ in 0..16 {
        let p = pick_profile(&mut r);
        let seed = r.below(1_000_000);
        let prog = StaticProgram::generate(&p, seed);
        let mut expected = 0u32;
        for blk in prog.blocks() {
            assert_eq!(blk.start, expected);
            expected += blk.len;
            let term = prog.inst(blk.term_idx());
            assert!(term.class.is_branch());
            if matches!(
                term.ctrl,
                CtrlKind::CondBr | CtrlKind::Jump | CtrlKind::Call
            ) {
                assert!((term.taken_target as usize) < prog.blocks().len());
            }
        }
        assert_eq!(expected as usize, prog.len());
    }
}

/// Any address stream: a cache never holds more lines than its capacity,
/// and a fill is always observable as a subsequent hit.
#[test]
fn cache_capacity_and_fill_visibility() {
    let mut r = Rng::new(0x0B5EED ^ 3);
    for _ in 0..16 {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4096,
            ways: 2,
            line_bytes: 64,
            banks: 2,
            latency: 1,
        });
        let capacity = 4096 / 64;
        for _ in 0..r.range(1, 400) {
            let a = r.below(1 << 20);
            if !c.access(a) {
                c.fill(a);
                assert!(c.probe(a), "a just-filled line must be resident");
            }
            assert!(c.resident_lines() <= capacity);
        }
    }
}

/// Hmean is bounded by weighted speedup, and both are monotone in each
/// argument.
#[test]
fn hmean_algebra() {
    let mut r = Rng::new(0x0B5EED ^ 4);
    for _ in 0..16 {
        let rel: Vec<f64> = (0..r.range(1, 8)).map(|_| 0.01 + r.f64() * 1.49).collect();
        let bump = 0.01 + r.f64() * 0.49;
        let h = metrics::hmean(&rel);
        let w = metrics::weighted_speedup(&rel);
        assert!(h <= w + 1e-12);
        let mut better = rel.clone();
        better[0] += bump;
        assert!(metrics::hmean(&better) >= h);
        assert!(metrics::weighted_speedup(&better) >= w);
    }
}

/// Any 1-4 benchmarks under any paper policy: the simulator's
/// cross-structure invariants hold after an arbitrary number of steps, and
/// no resources leak.
#[test]
fn simulator_invariants_hold() {
    let mut r = Rng::new(0x0B5EED ^ 5);
    for _ in 0..16 {
        let specs: Vec<ThreadSpec> = (0..r.range(1, 5))
            .enumerate()
            .map(|(i, _)| ThreadSpec {
                profile: all_benchmarks()[r.below(12) as usize].clone(),
                seed: 7 + i as u64,
                skip: 0,
            })
            .collect();
        let kind = PolicyKind::paper_set()[r.below(6) as usize];
        let steps = r.range(200, 1_500);
        let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), &specs);
        for _ in 0..steps {
            sim.step();
        }
        sim.check_invariants();
    }
}

/// Stream shift (`skip`) commutes with stepping: skip(n) == n × next().
#[test]
fn skip_commutes_with_stepping() {
    let mut r = Rng::new(0x0B5EED ^ 6);
    for _ in 0..16 {
        let p = pick_profile(&mut r);
        let n = r.range(1, 500);
        let mut walked = ThreadTrace::new(&p, 99, 0, 0);
        for _ in 0..n {
            walked.next_inst();
        }
        let mut skipped = ThreadTrace::new(&p, 99, 0, n);
        for _ in 0..50 {
            assert_eq!(walked.next_inst(), skipped.next_inst());
        }
    }
}
