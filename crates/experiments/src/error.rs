//! Typed campaign errors, panic capture, and the CLI exit-code map.
//!
//! Everything that can go wrong while driving the experiment grid is an
//! [`ExpError`]: bad user input (workload names, benchmark names), an
//! invalid configuration, a simulation aborted by the watchdog, a panic
//! caught at the isolation boundary, or an I/O problem. The CLI maps these
//! to distinct exit codes (see the `EXIT_*` constants) so scripts driving
//! large campaigns can tell "you typed it wrong" from "a run failed" from
//! "the chaos harness found a robustness violation".

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use smt_pipeline::{ConfigError, SimError};

use crate::cache::CacheFault;
use crate::checkpoint::CheckpointFault;

/// Everything went fine.
pub const EXIT_OK: i32 = 0;
/// A simulation or I/O failure at runtime.
pub const EXIT_RUNTIME: i32 = 1;
/// Bad usage: unknown flags, workloads, experiments, …
pub const EXIT_USAGE: i32 = 2;
/// The campaign completed, but with partial results (some runs failed).
pub const EXIT_PARTIAL: i32 = 3;
/// The chaos harness observed a robustness violation (escaped panic, hang,
/// or a silently wrong golden digest).
pub const EXIT_CHAOS_VIOLATION: i32 = 4;
/// The campaign was interrupted (Ctrl-C) with resumable checkpoints on
/// disk: partial results and failure artifacts were flushed, and re-running
/// with the same `--resume <dir>` continues from the checkpoints.
pub const EXIT_INTERRUPTED: i32 = 5;

/// A typed campaign-level failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpError {
    /// A workload name that does not look like `"4-MIX"` / `"solo:mcf"`.
    BadWorkloadName { given: String },
    /// A workload class outside ILP / MIX / MEM.
    UnknownWorkloadClass { given: String },
    /// A syntactically valid workload that Table 2(b) does not define
    /// (e.g. `"3-MIX"`).
    UnknownWorkload { threads: usize, class: &'static str },
    /// A benchmark name outside the paper's twelve.
    UnknownBenchmark { given: String },
    /// The processor configuration was rejected before simulation.
    Config(ConfigError),
    /// The simulator aborted the run (watchdog trip).
    Sim(SimError),
    /// A panic caught at the campaign's isolation boundary.
    Panicked { what: String, payload: String },
    /// The cycle-level sanitizer (`--sanitize`) reported µarch invariant
    /// violations during the run. The result is *suspect*, not merely
    /// failed: the numbers were produced by a machine whose bookkeeping
    /// disagreed with itself.
    Invariant {
        what: String,
        /// Total violations recorded (reports are capped; see
        /// `RecordingSanitizer`).
        violations: usize,
        /// Rendered first violation, `INV…` code included.
        first: String,
    },
    /// A disk-cache entry was present but irregular (recorded as a failure
    /// artifact; the run itself falls back to re-simulation).
    Cache { path: String, fault: CacheFault },
    /// A checkpoint entry was present but irregular (recorded as a failure
    /// artifact; the entry is deleted and the run re-simulates from
    /// scratch).
    Checkpoint {
        path: String,
        fault: CheckpointFault,
    },
    /// The run stopped on an interrupt request with a resumable checkpoint
    /// written; the campaign exits [`EXIT_INTERRUPTED`].
    Interrupted { what: String },
    /// An I/O failure outside the cache (artifact export, trace files, …).
    Io { context: String, detail: String },
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::BadWorkloadName { given } => write!(
                f,
                "bad workload name {given:?}: expected \"<threads>-<CLASS>\" \
                 like \"4-MIX\", or \"solo:<bench>\""
            ),
            ExpError::UnknownWorkloadClass { given } => write!(
                f,
                "unknown workload class {given:?}: valid classes are ILP, MIX, MEM"
            ),
            ExpError::UnknownWorkload { threads, class } => write!(
                f,
                "Table 2(b) defines no {threads}-thread {class} workload \
                 (thread counts are 2, 4, 6, 8)"
            ),
            ExpError::UnknownBenchmark { given } => {
                write!(f, "unknown benchmark {given:?} (not in the paper's twelve)")
            }
            ExpError::Config(e) => write!(f, "invalid configuration: {e}"),
            ExpError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExpError::Panicked { what, payload } => {
                write!(f, "panic isolated while running {what}: {payload}")
            }
            ExpError::Invariant {
                what,
                violations,
                first,
            } => write!(
                f,
                "sanitizer reported {violations} invariant violation(s) in {what}; first: {first}"
            ),
            ExpError::Cache { path, fault } => {
                write!(f, "cache entry {path}: {fault} (re-simulated)")
            }
            ExpError::Checkpoint { path, fault } => {
                write!(f, "checkpoint entry {path}: {fault} (re-simulated)")
            }
            ExpError::Interrupted { what } => {
                write!(f, "{what}: interrupted with a resumable checkpoint")
            }
            ExpError::Io { context, detail } => write!(f, "I/O failure ({context}): {detail}"),
        }
    }
}

impl std::error::Error for ExpError {}

impl From<ConfigError> for ExpError {
    fn from(e: ConfigError) -> ExpError {
        ExpError::Config(e)
    }
}

impl From<SimError> for ExpError {
    fn from(e: SimError) -> ExpError {
        match e {
            SimError::Config(c) => ExpError::Config(c),
            other => ExpError::Sim(other),
        }
    }
}

impl ExpError {
    /// Short stable tag for artifacts and summary tables.
    pub fn kind(&self) -> &'static str {
        match self {
            ExpError::BadWorkloadName { .. } => "bad-workload-name",
            ExpError::UnknownWorkloadClass { .. } => "unknown-workload-class",
            ExpError::UnknownWorkload { .. } => "unknown-workload",
            ExpError::UnknownBenchmark { .. } => "unknown-benchmark",
            ExpError::Config(_) => "config",
            ExpError::Sim(_) => "sim",
            ExpError::Panicked { .. } => "panic",
            ExpError::Invariant { .. } => "invariant",
            ExpError::Cache { .. } => "cache",
            ExpError::Checkpoint { .. } => "checkpoint",
            ExpError::Interrupted { .. } => "interrupted",
            ExpError::Io { .. } => "io",
        }
    }

    /// The process exit code this error maps to: usage errors exit 2,
    /// interrupts exit 5, other runtime failures exit 1.
    pub fn exit_code(&self) -> i32 {
        match self {
            ExpError::BadWorkloadName { .. }
            | ExpError::UnknownWorkloadClass { .. }
            | ExpError::UnknownWorkload { .. }
            | ExpError::UnknownBenchmark { .. } => EXIT_USAGE,
            ExpError::Interrupted { .. } => EXIT_INTERRUPTED,
            _ => EXIT_RUNTIME,
        }
    }
}

/// One failed run, recorded by the campaign so the sweep can finish with
/// partial results and a summary instead of dying.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// What was being run (key description or experiment name).
    pub what: String,
    pub error: ExpError,
}

/// Run `f` behind a panic boundary, converting a panic into
/// [`ExpError::Panicked`]. The campaign uses this around every simulation
/// so one poisoned run cannot take down a sweep.
pub fn protect<T>(what: &str, f: impl FnOnce() -> Result<T, ExpError>) -> Result<T, ExpError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        // `&*payload`, not `&payload`: coercing `&Box<dyn Any>` directly
        // would downcast against the Box, never matching.
        Err(payload) => Err(ExpError::Panicked {
            what: what.to_string(),
            payload: panic_message(&*payload),
        }),
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_class_lists_the_valid_ones() {
        let e = ExpError::UnknownWorkloadClass {
            given: "QUX".into(),
        };
        let s = e.to_string();
        for class in ["ILP", "MIX", "MEM"] {
            assert!(s.contains(class), "{s} must list {class}");
        }
        assert_eq!(e.exit_code(), EXIT_USAGE);
    }

    #[test]
    fn exit_codes_split_usage_from_runtime() {
        assert_eq!(
            ExpError::BadWorkloadName { given: "x".into() }.exit_code(),
            EXIT_USAGE
        );
        assert_eq!(
            ExpError::Panicked {
                what: "w".into(),
                payload: "p".into()
            }
            .exit_code(),
            EXIT_RUNTIME
        );
        assert_eq!(
            ExpError::Config(ConfigError::NoThreads).exit_code(),
            EXIT_RUNTIME
        );
    }

    #[test]
    fn protect_catches_panics_and_passes_results() {
        let ok = protect("fine", || Ok(42));
        assert_eq!(ok.unwrap(), 42);

        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = protect("doomed", || -> Result<i32, ExpError> {
            panic!("boom {}", 7)
        });
        std::panic::set_hook(hook);
        match err.unwrap_err() {
            ExpError::Panicked { what, payload } => {
                assert_eq!(what, "doomed");
                assert!(payload.contains("boom 7"));
            }
            other => panic!("expected Panicked, got {other}"),
        }
    }
}
