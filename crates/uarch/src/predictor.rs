//! Branch prediction: gshare direction predictor, BTB, and per-context
//! return-address stacks, matching the paper's Table 3 configuration
//! (2048-entry gshare, 256-entry 4-way BTB, 256-entry RAS).

use smt_trace::snapio::{self, SnapError, SnapReader};
use smt_trace::{CtrlKind, INST_BYTES};

/// Predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// gshare pattern-history-table entries (power of two).
    pub gshare_entries: usize,
    /// BTB total entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// RAS entries per hardware context.
    pub ras_entries: usize,
}

impl PredictorConfig {
    /// Table 3: 2048-entry gshare, 256-entry 4-way BTB, 256-entry RAS.
    pub fn paper() -> PredictorConfig {
        PredictorConfig {
            gshare_entries: 2048,
            btb_entries: 256,
            btb_ways: 4,
            ras_entries: 256,
        }
    }
}

/// 2-bit saturating counter helpers.
#[inline]
fn counter_taken(c: u8) -> bool {
    c >= 2
}

#[inline]
fn counter_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

/// gshare: PHT of 2-bit counters indexed by `pc ^ history`. The PHT is
/// shared between hardware contexts (as in a real SMT); the global history
/// register is per context.
#[derive(Debug, Clone)]
pub struct Gshare {
    pht: Vec<u8>,
    mask: u64,
    history_bits: u32,
    history: Vec<u64>,
}

/// Global-history length. Shorter than log2(PHT entries): with synthetic
/// (partly stochastic) branch outcomes, long histories scatter each branch
/// over many PHT entries and alias destructively; six bits keeps enough
/// correlation to capture loop periods while bounding the context working
/// set. (The paper specifies only "2048 entries gshare".)
const HISTORY_BITS: u32 = 6;

impl Gshare {
    pub fn new(entries: usize, num_threads: usize) -> Gshare {
        assert!(entries.is_power_of_two());
        Gshare {
            pht: vec![1; entries], // weakly not-taken
            mask: entries as u64 - 1,
            history_bits: HISTORY_BITS.min(entries.trailing_zeros()),
            history: vec![0; num_threads],
        }
    }

    #[inline]
    fn index(&self, thread: usize, pc: u64) -> usize {
        (((pc / INST_BYTES) ^ self.history[thread]) & self.mask) as usize
    }

    /// Predict direction for a conditional branch at `pc`.
    pub fn predict(&self, thread: usize, pc: u64) -> bool {
        counter_taken(self.pht[self.index(thread, pc)])
    }

    /// Train on the resolved outcome and shift it into the context's global
    /// history. History is updated at resolve time (non-speculatively),
    /// which keeps the model deterministic under squashes.
    pub fn update(&mut self, thread: usize, pc: u64, taken: bool) {
        let i = self.index(thread, pc);
        self.pht[i] = counter_update(self.pht[i], taken);
        let h = &mut self.history[thread];
        *h = ((*h << 1) | taken as u64) & ((1 << self.history_bits) - 1);
    }

    /// Serialize the PHT counters and per-context history registers.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for &c in &self.pht {
            snapio::put_u8(out, c);
        }
        for &h in &self.history {
            snapio::put_u64(out, h);
        }
    }

    /// Restore the state captured by [`Gshare::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        for c in &mut self.pht {
            *c = r.u8()?;
        }
        for h in &mut self.history {
            *h = r.u64()?;
        }
        Ok(())
    }
}

/// Branch target buffer: set-associative, LRU, tagged by full PC.
#[derive(Debug, Clone)]
pub struct Btb {
    ways: usize,
    sets: usize,
    /// (tag pc, target, stamp) per entry; 0-stamp = invalid.
    entries: Vec<(u64, u64, u64)>,
    stamp: u64,
}

impl Btb {
    pub fn new(total_entries: usize, ways: usize) -> Btb {
        assert!(total_entries.is_multiple_of(ways));
        let sets = total_entries / ways;
        assert!(sets.is_power_of_two());
        Btb {
            ways,
            sets,
            entries: vec![(0, 0, 0); total_entries],
            stamp: 0,
        }
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc / INST_BYTES) as usize) & (self.sets - 1)
    }

    /// Look up a predicted target for `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let s = self.set_of(pc) * self.ways;
        self.stamp += 1;
        for e in &mut self.entries[s..s + self.ways] {
            if e.2 != 0 && e.0 == pc {
                e.2 = self.stamp;
                return Some(e.1);
            }
        }
        None
    }

    /// Install/refresh the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let s = self.set_of(pc) * self.ways;
        self.stamp += 1;
        // Hit: refresh.
        for e in &mut self.entries[s..s + self.ways] {
            if e.2 != 0 && e.0 == pc {
                e.1 = target;
                e.2 = self.stamp;
                return;
            }
        }
        // Miss: fill invalid or evict LRU.
        let set = &mut self.entries[s..s + self.ways];
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.2)
            .map(|(i, _)| i)
            .expect("ways >= 1");
        set[victim] = (pc, target, self.stamp);
    }

    /// Serialize every BTB entry and the LRU stamp.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for &(pc, target, stamp) in &self.entries {
            snapio::put_u64(out, pc);
            snapio::put_u64(out, target);
            snapio::put_u64(out, stamp);
        }
        snapio::put_u64(out, self.stamp);
    }

    /// Restore the state captured by [`Btb::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        for e in &mut self.entries {
            e.0 = r.u64()?;
            e.1 = r.u64()?;
            e.2 = r.u64()?;
        }
        self.stamp = r.u64()?;
        Ok(())
    }
}

/// Return-address stack, one per hardware context. Overflow wraps (oldest
/// entries are overwritten), underflow returns `None`.
#[derive(Debug, Clone)]
pub struct Ras {
    buf: Vec<u64>,
    top: usize,
    depth: usize,
}

impl Ras {
    pub fn new(entries: usize) -> Ras {
        Ras {
            buf: vec![0; entries],
            top: 0,
            depth: 0,
        }
    }

    pub fn push(&mut self, ret_addr: u64) {
        self.buf[self.top] = ret_addr;
        self.top = (self.top + 1) % self.buf.len();
        self.depth = (self.depth + 1).min(self.buf.len());
    }

    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        self.top = (self.top + self.buf.len() - 1) % self.buf.len();
        self.depth -= 1;
        Some(self.buf[self.top])
    }

    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Serialize the ring buffer, top pointer, and depth.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for &a in &self.buf {
            snapio::put_u64(out, a);
        }
        snapio::put_usize(out, self.top);
        snapio::put_usize(out, self.depth);
    }

    /// Restore the state captured by [`Ras::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        for a in &mut self.buf {
            *a = r.u64()?;
        }
        let top = r.usize()?;
        let depth = r.usize()?;
        if top >= self.buf.len() || depth > self.buf.len() {
            return Err(SnapError::malformed(format!(
                "RAS pointers ({top}, {depth}) out of range for {} entries",
                self.buf.len()
            )));
        }
        self.top = top;
        self.depth = depth;
        Ok(())
    }
}

/// A front-end branch prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    pub taken: bool,
    /// Predicted target when taken. `None` means the front-end has no target
    /// (BTB/RAS miss) and must fall through — a wrong path if the branch is
    /// actually taken.
    pub target: Option<u64>,
}

/// The combined branch unit used by the fetch stage.
#[derive(Debug)]
pub struct BranchUnit {
    gshare: Gshare,
    btb: Btb,
    ras: Vec<Ras>,
    pub predictions: u64,
    pub mispredictions: u64,
    /// Per-kind (prediction, misprediction) counters, indexed by
    /// [CondBr, Jump, Call, Return] — diagnostics.
    pub by_kind: [(u64, u64); 4],
}

fn kind_index(ctrl: CtrlKind) -> Option<usize> {
    match ctrl {
        CtrlKind::CondBr => Some(0),
        CtrlKind::Jump => Some(1),
        CtrlKind::Call => Some(2),
        CtrlKind::Return => Some(3),
        CtrlKind::None => None,
    }
}

impl BranchUnit {
    pub fn new(cfg: PredictorConfig, num_threads: usize) -> BranchUnit {
        BranchUnit {
            gshare: Gshare::new(cfg.gshare_entries, num_threads),
            btb: Btb::new(cfg.btb_entries, cfg.btb_ways),
            ras: (0..num_threads)
                .map(|_| Ras::new(cfg.ras_entries))
                .collect(),
            predictions: 0,
            mispredictions: 0,
            by_kind: [(0, 0); 4],
        }
    }

    /// Predict a control-flow instruction at fetch. Calls push the RAS;
    /// returns pop it; this is speculative RAS management, as in hardware.
    pub fn predict(&mut self, thread: usize, pc: u64, ctrl: CtrlKind) -> Prediction {
        self.predictions += 1;
        match ctrl {
            CtrlKind::None => Prediction {
                taken: false,
                target: None,
            },
            CtrlKind::CondBr => {
                let taken = self.gshare.predict(thread, pc);
                let target = if taken { self.btb.lookup(pc) } else { None };
                Prediction { taken, target }
            }
            CtrlKind::Jump => Prediction {
                taken: true,
                target: self.btb.lookup(pc),
            },
            CtrlKind::Call => {
                self.ras[thread].push(pc + INST_BYTES);
                Prediction {
                    taken: true,
                    target: self.btb.lookup(pc),
                }
            }
            CtrlKind::Return => Prediction {
                taken: true,
                target: self.ras[thread].pop(),
            },
        }
    }

    /// Train on a resolved branch. `mispredicted` feeds the counter only;
    /// tables are always trained with the true outcome.
    pub fn resolve(
        &mut self,
        thread: usize,
        pc: u64,
        ctrl: CtrlKind,
        taken: bool,
        target: u64,
        mispredicted: bool,
    ) {
        if mispredicted {
            self.mispredictions += 1;
        }
        if let Some(i) = kind_index(ctrl) {
            self.by_kind[i].0 += 1;
            if mispredicted {
                self.by_kind[i].1 += 1;
            }
        }
        match ctrl {
            CtrlKind::CondBr => {
                self.gshare.update(thread, pc, taken);
                if taken {
                    self.btb.update(pc, target);
                }
            }
            CtrlKind::Jump | CtrlKind::Call => {
                self.btb.update(pc, target);
            }
            CtrlKind::Return | CtrlKind::None => {}
        }
    }

    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Serialize the full branch-unit state: gshare, BTB, every RAS, and
    /// the prediction counters.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.gshare.save_state(out);
        self.btb.save_state(out);
        for ras in &self.ras {
            ras.save_state(out);
        }
        snapio::put_u64(out, self.predictions);
        snapio::put_u64(out, self.mispredictions);
        for &(p, m) in &self.by_kind {
            snapio::put_u64(out, p);
            snapio::put_u64(out, m);
        }
    }

    /// Restore the state captured by [`BranchUnit::save_state`] into an
    /// identically-configured unit.
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.gshare.load_state(r)?;
        self.btb.load_state(r)?;
        for ras in &mut self.ras {
            ras.load_state(r)?;
        }
        self.predictions = r.u64()?;
        self.mispredictions = r.u64()?;
        for k in &mut self.by_kind {
            k.0 = r.u64()?;
            k.1 = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_biased_branch() {
        let mut g = Gshare::new(64, 1);
        let pc = 0x400;
        for _ in 0..10 {
            g.update(0, pc, true);
        }
        assert!(g.predict(0, pc));
        for _ in 0..10 {
            g.update(0, pc, false);
        }
        assert!(!g.predict(0, pc));
    }

    #[test]
    fn gshare_histories_are_per_thread() {
        let mut g = Gshare::new(64, 2);
        // Train thread 0 heavily; thread 1's history stays 0 so it may index
        // differently. The important property: updating thread 0 does not
        // change thread 1's history register.
        g.update(0, 0x400, true);
        g.update(0, 0x404, true);
        assert_eq!(g.history[1], 0);
        assert_ne!(g.history[0], 0);
    }

    #[test]
    fn counters_saturate() {
        let mut c = 0u8;
        for _ in 0..10 {
            c = counter_update(c, true);
        }
        assert_eq!(c, 3);
        for _ in 0..10 {
            c = counter_update(c, false);
        }
        assert_eq!(c, 0);
    }

    #[test]
    fn btb_stores_and_retrieves_targets() {
        let mut b = Btb::new(16, 4);
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        b.update(0x1000, 0x3000);
        assert_eq!(b.lookup(0x1000), Some(0x3000));
    }

    #[test]
    fn btb_evicts_lru_within_a_set() {
        let mut b = Btb::new(8, 2); // 4 sets, 2 ways
                                    // PCs mapping to set 0: (pc/4) % 4 == 0 → pc = 0, 16, 32.
        b.update(0, 0xA);
        b.update(16, 0xB);
        assert!(b.lookup(0).is_some()); // refresh 0
        b.update(32, 0xC); // evicts 16
        assert_eq!(b.lookup(0), Some(0xA));
        assert_eq!(b.lookup(16), None);
        assert_eq!(b.lookup(32), Some(0xC));
    }

    #[test]
    fn ras_round_trips() {
        let mut r = Ras::new(4);
        r.push(0x10);
        r.push(0x20);
        assert_eq!(r.pop(), Some(0x20));
        assert_eq!(r.pop(), Some(0x10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_wraps_and_keeps_newest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1; depth stays capped at 2
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        // The oldest frame was lost to wrap-around.
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_underflow_is_none() {
        let mut r = Ras::new(4);
        assert_eq!(r.pop(), None);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn branch_unit_call_return_pairing() {
        let mut bu = BranchUnit::new(PredictorConfig::paper(), 1);
        let call_pc = 0x100;
        let p = bu.predict(0, call_pc, CtrlKind::Call);
        assert!(p.taken);
        let r = bu.predict(0, 0x500, CtrlKind::Return);
        assert_eq!(r.target, Some(call_pc + INST_BYTES));
    }

    #[test]
    fn branch_unit_learns_jump_targets() {
        let mut bu = BranchUnit::new(PredictorConfig::paper(), 1);
        let p = bu.predict(0, 0x100, CtrlKind::Jump);
        assert!(p.taken);
        assert_eq!(p.target, None, "cold BTB has no target");
        bu.resolve(0, 0x100, CtrlKind::Jump, true, 0x900, true);
        let p2 = bu.predict(0, 0x100, CtrlKind::Jump);
        assert_eq!(p2.target, Some(0x900));
    }

    #[test]
    fn misprediction_rate_counts() {
        let mut bu = BranchUnit::new(PredictorConfig::paper(), 1);
        bu.predict(0, 0x100, CtrlKind::CondBr);
        bu.resolve(0, 0x100, CtrlKind::CondBr, true, 0x200, true);
        bu.predict(0, 0x100, CtrlKind::CondBr);
        bu.resolve(0, 0x100, CtrlKind::CondBr, true, 0x200, false);
        assert!((bu.misprediction_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ras_depth_caps_at_capacity() {
        let mut r = Ras::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.depth(), 3);
    }
}
