use smt_pipeline::{FetchPolicy, PolicyView, SimConfig, Simulator, ThreadSpec};
use smt_trace::profile;
use std::time::Instant;

struct P;
impl FetchPolicy for P {
    fn name(&self) -> &'static str {
        "T"
    }
    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        view.icount_order_into(out);
    }
}

fn main() {
    // Calibration check: run every benchmark in isolation and compare the
    // realized cache behaviour against its Table 2(a) targets.
    let t0 = Instant::now();
    let mut total_cycles = 0u64;
    for p in profile::all_benchmarks() {
        let mut s = Simulator::new(
            SimConfig::baseline(),
            Box::new(P),
            &[ThreadSpec {
                profile: p.clone(),
                seed: 42,
                skip: 0,
            }],
        );
        let r = s.run(30_000, 50_000);
        total_cycles += 80_000;
        let m = &r.mem[0];
        println!(
            "{:8} {:4} IPC {:5.2}  L1 {:5.1}% (tgt {:4.1}) L2 {:5.2}% (tgt {:4.2}) bp-miss {:4.1}%",
            p.name,
            p.class.as_str(),
            r.ipcs()[0],
            100.0 * m.l1_miss_rate(),
            100.0 * p.l1_miss_rate,
            100.0 * m.l2_miss_rate(),
            100.0 * p.l2_miss_rate,
            100.0 * r.branch_mispredict_rate
        );
    }
    let el = t0.elapsed().as_secs_f64();
    println!(
        "simulated {total_cycles} cycles in {el:.2}s = {:.0} kcycles/s",
        total_cycles as f64 / el / 1e3
    );
}
