//! Table 4: relative IPC of each thread in the 4-MIX workload under every
//! policy, and the resulting Hmean — the paper's illustration of *why*
//! DWarn wins the fairness comparison: it keeps the ILP threads as fast as
//! the gating policies do without crushing the MEM threads.

use dwarn_core::PolicyKind;
use smt_metrics::table::TextTable;
use smt_workloads::{workload, WorkloadClass};

use crate::paper;
use crate::runner::{Arch, Campaign};

/// One policy's Table 4 row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    pub policy: PolicyKind,
    /// Per-thread relative IPCs in workload order (gzip, twolf, bzip2, mcf).
    pub rel_ipcs: Vec<f64>,
    pub hmean: f64,
}

pub fn compute(campaign: &Campaign) -> Vec<Table4Row> {
    let wl = workload(4, WorkloadClass::Mix);
    let mut keys = Campaign::grid(
        Arch::Baseline,
        std::slice::from_ref(&wl),
        &PolicyKind::paper_set(),
    );
    keys.extend(Campaign::solo_grid(
        Arch::Baseline,
        std::slice::from_ref(&wl),
    ));
    campaign.prefetch(&keys);
    PolicyKind::paper_set()
        .into_iter()
        .map(|p| {
            let rel = campaign.relative_ipcs(Arch::Baseline, &wl, p);
            let hmean = smt_metrics::hmean(&rel);
            Table4Row {
                policy: p,
                rel_ipcs: rel,
                hmean,
            }
        })
        .collect()
}

pub fn report(rows: &[Table4Row]) -> String {
    // Workload order is gzip, twolf, bzip2, mcf; the paper's column order is
    // ILP, ILP, MEM, MEM = gzip, bzip2, twolf, mcf.
    let mut t = TextTable::new(vec![
        "policy",
        "gzip(ILP)",
        "bzip2(ILP)",
        "twolf(MEM)",
        "mcf(MEM)",
        "Hmean",
        "(paper)",
    ]);
    for r in rows {
        let paper_hmean = paper::TABLE_4
            .iter()
            .find(|(p, _, _)| *p == r.policy.name())
            .map(|(_, _, h)| *h)
            .unwrap_or(f64::NAN);
        t.row(vec![
            r.policy.name().to_string(),
            format!("{:.2}", r.rel_ipcs[0]),
            format!("{:.2}", r.rel_ipcs[2]),
            format!("{:.2}", r.rel_ipcs[1]),
            format!("{:.2}", r.rel_ipcs[3]),
            format!("{:.2}", r.hmean),
            format!("{paper_hmean:.2}"),
        ]);
    }
    format!(
        "Table 4 — relative IPC per thread, 4-MIX workload (baseline architecture)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExpParams;

    #[test]
    fn dwarn_balances_ilp_and_mem_threads() {
        let c = Campaign::new(ExpParams {
            warmup: 15_000,
            measure: 45_000,
        });
        let rows = compute(&c);
        assert_eq!(rows.len(), 6);
        let get = |k: PolicyKind| rows.iter().find(|r| r.policy == k).unwrap();
        let dwarn = get(PolicyKind::DWarn);
        let icount = get(PolicyKind::Icount);
        // The paper's Table 4 pattern: DWarn's Hmean is at worst on par with
        // ICOUNT's (in the paper it is clearly ahead; our ICOUNT suffers a
        // little less on this particular workload).
        assert!(
            dwarn.hmean >= icount.hmean * 0.92,
            "DWarn hmean {} vs ICOUNT {}",
            dwarn.hmean,
            icount.hmean
        );
        let pdg = get(PolicyKind::Pdg);
        assert!(
            dwarn.hmean > pdg.hmean,
            "DWarn hmean {} vs PDG {}",
            dwarn.hmean,
            pdg.hmean
        );
        // Every relative IPC is in (0, ~1].
        for r in &rows {
            for &v in &r.rel_ipcs {
                assert!(v > 0.0 && v < 1.3, "{}: {v}", r.policy.name());
            }
        }
        let s = report(&rows);
        assert!(s.contains("DWARN") && s.contains("Hmean"));
    }
}
