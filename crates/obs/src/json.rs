//! A minimal JSON document builder.
//!
//! The container has no network access and the workspace is deliberately
//! dependency-free, so the exporters build documents through this small
//! value tree instead of serde. Rendering is RFC 8259-conformant: strings
//! are escaped, non-finite floats become `null`, and 64-bit integers are
//! emitted verbatim (no f64 round-trip).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object constructor from `(&str, Json)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation (for human-read artifacts).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{}` on f64 produces the shortest round-trip representation,
        // which is valid JSON (always contains a digit, never a trailing
        // dot); integral values print without a fraction, which JSON
        // permits for numbers.
        out.push_str(&x.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::I64(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::I64(-5).render(), "-5");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn containers_render() {
        let doc = Json::obj(vec![
            ("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("s", Json::str("hi")),
        ]);
        assert_eq!(doc.render(), "{\"xs\":[1,2],\"s\":\"hi\"}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
    }

    #[test]
    fn pretty_round_trips_content() {
        let doc = Json::obj(vec![
            ("a", Json::U64(1)),
            ("b", Json::Arr(vec![Json::Null])),
        ]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"a\": 1"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn integral_floats_are_valid_numbers() {
        assert_eq!(Json::F64(2.0).render(), "2");
        assert_eq!(Json::F64(-0.5).render(), "-0.5");
    }
}
