//! Criterion benches that regenerate the paper's *figures*.
//!
//! One bench per figure: Figure 1 (throughput grid + improvements), Figure
//! 2 (FLUSH overhead), Figure 3 (Hmean improvements; shares Figure 1's
//! grid), Figure 4 (small architecture), Figure 5 (deep architecture). Each
//! prints the standard-window report once, then times a short-window
//! regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_experiments::{figures, Campaign, ExpParams};

fn bench_params() -> ExpParams {
    ExpParams {
        warmup: 1_500,
        measure: 4_000,
    }
}

fn bench_fig1_and_fig3(c: &mut Criterion) {
    let campaign = Campaign::new(ExpParams::standard());
    let grid = figures::baseline_grid(&campaign);
    eprintln!("\n{}", figures::fig1_report(&grid));
    eprintln!("\n{}", figures::fig3_report(&grid));

    let mut g = c.benchmark_group("fig1_fig3_baseline");
    g.sample_size(10);
    g.bench_function("grid", |b| {
        b.iter(|| {
            let campaign = Campaign::new(bench_params());
            figures::baseline_grid(&campaign)
        })
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let campaign = Campaign::new(ExpParams::standard());
    eprintln!("\n{}", figures::fig2_report(&figures::fig2_compute(&campaign)));

    let mut g = c.benchmark_group("fig2_flush_overhead");
    g.sample_size(10);
    g.bench_function("flush_runs", |b| {
        b.iter(|| {
            let campaign = Campaign::new(bench_params());
            figures::fig2_compute(&campaign)
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let campaign = Campaign::new(ExpParams::standard());
    eprintln!("\n{}", figures::fig4_report(&figures::small_grid(&campaign)));

    let mut g = c.benchmark_group("fig4_small_arch");
    g.sample_size(10);
    g.bench_function("small_grid", |b| {
        b.iter(|| {
            let campaign = Campaign::new(bench_params());
            figures::small_grid(&campaign)
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let campaign = Campaign::new(ExpParams::standard());
    eprintln!("\n{}", figures::fig5_report(&figures::deep_grid(&campaign)));

    let mut g = c.benchmark_group("fig5_deep_arch");
    g.sample_size(10);
    g.bench_function("deep_grid", |b| {
        b.iter(|| {
            let campaign = Campaign::new(bench_params());
            figures::deep_grid(&campaign)
        })
    });
    g.finish();
}

criterion_group!(
    figures_benches,
    bench_fig1_and_fig3,
    bench_fig2,
    bench_fig4,
    bench_fig5
);
criterion_main!(figures_benches);
