//! The named experiment suite — the single source of truth for what
//! `smt-experiments -- all` runs, shared by the CLI and the `pr2` bench
//! target (which times a cold and a warm pass over the same list).

use crate::runner::Campaign;
use crate::{ablation, extensions, figures, meta, table2a, table4, taxonomy};

/// An experiment entry point: renders its report against a campaign.
pub type ExperimentFn = fn(&Campaign) -> String;

/// Every experiment, in the order `all` runs them.
pub const ALL: &[(&str, ExperimentFn)] = &[
    ("table2a", run_table2a),
    ("fig1", run_fig1),
    ("fig2", run_fig2),
    ("fig3", run_fig3),
    ("table4", run_table4),
    ("fig4", run_fig4),
    ("fig5", run_fig5),
    ("ablation", ablation::report),
    ("taxonomy", taxonomy::report),
    ("extensions", extensions::report),
    ("meta", meta::report),
];

/// Find an experiment by CLI name.
pub fn lookup(name: &str) -> Option<ExperimentFn> {
    ALL.iter().find(|(n, _)| *n == name).map(|&(_, f)| f)
}

fn run_table2a(c: &Campaign) -> String {
    table2a::report(&table2a::compute(c))
}

fn run_fig1(c: &Campaign) -> String {
    figures::fig1_report(&figures::baseline_grid(c))
}

fn run_fig2(c: &Campaign) -> String {
    figures::fig2_report(&figures::fig2_compute(c))
}

fn run_fig3(c: &Campaign) -> String {
    figures::fig3_report(&figures::baseline_grid(c))
}

fn run_table4(c: &Campaign) -> String {
    table4::report(&table4::compute(c))
}

fn run_fig4(c: &Campaign) -> String {
    figures::fig4_report(&figures::small_grid(c))
}

fn run_fig5(c: &Campaign) -> String {
    figures::fig5_report(&figures::deep_grid(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_knows_every_name() {
        for (name, _) in ALL {
            assert!(lookup(name).is_some());
        }
        assert!(lookup("nonsense").is_none());
    }

    #[test]
    fn all_matches_the_documented_order() {
        let names: Vec<&str> = ALL.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "table2a",
                "fig1",
                "fig2",
                "fig3",
                "table4",
                "fig4",
                "fig5",
                "ablation",
                "taxonomy",
                "extensions",
                "meta"
            ]
        );
    }
}
