//! Policy registry: construct any of the paper's six policies by kind or
//! name, in the order the figures present them.

use smt_pipeline::FetchPolicy;

use crate::dwarn::DWarn;
use crate::gating::{DataGating, PredictiveDataGating};
use crate::icount::Icount;
use crate::meta::{MetaPolicy, SelectorKind};
use crate::stall_flush::{Flush, Stall};

/// The policies evaluated in the paper, plus the pure-priority DWarn
/// ablation and the beyond-the-paper switching meta-policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    Icount,
    Stall,
    Flush,
    Dg,
    Pdg,
    DWarn,
    /// DWarn without the hybrid gate (ablation; not a paper figure series).
    DWarnPriorityOnly,
    /// DC-PRED \[7\]: fetch-stage L2-miss prediction + resource limiting
    /// (discussed in the paper's §2.1 taxonomy; not in its figure series).
    DcPred,
    /// Switching composite over {DWarn, STALL, FLUSH, ICOUNT}, re-selected
    /// at interval boundaries by the given rule (beyond the paper; see
    /// [`crate::meta`]).
    Meta(SelectorKind),
}

impl PolicyKind {
    /// The six policies in the order of the paper's figures:
    /// IC, STALL, FLUSH, DG, PDG, DWarn.
    pub fn paper_set() -> [PolicyKind; 6] {
        [
            PolicyKind::Icount,
            PolicyKind::Stall,
            PolicyKind::Flush,
            PolicyKind::Dg,
            PolicyKind::Pdg,
            PolicyKind::DWarn,
        ]
    }

    /// The baseline policies DWarn is compared against (figure legends:
    /// "DWarn / IC", "DWarn / STALL", ...).
    pub fn baselines() -> [PolicyKind; 5] {
        [
            PolicyKind::Icount,
            PolicyKind::Stall,
            PolicyKind::Flush,
            PolicyKind::Dg,
            PolicyKind::Pdg,
        ]
    }

    /// The three switching meta-policies (beyond the paper), in the order
    /// the results chapter tabulates them.
    pub fn meta_set() -> [PolicyKind; 3] {
        [
            PolicyKind::Meta(SelectorKind::MissRate),
            PolicyKind::Meta(SelectorKind::IpcGreedy),
            PolicyKind::Meta(SelectorKind::Epsilon),
        ]
    }

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Icount => "ICOUNT",
            PolicyKind::Stall => "STALL",
            PolicyKind::Flush => "FLUSH",
            PolicyKind::Dg => "DG",
            PolicyKind::Pdg => "PDG",
            PolicyKind::DWarn => "DWARN",
            PolicyKind::DWarnPriorityOnly => "DWARN-PRIO",
            PolicyKind::DcPred => "DC-PRED",
            PolicyKind::Meta(s) => s.policy_name(),
        }
    }

    /// Campaign cache-key description. Identical to [`PolicyKind::name`]
    /// for the static policies (existing cache entries stay valid); for
    /// the meta-policies it additionally pins the full selector
    /// configuration (window, candidate set, rule constants), so a
    /// reconfigured selector can never be served a stale cached result.
    pub fn cache_desc(self) -> String {
        match self {
            PolicyKind::Meta(s) => MetaPolicy::cache_desc(s, crate::meta::DEFAULT_WINDOW),
            k => k.name().to_string(),
        }
    }

    /// Parse a (case-insensitive) policy name.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s.to_ascii_uppercase().as_str() {
            "IC" | "ICOUNT" => Some(PolicyKind::Icount),
            "STALL" => Some(PolicyKind::Stall),
            "FLUSH" => Some(PolicyKind::Flush),
            "DG" => Some(PolicyKind::Dg),
            "PDG" => Some(PolicyKind::Pdg),
            "DWARN" => Some(PolicyKind::DWarn),
            "DWARN-PRIO" | "DWARNPRIO" => Some(PolicyKind::DWarnPriorityOnly),
            "DC-PRED" | "DCPRED" => Some(PolicyKind::DcPred),
            "META-MISS" | "METAMISS" => Some(PolicyKind::Meta(SelectorKind::MissRate)),
            "META-IPC" | "METAIPC" => Some(PolicyKind::Meta(SelectorKind::IpcGreedy)),
            "META-EPS" | "METAEPS" => Some(PolicyKind::Meta(SelectorKind::Epsilon)),
            _ => None,
        }
    }

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn FetchPolicy> {
        match self {
            PolicyKind::Icount => Box::new(Icount::new()),
            PolicyKind::Stall => Box::new(Stall::new()),
            PolicyKind::Flush => Box::new(Flush::new()),
            PolicyKind::Dg => Box::new(DataGating::new()),
            PolicyKind::Pdg => Box::new(PredictiveDataGating::new()),
            PolicyKind::DWarn => Box::new(DWarn::new()),
            PolicyKind::DWarnPriorityOnly => Box::new(DWarn::priority_only()),
            PolicyKind::DcPred => Box::new(crate::dcpred::DcPred::new()),
            PolicyKind::Meta(s) => Box::new(MetaPolicy::new(s)),
        }
    }

    /// Instantiate the policy at its concrete type and hand it to `v`.
    ///
    /// Where [`PolicyKind::build`] erases the policy behind
    /// `Box<dyn FetchPolicy>` (one virtual call per simulated cycle on the
    /// hottest path), this routes the concrete type through a generic
    /// visitor, so a `Simulator<_, _, F>` built inside
    /// [`PolicyVisitor::visit`] monomorphizes the per-cycle
    /// `fetch_order_into` into a direct, inlinable call. Custom (non-enum)
    /// policies keep using the dyn path.
    pub fn dispatch<V: PolicyVisitor>(self, v: V) -> V::Out {
        match self {
            PolicyKind::Icount => v.visit(Icount::new()),
            PolicyKind::Stall => v.visit(Stall::new()),
            PolicyKind::Flush => v.visit(Flush::new()),
            PolicyKind::Dg => v.visit(DataGating::new()),
            PolicyKind::Pdg => v.visit(PredictiveDataGating::new()),
            PolicyKind::DWarn => v.visit(DWarn::new()),
            PolicyKind::DWarnPriorityOnly => v.visit(DWarn::priority_only()),
            PolicyKind::DcPred => v.visit(crate::dcpred::DcPred::new()),
            // The composite switching arm: the visitor receives the
            // concrete MetaPolicy, so a switching campaign run gets the
            // same monomorphized fetch path as the static policies (the
            // remaining dynamism — one boxed candidate call per cycle —
            // is the composite's own).
            PolicyKind::Meta(s) => v.visit(MetaPolicy::new(s)),
        }
    }
}

/// A computation generic over the concrete policy type, for
/// [`PolicyKind::dispatch`]: implement `visit` once and the dispatcher
/// instantiates it per policy with static (monomorphized) dispatch.
pub trait PolicyVisitor {
    type Out;
    fn visit<F: FetchPolicy + 'static>(self, policy: F) -> Self::Out;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_order_matches_figures() {
        let names: Vec<&str> = PolicyKind::paper_set().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["ICOUNT", "STALL", "FLUSH", "DG", "PDG", "DWARN"]
        );
    }

    #[test]
    fn build_produces_matching_names() {
        for k in PolicyKind::paper_set() {
            assert_eq!(k.build().name(), k.name());
        }
        assert_eq!(
            PolicyKind::DWarnPriorityOnly.build().name(),
            "DWARN",
            "the ablation is still DWarn"
        );
    }

    #[test]
    fn parse_round_trips() {
        for k in PolicyKind::paper_set() {
            assert_eq!(PolicyKind::parse(k.name()), Some(k));
        }
        assert_eq!(PolicyKind::parse("ic"), Some(PolicyKind::Icount));
        assert_eq!(PolicyKind::parse("dwarn"), Some(PolicyKind::DWarn));
        assert_eq!(PolicyKind::parse("nonsense"), None);
    }
}
