//! The figure experiments: each regenerates one figure of the paper.
//!
//! * Figure 1(a): absolute throughput per policy on the 12 workloads.
//! * Figure 1(b): DWarn's throughput improvement over each baseline.
//! * Figure 2: FLUSH-squashed instructions as % of fetched.
//! * Figure 3: DWarn's Hmean improvement over each baseline.
//! * Figure 4: throughput + Hmean improvements on the *small* architecture
//!   (2- and 4-thread workloads only — it is a 4-context processor).
//! * Figure 5: throughput + Hmean improvements on the *deep* architecture.

use dwarn_core::PolicyKind;
use smt_metrics::table::TextTable;
use smt_workloads::{all_workloads, small_arch_workloads, WorkloadClass};

use crate::grid::{self, GridData, Metric};
use crate::paper;
use crate::runner::{Arch, Campaign, RunKey};

/// Figures 1 & 3 share the baseline-architecture grid.
pub fn baseline_grid(campaign: &Campaign) -> GridData {
    grid::compute(campaign, Arch::Baseline, &all_workloads())
}

/// Figure 4's grid: small architecture, 2- and 4-thread workloads.
pub fn small_grid(campaign: &Campaign) -> GridData {
    grid::compute(campaign, Arch::Small, &small_arch_workloads())
}

/// Figure 5's grid: deep architecture, all 12 workloads.
pub fn deep_grid(campaign: &Campaign) -> GridData {
    grid::compute(campaign, Arch::Deep, &all_workloads())
}

/// Figure 1 report: absolute throughputs and improvements.
pub fn fig1_report(g: &GridData) -> String {
    let mut s = String::new();
    s.push_str("Figure 1(a) — throughput (sum of IPCs) per policy, baseline architecture\n\n");
    s.push_str(&g.absolute_table(Metric::Throughput));
    s.push('\n');
    s.push_str(&g.chart(Metric::Throughput));
    s.push_str("\nFigure 1(b) — throughput improvement of DWarn over each policy\n\n");
    s.push_str(&g.improvement_table(Metric::Throughput));
    s.push_str("\nPaper (quoted averages): ");
    s.push_str("DWarn/IC +18% overall; DWarn/STALL +2/+6/+7 (ILP/MIX/MEM); ");
    s.push_str("DWarn/FLUSH +3/+6/-3; DWarn/DG +3/+8/+9; DWarn/PDG +5/+13/+30.\n");
    s
}

/// Figure 3 report: Hmean improvements.
pub fn fig3_report(g: &GridData) -> String {
    let mut s = String::new();
    s.push_str("Figure 3 — Hmean improvement of DWarn over each policy, baseline architecture\n\n");
    s.push_str(&g.improvement_table(Metric::Hmean));
    s.push_str(
        "\nPaper (conclusions, MIX+MEM): IC +13%, STALL +5%, FLUSH +3%, DG +11%, PDG +36%;\n",
    );
    s.push_str("DWarn loses ~2% to FLUSH on MEM workloads.\n");
    s
}

/// Figure 4 report (small architecture).
pub fn fig4_report(g: &GridData) -> String {
    let mut s = String::new();
    s.push_str("Figure 4(a) — throughput improvement of DWarn, small architecture (1.4 fetch)\n\n");
    s.push_str(&g.improvement_table(Metric::Throughput));
    s.push_str("\nFigure 4(b) — Hmean improvement of DWarn, small architecture\n\n");
    s.push_str(&g.improvement_table(Metric::Hmean));
    s.push_str("\nPaper (MIX+MEM): throughput +5% STALL, +23% DG, +10% FLUSH, +40% PDG;\n");
    s.push_str(
        "Hmean +5% STALL, +28% DG, +10% FLUSH, +50% PDG; ICOUNT beats DWarn by ~5% on MIX Hmean.\n",
    );
    s
}

/// Figure 5 report (deep architecture).
pub fn fig5_report(g: &GridData) -> String {
    let mut s = String::new();
    s.push_str("Figure 5(a) — throughput improvement of DWarn, deep architecture (16-stage)\n\n");
    s.push_str(&g.improvement_table(Metric::Throughput));
    s.push_str("\nFigure 5(b) — Hmean improvement of DWarn, deep architecture\n\n");
    s.push_str(&g.improvement_table(Metric::Hmean));
    s.push_str("\nPaper: DWarn beats every policy except FLUSH on MEM (~-6%, driven by 8-MEM\n");
    s.push_str("over-pressure); FLUSH refetches 56% of instructions on MEM there.\n");
    s
}

/// Figure 2: FLUSH's squashed-instruction overhead per workload.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    pub workload: String,
    pub class: WorkloadClass,
    pub flushed_pct: f64,
}

pub fn fig2_compute(campaign: &Campaign) -> Vec<Fig2Row> {
    let wls = all_workloads();
    let keys: Vec<RunKey> = wls
        .iter()
        .map(|w| RunKey::workload(Arch::Baseline, w, PolicyKind::Flush))
        .collect();
    campaign.prefetch(&keys);
    wls.iter()
        .map(|w| {
            let r = campaign.workload_result(Arch::Baseline, w, PolicyKind::Flush);
            Fig2Row {
                workload: w.name.clone(),
                class: w.class,
                flushed_pct: 100.0 * r.flushed_fraction(),
            }
        })
        .collect()
}

pub fn fig2_report(rows: &[Fig2Row]) -> String {
    let mut t = TextTable::new(vec!["workload", "flushed %"]);
    for r in rows {
        t.row(vec![r.workload.clone(), format!("{:.1}", r.flushed_pct)]);
    }
    for class in WorkloadClass::ALL {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.flushed_pct)
            .collect();
        t.row(vec![
            format!("avg-{}", class.as_str()),
            format!("{:.1}", smt_metrics::mean(&vals)),
        ]);
    }
    let paper_avgs: Vec<String> = paper::FIG2_FLUSHED_PCT
        .iter()
        .map(|(c, v)| format!("{c} {v:.0}%"))
        .collect();
    format!(
        "Figure 2 — instructions squashed by FLUSH as % of fetched\n\n{}\n\
         Paper averages: {} (MEM value quoted in the text; ILP/MIX read off the figure).\n",
        t.render(),
        paper_avgs.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExpParams;

    #[test]
    fn fig2_mem_workloads_flush_most() {
        let c = Campaign::new(ExpParams {
            warmup: 2_000,
            measure: 8_000,
        });
        let rows = fig2_compute(&c);
        assert_eq!(rows.len(), 12);
        let avg = |cl: WorkloadClass| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.class == cl)
                .map(|r| r.flushed_pct)
                .collect();
            smt_metrics::mean(&v)
        };
        let (ilp, mem) = (avg(WorkloadClass::Ilp), avg(WorkloadClass::Mem));
        assert!(
            mem > ilp,
            "MEM workloads must flush more than ILP: {mem} vs {ilp}"
        );
        assert!(mem > 5.0, "MEM flush overhead should be substantial: {mem}");
        let report = fig2_report(&rows);
        assert!(report.contains("avg-MEM"));
    }
}
