//! Benches for the §3/§5 prose ablations: the DG threshold sweep, the
//! STALL/FLUSH L2-declare-threshold sweep, and the DWarn hybrid rule.

use smt_bench::Group;
use smt_experiments::{ablation, Campaign, ExpParams};

fn bench_params() -> ExpParams {
    ExpParams {
        warmup: 1_500,
        measure: 4_000,
    }
}

fn bench_ablations() {
    eprintln!(
        "\n{}",
        ablation::report(&Campaign::new(ExpParams::standard()))
    );

    // A fresh campaign per iteration so every sample simulates (the memo
    // would otherwise reduce later samples to cache lookups).
    let mut g = Group::new("ablation_thresholds");
    g.sample_size(10);
    g.bench_function("dg_threshold_sweep", || {
        ablation::dg_threshold_sweep(&Campaign::new(bench_params()))
    });
    g.bench_function("declare_threshold_sweep", || {
        ablation::declare_threshold_sweep(&Campaign::new(bench_params()))
    });
    g.bench_function("dwarn_hybrid", || {
        ablation::dwarn_hybrid_ablation(&Campaign::new(bench_params()))
    });
    g.finish();
}

fn main() {
    bench_ablations();
}
