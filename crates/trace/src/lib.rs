//! # smt-trace — synthetic instruction-trace substrate
//!
//! The DWarn paper drives a trace-driven SMT simulator with Alpha traces of
//! the SPEC2000 integer suite. Those traces are not reproducible, so this
//! crate provides the closest synthetic equivalent:
//!
//! * [`profile`] — one statistical profile per SPECint benchmark, carrying
//!   the measured cache behaviour of the paper's Table 2(a) plus an
//!   instruction-mix / control-flow / dependency model;
//! * [`program`] — deterministic expansion of a profile into a *static
//!   program* (the paper's basic-block dictionary), enabling wrong-path
//!   fetch;
//! * [`stream`] — the correct-path dynamic instruction stream
//!   ([`ThreadTrace`]) and wrong-path synthesis ([`SynthState`]);
//! * [`rng`] — a reproducible xoshiro256** PRNG so a `(profile, seed)` pair
//!   pins the trace bit-for-bit;
//! * [`mod@file`] — record/replay of traces in a compact binary format
//!   (`DWTR`), carrying the dictionary so wrong-path fetch still works.
//!
//! Loads draw addresses from three pools — an L1-resident *hot* set, a
//! circularly-streamed L2-resident *warm* set, and a *cold* streaming
//! region — with probabilities taken from Table 2(a), so the **real**
//! simulated cache hierarchy reproduces each benchmark's L1/L2 miss rates.

pub mod file;
pub mod instr;
pub mod profile;
pub mod program;
pub mod rng;
pub mod snapio;
pub mod stream;

pub use file::RecordedTrace;
pub use instr::{
    ArchReg, CtrlKind, DynInst, MemPool, OpClass, StaticInst, INST_BYTES, NUM_ARCH_REGS,
};
pub use profile::{all_benchmarks, by_name, BenchProfile, ProfileBuilder, ThreadClass};
pub use program::{Block, Function, StaticProgram};
pub use rng::Rng;
pub use stream::{PoolState, SynthState, ThreadTrace};
