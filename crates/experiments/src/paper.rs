//! The paper's reported numbers, for side-by-side comparison in experiment
//! reports and in `EXPERIMENTS.md`.
//!
//! The text of the paper gives Table 2(a), Table 4, and per-class *average
//! improvement* percentages; the absolute bar heights of Figures 1–5 are
//! not recoverable from the text, so comparisons are against the quoted
//! averages and orderings.

/// Table 2(a): (benchmark, L1 miss %, L2 miss %, L1→L2 %).
pub const TABLE_2A: [(&str, f64, f64, f64); 12] = [
    ("mcf", 32.3, 29.6, 91.6),
    ("twolf", 5.8, 2.9, 49.3),
    ("vpr", 4.3, 1.9, 44.7),
    ("parser", 2.9, 1.0, 36.0),
    ("gap", 0.7, 0.7, 94.0),
    ("vortex", 1.0, 0.3, 33.3),
    ("gcc", 0.4, 0.3, 82.2),
    ("perlbmk", 0.3, 0.1, 42.7),
    ("bzip2", 0.1, 0.1, 97.9),
    ("crafty", 0.8, 0.1, 6.9),
    ("gzip", 2.5, 0.1, 2.0),
    ("eon", 0.1, 0.0, 2.1),
];

/// §5.1: average throughput improvement of DWarn over each baseline policy,
/// by workload class, on the baseline architecture (percent).
/// `None` where the text gives no per-class figure.
#[derive(Debug, Clone, Copy)]
pub struct ClassImprovements {
    pub policy: &'static str,
    pub ilp: Option<f64>,
    pub mix: Option<f64>,
    pub mem: Option<f64>,
    /// Overall average when quoted.
    pub avg: Option<f64>,
}

/// Throughput improvements (Figure 1b, quoted in §5.1).
pub const FIG1B_THROUGHPUT: [ClassImprovements; 5] = [
    ClassImprovements {
        policy: "ICOUNT",
        ilp: None,
        mix: None,
        mem: None,
        avg: Some(18.0),
    },
    ClassImprovements {
        policy: "STALL",
        ilp: Some(2.0),
        mix: Some(6.0),
        mem: Some(7.0),
        avg: None,
    },
    ClassImprovements {
        policy: "FLUSH",
        ilp: Some(3.0),
        mix: Some(6.0),
        mem: Some(-3.0),
        avg: None,
    },
    ClassImprovements {
        policy: "DG",
        ilp: Some(3.0),
        mix: Some(8.0),
        mem: Some(9.0),
        avg: None,
    },
    ClassImprovements {
        policy: "PDG",
        ilp: Some(5.0),
        mix: Some(13.0),
        mem: Some(30.0),
        avg: None,
    },
];

/// Figure 2 (quoted in §5.1 / visible averages): FLUSH-squashed
/// instructions as a percentage of fetched, by class. The MEM average (35%)
/// is quoted in the text; ILP/MIX averages read off the figure.
pub const FIG2_FLUSHED_PCT: [(&str, f64); 3] = [("ILP", 2.0), ("MIX", 7.0), ("MEM", 35.0)];

/// Table 4: relative IPC of each thread in the 4-MIX workload
/// (gzip, twolf, bzip2, mcf — the paper labels columns thread 1/2 = ILP,
/// thread 3/4 = MEM) and the resulting Hmean.
/// Rows: (policy, [rel_ipc per thread in table order: ILP, ILP, MEM, MEM], hmean).
pub const TABLE_4: [(&str, [f64; 4], f64); 6] = [
    ("ICOUNT", [0.36, 0.41, 0.50, 0.79], 0.47),
    ("STALL", [0.42, 0.65, 0.38, 0.63], 0.49),
    ("FLUSH", [0.41, 0.64, 0.34, 0.59], 0.46),
    ("DG", [0.43, 0.70, 0.34, 0.46], 0.45),
    ("PDG", [0.40, 0.72, 0.28, 0.31], 0.38),
    ("DWARN", [0.44, 0.69, 0.43, 0.70], 0.53),
];

/// §7 conclusions: Hmean improvement of DWarn for MIX and MEM workloads
/// (percent).
pub const HMEAN_MIX_MEM: [(&str, f64); 5] = [
    ("ICOUNT", 13.0),
    ("STALL", 5.0),
    ("FLUSH", 3.0),
    ("DG", 11.0),
    ("PDG", 36.0),
];

/// §6, small architecture: throughput improvements for MIX and MEM
/// workloads (percent).
pub const FIG4_THROUGHPUT_MIX_MEM: [(&str, f64); 4] =
    [("STALL", 5.0), ("DG", 23.0), ("FLUSH", 10.0), ("PDG", 40.0)];

/// §6, small architecture: Hmean improvements for MIX and MEM workloads.
/// ICOUNT *beats* DWarn by ~5% on MIX Hmean there.
pub const FIG4_HMEAN_MIX_MEM: [(&str, f64); 4] =
    [("STALL", 5.0), ("DG", 28.0), ("FLUSH", 10.0), ("PDG", 50.0)];

/// §6, deep architecture: DWarn beats everything except FLUSH on MEM
/// (−6%, driven by 8-MEM over-pressure), and FLUSH's refetch overhead there
/// is 56% on MEM workloads.
pub const FIG5_FLUSH_MEM_SLOWDOWN: f64 = -6.0;
pub const FIG5_FLUSH_MEM_REFETCH_PCT: f64 = 56.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2a_ratio_column_is_consistent() {
        for (name, l1, l2, ratio) in TABLE_2A {
            // Skip the tiny-rate rows: the paper's table publishes one
            // decimal, so the ratio of two sub-0.5% rates is dominated by
            // rounding of the operands.
            if l1 >= 0.5 && l2 > 0.0 {
                let computed = l2 / l1 * 100.0;
                // The paper's ratio column is consistent with l2/l1 to
                // within rounding of the published decimals.
                assert!(
                    (computed - ratio).abs() < 8.0,
                    "{name}: {computed} vs {ratio}"
                );
            }
        }
    }

    #[test]
    fn table_4_hmeans_match_their_rows() {
        for (policy, rel, hmean) in TABLE_4 {
            let computed = smt_metrics::hmean(&rel);
            assert!(
                (computed - hmean).abs() < 0.015,
                "{policy}: {computed} vs {hmean}"
            );
        }
    }

    #[test]
    fn dwarn_has_best_table_4_hmean() {
        let best = TABLE_4
            .iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        assert_eq!(best.0, "DWARN");
    }
}
