//! Cooperative SIGINT handling for checkpointing campaigns.
//!
//! Ctrl-C must not lose work: the handler only latches an atomic flag
//! (the only async-signal-safe thing it could do anyway), and the
//! campaign's checkpointed run loop polls it between cycles. On the next
//! poll every in-flight simulation stops at a clean cycle boundary,
//! writes a resumable checkpoint, and the process exits with
//! [`crate::error::EXIT_INTERRUPTED`] after flushing partial results and
//! failure artifacts — re-running with the same `--resume <dir>` picks up
//! exactly where it stopped.
//!
//! A second Ctrl-C while the first is still draining falls back to the
//! default disposition (the handler re-arms SIGDFL after latching), so a
//! wedged drain can always be killed the ordinary way.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // Async-signal-safe: one atomic store, one handler re-arm.
        REQUESTED.store(true, Ordering::SeqCst);
        // Restore the default disposition so a second Ctrl-C kills a
        // drain that wedges instead of latching a flag nobody reads.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal plumbing off unix; `request()` still works for tests.
    pub fn install() {}
}

/// Install the SIGINT latch (idempotent; no-op off unix).
pub fn install() {
    imp::install();
}

/// Has an interrupt been requested (SIGINT received, or [`request`])?
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Latch an interrupt request programmatically (tests, embedders).
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Clear the latch (tests; a real campaign exits instead).
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_round_trips() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
        install(); // must not disturb the cleared latch
        assert!(!requested());
    }
}
