//! Plain-text bar charts for figure reports: grouped horizontal bars in the
//! style of the paper's Figure 1(a)/(b) — readable in a terminal, diffable
//! in a log.

/// A grouped horizontal bar chart: one row per (group, series) pair.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    /// (group label, series values) in display order.
    groups: Vec<(String, Vec<f64>)>,
    series: Vec<String>,
    /// Characters available for the longest bar.
    width: usize,
}

impl BarChart {
    pub fn new<S: Into<String>>(title: S, series: Vec<S>) -> BarChart {
        BarChart {
            title: title.into(),
            groups: Vec::new(),
            series: series.into_iter().map(Into::into).collect(),
            width: 46,
        }
    }

    /// Override the bar width in characters.
    pub fn width(mut self, width: usize) -> BarChart {
        assert!(width >= 8);
        self.width = width;
        self
    }

    /// Append a group; `values` must match the series count.
    pub fn group<S: Into<String>>(&mut self, label: S, values: Vec<f64>) -> &mut Self {
        assert_eq!(values.len(), self.series.len(), "one value per series");
        self.groups.push((label.into(), values));
        self
    }

    /// Render. Bars scale to the largest |value|; negative values are drawn
    /// with `░` to the left of the axis mark.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        if self.groups.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let max_abs = self
            .groups
            .iter()
            .flat_map(|(_, vs)| vs.iter())
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        let label_w = self
            .groups
            .iter()
            .map(|(l, _)| l.len())
            .chain(self.series.iter().map(|s| s.len()))
            .max()
            .unwrap_or(4);
        for (label, values) in &self.groups {
            out.push_str(&format!("{label}\n"));
            for (s, &v) in self.series.iter().zip(values) {
                let bar_len = ((v.abs() / max_abs) * self.width as f64).round() as usize;
                let bar: String = if v >= 0.0 {
                    "█".repeat(bar_len)
                } else {
                    "░".repeat(bar_len)
                };
                out.push_str(&format!(
                    "  {s:<label_w$} |{bar} {v:.2}\n",
                    s = s,
                    label_w = label_w
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        let mut c = BarChart::new("tput", vec!["IC", "DWARN"]);
        c.group("2-MIX", vec![3.4, 3.3]);
        c.group("8-MEM", vec![1.4, 3.4]);
        c
    }

    #[test]
    fn renders_all_groups_and_series() {
        let s = chart().render();
        for needle in ["tput", "2-MIX", "8-MEM", "IC", "DWARN", "3.40", "1.40"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn bars_scale_to_the_maximum() {
        let s = chart().render();
        // The two 3.4 values must have equally long (maximal) bars.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        let bar_len = |l: &str| l.chars().filter(|&c| c == '█').count();
        let max = lines.iter().map(|l| bar_len(l)).max().unwrap();
        assert_eq!(bar_len(lines[0]), max, "IC 3.4 is a maximal bar");
        assert_eq!(bar_len(lines[3]), max, "DWARN 3.4 is a maximal bar");
        assert!(bar_len(lines[2]) < max / 2, "1.4 is a short bar");
    }

    #[test]
    fn negative_values_use_hollow_bars() {
        let mut c = BarChart::new("improvement", vec!["x"]);
        c.group("g", vec![-5.0]);
        let s = c.render();
        assert!(s.contains('░'));
        assert!(!s.contains('█'));
    }

    #[test]
    #[should_panic(expected = "one value per series")]
    fn ragged_groups_panic() {
        let mut c = BarChart::new("t", vec!["a", "b"]);
        c.group("g", vec![1.0]);
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let c = BarChart::new("t", vec!["a"]);
        assert!(c.render().contains("(no data)"));
    }
}
