//! Golden fragment-replay equivalence suite.
//!
//! The time-axis fragment-replay engine promises that a scout pass plus
//! concurrent per-fragment re-simulation stitches to the **bit-identical**
//! result a sequential run produces — result digest, interval series,
//! switch log, everything. The engine already proves scout/stitch
//! agreement internally; this suite independently pins the stitched
//! output against straight sequential runs across every policy × class ×
//! skip mode, and property-tests the underlying seam primitive
//! (snapshot-at-k, restore, run-to-end) at randomly drawn k — including
//! k landing mid-L2-miss and mid-warn-state.

use std::cell::Cell;

use dwarn_core::PolicyKind;
use smt_obs::{IntervalConfig, IntervalProbe, IntervalSeries, Probe};
use smt_pipeline::{
    CheckpointOpts, FragmentOpts, MachineSnapshot, RecordingSanitizer, RunOutcome, SimConfig,
    SimError, Simulator, ThreadSpec, Watchdog,
};
use smt_trace::rng::Rng;
use smt_workloads::{workload, WorkloadClass};

const WARMUP: u64 = 400;
const MEASURE: u64 = 1_200;
/// Short enough that every run splits into several fragments.
const FRAGMENT: u64 = 300;
const JOBS: usize = 4;

fn classes() -> [WorkloadClass; 3] {
    [WorkloadClass::Ilp, WorkloadClass::Mix, WorkloadClass::Mem]
}

/// All nine policies: the paper's six plus the switching meta-policies.
fn policies() -> Vec<PolicyKind> {
    let mut all = PolicyKind::paper_set().to_vec();
    all.extend(PolicyKind::meta_set());
    all
}

/// Sequential reference: digest and full switch log.
fn straight(
    kind: PolicyKind,
    specs: &[ThreadSpec],
    skip: bool,
) -> (u64, Vec<smt_pipeline::PolicySwitch>) {
    let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), specs);
    sim.set_skip_enabled(skip);
    let digest = sim.run(WARMUP, MEASURE).digest();
    (digest, sim.policy().switch_log().to_vec())
}

#[test]
fn fragmented_matches_sequential_for_every_policy_class_and_skip_mode() {
    for skip in [true, false] {
        for class in classes() {
            let specs = workload(2, class).thread_specs();
            for kind in policies() {
                let (want, want_switches) = straight(kind, &specs, skip);
                let mut scout = Simulator::new(SimConfig::baseline(), kind.build(), &specs);
                scout.set_skip_enabled(skip);
                let factory = || {
                    let mut sim = Simulator::try_new(SimConfig::baseline(), kind.build(), &specs)?;
                    sim.set_skip_enabled(skip);
                    Ok(sim)
                };
                let report = scout
                    .try_run_fragmented(
                        WARMUP,
                        MEASURE,
                        &Watchdog::default(),
                        &FragmentOpts {
                            jobs: JOBS,
                            fragment_cycles: FRAGMENT,
                        },
                        &factory,
                    )
                    .unwrap_or_else(|e| {
                        panic!("{kind:?}/{class:?} skip={skip}: fragmented run failed: {e}")
                    });
                assert!(
                    report.fragments.len() >= 3,
                    "{kind:?}/{class:?}: expected several fragments, got {}",
                    report.fragments.len()
                );
                assert_eq!(
                    report.result.digest(),
                    want,
                    "{kind:?}/{class:?} skip={skip}: stitched digest diverged from sequential"
                );
                assert_eq!(
                    report.switches, want_switches,
                    "{kind:?}/{class:?} skip={skip}: stitched switch log diverged"
                );
            }
        }
    }
}

#[test]
fn fragmented_interval_series_and_sanitizer_match_sequential() {
    const WINDOW: u64 = 256;
    for class in classes() {
        let specs = workload(2, class).thread_specs();
        let kind = PolicyKind::DWarn;

        // Sequential probed + sanitized reference.
        let mut seq = Simulator::try_with_specs(
            SimConfig::baseline(),
            kind.build(),
            &specs,
            IntervalProbe::new(IntervalConfig { window: WINDOW }),
            RecordingSanitizer::new(),
        )
        .expect("baseline config is valid");
        seq.set_skip_enabled(true);
        let want = seq
            .try_run(WARMUP, MEASURE, &Watchdog::default())
            .expect("sequential run completes")
            .digest();
        assert!(seq.sanitizer().is_clean());
        let want_series = seq.into_probe().into_series();

        // Fragmented: null scout, probed + sanitized replay workers.
        let mut scout = Simulator::new(SimConfig::baseline(), kind.build(), &specs);
        scout.set_skip_enabled(true);
        let factory = || {
            let mut sim = Simulator::try_with_specs(
                SimConfig::baseline(),
                kind.build(),
                &specs,
                IntervalProbe::new(IntervalConfig { window: WINDOW }),
                RecordingSanitizer::new(),
            )?;
            sim.set_skip_enabled(true);
            Ok(sim)
        };
        let report = scout
            .try_run_fragmented(
                WARMUP,
                MEASURE,
                &Watchdog::default(),
                &FragmentOpts {
                    jobs: JOBS,
                    fragment_cycles: FRAGMENT,
                },
                &factory,
            )
            .unwrap_or_else(|e| panic!("{class:?}: fragmented probed run failed: {e}"));
        assert_eq!(report.result.digest(), want, "{class:?}: result diverged");
        for frag in &report.fragments {
            assert!(
                frag.sanitizer.is_clean(),
                "{class:?}: fragment {} failed the audit:\n{}",
                frag.index,
                frag.sanitizer.render_report()
            );
        }
        let parts: Vec<IntervalSeries> = report
            .fragments
            .into_iter()
            .map(|f| f.probe.into_series())
            .collect();
        let stitched = IntervalSeries::stitch(parts.iter()).expect("series stitch");
        assert_eq!(
            stitched.digest(),
            want_series.digest(),
            "{class:?}: stitched interval series diverged from sequential"
        );
        // `skipped` is excluded from the digest (meta-telemetry), but the
        // stitched totals must still cover the same simulated time.
        assert_eq!(stitched.total_cycles(), want_series.total_cycles());
    }
}

#[test]
fn fragment_opts_are_validated() {
    let specs = workload(2, WorkloadClass::Mix).thread_specs();
    let factory = || {
        Simulator::try_new(SimConfig::baseline(), PolicyKind::Icount.build(), &specs)
            .map_err(SimError::from)
    };
    for opts in [
        FragmentOpts {
            jobs: 0,
            fragment_cycles: FRAGMENT,
        },
        FragmentOpts {
            jobs: JOBS,
            fragment_cycles: 0,
        },
    ] {
        let mut scout = Simulator::new(SimConfig::baseline(), PolicyKind::Icount.build(), &specs);
        let err = scout
            .try_run_fragmented(WARMUP, MEASURE, &Watchdog::default(), &opts, &factory)
            .expect_err("invalid options must be rejected");
        assert!(
            matches!(err, SimError::Fragment { .. }),
            "expected a Fragment error, got: {err}"
        );
    }
}

/// Phase recorder: the cycles during which an L2 miss was outstanding and
/// the cycles during which a thread sat at a non-zero warn level, so the
/// property test can aim k at the awkward spots deliberately.
#[derive(Default)]
struct PhaseRecorder {
    /// Open L2 misses: `(load_id, begin_cycle)`.
    open_l2: Vec<(u64, u64)>,
    /// Closed L2-miss windows `(begin, end)`.
    l2_windows: Vec<(u64, u64)>,
    /// Per-thread currently-open warn window start.
    open_warn: Vec<Option<u64>>,
    /// Closed warn windows `(begin, end)`.
    warn_windows: Vec<(u64, u64)>,
}

impl Probe for PhaseRecorder {
    fn on_l1_miss_begin(&mut self, cycle: u64, _t: usize, load_id: u64, _addr: u64, l2: bool) {
        if l2 {
            self.open_l2.push((load_id, cycle));
        }
    }
    fn on_l1_miss_end(&mut self, cycle: u64, _t: usize, load_id: u64) {
        if let Some(i) = self.open_l2.iter().position(|&(id, _)| id == load_id) {
            let (_, begin) = self.open_l2.swap_remove(i);
            self.l2_windows.push((begin, cycle));
        }
    }
    fn on_warn_change(&mut self, cycle: u64, thread: usize, _from: u8, to: u8) {
        if thread >= self.open_warn.len() {
            self.open_warn.resize(thread + 1, None);
        }
        match (self.open_warn[thread], to) {
            (None, t) if t > 0 => self.open_warn[thread] = Some(cycle),
            (Some(begin), 0) => {
                self.warn_windows.push((begin, cycle));
                self.open_warn[thread] = None;
            }
            _ => {}
        }
    }
}

/// Snapshot the machine at exactly cycle `k` (mid-run), using the chunk
/// alignment of the checkpoint engine: chunks never straddle the
/// warmup/measure boundary, so an interval of `k` (warmup phase) or
/// `k - WARMUP` (measure phase) puts a chunk boundary exactly at `k`.
fn snapshot_at(
    kind: PolicyKind,
    specs: &[ThreadSpec],
    skip: bool,
    k: u64,
) -> Option<MachineSnapshot> {
    assert!(k > 0 && k < WARMUP + MEASURE);
    let interval = if k <= WARMUP { k } else { k - WARMUP };
    let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), specs);
    sim.set_skip_enabled(skip);
    let hit = Cell::new(false);
    let got: Cell<Option<MachineSnapshot>> = Cell::new(None);
    // The stop request is polled *before* the periodic emit at each chunk
    // boundary, so a flag set by the sink is only seen one chunk later.
    // Grab the emitted snapshot itself (through the wire format, which
    // also exercises the framing round-trip) and use the stop merely to
    // cut the rest of the run short.
    let mut sink = |s: &MachineSnapshot| {
        if s.cycle() == k {
            let snap = MachineSnapshot::from_bytes(&s.to_bytes())
                .expect("emitted snapshot survives the wire round-trip");
            got.set(Some(snap));
            hit.set(true);
        }
    };
    let stop = || hit.get();
    let mut opts = CheckpointOpts {
        interval,
        sink: &mut sink,
        stop: Some(&stop),
    };
    sim.try_run_checkpointed(WARMUP, MEASURE, &Watchdog::default(), &mut opts)
        .expect("capture run must not trip the watchdog");
    got.into_inner()
}

/// Restore `snap` into a fresh simulator and run the remainder.
fn resume_digest(
    kind: PolicyKind,
    specs: &[ThreadSpec],
    skip: bool,
    snap: &MachineSnapshot,
) -> u64 {
    let mut sim = Simulator::new(SimConfig::baseline(), kind.build(), specs);
    sim.set_skip_enabled(skip);
    let pending = sim.restore_run(snap).expect("snapshot restores");
    let mut sink = |_: &MachineSnapshot| {};
    let mut opts = CheckpointOpts {
        interval: 0,
        sink: &mut sink,
        stop: None,
    };
    match sim
        .resume_run(pending, &Watchdog::default(), &mut opts)
        .expect("resumed run completes")
    {
        RunOutcome::Completed(r) => r.digest(),
        RunOutcome::Interrupted(_) => unreachable!("no stop requested"),
    }
}

#[test]
fn restore_at_random_k_equals_straight_run_including_awkward_cycles() {
    // MEM workload + DWarn: plenty of L2 misses and warn transitions to
    // land inside. The recorder maps out when they happen.
    let specs = workload(2, WorkloadClass::Mem).thread_specs();
    let kind = PolicyKind::DWarn;
    let mut probed = Simulator::try_with_probe(
        SimConfig::baseline(),
        kind.build(),
        &specs,
        PhaseRecorder::default(),
    )
    .expect("baseline config is valid");
    let (want, _) = straight(kind, &specs, true);
    probed
        .try_run(WARMUP, MEASURE, &Watchdog::default())
        .expect("probed reference run completes");
    let phases = probed.into_probe();
    let mid = |w: &[(u64, u64)], pick: u64| -> Option<u64> {
        let fat: Vec<&(u64, u64)> = w
            .iter()
            .filter(|(b, e)| *e > b + 1 && b + 1 < WARMUP + MEASURE - 1)
            .collect();
        let (b, e) = *fat.get(pick as usize % fat.len().max(1))?;
        Some(((b + e) / 2).clamp(1, WARMUP + MEASURE - 1))
    };

    let mut rng = Rng::new(0x5eed_f00d);
    let mut ks: Vec<u64> = Vec::new();
    // Eight uniformly random k across the whole run...
    for _ in 0..8 {
        ks.push(1 + rng.next_u64() % (WARMUP + MEASURE - 2));
    }
    // ...plus randomly chosen k mid-L2-miss and mid-warn-state.
    let mut awkward = 0;
    for _ in 0..3 {
        if let Some(k) = mid(&phases.l2_windows, rng.next_u64()) {
            ks.push(k);
            awkward += 1;
        }
        if let Some(k) = mid(&phases.warn_windows, rng.next_u64()) {
            ks.push(k);
            awkward += 1;
        }
    }
    assert!(
        awkward >= 2,
        "MEM/DWarn run produced too few mid-L2/mid-warn windows to aim at \
         (l2={}, warn={})",
        phases.l2_windows.len(),
        phases.warn_windows.len()
    );

    let (want_noskip, _) = straight(kind, &specs, false);
    assert_eq!(want, want_noskip, "skip modes disagree before the test");
    for &k in &ks {
        for skip in [true, false] {
            let Some(snap) = snapshot_at(kind, &specs, skip, k) else {
                continue; // k collided with completion; nothing to restore
            };
            // Cross-mode restores too: capture under `skip`, resume both.
            for resume_skip in [true, false] {
                assert_eq!(
                    resume_digest(kind, &specs, resume_skip, &snap),
                    want,
                    "k={k} capture-skip={skip} resume-skip={resume_skip}: diverged"
                );
            }
        }
    }
}

#[test]
fn campaign_fragmented_results_match_sequential_campaign() {
    use smt_experiments::runner::{Campaign, ExpParams, RunKey};
    use smt_experiments::Arch;

    let params = ExpParams::quick();
    let wl = workload(2, WorkloadClass::Mem);
    let key = RunKey::workload(Arch::Baseline, &wl, PolicyKind::DWarn);

    let plain = Campaign::new(params);
    let want = plain.result(&key).digest();

    let mut frag = Campaign::new(params);
    frag.set_fragments(2_000);
    assert!(frag.fragments_enabled());
    let got = frag.result(&key).digest();
    assert_eq!(
        got, want,
        "campaign-level fragmented run diverged from sequential"
    );
}
