//! Bounded ring-buffered event capture.
//!
//! Cycle-resolved events can outnumber instructions; an unbounded log would
//! dominate simulation cost and memory. [`EventRing`] keeps the most recent
//! `capacity` events, dropping the oldest and counting the drops, so a
//! capture of the *end* of a window is always available at fixed cost.

use std::collections::VecDeque;

use crate::probe::{GateReason, SquashKind};

/// What happened. Payload fields mirror the [`crate::Probe`] hook arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    Fetch {
        pc: u64,
        seq: u64,
        wrong_path: bool,
    },
    Dispatch {
        seq: u64,
    },
    Issue {
        seq: u64,
    },
    Commit {
        seq: u64,
        pc: u64,
    },
    Squash {
        seq: u64,
        kind: SquashKind,
    },
    Gate {
        reason: GateReason,
    },
    Ungate {
        reason: GateReason,
    },
    L1MissBegin {
        load_id: u64,
        addr: u64,
        l2: bool,
    },
    L1MissEnd {
        load_id: u64,
    },
    L2Declare {
        load_id: u64,
    },
    L2Resolve {
        load_id: u64,
    },
    IfetchMiss {
        addr: u64,
        ready_at: u64,
    },
    /// A switching meta-policy handed fetch control to a different
    /// candidate (machine-wide; the event's `thread` is 0 by convention).
    PolicySwitch {
        from: &'static str,
        to: &'static str,
    },
}

impl EventKind {
    /// Short category name (used by exporters and tests).
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::Fetch { .. } => "fetch",
            EventKind::Dispatch { .. } => "dispatch",
            EventKind::Issue { .. } => "issue",
            EventKind::Commit { .. } => "commit",
            EventKind::Squash { .. } => "squash",
            EventKind::Gate { .. } => "gate",
            EventKind::Ungate { .. } => "ungate",
            EventKind::L1MissBegin { .. } => "l1-miss-begin",
            EventKind::L1MissEnd { .. } => "l1-miss-end",
            EventKind::L2Declare { .. } => "l2-declare",
            EventKind::L2Resolve { .. } => "l2-resolve",
            EventKind::IfetchMiss { .. } => "ifetch-miss",
            EventKind::PolicySwitch { .. } => "policy-switch",
        }
    }
}

/// One captured event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub cycle: u64,
    pub thread: usize,
    pub kind: EventKind,
}

/// A bounded FIFO of [`TraceEvent`]s. Pushing into a full ring evicts the
/// oldest event and increments [`EventRing::dropped`].
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    pub fn new(capacity: usize) -> EventRing {
        assert!(capacity > 0, "a zero-capacity ring records nothing");
        EventRing {
            buf: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
        }
    }

    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted to make room (0 while the ring has never been full).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Oldest-to-newest iteration over the retained events.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            thread: 0,
            kind: EventKind::Commit { seq: cycle, pc: 0 },
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for c in 0..5 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut r = EventRing::new(10);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 0);
        r.clear();
        assert!(r.is_empty());
    }
}
