//! Meta-policies: interval-driven dynamic fetch-policy selection.
//!
//! The paper evaluates *static* fetch policies, and our reproductions show
//! them trading places across workload classes: FLUSH wins on MEM-heavy
//! mixes at depth, DWarn on balanced mixes, ICOUNT when everything is
//! cache-resident. [`MetaPolicy`] goes beyond the paper by making the
//! *selection itself* a policy: it runs one candidate at a time, samples
//! interval metrics (committed instructions, L1/L2 miss rates) over fixed
//! cycle windows — the same windows the interval telemetry engine uses —
//! and re-decides the active candidate at every window boundary through a
//! pluggable [`SelectorKind`] rule.
//!
//! Switching interacts with two machine-honesty mechanisms:
//!
//! * **Quiescence skipping** — the selector must observe every boundary on
//!   its exact cycle, so `MetaPolicy` publishes its next boundary through
//!   [`FetchPolicy::skip_horizon`]; the engine never skips across it and
//!   steps the boundary cycle naively, making switching runs bit-identical
//!   with skipping on or off.
//! * **Sanitizer INV013** — [`MetaPolicy::audit_order`] first verifies that
//!   the most recent switch landed on a window boundary (a mid-interval
//!   switch is a policy-contract violation) and then delegates to the
//!   *active* candidate's own audit, so a switching run is held to the same
//!   per-cycle standard as a static one.

use smt_pipeline::{DeclareAction, FetchPolicy, PolicyEvent, PolicySwitch, PolicyView};
use smt_trace::snapio::{self, SnapError, SnapReader};

use crate::dwarn::DWarn;
use crate::icount::Icount;
use crate::stall_flush::{Flush, Stall};

/// Default decision-window length in cycles. Matches the interval
/// telemetry engine's default window so selector decisions line up with
/// the exported interval series.
pub const DEFAULT_WINDOW: u64 = 1024;

/// EMA smoothing factor for the per-candidate IPC estimates of the
/// IPC-greedy and epsilon selectors.
const EMA_ALPHA: f64 = 0.25;
/// IPC-greedy hysteresis: a rival candidate must beat the active one's
/// estimate by this relative margin before a switch is taken.
const HYSTERESIS: f64 = 0.05;
/// Miss-rate selector thresholds on the per-interval L1 data-miss rate.
const MISS_LO: f64 = 0.02;
const MISS_HI: f64 = 0.08;
/// Epsilon-explore rate: explore on 1-in-`EPS_DEN` boundaries.
const EPS_DEN: u64 = 8;
/// Default stream seed for the epsilon selector's deterministic RNG.
const DEFAULT_SEED: u64 = 0x5EED_D11A_57E9_C0DE;

/// Candidate indices in the canonical candidate set
/// ([`MetaPolicy::default_candidates`]): DWarn 0, STALL 1, FLUSH 2,
/// ICOUNT 3. The miss-rate selector's thresholds map onto these (STALL is
/// reachable only through the greedy/epsilon selectors).
const IDX_DWARN: usize = 0;
const IDX_FLUSH: usize = 2;
const IDX_ICOUNT: usize = 3;

/// The selection rule a [`MetaPolicy`] applies at each window boundary.
/// `Copy`, so it can ride inside the `Copy` policy registry
/// ([`crate::PolicyKind::Meta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectorKind {
    /// Threshold the interval's L1 data-miss rate: high-pressure intervals
    /// run FLUSH, moderate ones DWarn, cache-resident ones plain ICOUNT.
    MissRate,
    /// Hysteresis-damped greedy: keep an EMA IPC estimate per candidate,
    /// try every candidate once, then run the argmax — switching only when
    /// a rival's estimate beats the active one by the hysteresis margin
    /// (`HYSTERESIS`).
    IpcGreedy,
    /// Epsilon-explore: as greedy (without hysteresis), but on 1-in-8
    /// boundaries a deterministic splitmix64 stream picks a uniformly
    /// random candidate for one interval.
    Epsilon,
}

impl SelectorKind {
    /// All selectors, in documentation order.
    pub fn all() -> [SelectorKind; 3] {
        [
            SelectorKind::MissRate,
            SelectorKind::IpcGreedy,
            SelectorKind::Epsilon,
        ]
    }

    /// The meta-policy display name this selector produces.
    pub fn policy_name(self) -> &'static str {
        match self {
            SelectorKind::MissRate => "META-MISS",
            SelectorKind::IpcGreedy => "META-IPC",
            SelectorKind::Epsilon => "META-EPS",
        }
    }

    /// Short description for cache keys and docs.
    fn describe(self) -> String {
        match self {
            SelectorKind::MissRate => format!("miss-rate(lo={MISS_LO},hi={MISS_HI})"),
            SelectorKind::IpcGreedy => {
                format!("ipc-greedy(alpha={EMA_ALPHA},hyst={HYSTERESIS})")
            }
            SelectorKind::Epsilon => {
                format!("eps-explore(alpha={EMA_ALPHA},eps=1/{EPS_DEN},seed={DEFAULT_SEED:#x})")
            }
        }
    }
}

/// Per-interval metric accumulators, reset at each boundary. Fed by
/// [`PolicyEvent`]s only — events are delivered exclusively on naively
/// stepped cycles and a quiescent span by definition commits and misses
/// nothing, so the accumulators are bit-identical across skip modes.
#[derive(Debug, Clone, Copy, Default)]
struct IntervalAccum {
    committed: u64,
    loads: u64,
    l1_misses: u64,
    l2_misses: u64,
}

impl IntervalAccum {
    fn ipc(&self, window: u64) -> f64 {
        self.committed as f64 / window as f64
    }

    fn miss_rate(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.loads as f64
        }
    }
}

/// Selector state machine. Estimates use `f64::INFINITY` as the
/// "never tried" sentinel, which makes the greedy argmax visit every
/// candidate once before settling.
#[derive(Debug, Clone)]
enum Selector {
    MissRate,
    IpcGreedy { est: Vec<f64> },
    Epsilon { est: Vec<f64>, rng: u64 },
}

impl Selector {
    fn new(kind: SelectorKind, candidates: usize, seed: u64) -> Selector {
        match kind {
            SelectorKind::MissRate => Selector::MissRate,
            SelectorKind::IpcGreedy => Selector::IpcGreedy {
                est: vec![f64::INFINITY; candidates],
            },
            SelectorKind::Epsilon => Selector::Epsilon {
                est: vec![f64::INFINITY; candidates],
                rng: seed,
            },
        }
    }

    /// Decide the candidate for the next interval, given the metrics of
    /// the interval that just ended under candidate `active`.
    fn select(&mut self, active: usize, window: u64, m: &IntervalAccum) -> usize {
        match self {
            Selector::MissRate => {
                let rate = m.miss_rate();
                if rate >= MISS_HI {
                    IDX_FLUSH
                } else if rate >= MISS_LO {
                    IDX_DWARN
                } else {
                    IDX_ICOUNT
                }
            }
            Selector::IpcGreedy { est } => {
                update_ema(&mut est[active], m.ipc(window));
                let best = argmax(est);
                if est[best].is_infinite() || est[best] > est[active] * (1.0 + HYSTERESIS) {
                    best
                } else {
                    active
                }
            }
            Selector::Epsilon { est, rng } => {
                update_ema(&mut est[active], m.ipc(window));
                let r = splitmix64(rng);
                if r.is_multiple_of(EPS_DEN) {
                    ((r / EPS_DEN) % est.len() as u64) as usize
                } else {
                    argmax(est)
                }
            }
        }
    }
}

/// EMA update with the untried-sentinel convention: the first real sample
/// replaces the optimistic `INFINITY` outright.
fn update_ema(est: &mut f64, sample: f64) {
    if est.is_infinite() {
        *est = sample;
    } else {
        *est = EMA_ALPHA * sample + (1.0 - EMA_ALPHA) * *est;
    }
}

/// Index of the largest estimate; ties break to the lowest index, so the
/// untried-first exploration order is deterministic.
fn argmax(est: &[f64]) -> usize {
    let mut best = 0;
    for (i, &e) in est.iter().enumerate().skip(1) {
        if e > est[best] {
            best = i;
        }
    }
    best
}

/// The splitmix64 step: a full-period, statistically solid 64-bit stream
/// from one u64 of state — the same generator the fast-path hash maps use,
/// kept local so the policy layer stays dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A switching composite fetch policy: runs one candidate at a time and
/// re-selects at fixed window boundaries from interval metrics.
///
/// See the [module docs](self) for the switching semantics and how they
/// interact with quiescence skipping and the sanitizer.
pub struct MetaPolicy {
    name: &'static str,
    candidates: Vec<Box<dyn FetchPolicy>>,
    active: usize,
    selector: Option<Selector>,
    window: u64,
    next_boundary: u64,
    accum: IntervalAccum,
    switches: Vec<PolicySwitch>,
    /// Whether any candidate opted into [`PolicyEvent::Committed`]
    /// notifications (cached at construction); when none did, commit
    /// events stop at the composite's accumulator instead of fanning out.
    fan_out_commits: bool,
    /// Test hook: perform an (illegal, unless boundary-aligned) switch at
    /// exactly this cycle — the INV013 mutation test's trigger.
    force_switch_at: Option<u64>,
}

impl MetaPolicy {
    /// The standard meta-policy: the canonical candidate set under
    /// `selector`, deciding every [`DEFAULT_WINDOW`] cycles.
    pub fn new(selector: SelectorKind) -> MetaPolicy {
        Self::with_window(selector, DEFAULT_WINDOW)
    }

    /// As [`MetaPolicy::new`] with an explicit window length (cycles per
    /// decision interval; must be ≥ 1).
    pub fn with_window(selector: SelectorKind, window: u64) -> MetaPolicy {
        assert!(window >= 1, "decision window must be at least one cycle");
        let candidates = Self::default_candidates();
        MetaPolicy {
            name: selector.policy_name(),
            selector: Some(Selector::new(selector, candidates.len(), DEFAULT_SEED)),
            fan_out_commits: candidates.iter().any(|c| c.wants_commit_events()),
            candidates,
            active: IDX_DWARN,
            window,
            next_boundary: window,
            accum: IntervalAccum::default(),
            switches: Vec::new(),
            force_switch_at: None,
        }
    }

    /// A meta-policy locked to a single candidate: all the switching
    /// machinery (boundaries, horizon, accumulators) runs, but the
    /// selector never fires — by construction this must be bit-identical
    /// to running the candidate directly, which the determinism suite
    /// pins.
    pub fn locked(candidate: Box<dyn FetchPolicy>) -> MetaPolicy {
        MetaPolicy {
            name: "META-LOCK",
            fan_out_commits: candidate.wants_commit_events(),
            candidates: vec![candidate],
            active: 0,
            selector: None,
            window: DEFAULT_WINDOW,
            next_boundary: DEFAULT_WINDOW,
            accum: IntervalAccum::default(),
            switches: Vec::new(),
            force_switch_at: None,
        }
    }

    /// The canonical candidate set, in selector index order:
    /// DWarn, STALL, FLUSH, ICOUNT. All four are quiescence-safe and
    /// cap-free, so the composite stays skippable.
    pub fn default_candidates() -> Vec<Box<dyn FetchPolicy>> {
        vec![
            Box::new(DWarn::new()),
            Box::new(Stall::new()),
            Box::new(Flush::new()),
            Box::new(Icount::new()),
        ]
    }

    /// Cache-key description: every parameter that affects simulated
    /// behavior (selector rule and constants, window, candidate set), so
    /// campaign cache entries for meta runs can never collide with static
    /// runs or with a reconfigured meta.
    pub fn cache_desc(selector: SelectorKind, window: u64) -> String {
        format!(
            "{}[w={window};cands=DWARN,STALL,FLUSH,ICOUNT;sel={}]",
            selector.policy_name(),
            selector.describe()
        )
    }

    /// Sanitizer-mutation hook: schedule a switch at exactly `cycle`,
    /// regardless of window alignment. The INV013 mutation test uses a
    /// non-boundary cycle to prove the audit catches mid-interval
    /// switches; production constructors never set this.
    #[doc(hidden)]
    pub fn force_switch_at(mut self, cycle: u64) -> MetaPolicy {
        self.force_switch_at = Some(cycle);
        self
    }

    /// The decision-window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Name of the candidate currently holding fetch control.
    pub fn active_name(&self) -> &'static str {
        self.candidates[self.active].name()
    }

    /// Process the boundary at `cycle`: score the interval that just
    /// ended, maybe switch, and open the next interval. Called from
    /// `fetch_order_into` exactly once per boundary — the skip engine pins
    /// boundary cycles to the naive loop, and advancing `next_boundary`
    /// makes a repeated call in the same cycle a no-op (the idempotence
    /// the quiescence contract requires).
    fn on_boundary(&mut self, cycle: u64) {
        let accum = std::mem::take(&mut self.accum);
        if let Some(sel) = &mut self.selector {
            let choice = sel.select(self.active, self.window, &accum);
            if choice != self.active {
                self.switch_to(choice, cycle);
            }
        }
        while cycle >= self.next_boundary {
            self.next_boundary += self.window;
        }
    }

    fn switch_to(&mut self, choice: usize, cycle: u64) {
        self.switches.push(PolicySwitch {
            cycle,
            from: self.candidates[self.active].name(),
            to: self.candidates[choice].name(),
        });
        self.active = choice;
    }

    /// Resolve a serialized candidate name back to the `&'static str` the
    /// constructed candidate set owns; snapshots carry names, not indices,
    /// so a candidate-set mismatch is a typed error rather than a silent
    /// mislabel.
    fn resolve_name(&self, s: &str) -> Result<&'static str, SnapError> {
        self.candidates
            .iter()
            .map(|c| c.name())
            .find(|n| *n == s)
            .ok_or_else(|| {
                SnapError::malformed(format!("switch log names unknown candidate {s:?}"))
            })
    }

    fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        const MAX_SWITCHES: usize = 1 << 24;
        let active = r.usize()?;
        if active >= self.candidates.len() {
            return Err(SnapError::malformed(format!(
                "active candidate {active} out of range (have {})",
                self.candidates.len()
            )));
        }
        self.active = active;
        let next_boundary = r.u64()?;
        if next_boundary == 0 || !next_boundary.is_multiple_of(self.window) {
            return Err(SnapError::malformed(format!(
                "next boundary {next_boundary} is not a positive multiple of the \
                 {}-cycle window",
                self.window
            )));
        }
        self.next_boundary = next_boundary;
        self.accum = IntervalAccum {
            committed: r.u64()?,
            loads: r.u64()?,
            l1_misses: r.u64()?,
            l2_misses: r.u64()?,
        };
        let tag = r.u8()?;
        match (&mut self.selector, tag) {
            (None, 0) => {}
            (Some(Selector::MissRate), 1) => {}
            (Some(Selector::IpcGreedy { est }), 2) => {
                for e in est.iter_mut() {
                    *e = r.f64()?;
                }
            }
            (Some(Selector::Epsilon { est, rng }), 3) => {
                for e in est.iter_mut() {
                    *e = r.f64()?;
                }
                *rng = r.u64()?;
            }
            _ => {
                return Err(SnapError::malformed(format!(
                    "selector tag {tag} does not match this meta-policy's \
                     configured selector"
                )));
            }
        }
        let n_switches = r.len_capped(MAX_SWITCHES)?;
        self.switches.clear();
        for _ in 0..n_switches {
            let cycle = r.u64()?;
            let from = self.resolve_name(r.str()?)?;
            let to = self.resolve_name(r.str()?)?;
            self.switches.push(PolicySwitch { cycle, from, to });
        }
        for c in &mut self.candidates {
            let bytes = r.bytes()?;
            c.load_state(bytes).map_err(SnapError::malformed)?;
        }
        Ok(())
    }
}

impl FetchPolicy for MetaPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
        if view.cycle >= self.next_boundary {
            self.on_boundary(view.cycle);
        }
        if self.force_switch_at == Some(view.cycle) {
            self.force_switch_at = None;
            let next = (self.active + 1) % self.candidates.len();
            self.switch_to(next, view.cycle);
        }
        self.candidates[self.active].fetch_order_into(view, out);
    }

    fn on_event(&mut self, ev: &PolicyEvent) {
        match *ev {
            PolicyEvent::Committed { count, .. } => {
                self.accum.committed += count as u64;
                // Commit events exist for the composite's own accumulator;
                // when no candidate opted into them (cached at
                // construction — none of the canonical set does), the
                // warm-keeping fan-out below would be one no-op virtual
                // call per candidate per event for nothing.
                if !self.fan_out_commits {
                    return;
                }
            }
            PolicyEvent::LoadL1Outcome {
                l1_miss, l2_miss, ..
            } => {
                self.accum.loads += 1;
                self.accum.l1_misses += l1_miss as u64;
                self.accum.l2_misses += l2_miss as u64;
            }
            _ => {}
        }
        // Inactive candidates keep observing, so a stateful candidate's
        // predictor is warm when control reaches it.
        for c in &mut self.candidates {
            c.on_event(ev);
        }
    }

    /// INV013 for a composite: the most recent switch must sit on a window
    /// boundary (selector decisions are only legal there), and the order
    /// itself must satisfy the *active* candidate's own published
    /// invariants.
    fn audit_order(&self, view: &PolicyView, order: &[usize]) -> Result<(), String> {
        if let Some(last) = self.switches.last() {
            if !last.cycle.is_multiple_of(self.window) {
                return Err(format!(
                    "switch {} -> {} at cycle {} is not aligned to the {}-cycle \
                     decision window",
                    last.from, last.to, last.cycle, self.window
                ));
            }
        }
        self.candidates[self.active].audit_order(view, order)
    }

    fn declare_action(&self) -> DeclareAction {
        self.candidates[self.active].declare_action()
    }

    fn uses_resource_caps(&self) -> bool {
        self.candidates.iter().any(|c| c.uses_resource_caps())
    }

    fn resource_caps(&mut self, view: &PolicyView) -> Vec<Option<f32>> {
        self.candidates[self.active].resource_caps(view)
    }

    fn warn_level(&self, view: &PolicyView, thread: usize) -> u8 {
        self.candidates[self.active].warn_level(view, thread)
    }

    /// Safe iff every candidate is: between boundaries the composite
    /// behaves exactly like its (quiescence-safe) active candidate, and
    /// the engine pins boundary cycles to the naive loop through
    /// [`MetaPolicy::skip_horizon`](FetchPolicy::skip_horizon).
    fn quiescence_safe(&self) -> bool {
        self.candidates.iter().all(|c| c.quiescence_safe())
    }

    fn skip_horizon(&self, _now: u64) -> Option<u64> {
        Some(self.next_boundary)
    }

    fn active_policy(&self) -> &'static str {
        self.active_name()
    }

    fn wants_commit_events(&self) -> bool {
        true
    }

    fn switch_log(&self) -> &[PolicySwitch] {
        &self.switches
    }

    /// Snapshot everything a mid-window restore needs: the active
    /// candidate, the open interval's boundary and accumulators, the
    /// selector's learned state, the switch log (diagnostic, but part of
    /// the published result), and each candidate's own state. The
    /// `force_switch_at` test hook is deliberately *not* serialized — it
    /// is injected per-run by the mutation tests, never by campaigns.
    fn save_state(&self, out: &mut Vec<u8>) {
        snapio::put_usize(out, self.active);
        snapio::put_u64(out, self.next_boundary);
        snapio::put_u64(out, self.accum.committed);
        snapio::put_u64(out, self.accum.loads);
        snapio::put_u64(out, self.accum.l1_misses);
        snapio::put_u64(out, self.accum.l2_misses);
        match &self.selector {
            None => snapio::put_u8(out, 0),
            Some(Selector::MissRate) => snapio::put_u8(out, 1),
            Some(Selector::IpcGreedy { est }) => {
                snapio::put_u8(out, 2);
                for &e in est {
                    snapio::put_f64(out, e);
                }
            }
            Some(Selector::Epsilon { est, rng }) => {
                snapio::put_u8(out, 3);
                for &e in est {
                    snapio::put_f64(out, e);
                }
                snapio::put_u64(out, *rng);
            }
        }
        snapio::put_usize(out, self.switches.len());
        for s in &self.switches {
            snapio::put_u64(out, s.cycle);
            snapio::put_str(out, s.from);
            snapio::put_str(out, s.to);
        }
        let mut scratch = Vec::new();
        for c in &self.candidates {
            scratch.clear();
            c.save_state(&mut scratch);
            snapio::put_bytes(out, &scratch);
        }
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = SnapReader::new(bytes);
        self.load_snap(&mut r).map_err(|e| e.to_string())?;
        r.finish("meta-policy state").map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_pipeline::ThreadView;

    fn tv(icount: u32, dmiss: u32) -> ThreadView {
        ThreadView {
            icount,
            dmiss_count: dmiss,
            ..Default::default()
        }
    }

    fn commit_n(p: &mut MetaPolicy, n: u64) {
        p.on_event(&PolicyEvent::Committed {
            thread: 0,
            count: n as u32,
        });
    }

    fn miss_loads(p: &mut MetaPolicy, loads: u64, misses: u64) {
        for i in 0..loads {
            p.on_event(&PolicyEvent::LoadL1Outcome {
                thread: 0,
                pc: 0x1000 + i * 8,
                load_id: i,
                l1_miss: i < misses,
                l2_miss: false,
            });
        }
    }

    fn order_at(p: &mut MetaPolicy, cycle: u64, threads: &[ThreadView]) -> Vec<usize> {
        p.fetch_order(&PolicyView { cycle, threads })
    }

    #[test]
    fn starts_on_dwarn_and_matches_it_between_boundaries() {
        let mut meta = MetaPolicy::new(SelectorKind::IpcGreedy);
        let mut dwarn = DWarn::new();
        let threads = vec![tv(9, 0), tv(1, 1), tv(4, 0)];
        let v = PolicyView {
            cycle: 10,
            threads: &threads,
        };
        assert_eq!(meta.fetch_order(&v), dwarn.fetch_order(&v));
        assert_eq!(meta.active_policy(), "DWARN");
        assert!(meta.switch_log().is_empty());
    }

    #[test]
    fn miss_rate_selector_maps_pressure_to_candidates() {
        let threads = vec![tv(1, 0), tv(2, 0), tv(3, 0), tv(4, 0)];
        // High pressure: 20% misses -> FLUSH.
        let mut p = MetaPolicy::new(SelectorKind::MissRate);
        miss_loads(&mut p, 100, 20);
        order_at(&mut p, DEFAULT_WINDOW, &threads);
        assert_eq!(p.active_policy(), "FLUSH");
        // Moderate: 4% -> DWARN (already active: no switch recorded).
        let mut p = MetaPolicy::new(SelectorKind::MissRate);
        miss_loads(&mut p, 100, 4);
        order_at(&mut p, DEFAULT_WINDOW, &threads);
        assert_eq!(p.active_policy(), "DWARN");
        assert!(p.switch_log().is_empty());
        // Cache-resident: no misses -> ICOUNT.
        let mut p = MetaPolicy::new(SelectorKind::MissRate);
        miss_loads(&mut p, 100, 0);
        order_at(&mut p, DEFAULT_WINDOW, &threads);
        assert_eq!(p.active_policy(), "ICOUNT");
        assert_eq!(p.switch_log().len(), 1);
        assert_eq!(p.switch_log()[0].cycle, DEFAULT_WINDOW);
    }

    #[test]
    fn greedy_selector_tries_every_candidate_then_settles_on_the_best() {
        let mut p = MetaPolicy::new(SelectorKind::IpcGreedy);
        let threads = vec![tv(1, 0), tv(2, 0)];
        // Feed identical mediocre intervals; the optimistic-init argmax
        // must visit all four candidates before revisiting any.
        let mut seen = vec![p.active_policy()];
        for b in 1..=3 {
            commit_n(&mut p, 512);
            order_at(&mut p, b * DEFAULT_WINDOW, &threads);
            seen.push(p.active_policy());
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4, "all candidates explored: {seen:?}");
        // Now make the current candidate look great; the hysteresis keeps
        // the selector parked there.
        let parked = p.active_policy();
        for b in 4..=8 {
            commit_n(&mut p, 4096);
            order_at(&mut p, b * DEFAULT_WINDOW, &threads);
            assert_eq!(p.active_policy(), parked);
        }
    }

    #[test]
    fn epsilon_selector_is_deterministic() {
        let run = || {
            let mut p = MetaPolicy::new(SelectorKind::Epsilon);
            let threads = vec![tv(1, 0), tv(2, 0)];
            let mut names = Vec::new();
            for b in 1..=32 {
                commit_n(&mut p, 100 + (b % 7) * 50);
                order_at(&mut p, b * DEFAULT_WINDOW, &threads);
                names.push(p.active_policy());
            }
            names
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn boundary_processing_is_idempotent_within_a_cycle() {
        let mut p = MetaPolicy::new(SelectorKind::MissRate);
        let threads = vec![tv(1, 0), tv(2, 0), tv(3, 0), tv(4, 0)];
        miss_loads(&mut p, 100, 20);
        let first = order_at(&mut p, DEFAULT_WINDOW, &threads);
        let switches = p.switch_log().len();
        // The quiescence probe may re-call at the same cycle.
        let second = order_at(&mut p, DEFAULT_WINDOW, &threads);
        assert_eq!(first, second);
        assert_eq!(p.switch_log().len(), switches, "no double switch");
        assert_eq!(p.skip_horizon(DEFAULT_WINDOW), Some(2 * DEFAULT_WINDOW));
    }

    #[test]
    fn audit_accepts_boundary_switches_and_rejects_misaligned_ones() {
        let threads = vec![tv(1, 0), tv(2, 0), tv(3, 0), tv(4, 0)];
        let mut p = MetaPolicy::new(SelectorKind::MissRate);
        miss_loads(&mut p, 100, 20);
        let v = PolicyView {
            cycle: DEFAULT_WINDOW,
            threads: &threads,
        };
        let order = p.fetch_order(&v);
        assert_eq!(p.audit_order(&v, &order), Ok(()));

        // A forced mid-interval switch must be flagged.
        let mut p = MetaPolicy::new(SelectorKind::MissRate).force_switch_at(DEFAULT_WINDOW + 7);
        let v = PolicyView {
            cycle: DEFAULT_WINDOW + 7,
            threads: &threads,
        };
        let order = p.fetch_order(&v);
        let err = p.audit_order(&v, &order).unwrap_err();
        assert!(err.contains("not aligned"), "{err}");
    }

    #[test]
    fn audit_delegates_to_the_active_candidate() {
        let mut p = MetaPolicy::new(SelectorKind::IpcGreedy);
        // Active candidate is DWarn: a Dmiss thread ordered first violates
        // DWarn's own group rule and must surface through the composite.
        let threads = vec![tv(9, 0), tv(1, 1)];
        let v = PolicyView {
            cycle: 5,
            threads: &threads,
        };
        let _ = p.fetch_order(&v);
        let err = p.audit_order(&v, &[1, 0]).unwrap_err();
        assert!(err.contains("Normal-first"), "{err}");
    }

    #[test]
    fn locked_meta_never_switches() {
        let mut p = MetaPolicy::locked(Box::new(Flush::new()));
        let threads = vec![tv(1, 0), tv(2, 0)];
        for b in 1..=8 {
            commit_n(&mut p, 100);
            order_at(&mut p, b * DEFAULT_WINDOW, &threads);
        }
        assert_eq!(p.active_policy(), "FLUSH");
        assert!(p.switch_log().is_empty());
    }

    #[test]
    fn composite_contract_flags_match_the_candidate_set() {
        let p = MetaPolicy::new(SelectorKind::IpcGreedy);
        assert!(p.quiescence_safe());
        assert!(!p.uses_resource_caps());
        assert!(p.wants_commit_events());
        assert_eq!(p.skip_horizon(0), Some(DEFAULT_WINDOW));
    }

    #[test]
    fn state_round_trips_mid_window_for_every_selector() {
        let threads = vec![tv(1, 0), tv(2, 0), tv(3, 0), tv(4, 0)];
        for kind in SelectorKind::all() {
            let mut p = MetaPolicy::new(kind);
            // Drive through a few boundaries to exercise the selector,
            // then leave an interval half-open.
            for b in 1..=3 {
                commit_n(&mut p, 100 + b * 64);
                miss_loads(&mut p, 50, 5 * b);
                order_at(&mut p, b * DEFAULT_WINDOW, &threads);
            }
            commit_n(&mut p, 77);
            miss_loads(&mut p, 10, 3);

            let mut bytes = Vec::new();
            p.save_state(&mut bytes);
            let mut q = MetaPolicy::new(kind);
            q.load_state(&bytes).unwrap();
            assert_eq!(q.active_policy(), p.active_policy(), "{kind:?}");
            assert_eq!(q.switch_log(), p.switch_log(), "{kind:?}");
            assert_eq!(q.skip_horizon(0), p.skip_horizon(0), "{kind:?}");
            let mut again = Vec::new();
            q.save_state(&mut again);
            assert_eq!(again, bytes, "{kind:?}: reserialization byte-identical");

            // The restored composite keeps making the same decisions.
            for b in 4..=8 {
                commit_n(&mut p, 300);
                commit_n(&mut q, 300);
                miss_loads(&mut p, 20, 1);
                miss_loads(&mut q, 20, 1);
                let a = order_at(&mut p, b * DEFAULT_WINDOW, &threads);
                let bq = order_at(&mut q, b * DEFAULT_WINDOW, &threads);
                assert_eq!(a, bq, "{kind:?}: post-restore divergence");
                assert_eq!(p.active_policy(), q.active_policy(), "{kind:?}");
            }
        }
    }

    #[test]
    fn load_state_rejects_shape_and_content_mismatches() {
        let mut p = MetaPolicy::new(SelectorKind::Epsilon);
        let threads = vec![tv(1, 0), tv(2, 0), tv(3, 0), tv(4, 0)];
        commit_n(&mut p, 100);
        order_at(&mut p, DEFAULT_WINDOW, &threads);
        let mut bytes = Vec::new();
        p.save_state(&mut bytes);

        // A different selector refuses the tagged state.
        let err = MetaPolicy::new(SelectorKind::MissRate)
            .load_state(&bytes)
            .unwrap_err();
        assert!(err.contains("selector"), "{err}");

        // A locked meta has one candidate: the active index is range-checked
        // (the epsilon snapshot explored past candidate 0 by now).
        if p.active_policy() != "DWARN" {
            let err = MetaPolicy::locked(Box::new(DWarn::new()))
                .load_state(&bytes)
                .unwrap_err();
            assert!(!err.is_empty());
        }

        // Truncation is an error, not a partial load.
        assert!(MetaPolicy::new(SelectorKind::Epsilon)
            .load_state(&bytes[..bytes.len() - 1])
            .is_err());

        // A misaligned boundary is rejected.
        let mut q = MetaPolicy::with_window(SelectorKind::Epsilon, DEFAULT_WINDOW + 1);
        assert!(q.load_state(&bytes).is_err());
    }

    #[test]
    fn cache_desc_pins_every_selector_parameter() {
        for s in SelectorKind::all() {
            let d = MetaPolicy::cache_desc(s, DEFAULT_WINDOW);
            assert!(d.starts_with(s.policy_name()), "{d}");
            assert!(d.contains("w=1024"), "{d}");
            assert!(d.contains("cands=DWARN,STALL,FLUSH,ICOUNT"), "{d}");
        }
        assert_ne!(
            MetaPolicy::cache_desc(SelectorKind::IpcGreedy, 1024),
            MetaPolicy::cache_desc(SelectorKind::IpcGreedy, 256),
            "window is part of the key"
        );
    }
}
