//! Property-style acceptance tests for the chaos harness.
//!
//! The robustness contract (ISSUE 3): a chaos campaign with >= 32
//! deterministic faults across the trace, cache, config, and resume
//! checkpoint surfaces must
//! complete with partial results, every injected fault must resolve to a
//! typed error artifact or an absorbed (still bit-identical) result, no
//! fault may hang or escape as a panic, and every non-faulted golden run
//! must reproduce its digest exactly.

use smt_experiments::chaos::{self, ChaosOpts, Outcome};

fn quick(seed: u64, faults: usize) -> ChaosOpts {
    let mut o = ChaosOpts::new(seed, faults);
    o.quick = true;
    o
}

#[test]
fn thirty_two_faults_all_resolve_typed_or_recovered() {
    let report = chaos::run(&quick(1, 32)).expect("harness-level failure");
    assert_eq!(report.faults.len(), 32);

    // Zero violations: no escaped panic, no hang, no silent corruption.
    for f in &report.faults {
        assert!(
            !matches!(f.outcome, Outcome::Violation { .. }),
            "fault #{} ({}) violated the robustness contract: {:?}",
            f.index,
            f.fault,
            f.outcome
        );
    }

    // The plan must actually span every mandated surface.
    for surface in ["trace", "cache", "config", "checkpoint"] {
        assert!(
            report.faults.iter().any(|f| f.surface == surface),
            "no fault hit the {surface} surface"
        );
    }

    // Most faults corrupt something detectable, so typed errors dominate;
    // at least one of each resolution class should appear at this width.
    let typed = report
        .faults
        .iter()
        .filter(|f| matches!(f.outcome, Outcome::TypedError { .. }))
        .count();
    assert!(typed > 0, "no fault surfaced as a typed error");

    // Final golden verification: whatever the faults did to the cache,
    // every key reproduced its pre-chaos digest bit-for-bit.
    assert!(report.goldens_ok, "golden digests diverged after chaos");
    assert!(report.golden_runs >= 4);
}

#[test]
fn chaos_is_deterministic_per_seed() {
    let a = chaos::run(&quick(2, 12)).expect("harness-level failure");
    let b = chaos::run(&quick(2, 12)).expect("harness-level failure");
    assert_eq!(a.render(), b.render(), "same seed must replay identically");

    // The first pass cycles through every kind, so compare full reports
    // (corruption positions and payloads are seed-dependent), not just
    // the kind sequence.
    let c = chaos::run(&quick(3, 12)).expect("harness-level failure");
    assert_ne!(a.render(), c.render(), "different seeds must diverge");
    assert!(c.goldens_ok);
}

/// ISSUE 4 extension: a fault class the typed-error/golden checks above
/// cannot see — a policy whose published fetch order contradicts its own
/// invariants — is caught by the cycle-level sanitizer and resolves to a
/// typed `ExpError::Invariant`, not a panic or a silently wrong number.
#[test]
fn sanitizer_catches_a_self_contradicting_policy_as_a_typed_error() {
    use smt_experiments::{Campaign, ExpError, ExpParams};
    use smt_pipeline::{FetchPolicy, PolicyView, SimConfig};
    use smt_workloads::{workload, WorkloadClass};

    /// Claims (via audit_order) to order by ascending ICOUNT but emits
    /// the reverse — the kind of policy bug only a per-cycle audit sees.
    struct Contradict;
    impl FetchPolicy for Contradict {
        fn name(&self) -> &'static str {
            "CONTRADICT"
        }
        fn fetch_order_into(&mut self, view: &PolicyView, out: &mut Vec<usize>) {
            view.icount_order_into(out);
            out.reverse();
        }
        fn audit_order(&self, view: &PolicyView, order: &[usize]) -> Result<(), String> {
            for w in order.windows(2) {
                if view.threads[w[0]].icount > view.threads[w[1]].icount {
                    return Err("order is not ascending ICOUNT".to_string());
                }
            }
            Ok(())
        }
    }

    let mut campaign = Campaign::new(ExpParams {
        warmup: 1_000,
        measure: 3_000,
    });
    campaign.set_sanitize(true);
    let wl = workload(2, WorkloadClass::Mix);
    let err = campaign
        .try_run_custom(
            &SimConfig::baseline(),
            &wl.thread_specs(),
            "CONTRADICT",
            || Box::new(Contradict),
        )
        .expect_err("a self-contradicting policy must fail under --sanitize");
    match &err {
        ExpError::Invariant {
            violations, first, ..
        } => {
            assert!(*violations > 0);
            assert!(
                first.contains("INV013"),
                "unexpected first violation: {first}"
            );
        }
        other => panic!("expected ExpError::Invariant, got {other}"),
    }
    assert_eq!(err.kind(), "invariant");
    // The failure is recorded on the campaign like any other fault.
    assert_eq!(campaign.failures().len(), 1);

    // The same policy without the sanitizer runs to completion — the
    // whole point: this fault class is invisible to every other check.
    let blind = Campaign::new(ExpParams {
        warmup: 1_000,
        measure: 3_000,
    });
    blind
        .try_run_custom(
            &SimConfig::baseline(),
            &wl.thread_specs(),
            "CONTRADICT",
            || Box::new(Contradict),
        )
        .expect("unsanitized run completes, silently wrong");
}
