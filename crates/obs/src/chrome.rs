//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! One simulator cycle maps to one microsecond of trace time (`ts`), so
//! Perfetto's time axis reads directly in cycles. Mapping:
//!
//! * gate episodes → duration events (`B`/`E`) on the thread's track;
//! * L1-miss lifetimes → async events (`b`/`e`) keyed by `load_id`, so
//!   overlapping outstanding misses render as separate slices;
//! * L2 declares/resolves, squashes, I-fetch misses → instant events (`i`);
//! * per-instruction fetch/dispatch/issue/commit (when captured) →
//!   instant events;
//! * occupancy samples → counter tracks (`C`) for issue queues, physical
//!   registers, and per-thread ROB occupancy.

use crate::json::Json;
use crate::probe::OccupancySample;
use crate::ring::{EventKind, EventRing};

const PID: u64 = 1;

fn base(name: &str, cat: &str, ph: &str, cycle: u64, tid: usize) -> Vec<(String, Json)> {
    vec![
        ("name".to_string(), Json::str(name)),
        ("cat".to_string(), Json::str(cat)),
        ("ph".to_string(), Json::str(ph)),
        ("ts".to_string(), Json::U64(cycle)),
        ("pid".to_string(), Json::U64(PID)),
        ("tid".to_string(), Json::U64(tid as u64)),
    ]
}

fn args(pairs: Vec<(&str, Json)>) -> (String, Json) {
    ("args".to_string(), Json::obj(pairs))
}

fn hex(v: u64) -> Json {
    Json::Str(format!("{v:#x}"))
}

/// Convert captured events + occupancy samples into a Chrome trace-event
/// JSON document. `thread_names` labels the per-thread tracks (pass
/// benchmark names); missing entries fall back to `t<i>`.
pub fn chrome_trace(
    events: &EventRing,
    samples: &[OccupancySample],
    thread_names: &[String],
) -> String {
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + samples.len() * 3 + 8);

    // Track metadata.
    out.push(Json::Obj(vec![
        ("name".to_string(), Json::str("process_name")),
        ("ph".to_string(), Json::str("M")),
        ("pid".to_string(), Json::U64(PID)),
        args(vec![("name", Json::str("dwarn-smt"))]),
    ]));
    let num_threads = thread_names
        .len()
        .max(events.iter().map(|e| e.thread + 1).max().unwrap_or(0));
    for t in 0..num_threads {
        let label = thread_names
            .get(t)
            .map(|n| format!("t{t} {n}"))
            .unwrap_or_else(|| format!("t{t}"));
        out.push(Json::Obj(vec![
            ("name".to_string(), Json::str("thread_name")),
            ("ph".to_string(), Json::str("M")),
            ("pid".to_string(), Json::U64(PID)),
            ("tid".to_string(), Json::U64(t as u64)),
            args(vec![("name", Json::str(label))]),
        ]));
    }

    for ev in events.iter() {
        let (cycle, t) = (ev.cycle, ev.thread);
        let json = match ev.kind {
            EventKind::Gate { reason } => {
                let mut e = base(
                    &format!("gated: {}", reason.as_str()),
                    "gate",
                    "B",
                    cycle,
                    t,
                );
                e.push(args(vec![("reason", Json::str(reason.as_str()))]));
                Json::Obj(e)
            }
            EventKind::Ungate { reason } => Json::Obj(base(
                &format!("gated: {}", reason.as_str()),
                "gate",
                "E",
                cycle,
                t,
            )),
            EventKind::L1MissBegin { load_id, addr, l2 } => {
                let mut e = base("dcache miss", "dmiss", "b", cycle, t);
                e.push(("id".to_string(), Json::U64(load_id)));
                e.push(args(vec![
                    ("load_id", Json::U64(load_id)),
                    ("addr", hex(addr)),
                    ("l2_miss", Json::Bool(l2)),
                ]));
                Json::Obj(e)
            }
            EventKind::L1MissEnd { load_id } => {
                let mut e = base("dcache miss", "dmiss", "e", cycle, t);
                e.push(("id".to_string(), Json::U64(load_id)));
                Json::Obj(e)
            }
            EventKind::L2Declare { load_id } => {
                let mut e = base("L2-miss declared", "declare", "i", cycle, t);
                e.push(("s".to_string(), Json::str("t")));
                e.push(args(vec![("load_id", Json::U64(load_id))]));
                Json::Obj(e)
            }
            EventKind::L2Resolve { load_id } => {
                let mut e = base("declared load resolving", "declare", "i", cycle, t);
                e.push(("s".to_string(), Json::str("t")));
                e.push(args(vec![("load_id", Json::U64(load_id))]));
                Json::Obj(e)
            }
            EventKind::Squash { seq, kind } => {
                let mut e = base(
                    &format!("squash: {}", kind.as_str()),
                    "squash",
                    "i",
                    cycle,
                    t,
                );
                e.push(("s".to_string(), Json::str("t")));
                e.push(args(vec![("seq", Json::U64(seq))]));
                Json::Obj(e)
            }
            EventKind::IfetchMiss { addr, ready_at } => {
                let mut e = base("I-cache miss", "ifetch", "i", cycle, t);
                e.push(("s".to_string(), Json::str("t")));
                e.push(args(vec![
                    ("addr", hex(addr)),
                    ("ready_at", Json::U64(ready_at)),
                ]));
                Json::Obj(e)
            }
            EventKind::Fetch {
                pc,
                seq,
                wrong_path,
            } => {
                let mut e = base("fetch", "inst", "i", cycle, t);
                e.push(("s".to_string(), Json::str("t")));
                e.push(args(vec![
                    ("pc", hex(pc)),
                    ("seq", Json::U64(seq)),
                    ("wrong_path", Json::Bool(wrong_path)),
                ]));
                Json::Obj(e)
            }
            EventKind::Dispatch { seq } => {
                let mut e = base("dispatch", "inst", "i", cycle, t);
                e.push(("s".to_string(), Json::str("t")));
                e.push(args(vec![("seq", Json::U64(seq))]));
                Json::Obj(e)
            }
            EventKind::Issue { seq } => {
                let mut e = base("issue", "inst", "i", cycle, t);
                e.push(("s".to_string(), Json::str("t")));
                e.push(args(vec![("seq", Json::U64(seq))]));
                Json::Obj(e)
            }
            EventKind::Commit { seq, pc } => {
                let mut e = base("commit", "inst", "i", cycle, t);
                e.push(("s".to_string(), Json::str("t")));
                e.push(args(vec![("seq", Json::U64(seq)), ("pc", hex(pc))]));
                Json::Obj(e)
            }
            EventKind::PolicySwitch { from, to } => {
                // Process-scoped instant: the switch affects every thread.
                let mut e = base(
                    &format!("policy switch: {from} -> {to}"),
                    "policy",
                    "i",
                    cycle,
                    t,
                );
                e.push(("s".to_string(), Json::str("p")));
                e.push(args(vec![("from", Json::str(from)), ("to", Json::str(to))]));
                Json::Obj(e)
            }
        };
        out.push(json);
    }

    for s in samples {
        let mut iq = base("issue queues", "occupancy", "C", s.cycle, 0);
        iq.push(args(vec![
            ("int", Json::U64(s.iq[0] as u64)),
            ("fp", Json::U64(s.iq[1] as u64)),
            ("ldst", Json::U64(s.iq[2] as u64)),
        ]));
        out.push(Json::Obj(iq));
        let mut regs = base("physical registers", "occupancy", "C", s.cycle, 0);
        regs.push(args(vec![
            ("int", Json::U64(s.regs_int as u64)),
            ("fp", Json::U64(s.regs_fp as u64)),
        ]));
        out.push(Json::Obj(regs));
        let mut rob = base("rob occupancy", "occupancy", "C", s.cycle, 0);
        rob.push((
            "args".to_string(),
            Json::Obj(
                s.rob
                    .iter()
                    .enumerate()
                    .map(|(t, &v)| (format!("t{t}"), Json::U64(v as u64)))
                    .collect(),
            ),
        ));
        out.push(Json::Obj(rob));
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::str("ms")),
        (
            "otherData",
            Json::obj(vec![
                ("cycles_per_us", Json::U64(1)),
                ("dropped_events", Json::U64(events.dropped())),
            ]),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::GateReason;
    use crate::ring::TraceEvent;

    #[test]
    fn trace_has_balanced_gate_pairs_and_metadata() {
        let mut ring = EventRing::new(16);
        ring.push(TraceEvent {
            cycle: 5,
            thread: 1,
            kind: EventKind::Gate {
                reason: GateReason::Policy,
            },
        });
        ring.push(TraceEvent {
            cycle: 9,
            thread: 1,
            kind: EventKind::Ungate {
                reason: GateReason::Policy,
            },
        });
        let s = chrome_trace(&ring, &[], &["mcf".to_string(), "gzip".to_string()]);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"B\""));
        assert!(s.contains("\"ph\":\"E\""));
        assert!(s.contains("gated: policy"));
        assert!(s.contains("t1 gzip"));
    }

    #[test]
    fn async_miss_events_carry_ids() {
        let mut ring = EventRing::new(16);
        ring.push(TraceEvent {
            cycle: 1,
            thread: 0,
            kind: EventKind::L1MissBegin {
                load_id: 42,
                addr: 0x1000,
                l2: true,
            },
        });
        ring.push(TraceEvent {
            cycle: 100,
            thread: 0,
            kind: EventKind::L1MissEnd { load_id: 42 },
        });
        let s = chrome_trace(&ring, &[], &[]);
        assert!(s.contains("\"ph\":\"b\""));
        assert!(s.contains("\"ph\":\"e\""));
        assert!(s.contains("\"id\":42"));
        assert!(s.contains("\"0x1000\""));
    }

    #[test]
    fn samples_become_counter_events() {
        let samples = vec![OccupancySample {
            cycle: 10,
            iq: [3, 0, 2],
            regs_int: 17,
            regs_fp: 4,
            rob: vec![12, 9],
            iq_per_thread: vec![4, 1],
        }];
        let s = chrome_trace(&EventRing::new(4), &samples, &[]);
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("issue queues"));
        assert!(s.contains("\"ldst\":2"));
    }
}
