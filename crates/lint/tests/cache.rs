//! Incremental-cache integration: warm runs skip unchanged files, edits
//! re-analyze exactly the edited file, and cached runs report the same
//! diagnostics a cold run does — the cache must never change the verdict.

mod util;

use smt_lint::RuleCode;
use util::{render_all, TempWorkspace};

#[test]
fn warm_run_serves_every_file_with_identical_diagnostics() {
    let ws = TempWorkspace::copy_current("cachewarm");
    let cache = ws.root.join("lint-cache.json");
    let cold = smt_lint::run_with_cache(&ws.root, Some(&cache)).expect("cold run");
    assert_eq!(cold.cache_hits, 0, "first run sees an empty cache");
    assert_eq!(cold.cache_misses, cold.files);
    let warm = smt_lint::run_with_cache(&ws.root, Some(&cache)).expect("warm run");
    assert_eq!(warm.cache_misses, 0, "unchanged files must all be skipped");
    assert_eq!(warm.cache_hits, warm.files);
    assert_eq!(
        render_all(&cold),
        render_all(&warm),
        "a warm run must reproduce the cold run's diagnostics exactly"
    );
}

#[test]
fn edited_file_is_reanalyzed_and_matches_a_cold_run() {
    let ws = TempWorkspace::copy_current("cacheedit");
    let cache = ws.root.join("lint-cache.json");
    smt_lint::run_with_cache(&ws.root, Some(&cache)).expect("priming run");
    // Edit one file, introducing a fresh local violation (a default-hasher
    // map in pipeline scope) so re-analysis is observable in the verdict,
    // not just in the hit counters.
    ws.append(
        "crates/pipeline/src/events.rs",
        "\nfn cache_test_marker() {\n    \
         let _m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();\n}\n",
    );
    let warm = smt_lint::run_with_cache(&ws.root, Some(&cache)).expect("warm run");
    assert_eq!(warm.cache_misses, 1, "exactly the edited file re-analyzes");
    assert_eq!(warm.cache_hits, warm.files - 1);
    assert!(
        warm.active
            .iter()
            .any(|d| d.code == RuleCode::Smt001 && d.path.ends_with("events.rs")),
        "the edit's new violation must surface through the cached run:\n{}",
        smt_lint::render(&warm, false)
    );
    let cold = smt_lint::run(&ws.root).expect("cold run");
    assert_eq!(
        render_all(&warm),
        render_all(&cold),
        "cached and cold runs must agree diagnostic-for-diagnostic"
    );
}
