//! # smt-lint — the workspace's determinism and robustness lint
//!
//! An offline static-analysis pass over this repository's *own* sources,
//! enforcing syntactically the policies the simulator's bit-identical
//! determinism and the campaign's fault tolerance rely on:
//!
//! | Code | Rule | Scope |
//! |---|---|---|
//! | `SMT001` | no default-hasher `HashMap`/`HashSet` (use `FastMap`) | pipeline, uarch, core |
//! | `SMT002` | no `Instant::now` / `SystemTime` | everywhere but `bench` |
//! | `SMT003` | no `unwrap()` / `expect()` / `panic!` | experiments, trace (not chaos) |
//! | `SMT004` | no float `==` / `!=` | metrics |
//! | `SMT005` | no stale allowlist entries | the allowlist itself |
//! | `SMT006` | cycle counter written only in `advance_clock` | pipeline |
//!
//! `#[cfg(test)]` modules, `tests/`, `benches/` and `examples/` trees are
//! exempt throughout: the rules guard production paths.
//!
//! Intentional exceptions live in `lint.allow` at the repository root,
//! one per line with a mandatory justification
//! (`CODE path  why this is fine`); an entry that stops matching anything
//! becomes an `SMT005` error so the list can only shrink. Run it as
//! `cargo run -p smt-lint` or `smt-experiments lint`; CI runs it as the
//! "Static analysis" gate. The implementation is dependency-free: a
//! masking lexer ([`lexer::mask_source`]) blanks comments and string
//! literals, then each rule is a token scan over the masked text.

pub mod allow;
pub mod lexer;
pub mod rules;

pub use allow::{apply, parse_allowlist, AllowEntry, Report};
pub use rules::{scan_file, Diagnostic, RuleCode};

use std::path::{Path, PathBuf};

/// The allowlist's canonical location, relative to the workspace root.
pub const ALLOWLIST_NAME: &str = "lint.allow";

/// Every `.rs` production source in the workspace: `crates/*/src/**/*.rs`,
/// excluding `tests/`, `benches/` and `examples/` trees. Sorted, so runs
/// are deterministic.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !matches!(name, "tests" | "benches" | "examples") {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative, `/`-separated rendering of `path` under `root`.
fn rel(root: &Path, path: &Path) -> String {
    let r = path.strip_prefix(root).unwrap_or(path);
    r.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scan the whole workspace and apply the allowlist at
/// `root/lint.allow` (an absent allowlist means "no exceptions").
/// `Err` carries usage-level failures: unreadable files, malformed
/// allowlist.
pub fn run(root: &Path) -> Result<Report, String> {
    let allow_path = root.join(ALLOWLIST_NAME);
    let entries = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        parse_allowlist(&text).map_err(|errs| errs.join("\n"))?
    } else {
        Vec::new()
    };
    let files = workspace_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!("no sources under {}/crates", root.display()));
    }
    let mut diags = Vec::new();
    for f in &files {
        let src =
            std::fs::read_to_string(f).map_err(|e| format!("reading {}: {e}", f.display()))?;
        diags.extend(scan_file(&rel(root, f), &src));
    }
    let mut report = apply(diags, &entries, ALLOWLIST_NAME);
    report.files = files.len();
    Ok(report)
}

/// Walk upward from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Human-readable report; `verbose` also lists suppressed diagnostics
/// with the allowlist reasons they matched.
pub fn render(report: &Report, verbose: bool) -> String {
    let mut s = String::new();
    for d in &report.active {
        s.push_str(&format!("{d}\n"));
    }
    if verbose && !report.suppressed.is_empty() {
        s.push_str(&format!(
            "\n{} diagnostic(s) suppressed by {}:\n",
            report.suppressed.len(),
            ALLOWLIST_NAME
        ));
        for d in &report.suppressed {
            s.push_str(&format!("  [allowed] {}:{} {}\n", d.path, d.line, d.code));
        }
    }
    s.push_str(&format!(
        "{} file(s) scanned: {} violation(s), {} suppressed\n",
        report.files,
        report.active.len(),
        report.suppressed.len()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }

    #[test]
    fn source_walk_skips_test_trees() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = workspace_sources(&root).expect("walk");
        assert!(files.iter().any(|f| f.ends_with("src/sim.rs")));
        assert!(!files.iter().any(|f| {
            f.components()
                .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "examples")
        }));
    }
}
